"""Failure-injection tests: corrupted data, dead peers, stalled streams."""

import queue
import threading
import time

import pytest

from repro.core.config import EMLIOConfig
from repro.core.planner import Planner
from repro.core.provider import BatchProvider
from repro.gpu.pipeline import EndOfData
from repro.net.framing import ConnectionClosed
from repro.net.mq import PullSocket, PushSocket
from repro.serialize.payload import BatchPayload
from repro.tfrecord.reader import TFRecordCorruption


def test_daemon_detects_corrupted_shard(small_imagenet):
    """A bit-flipped shard must fail the epoch loudly, not deliver garbage."""
    shard_path = small_imagenet.root / small_imagenet.indexes[0].path
    raw = bytearray(shard_path.read_bytes())
    raw[40] ^= 0xFF
    shard_path.write_bytes(bytes(raw))

    from repro.core.daemon import EMLIODaemon

    cfg = EMLIOConfig(batch_size=4)
    plan = Planner(small_imagenet, num_nodes=1, config=cfg).plan()
    pull = PullSocket(hwm=64)
    daemon = EMLIODaemon(small_imagenet.root, plan, {0: ("127.0.0.1", pull.port)}, cfg)
    with pytest.raises((TFRecordCorruption, ValueError)):
        daemon.serve_epoch(0)
    daemon.close()
    pull.close()


def test_provider_times_out_on_stalled_stream():
    q: queue.Queue = queue.Queue()
    provider = BatchProvider(q, expected_batches=3, timeout=0.2)
    with pytest.raises(RuntimeError, match="stalled"):
        provider()


def test_provider_rejects_duplicate_delivery():
    q: queue.Queue = queue.Queue()
    payload = BatchPayload(epoch=0, batch_index=5, shard="s", samples=[b"x"], labels=[0])
    q.put(payload)
    q.put(payload)
    provider = BatchProvider(q, expected_batches=4, timeout=1.0)
    provider()
    with pytest.raises(RuntimeError, match="duplicate"):
        provider()


def test_provider_signals_end_after_expected():
    q: queue.Queue = queue.Queue()
    q.put(BatchPayload(epoch=0, batch_index=0, shard="s", samples=[b"x"], labels=[0]))
    provider = BatchProvider(q, expected_batches=1, timeout=1.0)
    provider()
    assert provider.complete
    with pytest.raises(EndOfData):
        provider()


def test_pull_socket_survives_peer_death():
    """A pusher dying mid-stream must not poison the PULL socket for
    other peers."""
    pull = PullSocket(hwm=16)
    push1 = PushSocket([pull.address], hwm=4)
    push1.send(b"from-1")
    assert pull.recv(timeout=5) == b"from-1"
    push1.close()  # peer goes away
    time.sleep(0.1)
    push2 = PushSocket([pull.address], hwm=4)
    push2.send(b"from-2")
    assert pull.recv(timeout=5) == b"from-2"
    push2.close()
    pull.close()


def test_channel_recv_after_peer_close_raises_cleanly():
    import socket as socket_mod

    from repro.net.channel import Channel

    a, b = socket_mod.socketpair()
    chan_a, chan_b = Channel(a), Channel(b)
    chan_a.close()
    with pytest.raises((ConnectionClosed, ConnectionError, OSError)):
        chan_b.recv()
    chan_b.close()


def test_nfs_mount_survives_transient_errors(small_imagenet):
    """Bad paths error per-op; the mount keeps serving good requests."""
    from repro.storage.nfs import NFSError, NFSMount
    from repro.storage.server import StorageServer

    srv = StorageServer(str(small_imagenet.root))
    mount = NFSMount("127.0.0.1", srv.port)
    with pytest.raises(NFSError):
        mount.read_at("no-such-shard.tfrecord", 0, 10)
    # The pool connection is still healthy.
    assert mount.size(small_imagenet.indexes[0].path) > 0
    mount.close()
    srv.close()


def test_receiver_stall_timeout_raises(small_imagenet):
    """No daemon ever sends: the receiver epoch must fail fast, not hang."""
    from repro.core.receiver import EMLIOReceiver

    cfg = EMLIOConfig(batch_size=4)
    plan = Planner(small_imagenet, num_nodes=1, config=cfg).plan()
    receiver = EMLIOReceiver(node_id=0, plan=plan, config=cfg, stall_timeout=0.3)
    with pytest.raises(RuntimeError, match="stalled"):
        for _ in receiver.epoch(0):
            pass
    receiver.close()


def test_service_surfaces_daemon_failure(small_imagenet):
    """Mid-epoch shard corruption propagates out of the service epoch."""
    from repro.core.service import EMLIOService

    cfg = EMLIOConfig(batch_size=4, output_hw=(16, 16))
    svc = EMLIOService(cfg, small_imagenet, stall_timeout=5.0)
    shard_path = small_imagenet.root / small_imagenet.indexes[0].path
    raw = bytearray(shard_path.read_bytes())
    raw[40] ^= 0xFF
    shard_path.write_bytes(bytes(raw))
    with pytest.raises(Exception):
        for _ in svc.epoch(0):
            pass
    svc.close()
