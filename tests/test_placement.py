"""The unified placement engine: load-weighted re-plans and elastic scale-out.

Three layers of coverage:

* unit — scale-out selection/weighting, shard-ownership re-division, the
  provider shrink / daemon claim primitives the supervisor builds on, and
  the new load signals (queue-depth beats, throughput EWMA);
* property — hypothesis over arbitrary interleavings of join and death
  events: every planned batch stays covered exactly once (none lost, none
  double-owned), extending PR 2's failover-only invariant to elastic
  membership;
* end-to-end (slow) — a receiver joining mid-epoch and a storage daemon
  joining mid-run are admitted via heartbeat and actually receive load,
  with exactly-once delivery intact.
"""

import queue
import threading
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import EMLIOConfig
from repro.core.membership import ClusterView, MembershipConfig
from repro.core.placement import (
    ElasticPolicy,
    FailoverError,
    MemberLoad,
    PlacementEngine,
)
from repro.core.planner import BatchAssignment, BatchPlan
from repro.core.provider import BatchProvider
from repro.core.recovery import DeliveryLedger, RecoveryConfig
from repro.net.heartbeat import Heartbeat, decode_heartbeat, encode_heartbeat
from repro.serialize.payload import BatchPayload


def _mk_assignment(epoch, node, index, shard="s0"):
    return BatchAssignment(
        epoch=epoch, node_id=node, batch_index=index, shard=shard,
        shard_path=f"{shard}.tfrecord", start_record=0, offset=0,
        nbytes=64, count=1, labels=(0,),
    )


def _mk_plan(per_node: dict[int, int], epochs: int = 1) -> BatchPlan:
    assignments = [
        _mk_assignment(e, node, i, shard=f"s{node}")
        for e in range(epochs)
        for node, count in per_node.items()
        for i in range(count)
    ]
    return BatchPlan(
        assignments=tuple(assignments),
        num_nodes=max(per_node) + 1,
        epochs=epochs,
        batch_size=1,
        coverage="partition",
    )


def _engine(plan, ledger=None, **kwargs):
    kwargs.setdefault("reachable", lambda root, path: True)
    kwargs.setdefault("roots", {"rootA": None})
    return PlacementEngine(plan, ledger or DeliveryLedger(None), **kwargs)


# -- heartbeat + membership load signals ---------------------------------------


def test_heartbeat_queue_depth_roundtrips():
    hb = Heartbeat("receiver:0", "receiver", progress=5, queue_depth=7)
    assert decode_heartbeat(encode_heartbeat(hb)) == hb


def test_heartbeat_queue_depth_defaults_for_old_publishers():
    # A pre-queue-depth beat (no "qd" field) still decodes.
    hb = decode_heartbeat(b'{"id": "m", "role": "daemon"}')
    assert hb.queue_depth == 0


def test_view_tracks_rate_and_queue_depth():
    clock = {"now": 0.0}
    view = ClusterView(
        MembershipConfig(interval_s=1.0, dead_threshold=100, hung_after_s=0.0),
        clock=lambda: clock["now"],
    )
    # 10 progress per second, queue depth from the latest beat.
    for i in range(1, 6):
        clock["now"] = float(i)
        view.observe(Heartbeat("r:0", "receiver", progress=10 * i, queue_depth=i))
    m = view.members()["r:0"]
    assert m.queue_depth == 5
    assert 0 < m.rate <= 10.0  # EWMA converging toward 10/s
    snap = m.snapshot()
    assert snap["queue_depth"] == 5 and snap["rate"] == round(m.rate, 3)
    # Progress stalls: the rate decays toward zero instead of sticking.
    stuck = m.rate
    for i in range(6, 12):
        clock["now"] = float(i)
        view.observe(Heartbeat("r:0", "receiver", progress=50, queue_depth=0))
    assert view.members()["r:0"].rate < stuck


def test_heartbeat_cache_counters_roundtrip():
    hb = Heartbeat(
        "daemon:0@r", "daemon", cache_hits=3, cache_misses=1, prefetch_depth=2
    )
    assert decode_heartbeat(encode_heartbeat(hb)) == hb


def test_heartbeat_cache_fields_default_for_old_publishers():
    # A pre-cache beat (no "ch"/"cm"/"pf" fields) still decodes.
    hb = decode_heartbeat(b'{"id": "m", "role": "daemon"}')
    assert (hb.cache_hits, hb.cache_misses, hb.prefetch_depth) == (0, 0, 0)


def test_view_tracks_cache_counters():
    view = ClusterView(
        MembershipConfig(interval_s=1.0, dead_threshold=100, hung_after_s=0.0)
    )
    view.observe(
        Heartbeat("d:0", "daemon", cache_hits=9, cache_misses=3, prefetch_depth=4)
    )
    m = view.members()["d:0"]
    assert (m.cache_hits, m.cache_misses, m.prefetch_depth) == (9, 3, 4)
    snap = m.snapshot()
    assert snap["cache_hit_rate"] == 0.75
    assert snap["prefetch_depth"] == 4
    # A member whose cache never saw a read has no rate, not a zero rate.
    view.observe(Heartbeat("r:0", "receiver"))
    assert view.members()["r:0"].snapshot()["cache_hit_rate"] is None


# -- scale-out selection -------------------------------------------------------


def test_select_scale_out_takes_fair_share_with_no_load_signal():
    plan = _mk_plan({0: 10, 1: 10})
    engine = _engine(plan)
    picked = engine.select_scale_out(list(plan.assignments), new_node=2)
    # Equal weights: the joiner's fair share of 20 outstanding is a third.
    assert len(picked) == 6
    by_donor = {n: len([a for a in picked if a.node_id == n]) for n in (0, 1)}
    assert by_donor[0] == by_donor[1] == 3
    # Drafted from the tail of each donor's dispatch order (least likely
    # to already be in flight).
    assert all(a.batch_index >= 7 for a in picked)


def test_select_scale_out_weights_by_observed_throughput():
    plan = _mk_plan({0: 12, 1: 12})
    engine = _engine(
        plan,
        node_loads={0: MemberLoad(throughput=9.0), 1: MemberLoad(throughput=3.0)},
    )
    picked = engine.select_scale_out(list(plan.assignments), new_node=2)
    by_donor = {n: len([a for a in picked if a.node_id == n]) for n in (0, 1)}
    # The slow donor sheds more of its backlog than the fast one.
    assert by_donor[1] > by_donor[0]


def test_select_scale_out_counts_queue_depth_against_donors():
    plan = _mk_plan({0: 10, 1: 10})
    engine = _engine(
        plan,
        node_loads={
            0: MemberLoad(throughput=1.0, queue_depth=50),
            1: MemberLoad(throughput=1.0, queue_depth=0),
        },
    )
    picked = engine.select_scale_out(list(plan.assignments), new_node=2)
    by_donor = {n: len([a for a in picked if a.node_id == n]) for n in (0, 1)}
    # Equal rates, but donor 0 sits on a deep queue: it sheds more.
    assert by_donor[0] > by_donor[1]


def test_select_scale_out_respects_rebalance_threshold():
    plan = _mk_plan({0: 2, 1: 2})
    engine = _engine(plan, policy=ElasticPolicy(rebalance_threshold=0.5))
    # The joiner's share (1/3 of 4 = 1 batch) is under half the work.
    assert engine.select_scale_out(list(plan.assignments), new_node=2) == []
    # An explicit threshold of zero overrides the policy.
    assert engine.select_scale_out(list(plan.assignments), new_node=2, threshold=0.0)


def test_retarget_onto_joined_node_mints_fresh_seqs():
    plan = _mk_plan({0: 4, 1: 4})
    engine = _engine(plan)
    chosen = [a for a in plan.assignments if a.batch_index >= 2]
    result = engine.retarget(chosen, targets=[2], next_seq={2: 0})
    assert set(result.key_map) == {(0, a.node_id, a.batch_index) for a in chosen}
    assert sorted(k[2] for k in result.key_map.values()) == list(range(len(chosen)))
    assert all(k[1] == 2 for k in result.key_map.values())
    assert result.extra_per_node == {2: len(chosen)}
    # Payload identity preserved: same shard slice, same labels.
    for a in result.assignments:
        assert a.shard in ("s0", "s1") and a.count == 1


def test_retarget_with_no_targets_raises():
    plan = _mk_plan({0: 2})
    engine = _engine(plan)
    with pytest.raises(FailoverError, match="no surviving receiver"):
        engine.retarget(list(plan.assignments), targets=[], next_seq={})


# -- load-weighted receiver failover -------------------------------------------


def test_receiver_failover_weights_adoption_by_throughput():
    plan = _mk_plan({0: 12, 1: 0, 2: 0})
    engine = _engine(
        plan,
        node_loads={1: MemberLoad(throughput=9.0), 2: MemberLoad(throughput=3.0)},
    )
    result = engine.plan_receiver_failover(
        0, 0, surviving_nodes=[1, 2], next_seq={1: 100, 2: 100}
    )
    # 3x the observed throughput adopts ~3x the re-planned work.
    assert result.extra_per_node[1] > result.extra_per_node[2]
    assert sum(result.extra_per_node.values()) == 12


def test_receiver_failover_without_loads_stays_count_balanced():
    plan = _mk_plan({0: 10, 1: 0, 2: 0})
    engine = _engine(plan)
    result = engine.plan_receiver_failover(
        0, 0, surviving_nodes=[1, 2], next_seq={1: 50, 2: 50}
    )
    assert result.extra_per_node == {1: 5, 2: 5}


# -- shard ownership re-division (daemon scale-out) ----------------------------


def test_plan_shard_ownership_covers_every_shard_exactly_once():
    plan = _mk_plan({0: 6, 1: 6})  # shards s0, s1
    engine = _engine(plan, roots={"rootA": None, "rootB": None})
    ownership = engine.plan_shard_ownership(["rootA", "rootB"])
    placed = sorted(s for shards in ownership.values() for s in shards)
    assert placed == ["s0", "s1"]


def test_plan_shard_ownership_weights_by_root_throughput():
    assignments = [
        _mk_assignment(0, 0, i, shard=f"s{i % 6}") for i in range(36)
    ]
    plan = BatchPlan(assignments=tuple(assignments), num_nodes=1, epochs=1,
                     batch_size=1, coverage="partition")
    engine = _engine(
        plan,
        roots={"fast": None, "slow": None},
        root_loads={
            "fast": MemberLoad(throughput=10.0),
            "slow": MemberLoad(throughput=2.0),
        },
    )
    ownership = engine.plan_shard_ownership(["fast", "slow"])
    assert len(ownership["fast"]) > len(ownership["slow"])


def test_plan_shard_ownership_respects_reachability_and_only():
    plan = _mk_plan({0: 4, 1: 4})
    engine = PlacementEngine(
        plan, DeliveryLedger(None), {"a": None, "b": None},
        reachable=lambda root, path: root == "b",
    )
    ownership = engine.plan_shard_ownership(["a", "b"], only={"s1"})
    assert ownership == {"a": set(), "b": {"s1"}}
    with pytest.raises(FailoverError, match="no daemon root"):
        PlacementEngine(
            plan, DeliveryLedger(None), {"a": None},
            reachable=lambda root, path: False,
        ).plan_shard_ownership(["a"])


# -- cache-locality tie-breaking (daemon failover) -----------------------------


def test_failover_prefers_root_with_cached_bytes_when_load_ties():
    plan = _mk_plan({0: 4})  # one shard: s0 -> s0.tfrecord
    roots = {"dead": {"s0"}, "a": set(), "b": set()}
    engine = _engine(
        plan, roots=roots,
        root_loads={"b": MemberLoad(cached_shards={"s0.tfrecord"})},
    )
    # Loads tie (no throughput or queue signal anywhere): the survivor
    # whose hot-set cache already holds the shard's bytes takes over.
    assert engine.plan_failover("dead", epoch=0) == {"b": {"s0"}}
    # Without the cache signal the deterministic name tie-break picks "a".
    assert _engine(plan, roots=roots).plan_failover("dead", epoch=0) == {"a": {"s0"}}


def test_cache_locality_stays_subordinate_to_load():
    plan = _mk_plan({0: 4})
    roots = {"dead": {"s0"}, "a": set(), "b": set()}
    engine = _engine(
        plan, roots=roots,
        root_loads={
            "a": MemberLoad(throughput=1.0),
            "b": MemberLoad(
                throughput=1.0, queue_depth=8, cached_shards={"s0.tfrecord"}
            ),
        },
    )
    # b holds the bytes but sits on a deep queue: load wins, a takes over.
    assert engine.plan_failover("dead", epoch=0) == {"a": {"s0"}}


# -- elastic policy ------------------------------------------------------------


def test_elastic_policy_validation():
    ElasticPolicy()  # defaults are valid
    with pytest.raises(ValueError, match="admit"):
        ElasticPolicy(admit="maybe")
    with pytest.raises(ValueError, match="max_members"):
        ElasticPolicy(min_members=3, max_members=2)
    with pytest.raises(ValueError, match="rebalance_threshold"):
        ElasticPolicy(rebalance_threshold=1.5)


# -- the provider shrink / daemon claim primitives -----------------------------


def _payload(epoch, seq, node=0):
    return BatchPayload(
        epoch=epoch, batch_index=seq, shard="s0", samples=[b"x"], labels=[0],
        node_id=node, seq=seq,
    )


def test_provider_shrink_reduces_expectation_and_dedups_stragglers():
    q = queue.Queue()
    provider = BatchProvider(q, expected_batches=4, timeout=5.0, dedup=True, epoch=0)
    q.put(_payload(0, 0))
    provider()
    assert provider.shrink([(0, 2), (0, 3)])
    q.put(_payload(0, 1))
    provider()
    # Expectation fell from 4 to 2: the epoch is complete.
    assert provider.complete
    # A straggler copy of a shrunk key dedups instead of delivering.
    q.put(_payload(0, 2))
    from repro.gpu.pipeline import EndOfData

    with pytest.raises(EndOfData):
        provider()


def test_provider_shrink_is_idempotent_and_wakes_a_blocked_fill():
    q = queue.Queue()
    provider = BatchProvider(q, expected_batches=2, timeout=10.0, dedup=True, epoch=0)
    q.put(_payload(0, 0))
    provider()
    out: list = []

    def consume():
        from repro.gpu.pipeline import EndOfData

        try:
            provider()
        except EndOfData:
            out.append("end")

    t = threading.Thread(target=consume, daemon=True)
    t.start()
    time.sleep(0.2)  # the provider is now blocked waiting for seq 1
    assert provider.shrink([(0, 1)])
    assert provider.shrink([(0, 1)])  # second shrink of the same key: no-op
    t.join(timeout=5.0)
    assert out == ["end"] and provider.complete


def test_daemon_relinquish_claims_only_unsent_batches(small_imagenet, tmp_path):
    from repro.core.daemon import EMLIODaemon
    from repro.core.planner import Planner

    cfg = EMLIOConfig(batch_size=4)
    plan = Planner(small_imagenet, num_nodes=1, config=cfg).plan()
    keys = sorted(plan.keys(epoch=0))
    daemon = EMLIODaemon(
        dataset_root=small_imagenet.root, plan=plan,
        node_endpoints={0: ("127.0.0.1", 1)}, config=cfg,
    )
    # Simulate a send worker having already committed to the first key.
    with daemon._claim_lock:
        daemon._committed.add(keys[0])
    claimed = daemon.relinquish(keys[:3])
    assert claimed == set(keys[1:3])
    # Idempotent in effect: already-relinquished keys stay relinquished,
    # committed keys stay unclaimable.
    assert daemon.relinquish(keys[:3]) == set(keys[1:3])
    # Keys outside the daemon's plan are never claimed.
    assert daemon.relinquish([(0, 99, 0)]) == set()


def test_receiver_relinquish_excludes_keys_from_future_providers(small_imagenet):
    from repro.core.planner import Planner
    from repro.core.receiver import EMLIOReceiver

    cfg = EMLIOConfig(batch_size=4, output_hw=(16, 16))
    plan = Planner(small_imagenet, num_nodes=1, config=cfg).plan()
    receiver = EMLIOReceiver(node_id=0, plan=plan, config=cfg)
    try:
        planned = plan.for_epoch_node(0, 0)
        moved = [(a.epoch, a.batch_index) for a in planned[:2]]
        assert receiver.relinquish(moved)
        provider = receiver._make_provider(0)
        assert provider.expected_batches == len(planned) - 2
    finally:
        receiver.close()


# -- property: joins + deaths keep every batch covered exactly once ------------


@settings(max_examples=50, deadline=None)
@given(
    per_node=st.lists(st.integers(min_value=0, max_value=6), min_size=2, max_size=4),
    steps=st.lists(st.sampled_from(["die", "join", "deliver"]), max_size=8),
    data=st.data(),
)
def test_any_join_death_interleaving_keeps_exactly_once_coverage(
    per_node, steps, data
):
    """Hypothesis invariant of the elastic control plane: after an arbitrary
    interleaving of receiver joins, receiver deaths and deliveries — each
    re-planned through the engine exactly as the supervisor drives it —
    every planned batch is either delivered once or owed to exactly one
    live owner (none lost, none double-owned)."""
    plan = _mk_plan(dict(enumerate(per_node)))
    planned = sorted(plan.keys())
    ledger = DeliveryLedger(None)
    live = set(range(len(per_node)))
    next_node = len(per_node)
    next_seq = {
        n: max((a.batch_index for a in plan.assignments if a.node_id == n),
               default=-1) + 1
        for n in range(len(per_node) + 10)
    }
    # outstanding: current final delivery key -> the assignment owing it.
    outstanding = {(a.epoch, a.node_id, a.batch_index): a for a in plan.assignments}

    def engine():
        return _engine(plan, ledger)

    def apply_retarget(result):
        for old, new in result.key_map.items():
            ledger.record_reassignment(old, new)
            outstanding.pop(old, None)
        for a in result.assignments:
            outstanding[(a.epoch, a.node_id, a.batch_index)] = a
            next_seq[a.node_id] = max(next_seq[a.node_id], a.batch_index + 1)

    for step in steps:
        if step == "die" and len(live) >= 2:
            dead = data.draw(st.sampled_from(sorted(live)), label="dead")
            live.discard(dead)
            residual = [a for a in outstanding.values() if a.node_id == dead]
            result = engine().plan_receiver_failover(
                dead, 0, sorted(live), next_seq, residual=residual
            )
            apply_retarget(result)
        elif step == "join" and next_node < len(per_node) + 6:
            new = next_node
            next_node += 1
            live.add(new)
            candidates = [
                a
                for key, a in outstanding.items()
                if key in set(planned) and a.node_id != new and a.node_id in live
            ]
            chosen = engine().select_scale_out(candidates, new)
            if chosen:
                result = engine().retarget(chosen, [new], next_seq)
                apply_retarget(result)
        elif step == "deliver" and outstanding:
            keys = data.draw(
                st.sets(st.sampled_from(sorted(outstanding))), label="delivered"
            )
            for key in keys:
                if outstanding[key].node_id in live:
                    ledger.record(*key)
                    del outstanding[key]

    # The invariant: every planned key is covered once or owed once.
    resolved = {}
    for key in planned:
        final = ledger.resolve(key)
        if ledger.covered(key):
            assert final not in outstanding, f"{key} delivered AND owed"
            continue
        assert final in outstanding, f"{key} lost: {final} owed by nobody"
        assert outstanding[final].node_id in live, f"{key} owed by a dead node"
        assert final not in resolved, (
            f"{key} and {resolved[final]} both resolve to {final}"
        )
        resolved[final] = key


# -- end-to-end: elastic scale-out through the live service --------------------


def _collect_labels(iterable):
    labels = []
    for _tensors, batch_labels in iterable:
        labels.extend(int(l) for l in batch_labels)
    return labels


def _expected_labels(dataset):
    return sorted(
        label for labels in dataset.labels().values() for label in labels
    )


def _wait_until(cond, timeout=8.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if cond():
            return True
        time.sleep(0.02)
    return cond()


FAST_MEMBERSHIP = MembershipConfig(
    interval_s=0.05, miss_threshold=3, dead_threshold=60, hung_after_s=0.0
)


@pytest.mark.slow
def test_scale_out_receiver_joins_at_epoch_start(small_imagenet, tmp_path):
    """A receiver registered between epochs is admitted via its first beat
    and receives a rebalanced share of the next epoch before daemons spawn."""
    from repro.core.service import EMLIOService

    cfg = EMLIOConfig(batch_size=4, output_hw=(16, 16))
    recovery = RecoveryConfig(
        ledger_path=tmp_path / "ledger.txt", membership=FAST_MEMBERSHIP
    )
    with EMLIOService(
        cfg, small_imagenet, num_nodes=2, stall_timeout=30.0, recovery=recovery
    ) as svc:
        node = svc.add_receiver()
        assert node == 2 and svc.num_nodes == 3
        # The joiner's first beat must land (the `joined` event is queued)
        # before the epoch starts, so the rebalance hits the boundary.
        assert _wait_until(lambda: svc.view.status_of("receiver:2") is not None)
        labels = _collect_labels(svc.epoch(0))
        assert sorted(labels) == _expected_labels(small_imagenet)
        assert svc.rebalances == 1
        assert svc.receivers[node].batches_consumed > 0, "joiner got no load"
        status = svc.cluster_status()
        assert status["last_rebalance"]["kind"] == "receiver_join"
        assert status["last_rebalance"]["node"] == node
        # Exactly-once held through the join: the epoch compacted to the
        # full planned count.
        assert svc.ledger.completed_epochs() == {0: len(svc.plan.keys(epoch=0))}


@pytest.mark.slow
def test_scale_out_receiver_joins_mid_epoch(small_imagenet, tmp_path):
    """Start N-1 receivers, join the Nth mid-epoch: the monitor consumes
    the `joined` event, live daemons relinquish unsent batches, and the
    joiner demonstrably receives load — with exactly-once delivery."""
    from repro.core.service import EMLIOService
    from repro.net.emulation import NetworkProfile

    cfg = EMLIOConfig(batch_size=2, output_hw=(16, 16))
    recovery = RecoveryConfig(
        ledger_path=tmp_path / "ledger.txt", membership=FAST_MEMBERSHIP
    )
    # A little RTT keeps batches unsent long enough for the mid-epoch
    # claim to find work to move.
    with EMLIOService(
        cfg, small_imagenet, num_nodes=2, stall_timeout=30.0, recovery=recovery,
        profile=NetworkProfile("join-drill", rtt_s=0.05),
    ) as svc:
        gen = svc.epoch(0)
        first = next(gen)  # the merged consume loop is now live
        assert first is not None
        node = svc.add_receiver()
        # The monitor thread admits and rebalances; batches may already be
        # fully in flight in rare schedules, so wait for either outcome.
        _wait_until(lambda: svc.rebalances > 0, timeout=6.0)
        labels = _collect_labels(gen) + [int(l) for l in first[1]]
        assert sorted(labels) == _expected_labels(small_imagenet)
        assert svc.ledger.completed_epochs() == {0: len(svc.plan.keys(epoch=0))}
        if svc.rebalances:  # the expected path: the joiner took load
            assert svc.receivers[node].batches_consumed > 0


@pytest.mark.slow
def test_scale_out_daemon_joins_and_takes_shards_next_epoch(
    small_imagenet, tmp_path
):
    """A storage daemon joining mid-run beats as idle, is admitted at the
    next epoch start, and shard ownership re-divides so it serves load."""
    from repro.core.service import EMLIOService

    site_b = tmp_path / "site_b"
    site_b.symlink_to(small_imagenet.root, target_is_directory=True)
    cfg = EMLIOConfig(batch_size=4, epochs=2, output_hw=(16, 16))
    recovery = RecoveryConfig(
        ledger_path=tmp_path / "ledger.txt", membership=FAST_MEMBERSHIP
    )
    with EMLIOService(
        cfg, small_imagenet, stall_timeout=30.0, recovery=recovery
    ) as svc:
        labels0 = _collect_labels(svc.epoch(0))
        assert sorted(labels0) == _expected_labels(small_imagenet)
        svc.add_daemon(str(site_b))
        assert _wait_until(
            lambda: svc.view.status_of(f"daemon:join@{site_b}") is not None
        )
        labels1 = _collect_labels(svc.epoch(1))
        assert sorted(labels1) == _expected_labels(small_imagenet)
        assert len(svc.daemons) == 2
        joined = svc.daemons[1]
        assert str(joined.dataset_root) == str(site_b)
        assert joined.stats.batches_sent > 0, "joined daemon served nothing"
        # Ownership re-divided: disjoint, non-empty shard sets.
        filters = [d.shard_filter for d in svc.daemons]
        assert all(f for f in filters)
        assert not (filters[0] & filters[1])
        assert svc.rebalances >= 1
        assert svc.cluster_status()["last_rebalance"]["kind"] == "daemon_join"


@pytest.mark.slow
def test_elastic_admission_policy_is_enforced(small_imagenet, tmp_path):
    from repro.core.service import EMLIOService

    cfg = EMLIOConfig(batch_size=4, output_hw=(16, 16))
    recovery = RecoveryConfig(
        ledger_path=tmp_path / "ledger.txt", membership=FAST_MEMBERSHIP
    )
    with EMLIOService(
        cfg, small_imagenet, stall_timeout=30.0, recovery=recovery,
        elastic=ElasticPolicy(admit="closed"),
    ) as svc:
        with pytest.raises(FailoverError, match="rejects a joining"):
            svc.add_receiver()
    with EMLIOService(
        cfg, small_imagenet, num_nodes=2, stall_timeout=30.0, recovery=recovery,
        elastic=ElasticPolicy(max_members=2),
    ) as svc:
        with pytest.raises(FailoverError, match="max_members"):
            svc.add_receiver()
    # Without a control plane there is nothing to admit through.
    with EMLIOService(cfg, small_imagenet, stall_timeout=30.0) as svc:
        with pytest.raises(RuntimeError, match="control plane"):
            svc.add_receiver()
