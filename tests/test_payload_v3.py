"""Columnar payload schema (v3): round trips, back compat, O(1) decode.

The v3 wire layout packs a batch as one samples blob + a u32 offsets
vector + an i64 labels vector.  These tests pin the properties the hot
path rests on: lossless round trips across every edge geometry, decode
of every older schema version, O(1) scatter-gather segments when the
daemon serves a shared region, and O(1) Python allocations per decoded
batch under ``zero_copy=True``.
"""

import tracemalloc

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.buffers import ColumnarSamples
from repro.serialize.msgpack import SPILL_THRESHOLD, packb, unpackb
from repro.serialize.payload import (
    BatchPayload,
    decode_batch,
    encode_batch,
    encode_batch_parts,
)
from repro.tfrecord.sharder import pack_example, scan_example_spans
from repro.tfrecord.writer import frame_record


def make_payload(samples, labels=None, **overrides):
    kwargs = dict(
        epoch=3,
        batch_index=11,
        shard="shard_00001",
        samples=samples,
        labels=list(range(len(samples))) if labels is None else labels,
        node_id=2,
        meta={"rtt_class": "lan"},
    )
    kwargs.update(overrides)
    return BatchPayload(**kwargs)


def columnar_payload(samples, labels=None, **overrides):
    """The daemon's serve-path construction: records framed into one
    region, sample spans found by the framing scanner."""
    labels = list(range(len(samples))) if labels is None else labels
    region = b"".join(
        frame_record(pack_example(s, l)) for s, l in zip(samples, labels)
    )
    offsets, scanned = scan_example_spans(region, len(samples))
    assert scanned == labels
    return make_payload(
        ColumnarSamples(memoryview(region), offsets), labels, **overrides
    )


# -- round trips ---------------------------------------------------------------


@pytest.mark.parametrize(
    "samples",
    [
        [],  # empty batch
        [b""],  # zero-byte sample
        [b"\x00"] * 4,  # 1-byte samples
        [b"x" * (SPILL_THRESHOLD + 1)] * 3,  # every sample spills
        [b"a", b"b" * SPILL_THRESHOLD, b""],  # mixed sizes
    ],
    ids=["empty", "zero-byte", "one-byte", "spill", "mixed"],
)
def test_v3_roundtrip_edge_geometries(samples):
    p = make_payload(samples)
    assert decode_batch(encode_batch(p, version=3)) == p
    wire = b"".join(bytes(seg) for seg in encode_batch_parts(p, version=3))
    assert decode_batch(wire, zero_copy=True) == p


def test_columnar_samples_roundtrip_both_versions():
    samples = [bytes([i]) * (100 + i) for i in range(8)]
    p = columnar_payload(samples)
    row = make_payload(samples)
    assert decode_batch(encode_batch(p, version=3)) == row
    # The mixed-version fallback: a columnar batch re-encodes row-wise.
    assert decode_batch(encode_batch(p, version=2)) == row


@settings(max_examples=75, deadline=None)
@given(
    samples=st.lists(
        st.binary(min_size=0, max_size=SPILL_THRESHOLD + 64),
        min_size=0,
        max_size=12,
    ),
    labels=st.data(),
    zero_copy=st.booleans(),
)
def test_property_v3_roundtrip(samples, labels, zero_copy):
    labels = labels.draw(
        st.lists(
            st.integers(min_value=-(2**63), max_value=2**63 - 1),
            min_size=len(samples),
            max_size=len(samples),
        )
    )
    p = make_payload(samples, labels)
    wire = b"".join(bytes(seg) for seg in encode_batch_parts(p, version=3))
    assert decode_batch(wire, zero_copy=zero_copy) == p
    assert decode_batch(encode_batch(p, version=3)) == p


# -- back compat ---------------------------------------------------------------


def test_v1_payload_still_decodes():
    # v1 predates the seq field: seq falls back to batch_index.
    obj = {
        "v": 1,
        "epoch": 1,
        "batch_index": 9,
        "shard": "shard_00000",
        "samples": [b"aa", b"b"],
        "labels": [4, 7],
        "meta": {},
    }
    p = decode_batch(packb(obj))
    assert p.seq == 9
    assert list(p.samples) == [b"aa", b"b"] and list(p.labels) == [4, 7]


def test_v2_payload_still_decodes_zero_copy():
    p = make_payload([b"q" * 600, b"r"])
    wire = b"".join(bytes(seg) for seg in encode_batch_parts(p, version=2))
    q = decode_batch(wire, zero_copy=True)
    assert q == p


def test_unknown_version_rejected():
    obj = unpackb(encode_batch(make_payload([b"x"])))
    obj["offsets"] = bytes(obj["offsets"])
    obj["labels"] = bytes(obj["labels"])
    obj["samples"] = bytes(obj["samples"])
    obj["v"] = 4
    with pytest.raises(ValueError, match="version"):
        decode_batch(packb(obj))


def test_corrupt_columnar_vectors_rejected():
    p = make_payload([b"ab", b"cd"])
    obj = unpackb(encode_batch(p, version=3))
    short = dict(obj, offsets=bytes(obj["offsets"])[:-4], labels=bytes(obj["labels"]),
                 samples=bytes(obj["samples"]))
    with pytest.raises(ValueError, match="offsets"):
        decode_batch(packb(short))
    short = dict(obj, offsets=bytes(obj["offsets"]), labels=bytes(obj["labels"])[:-8],
                 samples=bytes(obj["samples"]))
    with pytest.raises(ValueError, match="labels"):
        decode_batch(packb(short))


# -- O(1) properties -----------------------------------------------------------


def test_columnar_encode_is_constant_segments():
    """The tentpole claim: segment count does not grow with B when the
    samples share one backing region."""
    counts = {}
    for b in (64, 256, 1024):
        samples = [bytes([i % 256]) * 1024 for i in range(b)]
        counts[b] = len(encode_batch_parts(columnar_payload(samples), version=3))
    # Once the offsets/labels vectors cross the spill threshold the part
    # count saturates: header parts + one spill each for offsets, labels,
    # and the blob — and never grows again.
    assert counts[64] == counts[256] == counts[1024] <= 8
    # Row layout spills every sample: segments grow with B.
    row_parts = encode_batch_parts(make_payload([b"x" * 1024] * 64), version=2)
    assert len(row_parts) > counts[1024]


def test_zero_copy_decode_allocations_are_o1():
    """SATELLITE: decoding B=1024 under zero_copy must not allocate
    per-record Python objects — one blob view, two vectors, a handful of
    header objects.  The old row path allocated O(B) (a bin view per
    sample plus the labels list walk)."""
    B = 1024
    samples = [bytes([i % 256]) * 64 for i in range(B)]
    wire = bytes(encode_batch(columnar_payload(samples), version=3))
    decode_batch(wire, zero_copy=True)  # warm caches/imports

    tracemalloc.start()
    base = tracemalloc.take_snapshot()
    decoded = decode_batch(wire, zero_copy=True)
    snap = tracemalloc.take_snapshot()
    tracemalloc.stop()
    allocated = sum(s.count_diff for s in snap.compare_to(base, "filename")
                    if s.count_diff > 0)
    # O(1): independent of B.  ~20 objects in practice; 64 leaves head
    # room for interpreter noise while still rejecting any O(B) walk.
    assert allocated < 64, f"{allocated} allocations for B={B} decode"
    assert len(decoded.samples) == B
    assert bytes(decoded.samples[B - 1]) == samples[B - 1]


def test_zero_copy_labels_survive_release():
    """Labels ride to the training loop after the receive buffer is
    recycled — they must not alias the released wire bytes."""
    samples = [b"s" * 700, b"t" * 700]
    wire = bytearray(
        b"".join(bytes(seg) for seg in encode_batch_parts(make_payload(samples, [5, -9]), version=3))
    )
    released = []
    p = decode_batch(
        memoryview(wire), zero_copy=True, release=lambda: released.append(True)
    )
    labels = p.labels
    p.samples.release()
    assert released == [True]
    wire[:] = b"\xff" * len(wire)  # simulate pool reuse scribbling the buffer
    assert list(labels) == [5, -9]


def test_zero_copy_decode_release_is_wired():
    p = columnar_payload([b"a" * 600, b"b" * 600])
    wire = b"".join(bytes(seg) for seg in encode_batch_parts(p, version=3))
    released = []
    q = decode_batch(wire, zero_copy=True, release=lambda: released.append(True))
    assert isinstance(q.samples, ColumnarSamples)
    q.samples.release()
    q.samples.release()  # idempotent
    assert released == [True]


# -- the framing scanner -------------------------------------------------------


def test_scan_example_spans_matches_per_record_parse():
    samples = [bytes([i]) * (i * 37 + 1) for i in range(6)]
    labels = [10, -3, 0, 255, 2**40, -(2**40)]
    region = b"".join(
        frame_record(pack_example(s, l)) for s, l in zip(samples, labels)
    )
    offsets, scanned = scan_example_spans(region, 6, verify=True)
    assert scanned == labels
    for i, s in enumerate(samples):
        assert region[offsets[2 * i] : offsets[2 * i + 1]] == s


def test_scan_example_spans_rejects_corruption():
    region = bytearray(frame_record(pack_example(b"payload" * 100, 1)))
    offsets, _ = scan_example_spans(bytes(region), 1)
    region[offsets[0] + 3] ^= 0xFF  # flip a sample byte under the data CRC
    with pytest.raises(ValueError):
        scan_example_spans(bytes(region), 1, verify=True)
    with pytest.raises(ValueError):  # truncated region
        scan_example_spans(bytes(region)[:-3], 1)
