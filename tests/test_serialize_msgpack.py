"""Tests for the from-scratch MessagePack codec, including property tests."""

import math
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serialize.msgpack import (
    SPILL_THRESHOLD,
    UnpackError,
    pack_parts,
    packb,
    packb_into,
    unpackb,
)

# -- known-answer vectors against the msgpack spec ---------------------------

SPEC_VECTORS = [
    (None, b"\xc0"),
    (False, b"\xc2"),
    (True, b"\xc3"),
    (0, b"\x00"),
    (127, b"\x7f"),
    (128, b"\xcc\x80"),
    (255, b"\xcc\xff"),
    (256, b"\xcd\x01\x00"),
    (65535, b"\xcd\xff\xff"),
    (65536, b"\xce\x00\x01\x00\x00"),
    (2**32 - 1, b"\xce\xff\xff\xff\xff"),
    (2**32, b"\xcf\x00\x00\x00\x01\x00\x00\x00\x00"),
    (-1, b"\xff"),
    (-32, b"\xe0"),
    (-33, b"\xd0\xdf"),
    (-128, b"\xd0\x80"),
    (-129, b"\xd1\xff\x7f"),
    (-32768, b"\xd1\x80\x00"),
    (-32769, b"\xd2\xff\xff\x7f\xff"),
    (-(2**31), b"\xd2\x80\x00\x00\x00"),
    (-(2**31) - 1, b"\xd3\xff\xff\xff\xff\x7f\xff\xff\xff"),
    ("", b"\xa0"),
    ("a", b"\xa1a"),
    ("hello", b"\xa5hello"),
    (b"", b"\xc4\x00"),
    (b"\x01\x02", b"\xc4\x02\x01\x02"),
    ([], b"\x90"),
    ([1, 2, 3], b"\x93\x01\x02\x03"),
    ({}, b"\x80"),
    ({"a": 1}, b"\x81\xa1a\x01"),
    (1.5, b"\xcb" + struct.pack(">d", 1.5)),
]


@pytest.mark.parametrize("obj,encoded", SPEC_VECTORS)
def test_spec_encoding(obj, encoded):
    assert packb(obj) == encoded


@pytest.mark.parametrize("obj,encoded", SPEC_VECTORS)
def test_spec_decoding(obj, encoded):
    assert unpackb(encoded) == obj


def test_float32_decoding():
    data = b"\xca" + struct.pack(">f", 2.5)
    assert unpackb(data) == 2.5


def test_str8_and_long_strings():
    s = "x" * 300
    out = packb(s)
    assert out[0] == 0xDA  # str16
    assert unpackb(out) == s


def test_bin16_and_bin32():
    b16 = b"z" * 70000
    out = packb(b16)
    assert out[0] == 0xC6  # bin32
    assert unpackb(out) == b16


def test_array16():
    arr = list(range(1000))
    out = packb(arr)
    assert out[0] == 0xDC
    assert unpackb(out) == arr


def test_map16():
    m = {f"k{i}": i for i in range(100)}
    out = packb(m)
    assert out[0] == 0xDE
    assert unpackb(out) == m


def test_nested_structure():
    obj = {"a": [1, {"b": b"bytes", "c": None}], "d": [True, False, -5, 3.25]}
    assert unpackb(packb(obj)) == obj


def test_tuple_encodes_as_array():
    assert unpackb(packb((1, 2))) == [1, 2]


def test_memoryview_encodes_as_bin():
    assert unpackb(packb(memoryview(b"abc"))) == b"abc"


def test_unsupported_type_raises():
    with pytest.raises(TypeError):
        packb(object())


def test_int_overflow_raises():
    with pytest.raises(OverflowError):
        packb(2**64)
    with pytest.raises(OverflowError):
        packb(-(2**63) - 1)


def test_trailing_garbage_rejected():
    with pytest.raises(UnpackError):
        unpackb(packb(1) + b"\x00")


def test_truncated_input_rejected():
    data = packb([1, 2, 3, "hello"])
    for cut in range(1, len(data)):
        with pytest.raises(UnpackError):
            unpackb(data[:cut])


def test_unknown_tag_rejected():
    with pytest.raises(UnpackError):
        unpackb(b"\xc1")  # never-used tag per spec


# -- property-based roundtrip --------------------------------------------------

scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**63), max_value=2**64 - 1),
    st.floats(allow_nan=False, allow_infinity=True),
    st.text(max_size=64),
    st.binary(max_size=64),
)

json_like = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=8),
        st.dictionaries(st.text(max_size=8), children, max_size=8),
    ),
    max_leaves=40,
)


@settings(max_examples=300, deadline=None)
@given(json_like)
def test_roundtrip_identity(obj):
    assert unpackb(packb(obj)) == obj


@settings(max_examples=100, deadline=None)
@given(st.floats(allow_nan=True, allow_infinity=True))
def test_float_roundtrip_bitexact(x):
    y = unpackb(packb(x))
    assert (math.isnan(x) and math.isnan(y)) or x == y


@settings(max_examples=200, deadline=None)
@given(st.binary(max_size=2048))
def test_decoder_never_hangs_on_garbage(data):
    """Arbitrary bytes either decode to something or raise UnpackError."""
    try:
        unpackb(data)
    except UnpackError:
        pass
    except UnicodeDecodeError:
        pass  # invalid UTF-8 inside a str field


# -- zero-copy encode/decode (pack_parts / packb_into / memoryview bins) ------


def test_packb_into_appends_and_returns_length():
    buf = bytearray(b"prefix")
    obj = {"a": [1, b"bb"], "c": "str"}
    n = packb_into(obj, buf)
    assert bytes(buf[:6]) == b"prefix"
    assert bytes(buf[6:]) == packb(obj)
    assert n == len(packb(obj))


def test_packb_into_buffer_reuse():
    buf = bytearray()
    for obj in (1, "x", [b"abc", None], {"k": 3.5}):
        buf.clear()
        assert packb_into(obj, buf) == len(buf)
        assert bytes(buf) == packb(obj)


def test_pack_parts_spills_large_payloads_without_copy():
    big = b"z" * 2048
    obj = {"s": big, "k": 1}
    parts = pack_parts(obj)
    assert b"".join(parts) == packb(obj)
    # The spilled segment is a view over the original bytes, not a copy.
    spilled = [p for p in parts if p.obj is big]
    assert len(spilled) == 1 and len(spilled[0]) == len(big)


def test_pack_parts_small_payloads_stay_in_scratch():
    obj = {"s": b"tiny"}
    parts = pack_parts(obj)  # below SPILL_THRESHOLD: one scratch segment
    assert len(parts) == 1
    assert b"".join(parts) == packb(obj)


def test_pack_parts_empty_bin_at_zero_threshold():
    # An empty payload has nothing to spill; must not emit an empty segment.
    parts = pack_parts({"e": b""}, threshold=0)
    assert all(len(p) for p in parts)
    assert b"".join(parts) == packb({"e": b""})


@settings(max_examples=300, deadline=None)
@given(json_like, st.sampled_from([0, 16, SPILL_THRESHOLD]))
def test_pack_parts_byte_identical_to_packb(obj, threshold):
    """The scatter-gather encode concatenates to exactly packb's output for
    arbitrary nested payloads at any spill threshold."""
    assert b"".join(pack_parts(obj, threshold)) == packb(obj)


@settings(max_examples=200, deadline=None)
@given(json_like)
def test_zero_copy_decode_equals_copying_decode(obj):
    data = packb(obj)
    assert unpackb(data, zero_copy=True) == unpackb(data)


def test_zero_copy_views_alias_the_input_buffer():
    data = bytearray(packb(b"abcd"))
    view = unpackb(data, zero_copy=True)
    assert isinstance(view, memoryview) and view == b"abcd"
    data[-4:] = b"wxyz"  # mutating the buffer shows through the view
    assert view == b"wxyz"
