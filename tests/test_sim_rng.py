"""Tests for repro.sim.rng."""

import numpy as np

from repro.sim.rng import RngStreams


def test_same_seed_same_stream():
    a = RngStreams(7)["net"].random(10)
    b = RngStreams(7)["net"].random(10)
    assert np.array_equal(a, b)


def test_different_seeds_differ():
    a = RngStreams(1)["net"].random(10)
    b = RngStreams(2)["net"].random(10)
    assert not np.array_equal(a, b)


def test_streams_are_independent_by_name():
    rng = RngStreams(0)
    a = rng["storage"].random(10)
    b = rng["net"].random(10)
    assert not np.array_equal(a, b)


def test_adding_stream_does_not_perturb_existing():
    rng1 = RngStreams(5)
    a_before = rng1["a"].random(5)

    rng2 = RngStreams(5)
    _ = rng2["b"].random(5)  # touch an extra stream first
    a_after = rng2["a"].random(5)
    assert np.array_equal(a_before, a_after)


def test_stream_is_cached():
    rng = RngStreams(0)
    assert rng["x"] is rng["x"]


def test_names_lists_touched_streams():
    rng = RngStreams(0)
    rng["b"], rng["a"]
    assert rng.names() == ["a", "b"]
