"""Tests for local storage, the storage server, and the NFS-like mount."""

import threading
import time

import pytest

from repro.net.emulation import NetworkProfile
from repro.storage.localfs import LocalStorage
from repro.storage.nfs import NFSError, NFSMount
from repro.storage.server import StorageServer


@pytest.fixture
def tree(tmp_path):
    (tmp_path / "a.bin").write_bytes(bytes(range(256)) * 4)
    (tmp_path / "sub").mkdir()
    (tmp_path / "sub" / "b.bin").write_bytes(b"nested")
    return tmp_path


# -- LocalStorage ---------------------------------------------------------------


def test_local_read_at(tree):
    fs = LocalStorage(tree)
    assert fs.read_at("a.bin", 0, 4) == bytes([0, 1, 2, 3])
    assert fs.read_at("a.bin", 256, 2) == bytes([0, 1])


def test_local_size_and_exists(tree):
    fs = LocalStorage(tree)
    assert fs.size("a.bin") == 1024
    assert fs.exists("a.bin")
    assert not fs.exists("missing.bin")


def test_local_listdir(tree):
    fs = LocalStorage(tree)
    assert fs.listdir() == ["a.bin", "sub"]
    assert fs.listdir("sub") == ["b.bin"]


def test_local_stats_accounting(tree):
    fs = LocalStorage(tree)
    fs.read_at("a.bin", 0, 100)
    fs.read_at("a.bin", 100, 100)
    fs.size("a.bin")
    snap = fs.stats.snapshot()
    assert snap["reads"] == 2
    assert snap["bytes_read"] == 200
    assert snap["stats"] == 1


def test_local_escape_rejected(tree):
    fs = LocalStorage(tree)
    with pytest.raises(PermissionError):
        fs.read_at("../etc/passwd", 0, 10)


def test_local_invalid_read_params(tree):
    fs = LocalStorage(tree)
    with pytest.raises(ValueError):
        fs.read_at("a.bin", -1, 10)


def test_local_root_must_be_dir(tree):
    with pytest.raises(NotADirectoryError):
        LocalStorage(tree / "a.bin")


# -- StorageServer + NFSMount -----------------------------------------------------


@pytest.fixture
def server(tree):
    srv = StorageServer(str(tree))
    yield srv
    srv.close()


def test_nfs_roundtrip(server, tree):
    mount = NFSMount("127.0.0.1", server.port)
    assert mount.ping()
    assert mount.size("a.bin") == 1024
    assert mount.read_at("a.bin", 0, 8) == bytes(range(8))
    assert mount.read_all("sub/b.bin") == b"nested"
    assert mount.listdir() == ["a.bin", "sub"]
    mount.close()


def test_nfs_error_propagates(server):
    mount = NFSMount("127.0.0.1", server.port)
    with pytest.raises(NFSError):
        mount.size("no-such-file.bin")
    mount.close()


def test_nfs_stats(server):
    mount = NFSMount("127.0.0.1", server.port)
    mount.read_at("a.bin", 0, 10)
    mount.size("a.bin")
    snap = mount.stats.snapshot()
    assert snap["reads"] == 1 and snap["stats"] == 1
    mount.close()


def test_nfs_concurrent_reads(server):
    mount = NFSMount("127.0.0.1", server.port, pool_size=4)
    results = []
    lock = threading.Lock()

    def worker(off):
        data = mount.read_at("a.bin", off, 16)
        with lock:
            results.append((off, data))

    threads = [threading.Thread(target=worker, args=(i * 16,)) for i in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len(results) == 8
    for off, data in results:
        assert data == bytes((off + j) % 256 for j in range(16))
    mount.close()


def test_nfs_rtt_cost_per_operation(tree):
    """Every op pays ~RTT: N sequential reads over a 40 ms RTT mount take
    >= N * RTT — the baseline-loader failure mode the paper measures."""
    profile = NetworkProfile("test", rtt_s=0.04)
    srv = StorageServer(str(tree), profile=profile)
    mount = NFSMount("127.0.0.1", srv.port, profile=profile, pool_size=1)
    mount.ping()  # warm up connection
    start = time.monotonic()
    for i in range(5):
        mount.read_at("a.bin", i, 1)
    elapsed = time.monotonic() - start
    assert elapsed >= 5 * 0.04 * 0.9
    mount.close()
    srv.close()


def test_nfs_parallel_reads_overlap_rtt(tree):
    """With a connection pool, K concurrent reads overlap their RTTs."""
    profile = NetworkProfile("test", rtt_s=0.05)
    srv = StorageServer(str(tree), profile=profile)
    mount = NFSMount("127.0.0.1", srv.port, profile=profile, pool_size=8)
    mount.ping()
    start = time.monotonic()
    threads = [
        threading.Thread(target=mount.read_at, args=("a.bin", i, 1)) for i in range(8)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.monotonic() - start
    # 8 overlapped RTTs of 50 ms must finish well under 8 * 50 ms.
    assert elapsed < 0.25
    mount.close()
    srv.close()


def test_server_request_counter(server):
    mount = NFSMount("127.0.0.1", server.port)
    mount.ping()
    mount.size("a.bin")
    deadline = time.monotonic() + 2
    while server.requests_served < 2 and time.monotonic() < deadline:
        time.sleep(0.01)
    assert server.requests_served >= 2
    mount.close()


def test_mount_pool_size_validation(server):
    with pytest.raises(ValueError):
        NFSMount("127.0.0.1", server.port, pool_size=0)


def test_mount_closed_rejects_ops(server):
    mount = NFSMount("127.0.0.1", server.port)
    mount.close()
    with pytest.raises(RuntimeError):
        mount.size("a.bin")
