"""Tests for shard indexes and dataset sharding."""

import pytest

from repro.tfrecord.index import RecordEntry, ShardIndex, load_shard_indexes
from repro.tfrecord.reader import TFRecordReader
from repro.tfrecord.sharder import (
    ShardedDataset,
    pack_example,
    unpack_example,
    write_shards,
)


def make_samples(n, size=100):
    return [(bytes([i % 256]) * size, i % 10) for i in range(n)]


def test_pack_unpack_example():
    sample, label = unpack_example(pack_example(b"payload", 42))
    assert sample == b"payload"
    assert label == 42


def test_write_shards_counts(tmp_path):
    ds = write_shards(make_samples(10), tmp_path, records_per_shard=4)
    assert ds.num_shards == 3  # 4 + 4 + 2
    assert ds.num_samples == 10
    assert [ix.num_records for ix in ds.indexes] == [4, 4, 2]


def test_exact_multiple_leaves_no_empty_shard(tmp_path):
    ds = write_shards(make_samples(8), tmp_path, records_per_shard=4)
    assert ds.num_shards == 2
    files = sorted(p.name for p in tmp_path.glob("*.tfrecord"))
    assert files == ["shard_00000.tfrecord", "shard_00001.tfrecord"]


def test_index_matches_file_contents(tmp_path):
    samples = make_samples(6, size=50)
    ds = write_shards(samples, tmp_path, records_per_shard=3)
    flat = []
    for ix in ds.indexes:
        with TFRecordReader(ds.root / ix.path) as reader:
            for entry in ix.entries:
                record = reader.read_at(entry.offset)
                sample, label = unpack_example(record)
                assert label == entry.label
                flat.append((sample, label))
    assert flat == samples


def test_index_json_roundtrip(tmp_path):
    ds = write_shards(make_samples(5), tmp_path, records_per_shard=5)
    ix = ds.indexes[0]
    assert ShardIndex.from_json(ix.to_json()) == ix


def test_load_shard_indexes(tmp_path):
    write_shards(make_samples(9), tmp_path, records_per_shard=3)
    indexes = load_shard_indexes(tmp_path)
    assert [ix.shard for ix in indexes] == ["shard_00000", "shard_00001", "shard_00002"]


def test_load_missing_indexes_raises(tmp_path):
    with pytest.raises(FileNotFoundError):
        load_shard_indexes(tmp_path)


def test_open_sharded_dataset(tmp_path):
    ds1 = write_shards(make_samples(7), tmp_path, records_per_shard=4)
    ds2 = ShardedDataset.open(tmp_path)
    assert ds2.num_samples == ds1.num_samples
    assert ds2.indexes == ds1.indexes


def test_labels_map(tmp_path):
    ds = write_shards(make_samples(6), tmp_path, records_per_shard=3)
    labels = ds.labels()
    assert labels["shard_00000"] == [0, 1, 2]
    assert labels["shard_00001"] == [3, 4, 5]


def test_contiguous_runs_cover_all_records(tmp_path):
    ds = write_shards(make_samples(10, size=30), tmp_path, records_per_shard=10)
    ix = ds.indexes[0]
    runs = ix.contiguous_runs(batch_size=3)
    assert [r[0] for r in runs] == [0, 3, 6, 9]
    assert sum(1 for _ in runs) == 4
    # Runs tile the shard bytes exactly.
    assert sum(r[2] for r in runs) == ix.nbytes
    # Offsets are increasing and contiguous.
    pos = 0
    for _start, off, nbytes in runs:
        assert off == pos
        pos += nbytes


def test_contiguous_run_readable_in_one_slice(tmp_path):
    samples = make_samples(8, size=40)
    ds = write_shards(samples, tmp_path, records_per_shard=8)
    ix = ds.indexes[0]
    (_s0, off, _n0), (start, off2, _n1) = ix.contiguous_runs(batch_size=4)
    with TFRecordReader(ds.root / ix.path) as reader:
        batch = reader.read_range(off2, 4)
    decoded = [unpack_example(r) for r in batch]
    assert decoded == samples[4:8]


def test_invalid_index_non_contiguous_rejected():
    with pytest.raises(ValueError, match="contiguous"):
        ShardIndex(
            shard="shard_00000",
            path="x.tfrecord",
            entries=(RecordEntry(0, 10, 0), RecordEntry(11, 10, 1)),
        )


def test_invalid_records_per_shard(tmp_path):
    with pytest.raises(ValueError):
        write_shards(make_samples(3), tmp_path, records_per_shard=0)


def test_empty_stream_rejected(tmp_path):
    with pytest.raises(ValueError, match="empty"):
        write_shards([], tmp_path)


def test_shard_path_lookup(tmp_path):
    ds = write_shards(make_samples(4), tmp_path, records_per_shard=2)
    assert ds.shard_path("shard_00001").name == "shard_00001.tfrecord"
    with pytest.raises(KeyError):
        ds.shard_path("shard_99999")
