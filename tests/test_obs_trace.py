"""Trace plumbing: ids, sampling, the writer, and the CLI helpers."""

from __future__ import annotations

import json

from repro.obs.trace import (
    SPAN_STAGES,
    TraceWriter,
    Tracer,
    trace_id,
    trace_sampled,
)
from repro.serialize.payload import BatchPayload, stamp_trace, trace_stamped
from repro.tools import trace as trace_tool


def test_trace_id_roundtrip():
    assert trace_id(3, 1, 42) == "3:1:42"
    assert trace_tool.parse_trace_id("3:1:42") == (3, 1, 42)


def test_sampling_edges():
    assert not trace_sampled(0, 0, 1, 0.0)
    assert trace_sampled(0, 0, 1, 1.0)
    assert not trace_sampled(0, 0, 1, -1.0)


def test_sampling_is_deterministic_and_proportional():
    hits = [trace_sampled(0, 0, seq, 0.25) for seq in range(4000)]
    assert hits == [trace_sampled(0, 0, seq, 0.25) for seq in range(4000)]
    rate = sum(hits) / len(hits)
    assert 0.20 < rate < 0.30


def test_stamp_and_detect_trace_meta():
    assert stamp_trace() == {"tr": 1}
    assert stamp_trace({"k": "v"}) == {"k": "v", "tr": 1}
    plain = BatchPayload(epoch=0, batch_index=0, shard="s", samples=[b"x"], labels=[0])
    stamped = BatchPayload(
        epoch=0, batch_index=0, shard="s", samples=[b"x"], labels=[0],
        meta=stamp_trace(),
    )
    assert not trace_stamped(plain)
    assert trace_stamped(stamped)


def test_writer_appends_jsonl_and_counts(tmp_path):
    writer = TraceWriter(tmp_path)
    tracer = Tracer(writer, "daemon", 1.0)
    tracer.span((0, 0, 1), "read", 100, 200)
    tracer.span((0, 0, 1), "send", 200, 300, nbytes=512)
    writer.write({"t": 1.0, "kind": "epoch_start"})  # a timeline event
    writer.close()
    lines = [json.loads(l) for l in (tmp_path / "spans.jsonl").read_text().splitlines()]
    assert len(lines) == 3
    assert lines[0] == {
        "trace": "0:0:1", "span": "read", "component": "daemon", "t0": 100, "t1": 200,
    }
    assert lines[1]["nbytes"] == 512
    assert writer.stats()["written"] == 3
    assert writer.stats()["dropped"] == 0


def test_writer_close_is_idempotent(tmp_path):
    writer = TraceWriter(tmp_path)
    writer.close()
    writer.close()


def _chain(trace="0:0:5", t0=0):
    recs = []
    t = t0
    for stage in SPAN_STAGES:
        recs.append({"trace": trace, "span": stage, "t0": t, "t1": t + 10})
        t += 10
    return recs


def test_validate_chain_accepts_complete_chain():
    assert trace_tool.validate_chain(_chain()) == []


def test_validate_chain_flags_missing_stage():
    recs = [r for r in _chain() if r["span"] != "decode"]
    problems = trace_tool.validate_chain(recs)
    assert any("decode" in p for p in problems)


def test_validate_chain_flags_orphan_and_inverted_span():
    recs = _chain()
    recs.append({"trace": "0:0:5", "span": "mystery", "t0": 0, "t1": 1})
    recs[0] = dict(recs[0], t0=100, t1=50)
    problems = trace_tool.validate_chain(recs)
    assert any("orphan" in p for p in problems)
    assert any("t1 < t0" in p for p in problems)


def test_validate_chain_flags_non_monotonic_starts():
    recs = _chain()
    # consume starting before preprocess is a broken clock, not overlap
    recs[-1] = dict(recs[-1], t0=recs[-2]["t0"] - 5)
    problems = trace_tool.validate_chain(recs)
    assert any("starts before" in p for p in problems)


def test_read_spans_skips_events_and_garbage(tmp_path):
    path = tmp_path / "spans.jsonl"
    path.write_text(
        json.dumps({"trace": "0:0:1", "span": "read", "t0": 0, "t1": 1}) + "\n"
        + json.dumps({"t": 1.0, "kind": "epoch_start"}) + "\n"
        + "{truncated\n"
    )
    spans = trace_tool.read_spans(tmp_path)
    assert len(spans) == 1 and spans[0]["span"] == "read"


def test_cli_summary_and_validate(tmp_path, capsys):
    writer = TraceWriter(tmp_path)
    tracer = Tracer(writer, "t", 1.0)
    for seq in range(3):
        t = seq * 1000
        for stage in SPAN_STAGES:
            tracer.span((0, 0, seq), stage, t, t + 100)
            t += 100
    writer.close()
    assert trace_tool.main(["--trace-dir", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "3 trace(s)" in out and "preprocess" in out
    assert trace_tool.main(["--trace-dir", str(tmp_path), "--validate"]) == 0
    assert "3/3 traces complete" in capsys.readouterr().out
    assert trace_tool.main(
        ["--trace-dir", str(tmp_path), "--epoch", "0", "--batch", "1"]
    ) == 0
    out = capsys.readouterr().out
    assert "trace 0:0:1" in out and "total" in out
    assert trace_tool.main(["--trace-dir", str(tmp_path), "--batch", "99"]) == 1
