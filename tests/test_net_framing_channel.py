"""Tests for framing and channels, including latency emulation."""

import socket
import sys
import threading
import time

import pytest

from repro.net.channel import Channel, Listener, connect_channel
from repro.net.emulation import NetworkProfile
from repro.net.framing import (
    ConnectionClosed,
    recv_frame,
    recv_frame_into,
    send_frame,
    send_frame_parts,
)


def socket_pair():
    a, b = socket.socketpair()
    return a, b


def test_frame_roundtrip():
    a, b = socket_pair()
    send_frame(a, b"hello world")
    assert recv_frame(b) == b"hello world"
    a.close(), b.close()


def test_empty_frame():
    a, b = socket_pair()
    send_frame(a, b"")
    assert recv_frame(b) == b""
    a.close(), b.close()


def test_multiple_frames_in_order():
    a, b = socket_pair()
    frames = [f"frame-{i}".encode() for i in range(10)]
    for f in frames:
        send_frame(a, f)
    assert [recv_frame(b) for _ in range(10)] == frames
    a.close(), b.close()


def test_large_frame():
    a, b = socket_pair()
    payload = bytes(range(256)) * 4096  # 1 MiB
    t = threading.Thread(target=send_frame, args=(a, payload))
    t.start()
    assert recv_frame(b) == payload
    t.join()
    a.close(), b.close()


# -- scatter-gather framing (the zero-copy wire format) ------------------------


def test_send_frame_parts_multi_segment_roundtrip():
    a, b = socket_pair()
    n = send_frame_parts(a, [b"head", bytearray(b"-mid-"), memoryview(b"tail")])
    assert n == 13
    assert recv_frame(b) == b"head-mid-tail"
    a.close(), b.close()


def test_send_frame_parts_more_segments_than_iov_batch():
    a, b = socket_pair()
    parts = [bytes([i % 256]) * 3 for i in range(200)]  # > _IOV_BATCH entries
    t = threading.Thread(target=send_frame_parts, args=(a, parts))
    t.start()
    assert recv_frame(b) == b"".join(parts)
    t.join()
    a.close(), b.close()


def test_send_frame_parts_skips_empty_segments():
    a, b = socket_pair()
    send_frame_parts(a, [b"", b"x", b"", b"y", b""])
    assert recv_frame(b) == b"xy"
    a.close(), b.close()


def test_send_frame_parts_large_payload_partial_sends():
    a, b = socket_pair()
    parts = [bytes(range(256)) * 2048] * 2  # 1 MiB total: forces partial sends
    t = threading.Thread(target=send_frame_parts, args=(a, parts))
    t.start()
    assert recv_frame(b) == b"".join(parts)
    t.join()
    a.close(), b.close()


def test_recv_frame_into_reuses_and_grows_buffer():
    a, b = socket_pair()
    buf = bytearray()
    send_frame(a, b"abc")
    assert bytes(recv_frame_into(b, buf)) == b"abc"
    capacity = len(buf)
    assert capacity >= 3
    send_frame(a, b"xy")
    assert bytes(recv_frame_into(b, buf)) == b"xy"
    assert len(buf) == capacity  # smaller frame: no shrink, no realloc
    big = b"z" * (capacity + 100)
    t = threading.Thread(target=send_frame, args=(a, big))
    t.start()
    assert bytes(recv_frame_into(b, buf)) == big
    t.join()
    assert len(buf) >= len(big)  # grew in place
    a.close(), b.close()


def test_recv_frame_into_empty_frame():
    a, b = socket_pair()
    send_frame(a, b"")
    assert bytes(recv_frame_into(b, bytearray())) == b""
    a.close(), b.close()


def test_channel_send_parts_and_recv_into():
    a, b = socket_pair()
    ca, cb = Channel(a), Channel(b)
    ca.send_parts([b"ab", b"cd", b"ef"])
    buf = bytearray(64)
    view = cb.recv_into(buf)
    assert bytes(view) == b"abcdef"
    assert ca.bytes_sent == 6 and cb.bytes_received == 6
    ca.close(), cb.close()


def test_channel_send_parts_shaped_path_joins():
    profile = NetworkProfile("t", rtt_s=0.005)
    with Listener() as listener:
        got = {}

        def server():
            chan = listener.accept(timeout=5)
            got["msg"] = chan.recv()
            chan.close()

        t = threading.Thread(target=server)
        t.start()
        client = connect_channel("127.0.0.1", listener.port, profile=profile)
        client.send_parts([b"sha", b"ped"])
        t.join(timeout=5)
        assert got["msg"] == b"shaped"
        client.close()


def test_concurrent_senders_byte_accounting_is_exact(monkeypatch):
    """``bytes_sent`` updates are serialized under the accounting lock, so
    the total is exact no matter how many threads share the channel (an
    unlocked read-modify-write may drop increments; CPython's bytecode-level
    atomicity is an implementation detail, not a contract).

    The wire write is stubbed out so the counter update dominates each send
    and thread switches are forced every microsecond."""
    import repro.net.channel as channel_module

    for name in ("send_frame", "send_frame_parts"):
        if hasattr(channel_module, name):
            monkeypatch.setattr(channel_module, name, lambda *a, **k: None)
    a, b = socket_pair()
    chan = Channel(a)
    nthreads, per_thread, size = 8, 5000, 32
    payload = b"x" * size

    def sender():
        for _ in range(per_thread):
            chan.send(payload)

    old = sys.getswitchinterval()
    sys.setswitchinterval(1e-6)  # hammer the increment window
    try:
        threads = [threading.Thread(target=sender) for _ in range(nthreads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    finally:
        sys.setswitchinterval(old)
    assert chan.bytes_sent == nthreads * per_thread * size
    chan.close()
    b.close()


def test_clean_eof_raises_connection_closed():
    a, b = socket_pair()
    a.close()
    with pytest.raises(ConnectionClosed):
        recv_frame(b)
    b.close()


def test_oversized_incoming_frame_rejected():
    import struct

    from repro.net.framing import MAX_FRAME

    a, b = socket_pair()
    a.sendall(struct.pack(">I", MAX_FRAME + 1))  # corrupted length prefix
    with pytest.raises(ValueError, match="exceeds MAX_FRAME"):
        recv_frame(b)
    a.close(), b.close()


def test_channel_roundtrip_unshaped():
    with Listener() as listener:
        results = {}

        def server():
            chan = listener.accept(timeout=5)
            results["got"] = chan.recv()
            chan.send(b"pong")
            chan.close()

        t = threading.Thread(target=server)
        t.start()
        client = connect_channel("127.0.0.1", listener.port)
        client.send(b"ping")
        assert client.recv() == b"pong"
        t.join()
        assert results["got"] == b"ping"
        assert client.bytes_sent == 4 and client.bytes_received == 4
        client.close()


@pytest.mark.parametrize("rtt_ms", [20.0, 60.0])
def test_emulated_rtt_on_request_response(rtt_ms):
    profile = NetworkProfile("test", rtt_s=rtt_ms / 1000.0)
    with Listener(profile=profile) as listener:

        def server():
            chan = listener.accept(timeout=5)
            while True:
                try:
                    msg = chan.recv()
                except (ConnectionError, OSError):
                    return
                chan.send(msg)

        t = threading.Thread(target=server, daemon=True)
        t.start()
        client = connect_channel("127.0.0.1", listener.port, profile=profile)
        client.send(b"warmup")
        client.recv()
        start = time.monotonic()
        rounds = 3
        for _ in range(rounds):
            client.send(b"x")
            client.recv()
        elapsed = time.monotonic() - start
        expected = rounds * rtt_ms / 1000.0
        assert elapsed >= expected * 0.9
        assert elapsed < expected * 3.0 + 0.2
        client.close()


def test_emulated_latency_does_not_serialize_pipelined_sends():
    """10 pipelined messages over a 50 ms one-way link must take ~1 RTT,
    not 10 RTTs — the netem property EMLIO's prefetching exploits."""
    profile = NetworkProfile("test", rtt_s=0.1)
    with Listener() as listener:  # server replies unshaped
        received = []
        done = threading.Event()

        def server():
            chan = listener.accept(timeout=5)
            for _ in range(10):
                received.append(chan.recv())
            done.set()

        t = threading.Thread(target=server, daemon=True)
        t.start()
        client = connect_channel("127.0.0.1", listener.port, profile=profile)
        start = time.monotonic()
        for i in range(10):
            client.send(f"msg{i}".encode())
        assert done.wait(timeout=5)
        elapsed = time.monotonic() - start
        # one-way 50 ms: all 10 messages should land well within 3x one-way.
        assert elapsed < 0.15
        assert received == [f"msg{i}".encode() for i in range(10)]
        client.close()


def test_bandwidth_shaping_slows_bulk_transfer():
    # 1 MiB over a 4 MiB/s emulated link: >= ~0.2 s (allowing burst capacity).
    profile = NetworkProfile("slow", rtt_s=0.0, bandwidth_bps=4 * 1024 * 1024)
    with Listener() as listener:
        got = []
        done = threading.Event()

        def server():
            chan = listener.accept(timeout=5)
            got.append(chan.recv())
            done.set()

        threading.Thread(target=server, daemon=True).start()
        client = connect_channel("127.0.0.1", listener.port, profile=profile)
        payload = b"z" * (1024 * 1024)
        start = time.monotonic()
        client.send(payload)
        assert done.wait(timeout=10)
        elapsed = time.monotonic() - start
        assert elapsed >= 0.15
        assert got[0] == payload
        client.close()


def test_profile_validation():
    with pytest.raises(ValueError):
        NetworkProfile("bad", rtt_s=-1.0)
    with pytest.raises(ValueError):
        NetworkProfile("bad", rtt_s=0.0, bandwidth_bps=0.0)


def test_profile_transfer_time():
    p = NetworkProfile("x", rtt_s=0.01, bandwidth_bps=1000.0)
    assert p.transfer_time(500) == pytest.approx(0.5)
    assert p.one_way_s == pytest.approx(0.005)
    assert NetworkProfile("y", rtt_s=0.0).transfer_time(10**9) == 0.0


def test_send_on_closed_channel_raises():
    a, _b = socket_pair()
    chan = Channel(a)
    chan.close()
    with pytest.raises(ConnectionError):
        chan.send(b"x")
