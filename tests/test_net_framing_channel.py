"""Tests for framing and channels, including latency emulation."""

import socket
import threading
import time

import pytest

from repro.net.channel import Channel, Listener, connect_channel
from repro.net.emulation import NetworkProfile
from repro.net.framing import ConnectionClosed, recv_frame, send_frame


def socket_pair():
    a, b = socket.socketpair()
    return a, b


def test_frame_roundtrip():
    a, b = socket_pair()
    send_frame(a, b"hello world")
    assert recv_frame(b) == b"hello world"
    a.close(), b.close()


def test_empty_frame():
    a, b = socket_pair()
    send_frame(a, b"")
    assert recv_frame(b) == b""
    a.close(), b.close()


def test_multiple_frames_in_order():
    a, b = socket_pair()
    frames = [f"frame-{i}".encode() for i in range(10)]
    for f in frames:
        send_frame(a, f)
    assert [recv_frame(b) for _ in range(10)] == frames
    a.close(), b.close()


def test_large_frame():
    a, b = socket_pair()
    payload = bytes(range(256)) * 4096  # 1 MiB
    t = threading.Thread(target=send_frame, args=(a, payload))
    t.start()
    assert recv_frame(b) == payload
    t.join()
    a.close(), b.close()


def test_clean_eof_raises_connection_closed():
    a, b = socket_pair()
    a.close()
    with pytest.raises(ConnectionClosed):
        recv_frame(b)
    b.close()


def test_oversized_incoming_frame_rejected():
    import struct

    from repro.net.framing import MAX_FRAME

    a, b = socket_pair()
    a.sendall(struct.pack(">I", MAX_FRAME + 1))  # corrupted length prefix
    with pytest.raises(ValueError, match="exceeds MAX_FRAME"):
        recv_frame(b)
    a.close(), b.close()


def test_channel_roundtrip_unshaped():
    with Listener() as listener:
        results = {}

        def server():
            chan = listener.accept(timeout=5)
            results["got"] = chan.recv()
            chan.send(b"pong")
            chan.close()

        t = threading.Thread(target=server)
        t.start()
        client = connect_channel("127.0.0.1", listener.port)
        client.send(b"ping")
        assert client.recv() == b"pong"
        t.join()
        assert results["got"] == b"ping"
        assert client.bytes_sent == 4 and client.bytes_received == 4
        client.close()


@pytest.mark.parametrize("rtt_ms", [20.0, 60.0])
def test_emulated_rtt_on_request_response(rtt_ms):
    profile = NetworkProfile("test", rtt_s=rtt_ms / 1000.0)
    with Listener(profile=profile) as listener:

        def server():
            chan = listener.accept(timeout=5)
            while True:
                try:
                    msg = chan.recv()
                except (ConnectionError, OSError):
                    return
                chan.send(msg)

        t = threading.Thread(target=server, daemon=True)
        t.start()
        client = connect_channel("127.0.0.1", listener.port, profile=profile)
        client.send(b"warmup")
        client.recv()
        start = time.monotonic()
        rounds = 3
        for _ in range(rounds):
            client.send(b"x")
            client.recv()
        elapsed = time.monotonic() - start
        expected = rounds * rtt_ms / 1000.0
        assert elapsed >= expected * 0.9
        assert elapsed < expected * 3.0 + 0.2
        client.close()


def test_emulated_latency_does_not_serialize_pipelined_sends():
    """10 pipelined messages over a 50 ms one-way link must take ~1 RTT,
    not 10 RTTs — the netem property EMLIO's prefetching exploits."""
    profile = NetworkProfile("test", rtt_s=0.1)
    with Listener() as listener:  # server replies unshaped
        received = []
        done = threading.Event()

        def server():
            chan = listener.accept(timeout=5)
            for _ in range(10):
                received.append(chan.recv())
            done.set()

        t = threading.Thread(target=server, daemon=True)
        t.start()
        client = connect_channel("127.0.0.1", listener.port, profile=profile)
        start = time.monotonic()
        for i in range(10):
            client.send(f"msg{i}".encode())
        assert done.wait(timeout=5)
        elapsed = time.monotonic() - start
        # one-way 50 ms: all 10 messages should land well within 3x one-way.
        assert elapsed < 0.15
        assert received == [f"msg{i}".encode() for i in range(10)]
        client.close()


def test_bandwidth_shaping_slows_bulk_transfer():
    # 1 MiB over a 4 MiB/s emulated link: >= ~0.2 s (allowing burst capacity).
    profile = NetworkProfile("slow", rtt_s=0.0, bandwidth_bps=4 * 1024 * 1024)
    with Listener() as listener:
        got = []
        done = threading.Event()

        def server():
            chan = listener.accept(timeout=5)
            got.append(chan.recv())
            done.set()

        threading.Thread(target=server, daemon=True).start()
        client = connect_channel("127.0.0.1", listener.port, profile=profile)
        payload = b"z" * (1024 * 1024)
        start = time.monotonic()
        client.send(payload)
        assert done.wait(timeout=10)
        elapsed = time.monotonic() - start
        assert elapsed >= 0.15
        assert got[0] == payload
        client.close()


def test_profile_validation():
    with pytest.raises(ValueError):
        NetworkProfile("bad", rtt_s=-1.0)
    with pytest.raises(ValueError):
        NetworkProfile("bad", rtt_s=0.0, bandwidth_bps=0.0)


def test_profile_transfer_time():
    p = NetworkProfile("x", rtt_s=0.01, bandwidth_bps=1000.0)
    assert p.transfer_time(500) == pytest.approx(0.5)
    assert p.one_way_s == pytest.approx(0.005)
    assert NetworkProfile("y", rtt_s=0.0).transfer_time(10**9) == 0.0


def test_send_on_closed_channel_raises():
    a, _b = socket_pair()
    chan = Channel(a)
    chan.close()
    with pytest.raises(ConnectionError):
        chan.send(b"x")
