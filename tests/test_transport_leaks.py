"""Leak audit: a mid-stream close releases every transport buffer/lease.

The zero-copy receive paths hand out leases — pooled buffers on TCP,
ring-frame leases on shm.  An abrupt close (receiver kill, epoch abort)
with frames still queued, in flight, or held by the consumer must return
every one of them: stranded pool capacity or ring bytes is a slow leak
that only shows up hours into a run.
"""

import time
from multiprocessing import shared_memory

import pytest

from repro.net.buffers import BufferPool
from repro.net.mq import PullSocket, PushSocket
from repro.net.shm import MIN_RING_BYTES, ShmPushSocket, ShmRing


def _wait_until(predicate, timeout=10.0):
    deadline = time.monotonic() + timeout
    while not predicate() and time.monotonic() < deadline:
        time.sleep(0.01)
    return predicate()


def test_pooled_pull_midstream_close_returns_every_buffer():
    """Close with frames queued and a frame held live: every pooled buffer
    ever allocated ends up back on the free list."""
    pool = BufferPool(max_buffers=64)
    pull = PullSocket(hwm=8, pooled=True, pool=pool)
    push = PushSocket([("127.0.0.1", pull.port)], hwm=8)
    try:
        for i in range(8):
            push.send(bytes([i]) * 1024)
        assert _wait_until(lambda: pull.pending == 8)
        held = pull.recv_frame(timeout=5)  # a consumer mid-decode
        assert bytes(held.data) == bytes([0]) * 1024
        pull.close()  # 7 queued frames dropped, their buffers released
        held.release()  # the late release still lands, idempotently
        held.release()
        # The read loops release their in-flight acquires as the channels
        # die; once everything settles, allocations == free buffers.
        assert _wait_until(lambda: pool.free == pool.misses)
        assert pool.misses <= 64
    finally:
        push.close(timeout=5)
        pull.close()


def test_shm_midstream_close_releases_ring_and_unlinks_segment():
    """Kill the consumer side with frames queued and one lease held: the
    producer's close() is not blocked, the held lease release is a safe
    no-op, and the segment is unlinked from the system."""
    pull = PullSocket(hwm=8, pooled=True)
    push = ShmPushSocket("127.0.0.1", pull.port, hwm=8)
    name = push._ring.name
    try:
        for i in range(6):
            push.send(bytes([i + 1]) * 2048)
        assert _wait_until(lambda: pull.pending == 6)
        held = pull.recv_frame(timeout=5)  # lease on ring bytes, live view
        pull.close()  # queued leases dropped and released
        # The producer's drain must not wait for frames a dead consumer
        # will never release.
        t0 = time.monotonic()
        push.close(timeout=30)
        assert time.monotonic() - t0 < 10
        held.release()  # after both sides closed: idempotent no-op
        held.release()
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)  # unlinked, not leaked
    finally:
        push.close(timeout=1)
        pull.close()


def test_repeated_connect_kill_cycles_do_not_exhaust_pool_or_segments():
    """Ten connect → burst → abrupt-kill cycles (TCP and shm alternating)
    against one long-lived pull socket: the buffer pool settles back to
    all-free each cycle and no shm segment outlives its producer."""
    pool = BufferPool(max_buffers=32)
    pull = PullSocket(hwm=8, pooled=True, pool=pool)
    names = []
    try:
        for cycle in range(10):
            if cycle % 2:
                push = ShmPushSocket("127.0.0.1", pull.port, hwm=8)
                names.append(push._ring.name)
            else:
                push = PushSocket([("127.0.0.1", pull.port)], hwm=8)
            for _ in range(4):
                push.send(b"c" * 4096)
            pull.recv(timeout=10)  # consume one while the peer is live
            push.drop_connection(0) if cycle % 3 == 0 else push.close(timeout=5)
            push.close(timeout=1)
            # Frames already delivered stay deliverable after the peer
            # dies; drain them (recv releases internally) and require the
            # pool to settle back to all-free before the next cycle.
            deadline = time.monotonic() + 15
            while pool.free != pool.misses and time.monotonic() < deadline:
                if pull.try_recv() is None:
                    time.sleep(0.01)
            assert pool.free == pool.misses, f"cycle {cycle} leaked leases"
        assert _wait_until(lambda: pull.num_rings == 0)
        assert _wait_until(lambda: pull.num_channels == 0)
        assert pool.misses <= 32
        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)
    finally:
        pull.close()


def test_ring_consumer_close_clears_outstanding_leases():
    prod = ShmRing.create(MIN_RING_BYTES)
    cons = ShmRing.attach(prod.name, MIN_RING_BYTES)
    try:
        for i in range(4):
            assert prod.try_write((bytes([i]) * 256,), 256, hwm=8)
        leases = [cons.try_read()[1] for _ in range(3)]
        cons.close()
        assert not cons._outstanding  # nothing parked past the close
        for lease in leases:
            assert lease.released  # close marked them returned
            lease.release()  # and a late explicit release is harmless
    finally:
        cons.close()
        prod.close()


def test_pull_close_releases_queued_shm_leases_to_producer():
    """Frames sitting in the shared queue at close time are ring leases;
    close must drop them so the producer's drain accounting terminates."""
    pull = PullSocket(hwm=8, pooled=True)
    push = ShmPushSocket("127.0.0.1", pull.port, hwm=8)
    try:
        for _ in range(5):
            push.send(b"q" * 512)
        assert _wait_until(lambda: pull.pending == 5)
        pull.close()
        # All five frames were consumed off the ring by the drain loop and
        # their leases released by close — the producer sees no backlog.
        assert _wait_until(
            lambda: push._ring.closed or not push._ring.consumer_alive
        )
        push.close(timeout=10)
    finally:
        push.close(timeout=1)
        pull.close()
