"""Control-plane tests: heartbeat channel, ClusterView, receiver re-planning.

Fast unit tests drive the :class:`ClusterView` state machine with a fake
clock (crash, hang, partition-and-return, incarnation supersession) and the
heartbeat publisher/listener pair over real loopback TCP.  Hypothesis
properties pin the receiver-failover re-planner's invariants: no batch
lost, no batch double-owned, fresh sequence numbers that can never collide
with anything a survivor has already seen.
"""

import queue
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import AUTO_REORDER, EMLIOConfig
from repro.core.membership import (
    ClusterView,
    MemberStatus,
    MembershipConfig,
    MembershipEvent,
)
from repro.core.planner import BatchAssignment, BatchPlan
from repro.core.recovery import (
    DeliveryLedger,
    FailoverCoordinator,
    FailoverError,
    RecoveryConfig,
)
from repro.core.service import EMLIOService
from repro.net.channel import connect_channel
from repro.net.heartbeat import (
    Heartbeat,
    HeartbeatListener,
    HeartbeatPublisher,
    decode_heartbeat,
    encode_heartbeat,
)

FAST = MembershipConfig(interval_s=0.02, miss_threshold=2, dead_threshold=4,
                        hung_after_s=0.0)


# -- heartbeat codec -----------------------------------------------------------


def test_heartbeat_roundtrip():
    hb = Heartbeat(member_id="daemon:0@/data", role="daemon", incarnation=3,
                   seq=17, progress=42, state="serving", detail="")
    assert decode_heartbeat(encode_heartbeat(hb)) == hb


def test_heartbeat_stage_timing_roundtrip_and_back_compat():
    """Per-stage pipeline costs ride the beat; old beats without the
    fields decode as zeros (mixed-version clusters keep talking)."""
    hb = Heartbeat(member_id="receiver:1", role="receiver", incarnation=0,
                   seq=5, progress=9, state="serving",
                   decode_ns=120_000, preprocess_ns=3_400_000, starved_ns=80_000)
    assert decode_heartbeat(encode_heartbeat(hb)) == hb

    import json

    wire = json.loads(encode_heartbeat(hb).decode())
    for key in ("dns", "pns", "sns"):
        wire.pop(key)
    decoded = decode_heartbeat(json.dumps(wire).encode())
    assert (decoded.decode_ns, decoded.preprocess_ns, decoded.starved_ns) == (0, 0, 0)


def test_heartbeat_rejects_bad_state_and_junk():
    with pytest.raises(ValueError, match="invalid heartbeat state"):
        Heartbeat(member_id="x", role="daemon", state="zombie")
    with pytest.raises(ValueError, match="malformed"):
        decode_heartbeat(b"not json at all")
    with pytest.raises(ValueError, match="malformed"):
        decode_heartbeat(b'{"role": "daemon"}')  # missing id


def test_heartbeat_unknown_fields_are_counted_not_silent():
    """Forward-compat beats decode, but the extra fields are surfaced —
    once to the log, always to the ``on_unknown`` callback (which feeds
    the registry's ``emlio_heartbeat_unknown_fields_total``)."""
    import json

    hb = Heartbeat(member_id="daemon:0", role="daemon")
    wire = json.loads(encode_heartbeat(hb).decode())
    wire["future_field"] = 1
    wire["other_new"] = "x"
    seen: list[frozenset] = []
    decoded = decode_heartbeat(
        json.dumps(wire).encode(), on_unknown=seen.append
    )
    assert decoded.member_id == "daemon:0"  # still decodes
    assert seen == [frozenset({"future_field", "other_new"})]
    # Without the callback nothing breaks either.
    assert decode_heartbeat(json.dumps(wire).encode()) == decoded


def test_heartbeat_listener_counts_unknown_fields():
    import json

    got = queue.Queue()
    listener = HeartbeatListener(got.put)
    try:
        hb = Heartbeat(member_id="daemon:0", role="daemon")
        wire = json.loads(encode_heartbeat(hb).decode())
        wire["future_field"] = 1
        chan = connect_channel("127.0.0.1", listener.port)
        try:
            chan.send(json.dumps(wire).encode())
            chan.send(json.dumps(wire).encode())
            chan.send(encode_heartbeat(hb))
            for _ in range(3):
                assert got.get(timeout=5).member_id == "daemon:0"
        finally:
            chan.close()
        assert listener.unknown_fields == 2
        assert listener.malformed == 0
    finally:
        listener.close()


def test_membership_config_validation():
    with pytest.raises(ValueError):
        MembershipConfig(interval_s=0)
    with pytest.raises(ValueError):
        MembershipConfig(miss_threshold=0)
    with pytest.raises(ValueError):
        MembershipConfig(miss_threshold=3, dead_threshold=3)
    with pytest.raises(ValueError):
        MembershipConfig(hung_after_s=-1)


# -- ClusterView state machine (fake clock) ------------------------------------


def _beat(member="daemon:0", role="daemon", inc=0, progress=0, state="serving"):
    return Heartbeat(member_id=member, role=role, incarnation=inc,
                     progress=progress, state=state)


def _view(hung_after=0.0):
    t = [0.0]
    cfg = MembershipConfig(interval_s=1.0, miss_threshold=2, dead_threshold=4,
                           hung_after_s=hung_after)
    events: list[MembershipEvent] = []
    view = ClusterView(cfg, on_event=events.append, clock=lambda: t[0])
    return view, t, events


def _kinds(events):
    return [(e.kind, e.member_id) for e in events]


def test_view_join_then_miss_then_dead():
    view, t, events = _view()
    view.observe(_beat())
    assert _kinds(events) == [("joined", "daemon:0")]
    t[0] = 1.5
    assert view.poll() == []  # within the miss budget
    t[0] = 2.5  # > miss_threshold * interval
    view.poll()
    assert view.status_of("daemon:0") is MemberStatus.SUSPECT
    t[0] = 4.5  # > dead_threshold * interval
    view.poll()
    assert view.status_of("daemon:0") is MemberStatus.DEAD
    assert [k for k, _ in _kinds(events)] == ["joined", "suspect", "dead"]
    assert "missed heartbeats" in events[-1].reason


def test_view_suspect_recovers_on_resumed_beats():
    view, t, events = _view()
    view.observe(_beat(progress=1))
    t[0] = 2.5
    view.poll()
    assert view.status_of("daemon:0") is MemberStatus.SUSPECT
    view.observe(_beat(progress=2))  # the partition heals in time
    assert view.status_of("daemon:0") is MemberStatus.ALIVE
    assert _kinds(events)[-1] == ("recovered", "daemon:0")


def test_view_dead_member_returning_surfaces_recovery():
    view, t, events = _view()
    view.observe(_beat())
    t[0] = 10.0
    view.poll()
    assert view.status_of("daemon:0") is MemberStatus.DEAD
    view.observe(_beat())  # zombie beats return, same incarnation
    assert view.status_of("daemon:0") is MemberStatus.ALIVE
    assert events[-1].kind == "recovered"
    assert "returned from dead" in events[-1].reason


def test_view_hung_member_detected_while_still_beating():
    view, t, events = _view(hung_after=3.0)
    view.observe(_beat(progress=5))
    for i in range(1, 6):  # keeps beating every interval, progress frozen
        t[0] = float(i)
        view.observe(_beat(progress=5))
        view.poll()
    assert view.status_of("daemon:0") is MemberStatus.DEAD
    dead = [e for e in events if e.kind == "dead"]
    assert len(dead) == 1 and "hung" in dead[0].reason


def test_view_progress_resets_hung_timer():
    view, t, events = _view(hung_after=3.0)
    view.observe(_beat(progress=0))
    for i in range(1, 8):  # progress advances every beat: never hung
        t[0] = float(i)
        view.observe(_beat(progress=i))
        view.poll()
    assert view.status_of("daemon:0") is MemberStatus.ALIVE
    assert not [e for e in events if e.kind == "dead"]


def test_view_idle_member_is_never_hung():
    view, t, events = _view(hung_after=3.0)
    view.observe(_beat(state="idle"))
    for i in range(1, 8):
        t[0] = float(i)
        view.observe(_beat(state="idle"))
        view.poll()
    assert view.status_of("daemon:0") is MemberStatus.ALIVE


def test_view_explicit_failure_and_clean_leave():
    view, _t, events = _view()
    view.observe(_beat(member="a"))
    view.observe(_beat(member="b"))
    view.observe(_beat(member="a", state="failed"))
    view.observe(_beat(member="b", state="leaving"))
    assert view.status_of("a") is MemberStatus.DEAD
    assert view.status_of("b") is MemberStatus.LEFT
    kinds = _kinds(events)
    assert ("dead", "a") in kinds and ("left", "b") in kinds
    # LEFT/DEAD members never re-trigger from the timeout sweep.
    assert view.poll() == []


def test_view_incarnation_supersedes_and_ignores_stale():
    view, _t, events = _view()
    view.observe(_beat(inc=1, progress=9))
    assert view.observe(_beat(inc=0)) == []  # stale previous life
    view.observe(_beat(inc=2))  # restart: a fresh join
    assert [k for k, _ in _kinds(events)] == ["joined", "joined"]
    assert view.members()["daemon:0"].incarnation == 2


def test_view_report_failed_fast_path():
    view, _t, events = _view()
    view.observe(_beat())
    view.report_failed("daemon:0", reason="thread reaped")
    assert view.status_of("daemon:0") is MemberStatus.DEAD
    assert events[-1].reason == "thread reaped"


def test_view_alive_filters_by_role_and_snapshot_is_jsonable():
    import json

    view, _t, _events = _view()
    view.observe(_beat(member="daemon:0", role="daemon"))
    view.observe(_beat(member="receiver:0", role="receiver"))
    assert view.alive() == ["daemon:0", "receiver:0"]
    assert view.alive(role="receiver") == ["receiver:0"]
    snap = json.loads(json.dumps(view.snapshot()))
    assert {m["member_id"] for m in snap["members"]} == {"daemon:0", "receiver:0"}


# -- publisher/listener over real TCP ------------------------------------------


def _wait_until(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.005)
    return False


def test_heartbeat_loss_and_recovery_over_tcp():
    """A suspended publisher (emulated partition) turns SUSPECT then DEAD;
    resuming beats surfaces a recovery event."""
    events: "queue.Queue[MembershipEvent]" = queue.Queue()
    view = ClusterView(FAST, on_event=events.put)
    listener = HeartbeatListener(view.observe)
    pub = HeartbeatPublisher("daemon:0", "daemon", listener.address,
                             interval_s=FAST.interval_s).start()
    try:
        assert _wait_until(lambda: view.status_of("daemon:0") is MemberStatus.ALIVE)
        pub.suspend()
        assert _wait_until(
            lambda: view.poll() is not None
            and view.status_of("daemon:0") is MemberStatus.DEAD
        )
        pub.resume()
        assert _wait_until(lambda: view.status_of("daemon:0") is MemberStatus.ALIVE)
        kinds = []
        while not events.empty():
            kinds.append(events.get().kind)
        assert kinds[0] == "joined" and "dead" in kinds and kinds[-1] == "recovered"
    finally:
        pub.kill()
        listener.close()


def test_heartbeat_fail_fast_path_and_clean_stop():
    events: "queue.Queue[MembershipEvent]" = queue.Queue()
    view = ClusterView(FAST, on_event=events.put)
    listener = HeartbeatListener(view.observe)
    try:
        a = HeartbeatPublisher("a", "daemon", listener.address,
                               interval_s=FAST.interval_s).start()
        b = HeartbeatPublisher("b", "daemon", listener.address,
                               interval_s=FAST.interval_s).start()
        assert _wait_until(lambda: len(view.alive()) == 2)
        a.fail("disk on fire")
        b.stop()
        assert _wait_until(lambda: view.status_of("a") is MemberStatus.DEAD)
        assert _wait_until(lambda: view.status_of("b") is MemberStatus.LEFT)
        dead = [e for e in _drain(events) if e.kind == "dead"]
        assert dead and "disk on fire" in dead[0].reason
    finally:
        listener.close()


def _drain(q):
    out = []
    while not q.empty():
        out.append(q.get())
    return out


def test_listener_survives_malformed_frames():
    view = ClusterView(FAST)
    listener = HeartbeatListener(view.observe)
    chan = connect_channel(*listener.address)
    try:
        chan.send(b"\xff\xfe garbage")
        chan.send(encode_heartbeat(_beat(member="ok")))
        assert _wait_until(lambda: view.status_of("ok") is not None)
        assert listener.malformed == 1
    finally:
        chan.close()
        listener.close()


def test_publisher_reconnects_after_listener_restart():
    """Beats resume on a fresh listener at the same port after an outage."""
    view = ClusterView(FAST)
    listener = HeartbeatListener(view.observe)
    port = listener.port
    pub = HeartbeatPublisher("daemon:0", "daemon", ("127.0.0.1", port),
                             interval_s=FAST.interval_s).start()
    try:
        assert _wait_until(lambda: view.status_of("daemon:0") is MemberStatus.ALIVE)
        listener.close()
        time.sleep(5 * FAST.interval_s)  # outage: sends fail, publisher retries
        view2 = ClusterView(FAST)
        listener = HeartbeatListener(view2.observe, port=port)
        assert _wait_until(lambda: view2.status_of("daemon:0") is MemberStatus.ALIVE)
    finally:
        pub.kill()
        listener.close()


# -- reorder-window autotuning -------------------------------------------------


def test_auto_reorder_window_derives_from_streams_and_hwm():
    cfg = EMLIOConfig(reorder_window=AUTO_REORDER, streams_per_node=3, hwm=8)
    assert cfg.effective_reorder_window == 24
    assert EMLIOConfig(reorder_window=7).effective_reorder_window == 7
    assert EMLIOConfig().effective_reorder_window == 0  # default: passthrough
    with pytest.raises(ValueError, match="reorder_window"):
        EMLIOConfig(reorder_window=-2)
    with pytest.raises(ValueError, match="reorder_window"):
        RecoveryConfig(reorder_window=-2)


def test_receiver_resolves_auto_reorder_window(small_imagenet, tmp_path):
    cfg = EMLIOConfig(batch_size=4, output_hw=(16, 16),
                      reorder_window=AUTO_REORDER, streams_per_node=2, hwm=16)
    with EMLIOService(cfg, small_imagenet, stall_timeout=5.0) as svc:
        assert svc.receiver.reorder_window == 32
    # RecoveryConfig can also request auto explicitly, overriding the config.
    plain = EMLIOConfig(batch_size=4, output_hw=(16, 16), streams_per_node=2, hwm=4)
    with EMLIOService(
        plain, small_imagenet, stall_timeout=5.0,
        recovery=RecoveryConfig(ledger_path=tmp_path / "l.txt",
                                reorder_window=AUTO_REORDER),
    ) as svc:
        assert svc.receiver.reorder_window == 8


# -- service-level membership wiring (fast) ------------------------------------


def test_service_registers_members_and_daemons_leave_cleanly(small_imagenet, tmp_path):
    cfg = EMLIOConfig(batch_size=4, output_hw=(16, 16))
    recovery = RecoveryConfig(
        ledger_path=tmp_path / "ledger.txt",
        membership=MembershipConfig(interval_s=0.02, miss_threshold=2,
                                    dead_threshold=50, hung_after_s=0.0),
    )
    with EMLIOService(cfg, small_imagenet, stall_timeout=30.0, recovery=recovery) as svc:
        assert _wait_until(lambda: view_has(svc, "receiver:0"))
        for _ in svc.epoch(0):
            pass

        def daemons_left():
            daemons = [m for m in svc.view.members().values() if m.role == "daemon"]
            return daemons and all(m.status is MemberStatus.LEFT for m in daemons)

        # The 'leaving' beat is folded in by a listener thread: wait for it.
        assert _wait_until(daemons_left)
        assert svc.view.members()["receiver:0"].status is MemberStatus.ALIVE
        status = svc.cluster_status()
        assert status["failovers"] == 0 and status["dead_nodes"] == []


def view_has(svc, member_id):
    return svc.view is not None and svc.view.status_of(member_id) is not None


# -- receiver-failover re-planning properties ----------------------------------


def _mk_assignment(epoch, node, index, shard):
    return BatchAssignment(
        epoch=epoch, node_id=node, batch_index=index, shard=shard,
        shard_path=f"{shard}.tfrecord", start_record=0, offset=0,
        nbytes=64, count=1, labels=(0,),
    )


@st.composite
def _plans(draw):
    num_nodes = draw(st.integers(min_value=2, max_value=4))
    shards = [f"s{i}" for i in range(draw(st.integers(min_value=1, max_value=3)))]
    assignments = []
    for node in range(num_nodes):
        for index in range(draw(st.integers(min_value=0, max_value=6))):
            shard = draw(st.sampled_from(shards))
            assignments.append(_mk_assignment(0, node, index, shard))
    plan = BatchPlan(assignments=tuple(assignments), num_nodes=num_nodes,
                     epochs=1, batch_size=1, coverage="partition")
    dead = draw(st.integers(min_value=0, max_value=num_nodes - 1))
    delivered = draw(st.sets(st.sampled_from(
        [(a.epoch, a.node_id, a.batch_index) for a in assignments]
    ))) if assignments else set()
    return plan, dead, delivered


@given(_plans())
@settings(max_examples=60, deadline=None)
def test_receiver_failover_replan_properties(case):
    """No batch lost, no batch double-owned, fresh non-colliding seqs."""
    plan, dead, delivered = case
    ledger = DeliveryLedger(None)
    for key in delivered:
        ledger.record(*key)
    coord = FailoverCoordinator(
        plan, ledger, {"rootA": None, "rootB": None},
        reachable=lambda root, path: True,
    )
    survivors = [n for n in range(plan.num_nodes) if n != dead]
    next_seq = {
        n: max((a.batch_index for a in plan.assignments if a.node_id == n),
               default=-1) + 1
        for n in survivors
    }
    result = coord.plan_receiver_failover(dead, 0, survivors, next_seq)

    owed = {
        (a.epoch, a.node_id, a.batch_index)
        for a in plan.assignments
        if a.node_id == dead and (a.epoch, a.node_id, a.batch_index) not in delivered
    }
    # 1. Exactly the undelivered batches are re-owned: none lost, none extra.
    assert set(result.key_map) == owed
    # 2. No batch double-owned: the mapping is injective.
    assert len(set(result.key_map.values())) == len(result.key_map)
    # 3. Every new owner survives, and no new seq collides with a planned
    #    (or already-delivered) seq on that node.
    for (e, _dn, _ds), (e2, node, seq) in result.key_map.items():
        assert e2 == e and node in survivors
        assert seq >= next_seq[node]
    # 4. The re-targeted assignments and the by_root split agree.
    assert sorted(
        (a.node_id, a.batch_index) for a in result.assignments
    ) == sorted((n, s) for (_e, n, s) in result.key_map.values())
    by_root_all = [a for group in result.by_root.values() for a in group]
    assert sorted(id(a) for a in by_root_all) == sorted(id(a) for a in result.assignments)
    # 5. Adoption counts match.
    assert sum(result.extra_per_node.values()) == len(result.assignments)
    # 6. Payload identity is preserved: same shard slice, same labels.
    old_by_key = {
        (a.epoch, a.node_id, a.batch_index): a
        for a in plan.assignments
        if a.node_id == dead
    }
    new_by_key = {(a.epoch, a.node_id, a.batch_index): a for a in result.assignments}
    for old_key, new_key in result.key_map.items():
        old, new = old_by_key[old_key], new_by_key[new_key]
        assert (old.shard, old.offset, old.nbytes, old.labels) == (
            new.shard, new.offset, new.nbytes, new.labels,
        )


@given(_plans())
@settings(max_examples=30, deadline=None)
def test_receiver_failover_balances_across_survivors(case):
    plan, dead, _delivered = case
    ledger = DeliveryLedger(None)
    coord = FailoverCoordinator(plan, ledger, {"r": None},
                                reachable=lambda root, path: True)
    survivors = [n for n in range(plan.num_nodes) if n != dead]
    next_seq = {n: 100 for n in survivors}
    result = coord.plan_receiver_failover(dead, 0, survivors, next_seq)
    if result.extra_per_node:
        counts = [result.extra_per_node.get(n, 0) for n in survivors]
        assert max(counts) - min(counts) <= 1  # least-loaded placement


def test_receiver_failover_no_survivors_raises(small_imagenet):
    cfg = EMLIOConfig(batch_size=4)
    from repro.core.planner import Planner

    plan = Planner(small_imagenet, num_nodes=1, config=cfg).plan()
    coord = FailoverCoordinator(plan, DeliveryLedger(None), {"r": None},
                                reachable=lambda root, path: True)
    with pytest.raises(FailoverError, match="no surviving receiver"):
        coord.plan_receiver_failover(0, 0, surviving_nodes=[], next_seq={})


def test_receiver_failover_unreachable_shard_raises(small_imagenet):
    cfg = EMLIOConfig(batch_size=4)
    from repro.core.planner import Planner

    plan = Planner(small_imagenet, num_nodes=2, config=cfg).plan()
    coord = FailoverCoordinator(plan, DeliveryLedger(None), {"r": None},
                                reachable=lambda root, path: False)
    with pytest.raises(FailoverError, match="no surviving root"):
        coord.plan_receiver_failover(0, 0, surviving_nodes=[1], next_seq={1: 0})


# -- receiver hang detection (consumption-boundary progress) -------------------


def test_receiver_progress_freezes_with_unconsumed_payloads(small_imagenet):
    """The receiver's heartbeat progress counter advances while *starved*
    (daemons slow: not this node's hang) but freezes the moment received
    payloads sit unconsumed — the wedged-consumer signature."""
    from repro.core.planner import Planner
    from repro.core.receiver import EMLIOReceiver
    from repro.serialize.payload import BatchPayload

    cfg = EMLIOConfig(batch_size=4, output_hw=(16, 16))
    plan = Planner(small_imagenet, num_nodes=1, config=cfg).plan()
    receiver = EMLIOReceiver(node_id=0, plan=plan, config=cfg)
    try:
        # Starved and idle: nothing owed to the pipeline, ticks advance.
        before = receiver.progress
        assert _wait_until(lambda: receiver.progress > before, timeout=2.0)

        # Park a payload in the shared queue without consuming it: the
        # node now *has* work it is not moving — progress must freeze.
        payload = BatchPayload(
            epoch=0, batch_index=0, shard="s0", samples=[b"RAW0"], labels=[0],
            node_id=0,
        )
        receiver._payload_q.put(payload)
        time.sleep(0.5)  # > 2 receive-loop timeouts
        frozen = receiver.progress
        time.sleep(0.5)
        assert receiver.progress == frozen, "progress advanced while wedged"

        # Drain the queue: starvation ticks resume.
        receiver._payload_q.get_nowait()
        assert _wait_until(lambda: receiver.progress > frozen, timeout=2.0)
    finally:
        receiver.close()


def test_service_detects_wedged_consumer_as_hung(small_imagenet, tmp_path):
    """A consumer that stops iterating mid-epoch (payloads queued, nothing
    consumed) trips the *hang* detector — previously invisible, because
    ticks came from the receive loop, which was perfectly healthy."""
    cfg = EMLIOConfig(batch_size=4, output_hw=(16, 16))
    recovery = RecoveryConfig(
        ledger_path=tmp_path / "ledger.txt",
        membership=MembershipConfig(interval_s=0.05, miss_threshold=3,
                                    dead_threshold=100, hung_after_s=0.6),
    )
    with EMLIOService(cfg, small_imagenet, stall_timeout=15.0, recovery=recovery) as svc:
        gen = svc.epoch(0)
        next(gen)  # consume one batch, then wedge with payloads queued
        deadline = time.monotonic() + 8.0
        death_reason = None
        while time.monotonic() < deadline:
            member = svc.view.members().get("receiver:0")
            if member is not None and member.status is MemberStatus.DEAD:
                death_reason = member.death_reason
                break
            time.sleep(0.02)
        assert death_reason == "hung", f"expected hung death, got {death_reason!r}"
        # Sole receiver dead -> failover has no survivors; the consumer
        # surfaces the root-cause FailoverError when it resumes.
        with pytest.raises((FailoverError, RuntimeError)):
            for _ in gen:
                pass
