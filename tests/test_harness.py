"""Tests for the report helpers and the experiment registry."""

import pytest

from repro.harness.experiments import EXPERIMENTS, run_experiment
from repro.harness.report import energy_factor, relative_spread, render_table, speedup


def rows_fixture():
    return [
        {"loader": "dali", "rtt_ms": 10, "duration_s": 500.0, "total_kj": 100.0},
        {"loader": "emlio", "rtt_ms": 10, "duration_s": 100.0, "total_kj": 20.0},
    ]


def test_render_table_alignment():
    text = render_table(rows_fixture())
    lines = text.splitlines()
    assert lines[0].startswith("loader")
    assert len(lines) == 4  # header, sep, 2 rows
    assert "dali" in lines[2] and "emlio" in lines[3]


def test_render_table_empty():
    assert render_table([]) == "(no rows)"


def test_render_table_column_subset():
    text = render_table(rows_fixture(), columns=["loader", "duration_s"])
    assert "total_kj" not in text


def test_speedup():
    assert speedup(rows_fixture(), "dali", "emlio", rtt_ms=10) == pytest.approx(5.0)


def test_speedup_requires_unique_rows():
    rows = rows_fixture() + rows_fixture()
    with pytest.raises(ValueError):
        speedup(rows, "dali", "emlio", rtt_ms=10)


def test_energy_factor():
    assert energy_factor(rows_fixture(), "dali", "emlio", rtt_ms=10) == pytest.approx(5.0)


def test_relative_spread():
    assert relative_spread([100.0, 100.0, 100.0]) == 0.0
    assert relative_spread([90.0, 110.0]) == pytest.approx(0.2)
    with pytest.raises(ValueError):
        relative_spread([])


def test_experiment_registry_covers_every_figure():
    assert set(EXPERIMENTS) == {
        "fig1", "table1", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
    }
    for exp in EXPERIMENTS.values():
        assert exp.title and exp.paper_claim


def test_unknown_experiment_rejected():
    with pytest.raises(ValueError):
        run_experiment("fig99")


def test_table1_rows():
    rows = run_experiment("table1")
    assert len(rows) == 4
    assert {r["gpu"] for r in rows} == {"quadro-rtx-6000", "tesla-p100", "-"}


def test_fig8_shape_quick():
    """Concurrency-2 EMLIO matches or beats DALI at low RTT (paper Fig. 8)."""
    rows = run_experiment("fig8")
    for rtt in (0.1, 1.0):
        assert speedup(rows, "dali", "emlio", rtt_ms=rtt) >= 0.97
