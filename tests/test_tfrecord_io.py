"""Tests for TFRecord writer/reader: framing, mmap ranges, corruption."""

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tfrecord.reader import (
    TFRecordCorruption,
    TFRecordReader,
    read_record_at,
    scan_records,
)
from repro.tfrecord.writer import TFRecordWriter, frame_record, framed_size


def write_shard(path, records):
    offsets = []
    with TFRecordWriter(path) as w:
        for rec in records:
            offsets.append(w.write(rec))
    return offsets


def test_frame_layout():
    data = b"hello"
    frame = frame_record(data)
    assert len(frame) == framed_size(len(data)) == 12 + 5 + 4
    (length,) = struct.unpack("<Q", frame[:8])
    assert length == 5
    assert frame[12:17] == data


def test_write_read_roundtrip(tmp_path):
    records = [b"alpha", b"beta", b"gamma" * 100, b""]
    path = tmp_path / "s.tfrecord"
    write_shard(path, records)
    assert list(scan_records(path)) == records


def test_offsets_are_contiguous(tmp_path):
    records = [b"a" * n for n in (1, 10, 100)]
    path = tmp_path / "s.tfrecord"
    offsets = write_shard(path, records)
    pos = 0
    for (off, size), rec in zip(offsets, records):
        assert off == pos
        assert size == framed_size(len(rec))
        pos += size


def test_random_access_by_offset(tmp_path):
    records = [f"record-{i}".encode() for i in range(20)]
    path = tmp_path / "s.tfrecord"
    offsets = write_shard(path, records)
    for (off, _size), rec in zip(offsets, records):
        assert read_record_at(path, off) == rec


def test_read_range_contiguous_batch(tmp_path):
    records = [f"r{i}".encode() * (i + 1) for i in range(16)]
    path = tmp_path / "s.tfrecord"
    offsets = write_shard(path, records)
    with TFRecordReader(path) as reader:
        batch = reader.read_range(offsets[4][0], 8)
    assert batch == records[4:12]


def test_raw_slice_zero_copy_bytes(tmp_path):
    records = [b"abc", b"defg"]
    path = tmp_path / "s.tfrecord"
    offsets = write_shard(path, records)
    total = sum(size for _off, size in offsets)
    with TFRecordReader(path) as reader:
        view = reader.raw_slice(0, total)
        assert isinstance(view, memoryview)
        assert len(view) == total
        assert reader.nbytes == total
        view.release()


def test_raw_slice_out_of_bounds(tmp_path):
    path = tmp_path / "s.tfrecord"
    write_shard(path, [b"x"])
    with TFRecordReader(path) as reader:
        with pytest.raises(ValueError):
            reader.raw_slice(0, 10**6)


def test_data_corruption_detected(tmp_path):
    path = tmp_path / "s.tfrecord"
    write_shard(path, [b"precious data"])
    raw = bytearray(path.read_bytes())
    raw[14] ^= 0xFF  # flip a data byte
    path.write_bytes(bytes(raw))
    with pytest.raises(TFRecordCorruption, match="data CRC"):
        list(scan_records(path))


def test_length_corruption_detected(tmp_path):
    path = tmp_path / "s.tfrecord"
    write_shard(path, [b"precious data"])
    raw = bytearray(path.read_bytes())
    raw[0] ^= 0x01  # flip a length byte
    path.write_bytes(bytes(raw))
    with pytest.raises(TFRecordCorruption):
        list(scan_records(path))


def test_truncated_file_detected(tmp_path):
    path = tmp_path / "s.tfrecord"
    write_shard(path, [b"hello world"])
    raw = path.read_bytes()
    path.write_bytes(raw[:-2])
    with pytest.raises(TFRecordCorruption, match="truncated"):
        list(scan_records(path))


def test_verify_false_skips_crc(tmp_path):
    path = tmp_path / "s.tfrecord"
    write_shard(path, [b"precious data"])
    raw = bytearray(path.read_bytes())
    raw[14] ^= 0xFF
    path.write_bytes(bytes(raw))
    assert len(list(scan_records(path, verify=False))) == 1


def test_empty_file_iterates_nothing(tmp_path):
    path = tmp_path / "empty.tfrecord"
    path.write_bytes(b"")
    assert list(scan_records(path)) == []


@settings(max_examples=30, deadline=None)
@given(st.lists(st.binary(min_size=0, max_size=512), min_size=1, max_size=20))
def test_property_roundtrip(tmp_path_factory, records):
    path = tmp_path_factory.mktemp("tf") / "s.tfrecord"
    write_shard(path, records)
    assert list(scan_records(path)) == records
