"""Pin the full ``Deployment.status()`` schema.

``status()`` is the deployment's public JSON-able snapshot — dashboards
and ops tooling key into it by name, so a renamed or retyped field is a
breaking API change that must show up as a test diff, not as a silent
``KeyError`` downstream.  This pins every top-level section, the keys and
value types inside each, JSON-serializability, and stability of the
schema across an epoch of consumption.
"""

from __future__ import annotations

import json

from repro.api import EMLIO, preset

#: section -> {key: allowed types}.  ``type(None)`` marks fields that are
#: legitimately null at quickstart scale (no recovery, no energy monitor,
#: no rebalance yet, observability off).
_CLUSTER_SCHEMA = {
    "membership": (dict, type(None)),
    "num_nodes": (int,),
    "dead_nodes": (list,),
    "endpoints": (dict,),
    "ownership": (dict,),
    "failovers": (int,),
    "receiver_failovers": (int,),
    "reassigned_batches": (int,),
    "rebalances": (int,),
    "last_rebalance": (dict, type(None)),
}

_PIPELINE_SCHEMA = {
    "daemons": (list,),
    "failover_daemons": (list,),
    "gpu": (dict,),
    "batches_received": (int,),
    "duplicates_dropped": (int,),
    "failovers": (int,),
    "receiver_failovers": (int,),
    "transports": (dict,),
    "shm_attaches": (int,),
    "storage": (dict,),
    "stages": (dict,),
}

_STORAGE_SCHEMA = {
    "daemons": (list,),
    "tiers": (dict,),
}

_TELEMETRY_SCHEMA = {
    "metrics_endpoint": (str, type(None)),
    "trace_dir": (str, type(None)),
    "trace_sample": (float, int),
    "spans_written": (int,),
    "spans_dropped": (int,),
}


def _check_section(section: dict, schema: dict, where: str) -> None:
    assert set(section) == set(schema), (
        f"{where}: keys changed — got {sorted(section)}, pinned {sorted(schema)}"
    )
    for key, types in schema.items():
        assert isinstance(section[key], types), (
            f"{where}.{key}: expected {types}, got {type(section[key]).__name__}"
        )


def _check_status(status: dict) -> None:
    assert set(status) == {
        "spec", "cluster", "pipeline", "storage", "telemetry", "energy",
    }
    assert isinstance(status["spec"], str)
    _check_section(status["cluster"], _CLUSTER_SCHEMA, "cluster")
    _check_section(status["pipeline"], _PIPELINE_SCHEMA, "pipeline")
    _check_section(status["storage"], _STORAGE_SCHEMA, "storage")
    _check_section(status["telemetry"], _TELEMETRY_SCHEMA, "telemetry")
    assert status["energy"] is None or isinstance(status["energy"], dict)
    json.dumps(status)  # the whole snapshot must stay JSON-able


def test_status_schema_is_stable_across_an_epoch():
    with EMLIO.deploy(preset("quickstart")) as dep:
        before = dep.status()
        _check_status(before)
        for _ in dep.epoch(0):
            pass
        after = dep.status()
        _check_status(after)
    assert before["spec"] == after["spec"] == "quickstart"
    # Consumption changes values, never shape.
    assert after["pipeline"]["batches_received"] == 8
    assert before["pipeline"]["batches_received"] == 0


def test_status_schema_with_energy_monitor():
    with EMLIO.deploy(preset("geo-wan")) as dep:
        for _ in dep.epoch(0):
            pass
        status = dep.status()
        _check_status(status)
    assert set(status["energy"]) == {"cpu_j", "dram_j", "gpu_j", "samples"}
