"""End-to-end tests for the zero-copy hot path (paper §4.1).

The chain under test: ``encode_batch_parts`` (scatter-gather msgpack over
the sample bytes) → ``send_frame_parts`` (one ``sendmsg`` frame) →
``recv_frame_into`` (reused receive buffer) → ``decode_batch(...,
zero_copy=True)`` (samples as memoryviews over the buffer).  Includes the
tracemalloc check that steady-state per-batch allocations actually drop
versus the copying path — the tentpole claim, measured.
"""

import socket
import threading
import tracemalloc

from repro.net.framing import (
    recv_frame,
    recv_frame_into,
    send_frame,
    send_frame_parts,
)
from repro.serialize.payload import (
    BatchPayload,
    decode_batch,
    encode_batch,
    encode_batch_parts,
)


def _payload(nsamples: int = 8, sample_bytes: int = 4096) -> BatchPayload:
    return BatchPayload(
        epoch=0,
        batch_index=3,
        shard="shard_00000",
        samples=[bytes([i % 256]) * sample_bytes for i in range(nsamples)],
        labels=list(range(nsamples)),
        node_id=1,
        meta={"origin": "test"},
    )


def test_scatter_gather_roundtrip_over_socketpair():
    a, b = socket.socketpair()
    try:
        payload = _payload()
        parts = encode_batch_parts(payload)
        assert len(parts) > 1  # the 4 KiB samples spilled into own segments
        sender = threading.Thread(target=send_frame_parts, args=(a, parts))
        sender.start()
        buf = bytearray()
        view = recv_frame_into(b, buf)
        sender.join()
        # Wire bytes are identical to the copying encoder's.
        assert bytes(view) == encode_batch(payload)
        decoded = decode_batch(view, zero_copy=True)
        assert all(isinstance(s, memoryview) for s in decoded.samples)
        assert decoded.samples == payload.samples  # content equality
        assert list(decoded.labels) == payload.labels  # packed i64 vector under v3
        assert decoded.seq == payload.seq and decoded.shard == payload.shard
    finally:
        a.close()
        b.close()


def test_zero_copy_decode_release_reaches_the_lease():
    payload = _payload(nsamples=2, sample_bytes=600)
    data = b"".join(bytes(p) for p in encode_batch_parts(payload))
    calls = []
    decoded = decode_batch(data, zero_copy=True, release=lambda: calls.append(1))
    assert decoded.samples == payload.samples
    decoded.samples.release()
    decoded.samples.release()
    assert calls == [1]


def test_zero_copy_path_allocates_less_than_legacy():
    """Steady-state peak allocations per batch on the zero-copy path must be
    a fraction of the copying path's (which materializes the payload at the
    encoder, the frame receive, and the decoder)."""
    payload = _payload(nsamples=8, sample_bytes=4096)

    def legacy_round(a, b):
        send_frame(a, encode_batch(payload))
        decode_batch(recv_frame(b))

    recv_buf = bytearray(128 * 1024)

    def zero_copy_round(a, b):
        send_frame_parts(a, encode_batch_parts(payload))
        decode_batch(recv_frame_into(b, recv_buf), zero_copy=True)

    def peak_bytes(round_fn) -> int:
        a, b = socket.socketpair()
        try:
            for _ in range(3):  # warm up: grow buffers, prime caches
                round_fn(a, b)
            tracemalloc.start()
            for _ in range(5):
                round_fn(a, b)
            _current, peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
            return peak
        finally:
            a.close()
            b.close()

    legacy_peak = peak_bytes(legacy_round)
    zero_copy_peak = peak_bytes(zero_copy_round)
    assert zero_copy_peak < legacy_peak / 2, (zero_copy_peak, legacy_peak)
