"""Tests for repro.util.rate (TokenBucket)."""

import pytest

from repro.util.clock import VirtualClock
from repro.util.rate import TokenBucket


def make_bucket(rate=1000.0, capacity=1000.0, start=0.0):
    clock = VirtualClock(start)
    return TokenBucket(rate, capacity, clock=clock), clock


def test_full_bucket_passes_burst_without_delay():
    bucket, _ = make_bucket()
    assert bucket.reserve(1000) == 0.0


def test_deficit_produces_proportional_delay():
    bucket, _ = make_bucket(rate=100.0, capacity=100.0)
    assert bucket.reserve(100) == 0.0  # drains the bucket
    assert bucket.reserve(50) == pytest.approx(0.5)  # 50 tokens at 100/s


def test_refill_over_time():
    bucket, clock = make_bucket(rate=100.0, capacity=100.0)
    bucket.reserve(100)
    clock.advance(1.0)  # fully refilled
    assert bucket.reserve(100) == 0.0


def test_refill_caps_at_capacity():
    bucket, clock = make_bucket(rate=100.0, capacity=100.0)
    clock.advance(100.0)  # long idle must not accumulate beyond capacity
    assert bucket.tokens == pytest.approx(100.0)


def test_oversized_payload_takes_n_over_rate():
    bucket, _ = make_bucket(rate=10.0, capacity=10.0)
    bucket.reserve(10)
    # A 100-token payload on a 10/s link: 10 s of serialization delay.
    assert bucket.reserve(100) == pytest.approx(10.0)


def test_would_delay_does_not_debit():
    bucket, _ = make_bucket(rate=100.0, capacity=100.0)
    d1 = bucket.would_delay(150)
    d2 = bucket.would_delay(150)
    assert d1 == d2 == pytest.approx(0.5)
    assert bucket.tokens == pytest.approx(100.0)


def test_infinite_rate_never_delays():
    bucket = TokenBucket(float("inf"), capacity=1.0, clock=VirtualClock())
    assert bucket.reserve(10**12) == 0.0


def test_zero_reserve_is_free():
    bucket, _ = make_bucket()
    assert bucket.reserve(0) == 0.0


def test_negative_reserve_rejected():
    bucket, _ = make_bucket()
    with pytest.raises(ValueError):
        bucket.reserve(-1)


def test_invalid_rate_rejected():
    with pytest.raises(ValueError):
        TokenBucket(0.0)
    with pytest.raises(ValueError):
        TokenBucket(-5.0)


def test_sequential_reserves_accumulate_delay():
    bucket, _ = make_bucket(rate=100.0, capacity=100.0)
    bucket.reserve(100)
    d1 = bucket.reserve(100)
    d2 = bucket.reserve(100)
    assert d2 == pytest.approx(d1 + 1.0)
