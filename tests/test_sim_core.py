"""Tests for the DES kernel (repro.sim.core)."""

import pytest

from repro.sim.core import Interrupt, Simulator


def test_timeout_advances_virtual_time():
    sim = Simulator()
    trace = []

    def proc(sim):
        yield sim.timeout(1.5)
        trace.append(sim.now)
        yield sim.timeout(2.5)
        trace.append(sim.now)

    sim.process(proc(sim))
    sim.run()
    assert trace == [1.5, 4.0]


def test_process_return_value_via_event():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(1)
        return 42

    p = sim.process(proc(sim))
    sim.run(until=p)
    assert p.value == 42


def test_same_time_events_fire_in_scheduling_order():
    sim = Simulator()
    trace = []

    def proc(sim, tag):
        yield sim.timeout(1.0)
        trace.append(tag)

    for tag in "abc":
        sim.process(proc(sim, tag))
    sim.run()
    assert trace == ["a", "b", "c"]


def test_run_until_time_stops_at_horizon():
    sim = Simulator()
    trace = []

    def proc(sim):
        for _ in range(10):
            yield sim.timeout(1.0)
            trace.append(sim.now)

    sim.process(proc(sim))
    sim.run(until=5.0)
    assert trace == [1.0, 2.0, 3.0, 4.0, 5.0]
    assert sim.now == 5.0


def test_waiting_on_another_process():
    sim = Simulator()

    def child(sim):
        yield sim.timeout(3.0)
        return "done"

    def parent(sim):
        result = yield sim.process(child(sim))
        return (sim.now, result)

    p = sim.process(parent(sim))
    sim.run(until=p)
    assert p.value == (3.0, "done")


def test_all_of_waits_for_slowest():
    sim = Simulator()

    def worker(sim, d):
        yield sim.timeout(d)
        return d

    procs = [sim.process(worker(sim, d)) for d in (1.0, 5.0, 3.0)]
    done = sim.all_of(procs)
    sim.run(until=done)
    assert sim.now == 5.0
    assert done.value == [1.0, 5.0, 3.0]


def test_any_of_fires_on_fastest():
    sim = Simulator()

    def worker(sim, d):
        yield sim.timeout(d)
        return d

    procs = [sim.process(worker(sim, d)) for d in (4.0, 2.0)]
    first = sim.any_of(procs)
    sim.run(until=first)
    assert sim.now == 2.0
    assert first.value == 2.0


def test_all_of_empty_fires_immediately():
    sim = Simulator()
    done = sim.all_of([])
    sim.run(until=done)
    assert done.value == []
    assert sim.now == 0.0


def test_process_exception_propagates_to_waiter():
    sim = Simulator()

    def bad(sim):
        yield sim.timeout(1)
        raise RuntimeError("boom")

    p = sim.process(bad(sim))
    with pytest.raises(RuntimeError, match="boom"):
        sim.run(until=p)


def test_unwaited_process_failure_crashes_run():
    sim = Simulator()

    def bad(sim):
        yield sim.timeout(1)
        raise ValueError("silent death")

    sim.process(bad(sim))
    with pytest.raises(ValueError, match="silent death"):
        sim.run()


def test_interrupt_is_delivered():
    sim = Simulator()
    trace = []

    def sleeper(sim):
        try:
            yield sim.timeout(100.0)
        except Interrupt as intr:
            trace.append((sim.now, intr.cause))

    def interrupter(sim, victim):
        yield sim.timeout(2.0)
        victim.interrupt("wake up")

    victim = sim.process(sleeper(sim))
    sim.process(interrupter(sim, victim))
    sim.run()
    assert trace == [(2.0, "wake up")]


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-1.0)


def test_yielding_non_event_raises():
    sim = Simulator()

    def bad(sim):
        yield 42

    sim.process(bad(sim))
    with pytest.raises(TypeError):
        sim.run()


def test_deadlock_detection_when_waiting_on_never_fired_event():
    sim = Simulator()
    never = sim.event()

    def waiter(sim):
        yield never

    p = sim.process(waiter(sim))
    with pytest.raises(RuntimeError, match="deadlock"):
        sim.run(until=p)


def test_determinism_two_identical_runs():
    def build_and_run():
        sim = Simulator()
        trace = []

        def proc(sim, tag, period):
            for _ in range(5):
                yield sim.timeout(period)
                trace.append((sim.now, tag))

        sim.process(proc(sim, "a", 0.3))
        sim.process(proc(sim, "b", 0.7))
        sim.run()
        return trace

    assert build_and_run() == build_and_run()
