"""Mixed-version payload interop and the deploy-level columnar knobs.

The daemon emits whichever schema ``payload_version`` selects; the
receiver's decode accepts every compatible version.  So a cluster can
roll the v3 columnar layout out daemon by daemon — these tests pin that:
a forced-v2 service/deployment behaves exactly like before, and daemons
on different versions feed one receiver in the same epoch.
"""

import dataclasses

import pytest

from repro.api import (
    ClusterSpec,
    DatasetSpec,
    EMLIO,
    PipelineSpec,
    ReceiverSpec,
)
from repro.core.config import EMLIOConfig
from repro.core.service import EMLIOService


def _collect_epoch(service, epoch=0):
    return [(t, l) for t, l in service.epoch(epoch)]


def _expected_labels(dataset):
    return sorted(l for labels in dataset.labels().values() for l in labels)


@pytest.mark.parametrize("payload_version", [2, 3])
def test_forced_version_service_delivers_all_samples(small_imagenet, payload_version):
    cfg = EMLIOConfig(batch_size=4, hwm=8, output_hw=(16, 16),
                      payload_version=payload_version)
    with EMLIOService(cfg, small_imagenet) as svc:
        got = sorted(int(l) for _t, ls in _collect_epoch(svc) for l in ls)
    assert got == _expected_labels(small_imagenet)


def test_mixed_version_daemons_feed_one_receiver(small_imagenet):
    """A v2 daemon and a v3 daemon serving halves of the same epoch: the
    receiver decodes both wire layouts into one coherent batch stream."""
    cfg = EMLIOConfig(batch_size=4, hwm=8, output_hw=(16, 16), payload_version=3)
    shards = [ix.shard for ix in small_imagenet.indexes]
    split = {
        str(small_imagenet.root): set(shards[: len(shards) // 2]),
        str(small_imagenet.root) + "/.": set(shards[len(shards) // 2 :]),
    }
    with EMLIOService(cfg, small_imagenet, storage_shards=split) as svc:
        assert len(svc.daemons) == 2
        # One daemon stays on the row layout — the mid-rollout cluster.
        svc.daemons[0].config = dataclasses.replace(
            svc.daemons[0].config, payload_version=2
        )
        got = sorted(int(l) for _t, ls in _collect_epoch(svc) for l in ls)
        versions = sorted(d.config.payload_version for d in svc.daemons)
        sent = [d.stats.snapshot()["batches_sent"] for d in svc.daemons]
    assert versions == [2, 3]
    assert all(s > 0 for s in sent)  # both layouts actually hit the wire
    assert got == _expected_labels(small_imagenet)


def _spec(**pipeline_overrides) -> ClusterSpec:
    pipeline = dict(batch_size=4, output_hw=(16, 16))
    pipeline.update(pipeline_overrides)
    return ClusterSpec(
        name="interop",
        dataset=DatasetSpec(kind="existing", root="ignored"),
        pipeline=PipelineSpec(**pipeline),
        receivers=ReceiverSpec(stall_timeout_s=20.0),
    )


def test_forced_v2_deployment_passes_e2e(small_imagenet):
    """ACCEPTANCE: a deployment forced to payload_version=2 runs the e2e
    path unchanged — the columnar rollout is fully reversible."""
    with EMLIO.deploy(_spec(payload_version=2), dataset=small_imagenet) as dep:
        got = sorted(int(l) for _t, ls in dep.epoch(0) for l in ls)
        status = dep.status()
    assert got == _expected_labels(small_imagenet)
    assert status["pipeline"]["stages"]["workers"] == 1


def test_worker_pool_deployment_reports_stage_timing(small_imagenet):
    """The workers knob reaches the receiver pipeline, and per-stage
    timing (decode / preprocess / starved ns per batch) surfaces through
    Deployment.status()["pipeline"]["stages"]."""
    with EMLIO.deploy(_spec(workers=3), dataset=small_imagenet) as dep:
        got = sorted(int(l) for _t, ls in dep.epoch(0) for l in ls)
        stages = dep.status()["pipeline"]["stages"]
    assert got == _expected_labels(small_imagenet)
    assert stages["workers"] == 3
    assert stages["batches"] == len(got) // 4
    assert stages["decode_ns"] > 0 and stages["preprocess_ns"] > 0
    assert "starved_ns" in stages
    node0 = stages["nodes"]["0"]
    assert node0["batches"] == stages["batches"]
    assert node0["decode_ns"] > 0
