"""Tests for receive-side buffer pooling and lease types (zero-copy path)."""

import pytest

from repro.net.buffers import (
    BufferPool,
    LeasedSamples,
    PooledFrame,
    release_samples,
)


def test_acquire_allocates_then_reuses():
    pool = BufferPool(max_buffers=4, initial_size=128)
    buf = pool.acquire()
    assert pool.misses == 1 and pool.hits == 0
    assert len(buf.data) == 128
    backing = buf.data
    buf.release()
    assert pool.free == 1
    again = pool.acquire()
    assert again.data is backing  # same buffer came back
    assert pool.hits == 1


def test_release_is_idempotent():
    pool = BufferPool()
    buf = pool.acquire()
    buf.release()
    buf.release()
    assert pool.free == 1  # not 2: double release must not duplicate the buffer
    assert buf.released


def test_free_list_is_capped():
    pool = BufferPool(max_buffers=2, initial_size=8)
    bufs = [pool.acquire() for _ in range(5)]
    for b in bufs:
        b.release()
    assert pool.free == 2  # the rest dropped for GC


def test_grown_buffer_keeps_capacity_across_reuse():
    """recv_frame_into grows the buffer in place; the pool must hand the
    high-water-capacity buffer back out, so steady state stops allocating."""
    pool = BufferPool(max_buffers=4, initial_size=8)
    buf = pool.acquire()
    buf.data += bytes(1000)
    buf.release()
    assert len(pool.acquire().data) == 1008


def test_acquire_never_blocks_on_empty_pool():
    pool = BufferPool(max_buffers=1, initial_size=16)
    a = pool.acquire()
    b = pool.acquire()  # pool empty: allocates instead of blocking
    assert a.data is not b.data
    assert pool.misses == 2


def test_pooled_frame_forwards_release_once():
    pool = BufferPool()
    buf = pool.acquire()
    frame = PooledFrame(memoryview(buf.data)[:4], buf)
    frame.release()
    frame.release()
    assert pool.free == 1


def test_pooled_frame_without_lease_is_noop():
    PooledFrame(b"plain bytes").release()  # must not raise


def test_leased_samples_behaves_like_list():
    calls = []
    samples = LeasedSamples([b"a", b"b"], lambda: calls.append(1))
    assert samples == [b"a", b"b"]
    assert len(samples) == 2 and samples[1] == b"b"
    samples.release()
    samples.release()
    assert calls == [1]  # release exactly once


def test_release_samples_helper():
    calls = []
    release_samples(LeasedSamples([], lambda: calls.append(1)))
    assert calls == [1]
    release_samples([b"plain", b"list"])  # no lease: no-op, no raise


def test_pool_validation():
    with pytest.raises(ValueError):
        BufferPool(max_buffers=0)
    with pytest.raises(ValueError):
        BufferPool(initial_size=-1)
