"""Tests for the FFCV-style beton format and loader."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.beton.format import BetonReader, BetonWriter, write_beton
from repro.beton.loader import FFCVStyleLoader
from repro.codec.sjpg import sjpg_encode
from repro.data.samples import smooth_image


def make_samples(n, size_range=(10, 200), seed=0):
    rng = np.random.default_rng(seed)
    return [
        (rng.integers(0, 256, int(rng.integers(*size_range)), dtype=np.uint8).tobytes(),
         int(rng.integers(0, 7)))
        for _ in range(n)
    ]


# -- format -----------------------------------------------------------------------


def test_write_read_roundtrip(tmp_path):
    samples = make_samples(20)
    path = tmp_path / "d.beton"
    stats = write_beton(samples, path)
    assert stats["num_samples"] == 20
    with BetonReader(path) as reader:
        assert len(reader) == 20
        for i, (sample, label) in enumerate(samples):
            got_sample, got_label = reader[i]
            assert got_sample == sample
            assert got_label == label


def test_slot_size_is_aligned_max(tmp_path):
    samples = [(b"a" * 100, 0), (b"b" * 65, 1)]
    stats = write_beton(samples, tmp_path / "d.beton")
    assert stats["slot_size"] == 128  # 100 rounded up to 64-byte alignment
    assert stats["file_bytes"] >= stats["payload_bytes"]


def test_random_access_is_index_arithmetic(tmp_path):
    samples = make_samples(50, seed=3)
    write_beton(samples, tmp_path / "d.beton")
    with BetonReader(tmp_path / "d.beton") as reader:
        # Access in a scrambled order; every slot must resolve correctly.
        for i in np.random.default_rng(0).permutation(50):
            assert reader[int(i)] == samples[int(i)]


def test_sample_view_zero_copy(tmp_path):
    write_beton([(b"hello world", 4)], tmp_path / "d.beton")
    with BetonReader(tmp_path / "d.beton") as reader:
        view = reader.sample_view(0)
        assert isinstance(view, memoryview)
        assert bytes(view) == b"hello world"
        view.release()


def test_out_of_range_index(tmp_path):
    write_beton([(b"x", 0)], tmp_path / "d.beton")
    with BetonReader(tmp_path / "d.beton") as reader:
        with pytest.raises(IndexError):
            reader.sample_view(1)


def test_bad_magic_rejected(tmp_path):
    path = tmp_path / "d.beton"
    write_beton([(b"x", 0)], path)
    raw = bytearray(path.read_bytes())
    raw[0] = ord("Z")
    path.write_bytes(bytes(raw))
    with pytest.raises(ValueError, match="magic"):
        BetonReader(path)


def test_truncated_file_rejected(tmp_path):
    path = tmp_path / "d.beton"
    write_beton(make_samples(4), path)
    path.write_bytes(path.read_bytes()[:-80])
    with pytest.raises(ValueError, match="truncated"):
        BetonReader(path)


def test_writer_validation(tmp_path):
    writer = BetonWriter(tmp_path / "d.beton")
    with pytest.raises(ValueError):
        writer.append(b"", 0)
    with pytest.raises(ValueError):
        writer.close()  # empty file
    with pytest.raises(RuntimeError):
        writer.close()  # double close
    with pytest.raises(RuntimeError):
        writer.append(b"x", 0)  # after close


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.tuples(st.binary(min_size=1, max_size=300), st.integers(-100, 100)),
        min_size=1,
        max_size=25,
    )
)
def test_property_roundtrip(tmp_path_factory, samples):
    path = tmp_path_factory.mktemp("beton") / "d.beton"
    write_beton(samples, path)
    with BetonReader(path) as reader:
        assert [reader[i] for i in range(len(reader))] == [
            (s, int(l)) for s, l in samples
        ]


# -- loader -----------------------------------------------------------------------


@pytest.fixture
def image_beton(tmp_path):
    rng = np.random.default_rng(5)
    samples = [
        (sjpg_encode(smooth_image(rng, 24, 24)), int(rng.integers(0, 5))) for _ in range(30)
    ]
    path = tmp_path / "images.beton"
    write_beton(samples, path)
    return path, samples


def test_loader_full_epoch(image_beton):
    path, samples = image_beton
    with FFCVStyleLoader(path, batch_size=8, output_hw=(16, 16)) as loader:
        batches = list(loader.epoch())
    assert sum(len(l) for _t, l in batches) == 30
    got = sorted(int(l) for _t, labels in batches for l in labels)
    assert got == sorted(l for _s, l in samples)
    for tensors, _l in batches:
        assert tensors.shape[1:] == (3, 16, 16)


def test_loader_epochs_shuffle(image_beton):
    path, _ = image_beton
    with FFCVStyleLoader(path, batch_size=8, output_hw=(16, 16), seed=1) as loader:
        l0 = [tuple(l.tolist()) for _t, l in loader.epoch(0)]
        l1 = [tuple(l.tolist()) for _t, l in loader.epoch(1)]
    assert l0 != l1


def test_loader_no_filesystem_ops_after_open(image_beton):
    """FFCV's point: an epoch touches the mmap, not the filesystem."""
    path, _ = image_beton
    with FFCVStyleLoader(path, batch_size=8, output_hw=(16, 16)) as loader:
        list(loader.epoch())
        assert loader.stats.read_ops == 30  # mmap slot views, one per sample
        assert loader.stats.batches == 4


def test_loader_validation(image_beton):
    path, _ = image_beton
    with pytest.raises(ValueError):
        FFCVStyleLoader(path, batch_size=0)
    with pytest.raises(ValueError):
        FFCVStyleLoader(path, num_workers=0)
