"""End-to-end EMLIO tests: daemon → MQ → receiver → pipeline over loopback."""

import numpy as np
import pytest

from repro.core.config import EMLIOConfig
from repro.core.planner import Planner
from repro.core.service import EMLIOService
from repro.net.emulation import NetworkProfile
from repro.serialize.payload import BatchPayload


@pytest.fixture
def config():
    return EMLIOConfig(batch_size=4, epochs=1, hwm=8, output_hw=(16, 16), prefetch=2)


def collect_epoch(service, epoch=0):
    batches = []
    for tensors, labels in service.epoch(epoch):
        batches.append((tensors, labels))
    return batches


def test_single_epoch_delivers_all_samples(small_imagenet, config):
    with EMLIOService(config, small_imagenet) as svc:
        batches = collect_epoch(svc)
    total = sum(len(labels) for _t, labels in batches)
    assert total == small_imagenet.num_samples
    for tensors, labels in batches:
        assert tensors.shape[1:] == (3, 16, 16)
        assert tensors.dtype == np.float32
        assert labels.dtype == np.int64


def test_labels_match_dataset_multiset(small_imagenet, config):
    expected = sorted(
        label for labels in small_imagenet.labels().values() for label in labels
    )
    with EMLIOService(config, small_imagenet) as svc:
        got = sorted(
            int(l) for _t, labels in collect_epoch(svc) for l in labels
        )
    assert got == expected


def test_multiple_epochs(small_imagenet):
    cfg = EMLIOConfig(batch_size=4, epochs=2, output_hw=(16, 16))
    with EMLIOService(cfg, small_imagenet) as svc:
        n0 = sum(len(l) for _t, l in collect_epoch(svc, 0))
        n1 = sum(len(l) for _t, l in collect_epoch(svc, 1))
    assert n0 == n1 == small_imagenet.num_samples


def test_emulated_latency_epoch_still_completes(small_imagenet, config):
    profile = NetworkProfile("lan", rtt_s=0.01)
    with EMLIOService(config, small_imagenet, profile=profile) as svc:
        batches = collect_epoch(svc)
    assert sum(len(l) for _t, l in batches) == small_imagenet.num_samples


def test_daemon_concurrency_2(small_imagenet):
    cfg = EMLIOConfig(batch_size=4, daemon_threads=2, streams_per_node=2, output_hw=(16, 16))
    with EMLIOService(cfg, small_imagenet) as svc:
        batches = collect_epoch(svc)
    assert sum(len(l) for _t, l in batches) == small_imagenet.num_samples


def test_sharded_storage_two_daemons(small_imagenet, config):
    shards = [ix.shard for ix in small_imagenet.indexes]
    split = {
        str(small_imagenet.root): set(shards[: len(shards) // 2]),
        str(small_imagenet.root) + "/.": set(shards[len(shards) // 2 :]),
    }
    with EMLIOService(config, small_imagenet, storage_shards=split) as svc:
        assert len(svc.daemons) == 2
        batches = collect_epoch(svc)
    assert sum(len(l) for _t, l in batches) == small_imagenet.num_samples
    sent = [d.stats.snapshot()["batches_sent"] for d in svc.daemons]
    assert all(s > 0 for s in sent)


def test_sharded_storage_overlap_rejected(small_imagenet, config):
    shards = {ix.shard for ix in small_imagenet.indexes}
    with pytest.raises(ValueError, match="two daemons"):
        EMLIOService(
            config,
            small_imagenet,
            storage_shards={
                str(small_imagenet.root): shards,
                str(small_imagenet.root) + "/.": shards,
            },
        )


def test_sharded_storage_missing_shards_rejected(small_imagenet, config):
    shards = [ix.shard for ix in small_imagenet.indexes]
    with pytest.raises(ValueError, match="unserved"):
        EMLIOService(
            config,
            small_imagenet,
            storage_shards={str(small_imagenet.root): set(shards[:1])},
        )


def test_service_stats(small_imagenet, config):
    with EMLIOService(config, small_imagenet) as svc:
        collect_epoch(svc)
        stats = svc.stats()
    assert stats["batches_received"] == len(svc.plan.for_epoch_node(0, 0))
    d = stats["daemons"][0]
    assert d["samples_sent"] == small_imagenet.num_samples
    assert d["bytes_sent"] > 0
    assert stats["gpu"]["kernels_run"] > 0


def test_raw_dataset_end_to_end(small_synthetic):
    cfg = EMLIOConfig(batch_size=4, output_hw=(8, 8))
    with EMLIOService(cfg, small_synthetic) as svc:
        batches = collect_epoch(svc)
    assert sum(len(l) for _t, l in batches) == small_synthetic.num_samples


@pytest.mark.filterwarnings("ignore::pytest.PytestUnhandledThreadExceptionWarning")
def test_receiver_rejects_foreign_batch(small_imagenet, config):
    """A payload addressed to another node must crash loudly, not train."""
    from repro.core.receiver import EMLIOReceiver
    from repro.net.mq import PushSocket
    from repro.serialize.payload import encode_batch

    plan = Planner(small_imagenet, num_nodes=1, config=config).plan()
    receiver = EMLIOReceiver(node_id=0, plan=plan, config=config, stall_timeout=2.0)
    push = PushSocket([receiver.address], hwm=4)
    rogue = BatchPayload(
        epoch=0, batch_index=0, shard="shard_00000", samples=[b"x"], labels=[1], node_id=7
    )
    push.send(encode_batch(rogue))
    import time

    deadline = time.monotonic() + 5
    while receiver._receiver_thread.is_alive() and time.monotonic() < deadline:
        time.sleep(0.05)
    assert not receiver._receiver_thread.is_alive()  # died on the assertion
    push.close()
    receiver.pull.close()


def test_timeline_logging(small_imagenet, config):
    with EMLIOService(config, small_imagenet) as svc:
        collect_epoch(svc)
        recv_events = svc.receiver.logger.events("batch_recv")
        daemon_events = svc.daemons[0].logger.events("batch_send")
    assert len(recv_events) == len(daemon_events) == len(svc.plan.assignments)
    span = svc.receiver.logger.span("epoch_start", "epoch_end")
    assert span > 0
