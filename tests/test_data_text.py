"""Tests for the text/LLM record format and generator (paper §6 extension)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.text import SyntheticTokenDataset, tokens_decode, tokens_encode
from repro.gpu.ops import decode_sample, decode_tokens_batch


def test_tokens_roundtrip():
    tokens = np.array([1, 2, 3, 65535, 2**31], dtype=np.uint32)
    assert np.array_equal(tokens_decode(tokens_encode(tokens)), tokens)


def test_tokens_reject_2d():
    with pytest.raises(ValueError):
        tokens_encode(np.zeros((2, 2), dtype=np.uint32))


def test_tokens_bad_magic():
    data = bytearray(tokens_encode(np.arange(4, dtype=np.uint32)))
    data[0] = ord("X")
    with pytest.raises(ValueError, match="magic"):
        tokens_decode(bytes(data))


def test_tokens_truncation_detected():
    data = tokens_encode(np.arange(10, dtype=np.uint32))
    with pytest.raises(ValueError, match="length mismatch"):
        tokens_decode(data[:-4])


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=2**32 - 1), min_size=1, max_size=256))
def test_tokens_property_roundtrip(ids):
    arr = np.array(ids, dtype=np.uint32)
    assert np.array_equal(tokens_decode(tokens_encode(arr)), arr)


def test_generator_shapes_and_bounds():
    gen = SyntheticTokenDataset(5, context_len=128, vocab_size=1000, seed=1)
    items = list(gen)
    assert len(items) == 5
    for record, target in items:
        tokens = tokens_decode(record)
        assert tokens.shape == (128,)
        assert tokens.max() < 1000
        assert 0 <= target < 1000
        assert len(record) == gen.sample_bytes


def test_generator_zipf_head_heavy():
    """Zipf tokens: the most common id should dominate."""
    gen = SyntheticTokenDataset(4, context_len=4096, vocab_size=32000, seed=0)
    record, _ = next(iter(gen))
    tokens = tokens_decode(record)
    counts = np.bincount(tokens)
    # Zipf(a=1.2): rank-1 frequency = 1/zeta(1.2) ~ 18 %, far above uniform.
    assert counts[0] == counts.max()
    assert counts[0] > len(tokens) * 0.1


def test_generator_deterministic():
    a = list(SyntheticTokenDataset(3, context_len=32, seed=9))
    b = list(SyntheticTokenDataset(3, context_len=32, seed=9))
    assert a == b


def test_generator_validation():
    with pytest.raises(ValueError):
        SyntheticTokenDataset(0)
    with pytest.raises(ValueError):
        SyntheticTokenDataset(1, context_len=1)
    with pytest.raises(ValueError):
        SyntheticTokenDataset(1, vocab_size=1)
    with pytest.raises(ValueError):
        SyntheticTokenDataset(1, zipf_a=1.0)


def test_decode_tokens_batch():
    gen = SyntheticTokenDataset(4, context_len=64, seed=2)
    samples = [record for record, _t in gen]
    batch = decode_tokens_batch(samples)
    assert batch.shape == (4, 64)
    assert batch.dtype == np.int64


def test_decode_tokens_batch_mixed_lengths_rejected():
    a = tokens_encode(np.arange(8, dtype=np.uint32))
    b = tokens_encode(np.arange(16, dtype=np.uint32))
    with pytest.raises(ValueError, match="mixed context lengths"):
        decode_tokens_batch([a, b])


def test_decode_sample_dispatches_tok0():
    record = tokens_encode(np.arange(32, dtype=np.uint32))
    img = decode_sample(record)
    assert img.shape == (1, 32, 1)


def test_text_dataset_through_emlio(tmp_path):
    """End-to-end: token records shard, stream, and decode through EMLIO."""
    from repro.core.config import EMLIOConfig
    from repro.core.planner import Planner
    from repro.core.receiver import EMLIOReceiver
    from repro.core.daemon import EMLIODaemon
    from repro.serialize.payload import decode_batch
    from repro.tfrecord.sharder import write_shards

    gen = SyntheticTokenDataset(16, context_len=64, seed=3)
    ds = write_shards(iter(gen), tmp_path, records_per_shard=8)
    cfg = EMLIOConfig(batch_size=4)
    plan = Planner(ds, num_nodes=1, config=cfg).plan()

    import queue as queue_mod
    import threading

    from repro.net.mq import PullSocket

    pull = PullSocket(hwm=16)
    daemon = EMLIODaemon(ds.root, plan, {0: ("127.0.0.1", pull.port)}, cfg)
    t = threading.Thread(target=daemon.serve_epoch, args=(0,), daemon=True)
    t.start()
    seen = 0
    contexts = []
    while seen < len(plan.assignments):
        payload = decode_batch(pull.recv(timeout=10))
        contexts.append(decode_tokens_batch(payload.samples))
        seen += 1
    t.join(timeout=10)
    pull.close()
    daemon.close()
    total = sum(c.shape[0] for c in contexts)
    assert total == 16
    assert all(c.shape[1] == 64 for c in contexts)
