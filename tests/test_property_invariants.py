"""Cross-cutting property tests on core invariants (hypothesis-driven).

These hammer the DES resources, the energy accumulator, the end-to-end
record path, and the failover re-plan with randomized operation sequences —
the invariants here are what every higher-level result silently relies on.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.energy.accumulator import Accumulator
from repro.sim.core import Simulator
from repro.sim.resources import Resource, Store

# -- Store: conservation and FIFO under arbitrary producer/consumer timing ----


@settings(max_examples=60, deadline=None)
@given(
    n_items=st.integers(min_value=1, max_value=40),
    capacity=st.integers(min_value=1, max_value=8),
    prod_delays=st.lists(st.floats(min_value=0, max_value=0.5), min_size=1, max_size=8),
    cons_delays=st.lists(st.floats(min_value=0, max_value=0.5), min_size=1, max_size=8),
)
def test_store_conserves_items_and_order(n_items, capacity, prod_delays, cons_delays):
    sim = Simulator()
    store = Store(sim, capacity=capacity)
    received = []

    def producer():
        for i in range(n_items):
            yield sim.timeout(prod_delays[i % len(prod_delays)])
            yield store.put(i)

    def consumer():
        for i in range(n_items):
            yield sim.timeout(cons_delays[i % len(cons_delays)])
            item = yield store.get()
            received.append(item)
            assert store.level <= capacity

    sim.process(producer())
    p = sim.process(consumer())
    sim.run(until=p)
    assert received == list(range(n_items))  # exactly once, in order


@settings(max_examples=40, deadline=None)
@given(
    capacity=st.integers(min_value=1, max_value=6),
    jobs=st.lists(st.floats(min_value=0.01, max_value=1.0), min_size=1, max_size=20),
)
def test_resource_never_oversubscribed_and_work_conserves(capacity, jobs):
    sim = Simulator()
    res = Resource(sim, capacity=capacity)
    active = {"now": 0, "max": 0}
    spans = []

    def worker(duration):
        yield res.request()
        active["now"] += 1
        active["max"] = max(active["max"], active["now"])
        start = sim.now
        try:
            yield sim.timeout(duration)
        finally:
            active["now"] -= 1
            res.release()
        spans.append((start, sim.now))

    procs = [sim.process(worker(d)) for d in jobs]
    sim.run_all(procs)
    assert active["max"] <= capacity
    # Work conservation: makespan >= total work / capacity, and every job ran.
    assert len(spans) == len(jobs)
    assert sim.now >= sum(jobs) / capacity - 1e-9
    assert sim.now <= sum(jobs) + 1e-9


# -- Accumulator: gapless output under arbitrary drop patterns ----------------


@settings(max_examples=60, deadline=None)
@given(
    n_ticks=st.integers(min_value=2, max_value=30),
    dropped=st.sets(st.integers(min_value=0, max_value=29), max_size=15),
    values=st.lists(
        st.floats(min_value=0.0, max_value=100.0), min_size=30, max_size=30
    ),
)
def test_accumulator_output_is_gapless_and_bounded(n_ticks, dropped, values):
    """Whatever ticks one stream drops, the merged series has a value for
    every tick, and interpolated values stay within the data's range."""
    interval = 0.1
    anchor = [(k * interval, {"anchor": 1.0}) for k in range(n_ticks)]
    flaky = [
        (k * interval, {"e": values[k]})
        for k in range(n_ticks)
        if k not in dropped
    ]
    if not flaky:  # all dropped: nothing to interpolate from
        return
    merged = Accumulator(tick_interval=interval).merge([anchor, flaky])
    assert len(merged) == n_ticks
    present = [values[k] for k in range(n_ticks) if k not in dropped]
    lo, hi = min(present), max(present)
    for sample in merged:
        assert "e" in sample.fields  # gapless
        assert lo - 1e-9 <= sample.fields["e"] <= hi + 1e-9  # no overshoot


@settings(max_examples=40, deadline=None)
@given(
    drop=st.integers(min_value=1, max_value=8),
)
def test_accumulator_linear_signal_reconstructed_exactly(drop):
    """Linear power trace with one dropped tick: interpolation is exact."""
    n = 10
    interval = 0.1
    full = [(k * interval, {"e": 3.0 * k}) for k in range(n)]
    flaky = [t for i, t in enumerate(full) if i != drop]
    anchor = [(k * interval, {"a": 0.0}) for k in range(n)]
    merged = Accumulator(tick_interval=interval).merge([anchor, flaky])
    assert merged[drop].fields["e"] == pytest.approx(3.0 * drop)
    assert "e" in merged[drop].interpolated


# -- end-to-end record path: shard -> plan -> slice -> payload -> decode ------


@settings(max_examples=20, deadline=None)
@given(
    sizes=st.lists(st.integers(min_value=1, max_value=300), min_size=1, max_size=24),
    batch=st.integers(min_value=1, max_value=6),
    seed=st.integers(min_value=0, max_value=50),
)
def test_record_path_roundtrip(tmp_path_factory, sizes, batch, seed):
    """Arbitrary record sizes survive shard -> plan -> mmap slice ->
    msgpack payload -> decode, byte-exactly and exactly once."""
    from repro.core.config import EMLIOConfig
    from repro.core.planner import Planner
    from repro.serialize.payload import BatchPayload, decode_batch, encode_batch
    from repro.tfrecord.reader import TFRecordReader
    from repro.tfrecord.sharder import unpack_example, write_shards

    rng = np.random.default_rng(seed)
    samples = [
        (rng.integers(0, 256, n, dtype=np.uint8).tobytes(), int(rng.integers(0, 9)))
        for n in sizes
    ]
    root = tmp_path_factory.mktemp("rp")
    ds = write_shards(samples, root, records_per_shard=8)
    plan = Planner(ds, num_nodes=1, config=EMLIOConfig(batch_size=batch, seed=seed)).plan()

    delivered = []
    readers = {}
    for a in plan.assignments:
        reader = readers.setdefault(a.shard_path, TFRecordReader(root / a.shard_path))
        records = reader.read_range(a.offset, a.count)
        decoded = [unpack_example(r) for r in records]
        payload = encode_batch(
            BatchPayload(
                epoch=a.epoch, batch_index=a.batch_index, shard=a.shard,
                samples=[s for s, _l in decoded], labels=[l for _s, l in decoded],
            )
        )
        out = decode_batch(payload)
        delivered.extend(zip(out.samples, out.labels))
    for r in readers.values():
        r.close()
    assert sorted(delivered) == sorted(samples)


# -- failover re-plan: residual covers exactly the undelivered batches ---------


def _synthetic_plan(shard_sizes, batch, nodes, epochs=1):
    """A plan with the planner's shape (contiguous runs, round-robin shards)
    built without touching disk — fast enough to hammer with hypothesis."""
    from repro.core.planner import BatchAssignment, BatchPlan

    rec_bytes = 64
    assignments = []
    for epoch in range(epochs):
        next_index = {n: 0 for n in range(nodes)}
        for si, nrec in enumerate(shard_sizes):
            node = si % nodes
            start = 0
            while start < nrec:
                count = min(batch, nrec - start)
                assignments.append(
                    BatchAssignment(
                        epoch=epoch,
                        node_id=node,
                        batch_index=next_index[node],
                        shard=f"shard_{si:05d}",
                        shard_path=f"shard_{si:05d}.tfrecord",
                        start_record=start,
                        offset=start * rec_bytes,
                        nbytes=count * rec_bytes,
                        count=count,
                        labels=tuple(0 for _ in range(count)),
                    )
                )
                next_index[node] += 1
                start += count
    return BatchPlan(
        assignments=tuple(assignments),
        num_nodes=nodes,
        epochs=epochs,
        batch_size=batch,
        coverage="partition",
    )


@settings(max_examples=60, deadline=None)
@given(
    shard_sizes=st.lists(st.integers(min_value=1, max_value=20), min_size=1, max_size=8),
    batch=st.integers(min_value=1, max_value=6),
    nodes=st.integers(min_value=1, max_value=3),
    epochs=st.integers(min_value=1, max_value=2),
    data=st.data(),
)
def test_residual_plan_covers_exactly_the_undelivered(shard_sizes, batch, nodes, epochs, data):
    plan = _synthetic_plan(shard_sizes, batch, nodes, epochs=epochs)
    keys = sorted(plan.keys())
    delivered = set(data.draw(st.sets(st.sampled_from(keys)), label="delivered"))
    residual = plan.residual(delivered)

    # Covers exactly the undelivered batches — no more, no less.
    assert residual.keys() == plan.keys() - delivered
    # Batch-size and contiguity invariants survive the re-plan.
    for a in residual.assignments:
        assert 1 <= a.count <= plan.batch_size
        assert a.count == len(a.labels)
        assert a.offset == a.start_record * 64  # one contiguous run per shard
    # Never double-assigns a record: per (epoch, shard), residual record
    # ranges are pairwise disjoint.
    by_shard: dict[tuple[int, str], list[tuple[int, int]]] = {}
    for a in residual.assignments:
        by_shard.setdefault((a.epoch, a.shard), []).append(
            (a.start_record, a.start_record + a.count)
        )
    for runs in by_shard.values():
        runs.sort()
        for (_s0, e0), (s1, _e1) in zip(runs, runs[1:]):
            assert e0 <= s1


@settings(max_examples=60, deadline=None)
@given(
    shard_sizes=st.lists(st.integers(min_value=1, max_value=20), min_size=1, max_size=8),
    batch=st.integers(min_value=1, max_value=6),
    num_roots=st.integers(min_value=2, max_value=4),
    data=st.data(),
)
def test_failover_replan_places_each_needed_shard_exactly_once(
    shard_sizes, batch, num_roots, data
):
    """plan_failover covers every shard with undelivered batches exactly
    once on a reachable survivor, or refuses loudly when it can't."""
    from repro.core.recovery import DeliveryLedger, FailoverCoordinator, FailoverError

    plan = _synthetic_plan(shard_sizes, batch, nodes=1)
    shards = sorted({a.shard for a in plan.assignments})
    # Random disjoint ownership of shards across roots.
    owner = {s: data.draw(st.integers(0, num_roots - 1), label=f"owner:{s}") for s in shards}
    roots = {f"root{r}": {s for s in shards if owner[s] == r} for r in range(num_roots)}
    dead_root = f"root{data.draw(st.integers(0, num_roots - 1), label='dead')}"
    # Random replication: which (root, shard_path) pairs are reachable.
    reach = {
        (f"root{r}", a.shard_path)
        for r in range(num_roots)
        for a in plan.assignments
        if data.draw(st.booleans(), label=f"reach:{r}:{a.shard}")
    }
    keys = sorted(plan.keys())
    delivered = set(data.draw(st.sets(st.sampled_from(keys)), label="delivered"))

    ledger = DeliveryLedger(None)
    for key in delivered:
        ledger.record(*key)
    coord = FailoverCoordinator(
        plan, ledger, roots, reachable=lambda root, path: (root, path) in reach
    )
    residual = plan.residual(delivered, epoch=0, shards=roots[dead_root])
    needed = {a.shard: a.shard_path for a in residual.assignments}
    survivors = [r for r in roots if r != dead_root]
    coverable = all(
        any((r, path) in reach for r in survivors) for path in needed.values()
    )

    if not coverable:
        with pytest.raises(FailoverError):
            coord.plan_failover(dead_root, 0)
        return
    takeover = coord.plan_failover(dead_root, 0)
    placed = [s for shard_set in takeover.values() for s in shard_set]
    assert sorted(placed) == sorted(needed)  # each needed shard exactly once
    assert dead_root not in takeover
    for root, shard_set in takeover.items():
        for s in shard_set:
            assert (root, needed[s]) in reach  # only reachable placements
