"""Tests for the PyTorch-style and DALI-style baseline loaders."""

import numpy as np
import pytest

from repro.loaders.base import epoch_sample_order
from repro.loaders.dali_loader import DALIStyleLoader
from repro.loaders.pytorch_loader import PyTorchStyleLoader
from repro.storage.localfs import LocalStorage
from repro.storage.nfs import NFSMount
from repro.storage.server import StorageServer


@pytest.fixture
def local_storage(small_imagenet):
    return LocalStorage(small_imagenet.root)


def expected_labels(ds):
    return sorted(l for labels in ds.labels().values() for l in labels)


# -- sample order -----------------------------------------------------------------


def test_epoch_sample_order_is_permutation(small_imagenet):
    order = epoch_sample_order(small_imagenet, 0, seed=1)
    assert len(order) == small_imagenet.num_samples
    assert len({(ix.shard, r) for ix, r in order}) == small_imagenet.num_samples


def test_epoch_sample_order_varies_by_epoch(small_imagenet):
    o0 = [(ix.shard, r) for ix, r in epoch_sample_order(small_imagenet, 0, seed=1)]
    o1 = [(ix.shard, r) for ix, r in epoch_sample_order(small_imagenet, 1, seed=1)]
    assert o0 != o1


# -- PyTorch-style -----------------------------------------------------------------


def test_pytorch_loader_full_epoch(small_imagenet, local_storage):
    loader = PyTorchStyleLoader(
        small_imagenet, local_storage, batch_size=4, num_workers=2, output_hw=(16, 16)
    )
    batches = list(loader.epoch())
    assert sum(len(l) for _t, l in batches) == small_imagenet.num_samples
    got = sorted(int(l) for _t, labels in batches for l in labels)
    assert got == expected_labels(small_imagenet)
    for tensors, _l in batches:
        assert tensors.shape[1:] == (3, 16, 16)


def test_pytorch_loader_per_sample_reads(small_imagenet, local_storage):
    """The defining baseline property: one read op per sample."""
    loader = PyTorchStyleLoader(
        small_imagenet, local_storage, batch_size=4, num_workers=2, output_hw=(16, 16)
    )
    list(loader.epoch())
    assert loader.stats.read_ops == small_imagenet.num_samples


def test_pytorch_loader_drop_last(small_imagenet, local_storage):
    loader = PyTorchStyleLoader(
        small_imagenet, local_storage, batch_size=5, num_workers=2,
        output_hw=(16, 16), drop_last=True,
    )
    batches = list(loader.epoch())
    assert all(len(l) == 5 for _t, l in batches)
    assert sum(len(l) for _t, l in batches) == (small_imagenet.num_samples // 5) * 5


def test_pytorch_loader_deterministic_order(small_imagenet, local_storage):
    def labels_of(run):
        return [tuple(l.tolist()) for _t, l in run]

    l1 = PyTorchStyleLoader(small_imagenet, local_storage, batch_size=4, num_workers=3, output_hw=(16, 16), seed=5)
    l2 = PyTorchStyleLoader(small_imagenet, local_storage, batch_size=4, num_workers=1, output_hw=(16, 16), seed=5)
    assert labels_of(l1.epoch()) == labels_of(l2.epoch())


def test_pytorch_loader_over_nfs(small_imagenet):
    srv = StorageServer(str(small_imagenet.root))
    mount = NFSMount("127.0.0.1", srv.port, pool_size=4)
    loader = PyTorchStyleLoader(small_imagenet, mount, batch_size=4, num_workers=4, output_hw=(16, 16))
    batches = list(loader.epoch())
    assert sum(len(l) for _t, l in batches) == small_imagenet.num_samples
    assert mount.stats.snapshot()["reads"] == small_imagenet.num_samples
    mount.close()
    srv.close()


def test_pytorch_loader_validation(small_imagenet, local_storage):
    with pytest.raises(ValueError):
        PyTorchStyleLoader(small_imagenet, local_storage, batch_size=0)
    with pytest.raises(ValueError):
        PyTorchStyleLoader(small_imagenet, local_storage, num_workers=0)


# -- DALI-style --------------------------------------------------------------------


def test_dali_loader_full_epoch(small_imagenet, local_storage):
    loader = DALIStyleLoader(
        small_imagenet, local_storage, batch_size=4, read_threads=2, output_hw=(16, 16)
    )
    batches = list(loader.epoch())
    assert sum(len(l) for _t, l in batches) == small_imagenet.num_samples
    got = sorted(int(l) for _t, labels in batches for l in labels)
    assert got == expected_labels(small_imagenet)


def test_dali_loader_batched_reads(small_imagenet, local_storage):
    """DALI reads per batch (contiguous run), not per sample."""
    loader = DALIStyleLoader(
        small_imagenet, local_storage, batch_size=4, read_threads=1, output_hw=(16, 16)
    )
    list(loader.epoch())
    expected_batches = sum(-(-ix.num_records // 4) for ix in small_imagenet.indexes)
    assert loader.stats.read_ops == expected_batches
    assert loader.stats.read_ops < small_imagenet.num_samples


def test_dali_loader_gpu_offload_accounted(small_imagenet, local_storage):
    loader = DALIStyleLoader(small_imagenet, local_storage, batch_size=4, output_hw=(16, 16))
    list(loader.epoch())
    snap = loader.gpu.snapshot()
    assert snap["kernels_run"] > 0
    assert snap["busy_s"] > 0


def test_dali_loader_over_nfs(small_imagenet):
    srv = StorageServer(str(small_imagenet.root))
    mount = NFSMount("127.0.0.1", srv.port, pool_size=2)
    loader = DALIStyleLoader(small_imagenet, mount, batch_size=4, read_threads=2, output_hw=(16, 16))
    batches = list(loader.epoch())
    assert sum(len(l) for _t, l in batches) == small_imagenet.num_samples
    mount.close()
    srv.close()


def test_dali_loader_epoch_shuffles_shards(tmp_path):
    # Enough shards (16) that two epochs sharing a permutation is ~1/16!.
    from repro.tfrecord.sharder import write_shards

    samples = [(bytes([i % 251]) * 40, i % 5) for i in range(32)]
    ds = write_shards(samples, tmp_path, records_per_shard=2)
    loader = DALIStyleLoader(ds, LocalStorage(ds.root), batch_size=2, output_hw=(16, 16))
    p0 = [(p, o) for p, o, _n, _l in loader._plan_batches(0)]
    p1 = [(p, o) for p, o, _n, _l in loader._plan_batches(1)]
    assert p0 != p1


def test_dali_loader_validation(small_imagenet, local_storage):
    with pytest.raises(ValueError):
        DALIStyleLoader(small_imagenet, local_storage, batch_size=0)
    with pytest.raises(ValueError):
        DALIStyleLoader(small_imagenet, local_storage, read_threads=0)


def test_loaders_and_emlio_agree_on_samples(small_imagenet, local_storage):
    """All three pipelines deliver the same sample multiset."""
    from repro.core.config import EMLIOConfig
    from repro.core.service import EMLIOService

    pt = PyTorchStyleLoader(small_imagenet, local_storage, batch_size=4, output_hw=(16, 16))
    da = DALIStyleLoader(small_imagenet, local_storage, batch_size=4, output_hw=(16, 16))
    pt_labels = sorted(int(l) for _t, ls in pt.epoch() for l in ls)
    da_labels = sorted(int(l) for _t, ls in da.epoch() for l in ls)
    with EMLIOService(EMLIOConfig(batch_size=4, output_hw=(16, 16)), small_imagenet) as svc:
        em_labels = sorted(int(l) for _t, ls in svc.epoch(0) for l in ls)
    assert pt_labels == da_labels == em_labels == expected_labels(small_imagenet)
