"""Tiered storage subsystem: backends, hot-set cache, daemon routing, deploy.

Covers the storage-tier protocol (localfs/nfs/objectstore behind one
``StorageBackend`` seam), the plan-informed cache (Belady eviction,
background prefetch, CRC preservation across tiers), the daemon's bounded
handle table, and the deploy-level wiring (``backend = "nfs"`` really
serving reads through the mount, object-store specs running end to end,
``StorageServer`` death mid-epoch failing loudly).
"""

from __future__ import annotations

import threading
import time
from dataclasses import replace
from pathlib import Path

import pytest

from repro.api import EMLIO, preset
from repro.api.spec import ClusterSpec, SpecError, StorageSpec
from repro.core.config import EMLIOConfig
from repro.core.daemon import EMLIODaemon
from repro.core.planner import Planner
from repro.core.service import EMLIOService
from repro.storage.backend import LocalFSBackend, NFSBackend
from repro.storage.cache import CachedBackend, HotSetCache, PlanRange
from repro.storage.nfs import NFSMount
from repro.storage.objectstore import ObjectStoreBackend
from repro.storage.server import StorageServer
from repro.tfrecord.reader import TFRecordCorruption, TFRecordReader


def _plan_ranges(dataset, batch_size=4, epochs=1):
    cfg = EMLIOConfig(batch_size=batch_size, epochs=epochs)
    plan = Planner(dataset, num_nodes=1, config=cfg).plan()
    return plan, [
        (a.shard_path, a.offset, a.nbytes, a.count) for a in plan.assignments
    ]


def _read_ranges(backend, ranges):
    out = []
    for shard_path, offset, nbytes, count in ranges:
        handle = backend.open_shard(shard_path)
        try:
            out.append([bytes(v) for v in
                        handle.read_range_views(offset, count, nbytes=nbytes)])
        finally:
            handle.close()
    return out


# -- backend parity ------------------------------------------------------------


def test_localfs_and_objectstore_serve_identical_records(small_imagenet):
    _, ranges = _plan_ranges(small_imagenet)
    local = LocalFSBackend(small_imagenet.root)
    remote = ObjectStoreBackend(small_imagenet.root)
    try:
        assert _read_ranges(local, ranges) == _read_ranges(remote, ranges)
    finally:
        local.close()
        remote.close()
    assert local.stats.snapshot()["reads"] == len(ranges)
    assert remote.stats.snapshot()["reads"] == len(ranges)


def test_remote_handle_header_walk_without_nbytes_hint(small_imagenet):
    # Tooling paths have no plan hint: the handle walks record headers.
    _, ranges = _plan_ranges(small_imagenet)
    shard_path, offset, nbytes, count = ranges[0]
    backend = ObjectStoreBackend(small_imagenet.root)
    reader = TFRecordReader(small_imagenet.root / shard_path)
    try:
        handle = backend.open_shard(shard_path)
        walked = handle.read_range(offset, count)  # no nbytes
        assert walked == reader.read_range(offset, count)
        # Two small GETs per record vs one planned-range GET.
        assert backend.requests == 2 * count
    finally:
        reader.close()
        backend.close()


def test_objectstore_charges_latency_per_request(small_imagenet):
    _, ranges = _plan_ranges(small_imagenet)
    backend = ObjectStoreBackend(small_imagenet.root, request_latency_s=0.005)
    try:
        t0 = time.perf_counter()
        _read_ranges(backend, ranges[:4])
        elapsed = time.perf_counter() - t0
    finally:
        backend.close()
    assert backend.requests == 4
    assert elapsed >= 4 * 0.005  # sleep() is a lower bound — deterministic


def test_objectstore_rejects_negative_latency(tmp_path):
    with pytest.raises(ValueError, match="request_latency_s"):
        ObjectStoreBackend(tmp_path, request_latency_s=-1.0)


# -- per-read CRC across tiers (satellite: fault tests) ------------------------


def test_objectstore_short_range_read_raises(small_imagenet):
    _, ranges = _plan_ranges(small_imagenet)
    shard_path, offset, nbytes, count = ranges[0]
    backend = ObjectStoreBackend(small_imagenet.root)
    try:
        handle = backend.open_shard(shard_path)
        with pytest.raises(TFRecordCorruption, match="bad range read"):
            handle.read_range_views(offset, count, nbytes=nbytes - 8)
    finally:
        backend.close()


def test_objectstore_corrupt_range_read_raises(small_imagenet):
    _, ranges = _plan_ranges(small_imagenet)
    shard_path, offset, nbytes, count = ranges[0]
    path = small_imagenet.root / shard_path
    raw = bytearray(path.read_bytes())
    raw[offset + 20] ^= 0xFF  # flip a record-body byte inside the range
    path.write_bytes(bytes(raw))
    backend = ObjectStoreBackend(small_imagenet.root)
    try:
        handle = backend.open_shard(shard_path)
        with pytest.raises(TFRecordCorruption, match=shard_path):
            handle.read_range_views(offset, count, nbytes=nbytes)
    finally:
        backend.close()


def test_corrupt_shard_fails_objectstore_epoch_loudly(small_imagenet):
    plan, ranges = _plan_ranges(small_imagenet)
    shard_path, offset, _nbytes, _count = ranges[0]
    path = small_imagenet.root / shard_path
    raw = bytearray(path.read_bytes())
    raw[offset + 20] ^= 0xFF
    path.write_bytes(bytes(raw))
    cfg = EMLIOConfig(batch_size=4, epochs=1, output_hw=(16, 16))
    with EMLIOService(
        cfg, small_imagenet,
        storage_factory=lambda root: ObjectStoreBackend(root),
        stall_timeout=5.0,
    ) as svc:
        # The daemon dies on the CRC failure; receivers stall and the
        # epoch raises rather than silently dropping batches.
        with pytest.raises(Exception):
            for _ in svc.epoch(0):
                pass


# -- hot-set cache -------------------------------------------------------------


def test_hot_set_cache_counts_hits_and_misses():
    cache = HotSetCache(1024)
    key = ("s.tfrecord", 0, 10)
    assert cache.get(key) is None
    assert cache.put(key, b"x" * 10)
    assert cache.get(key) == b"x" * 10
    snap = cache.stats.snapshot()
    assert snap["hits"] == 1 and snap["misses"] == 1
    assert cache.hot_shards() == {"s.tfrecord"}


def test_hot_set_cache_evicts_farthest_next_use_first():
    cache = HotSetCache(20)
    a, b, c = ("s", 0, 10), ("s", 10, 10), ("s", 20, 10)
    # Serve order: a, c, a, c, ... b is never used again.
    cache.plan([a, c, a, c])
    cache.put(a, b"A" * 10)
    cache.put(b, b"B" * 10)
    cache.put(c, b"C" * 10)  # capacity forces one eviction: b (next use = inf)
    assert c in cache and a in cache and b not in cache
    assert cache.stats.snapshot()["evictions"] == 1


def test_hot_set_cache_refuses_to_evict_sooner_needed_blocks():
    cache = HotSetCache(20)
    a, b, late = ("s", 0, 10), ("s", 10, 10), ("s", 20, 10)
    cache.plan([a, b, late])  # a and b are both needed before late
    cache.put(a, b"A" * 10)
    cache.put(b, b"B" * 10)
    assert not cache.put(late, b"L" * 10)  # losing trade — refused
    assert a in cache and b in cache and late not in cache


def test_hot_set_cache_rejects_oversized_and_bad_capacity():
    with pytest.raises(ValueError, match="capacity_bytes"):
        HotSetCache(0)
    cache = HotSetCache(8)
    assert not cache.put(("s", 0, 16), b"x" * 16)


def test_cached_backend_eviction_under_pressure_refetches_correct_bytes(
    small_imagenet,
):
    # Capacity one block: with access order [a, b, b, a], Belady evicts a
    # to admit b (b's next use is sooner), then a's re-read after eviction
    # must re-fetch — never serve stale or mixed bytes.
    _, ranges = _plan_ranges(small_imagenet)
    a, b = ranges[0], ranges[1]
    block = max(a[2], b[2])
    inner = ObjectStoreBackend(small_imagenet.root)
    backend = CachedBackend(inner, capacity_bytes=block)
    reference = LocalFSBackend(small_imagenet.root)
    try:
        order = [a, b, b, a]
        backend.cache.plan((r[0], r[1], r[2]) for r in order)
        assert _read_ranges(backend, order) == _read_ranges(reference, order)
        snap = backend.cache.stats.snapshot()
        assert snap["evictions"] > 0
        # The second b read is the hit the eviction bought.
        assert snap["hits"] >= 1
        assert backend.cache.nbytes <= block
    finally:
        backend.close()
        reference.close()


def test_prefetch_warms_planned_ranges(small_imagenet):
    _, ranges = _plan_ranges(small_imagenet)
    backend = CachedBackend(ObjectStoreBackend(small_imagenet.root), 16 * 1024 * 1024)
    try:
        queued = backend.schedule_prefetch(ranges)
        assert queued == len(ranges)
        assert backend.wait_prefetch(timeout=30.0)
        assert backend.prefetch_errors == []
        snap = backend.cache.stats.snapshot()
        assert snap["prefetched"] == len(ranges)
        assert backend.hot_shards() == {r[0] for r in ranges}
        _read_ranges(backend, ranges)
        snap = backend.cache.stats.snapshot()
        assert snap["hits"] == len(ranges) and snap["misses"] == 0
        hits, misses, depth = backend.cache_counters()
        assert (hits, misses, depth) == (len(ranges), 0, 0)
    finally:
        backend.close()


def test_prefetch_never_caches_corrupt_blocks(small_imagenet):
    _, ranges = _plan_ranges(small_imagenet)
    shard_path, offset, nbytes, count = ranges[0]
    path = small_imagenet.root / shard_path
    raw = bytearray(path.read_bytes())
    raw[offset + 20] ^= 0xFF
    path.write_bytes(bytes(raw))
    backend = CachedBackend(ObjectStoreBackend(small_imagenet.root), 16 * 1024 * 1024)
    try:
        backend.schedule_prefetch([ranges[0]])
        assert backend.wait_prefetch(timeout=30.0)
        assert len(backend.prefetch_errors) == 1
        assert (shard_path, offset, nbytes) not in backend.cache
        # The serve path surfaces the real error on the batch that needs it.
        handle = backend.open_shard(shard_path)
        with pytest.raises(TFRecordCorruption):
            handle.read_range_views(offset, count, nbytes=nbytes)
    finally:
        backend.close()


def test_cache_hits_skip_the_remote_tier(small_imagenet):
    _, ranges = _plan_ranges(small_imagenet)
    inner = ObjectStoreBackend(small_imagenet.root)
    backend = CachedBackend(inner, 16 * 1024 * 1024)
    try:
        backend.schedule_prefetch(ranges)
        assert backend.wait_prefetch(timeout=30.0)
        fetched = inner.requests
        _read_ranges(backend, ranges)
        assert inner.requests == fetched  # all hits: zero new range-GETs
    finally:
        backend.close()


# -- daemon handle table (satellite: bounded _readers) -------------------------


def test_daemon_reader_table_is_lru_bounded(small_imagenet):
    plan, _ = _plan_ranges(small_imagenet)
    cfg = EMLIOConfig(batch_size=4, max_open_shards=2)
    daemon = EMLIODaemon(
        small_imagenet.root, plan, {0: ("127.0.0.1", 1)}, cfg
    )
    try:
        shard_paths = sorted({a.shard_path for a in plan.assignments})
        assert len(shard_paths) > 2
        for shard_path in shard_paths:
            daemon._reader(shard_path)
            assert len(daemon._readers) <= 2
        # MRU retained, LRU evicted.
        assert shard_paths[-1] in daemon._readers
        assert shard_paths[0] not in daemon._readers
        assert daemon.storage_snapshot()["open_shards"] <= 2
    finally:
        daemon.close()


def test_daemon_pinned_reader_survives_eviction_pressure(small_imagenet):
    plan, _ = _plan_ranges(small_imagenet)
    cfg = EMLIOConfig(batch_size=4, max_open_shards=1)
    daemon = EMLIODaemon(
        small_imagenet.root, plan, {0: ("127.0.0.1", 1)}, cfg
    )
    try:
        shard_paths = sorted({a.shard_path for a in plan.assignments})
        pinned = daemon._acquire_reader(shard_paths[0])
        for shard_path in shard_paths[1:]:
            daemon._reader(shard_path)
        assert daemon._readers[shard_paths[0]] is pinned  # pinned: not evicted
        daemon._release_reader(shard_paths[0])
        daemon._reader(shard_paths[-1])
        assert len(daemon._readers) <= 2  # pinned handle + the bound
    finally:
        daemon.close()


def test_many_shard_epoch_respects_handle_bound(small_imagenet):
    cfg = EMLIOConfig(batch_size=4, epochs=1, output_hw=(16, 16), max_open_shards=1)
    with EMLIOService(cfg, small_imagenet) as svc:
        total = sum(len(labels) for _t, labels in svc.epoch(0))
        assert total == small_imagenet.num_samples
        snap = svc.daemons[0].storage_snapshot()
    assert snap["open_shards"] <= 1


# -- spec + deploy wiring ------------------------------------------------------


def test_storage_spec_validates_cache_and_latency():
    assert StorageSpec(cache_bytes=1024).cache_bytes == 1024
    with pytest.raises(SpecError, match="cache_bytes"):
        StorageSpec(cache_bytes=-1)
    with pytest.raises(SpecError, match="latency_ms"):
        StorageSpec(latency_ms=-0.5)
    with pytest.raises(SpecError, match="objectstore"):
        StorageSpec(backend="localfs", latency_ms=5.0)
    spec = StorageSpec(backend="objectstore", latency_ms=5.0, cache_bytes=4096)
    round_tripped = StorageSpec.from_dict(
        {"backend": "objectstore", "latency_ms": 5.0, "cache_bytes": 4096}
    )
    assert round_tripped == spec


def test_nfs_backend_serves_daemon_reads_through_the_mount(small_imagenet):
    """Regression: ``backend = "nfs"`` used to be a silent no-op — the
    daemon kept mmap'ing local files.  Now every daemon read is a counted
    ``read_at`` on the mount, observable in the deployment's stats."""
    spec = ClusterSpec(
        name="nfs-tier",
        dataset=replace(preset("quickstart").dataset),
        pipeline=preset("quickstart").pipeline,
        storage=StorageSpec(backend="nfs"),
    )
    with EMLIO.deploy(spec, dataset=small_imagenet) as dep:
        total = sum(len(labels) for _t, labels in dep.epoch(0))
        stats = dep.stats()["storage"]
    assert total == small_imagenet.num_samples
    assert set(stats["tiers"]) == {"nfs"}
    nfs = stats["tiers"]["nfs"]
    assert nfs["reads"] > 0 and nfs["bytes_read"] > 0


def test_objectstore_spec_with_cache_runs_end_to_end(small_imagenet):
    base = preset("storage-tiers")
    spec = replace(
        base,
        storage=replace(base.storage, latency_ms=1.0),  # keep the test fast
    )
    with EMLIO.deploy(spec, dataset=small_imagenet) as dep:
        per_epoch = [
            sum(len(labels) for _t, labels in dep.epoch(e)) for e in range(2)
        ]
        status = dep.status()
        stats = dep.stats()["storage"]
    assert per_epoch == [small_imagenet.num_samples] * 2
    tier = stats["tiers"]["objectstore"]
    assert tier["reads"] > 0
    assert tier["cache_hits"] + tier["prefetched"] > 0
    # status() carries the same storage section, per daemon + aggregated.
    assert status["storage"]["tiers"]["objectstore"]["reads"] == tier["reads"]
    daemon_snap = status["storage"]["daemons"][0]
    assert daemon_snap["tier"] == "objectstore"
    assert "cache" in daemon_snap and daemon_snap["cache"]["capacity_bytes"] > 0


def test_localfs_cache_bytes_wraps_the_mmap_tier(small_imagenet):
    spec = ClusterSpec(
        name="localfs-cached",
        dataset=preset("quickstart").dataset,
        pipeline=preset("quickstart").pipeline,
        storage=StorageSpec(backend="localfs", cache_bytes=8 * 1024 * 1024),
    )
    with EMLIO.deploy(spec, dataset=small_imagenet) as dep:
        total = sum(len(labels) for _t, labels in dep.epoch(0))
        tier = dep.stats()["storage"]["tiers"]["localfs"]
    assert total == small_imagenet.num_samples
    assert tier["cache_hits"] + tier["prefetched"] > 0


def test_storage_tiers_spec_file_round_trips(tmp_path):
    spec_file = Path(__file__).resolve().parents[1] / "examples/specs/storage_tiers.toml"
    spec = ClusterSpec.from_file(spec_file)
    assert spec.storage.backend == "objectstore"
    assert spec.storage.cache_bytes == 8 * 1024 * 1024
    assert spec.storage.latency_ms == 5.0
    out = tmp_path / "round.toml"
    out.write_text(spec.to_toml())
    assert ClusterSpec.from_file(out) == spec


# -- StorageServer death mid-epoch (satellite: fault tests) --------------------


def test_storage_server_death_mid_epoch_fails_loudly_then_restart_succeeds(
    small_imagenet,
):
    cfg = EMLIOConfig(batch_size=4, epochs=1, output_hw=(16, 16))
    server = StorageServer(str(small_imagenet.root))

    def factory(root):
        return NFSBackend(NFSMount("127.0.0.1", server.port, pool_size=1))

    killed = threading.Event()

    def kill_server_once(assignment, push):
        if not killed.is_set():
            killed.set()
            server.close()

    with EMLIOService(
        cfg, small_imagenet, storage_factory=factory, stall_timeout=5.0
    ) as svc:
        svc.daemons[0].fault_injector = kill_server_once
        with pytest.raises(Exception):
            for _ in svc.epoch(0):
                pass
    assert killed.is_set()

    # A fresh server + deployment over the same dataset serves a clean epoch.
    server2 = StorageServer(str(small_imagenet.root))
    try:
        def factory2(root):
            return NFSBackend(NFSMount("127.0.0.1", server2.port, pool_size=1))

        with EMLIOService(cfg, small_imagenet, storage_factory=factory2) as svc:
            total = sum(len(labels) for _t, labels in svc.epoch(0))
        assert total == small_imagenet.num_samples
    finally:
        server2.close()


# -- service-level locality + heartbeat plumbing -------------------------------


def test_service_member_loads_carry_hot_shards(small_imagenet):
    cfg = EMLIOConfig(batch_size=4, epochs=1, output_hw=(16, 16))
    factory = lambda root: CachedBackend(  # noqa: E731
        ObjectStoreBackend(root), 16 * 1024 * 1024
    )
    with EMLIOService(cfg, small_imagenet, storage_factory=factory) as svc:
        svc.daemons[0].backend.wait_prefetch(timeout=30.0)
        _node_loads, root_loads = svc._member_loads()
        root = str(small_imagenet.root)
        assert root in root_loads
        assert root_loads[root].cached_shards == {
            a.shard_path for a in svc.plan.assignments
        }
