"""The metrics registry: instruments, labels, collectors, rendering."""

from __future__ import annotations

import json
import threading
import urllib.request

import pytest

from repro.obs.exporter import MetricsExporter
from repro.obs.metrics import LOG2_BUCKETS, Counter, Gauge, Histogram, Registry
from repro.tools.benchcheck import check_prometheus_text


def test_counter_inc_and_samples():
    reg = Registry()
    c = reg.counter("emlio_test_total", "help text")
    c.inc()
    c.inc(4)
    assert reg.snapshot()["emlio_test_total"] == 5


def test_gauge_set_and_dec():
    reg = Registry()
    g = reg.gauge("emlio_depth")
    g.set(10)
    g.dec(3)
    assert reg.snapshot()["emlio_depth"] == 7


def test_labeled_counter_children():
    reg = Registry()
    c = reg.counter("emlio_tier_total", labelnames=("tier",))
    c.labels(tier="cache").inc(2)
    c.labels(tier="remote").inc(1)
    c.labels(tier="cache").inc()
    snap = reg.snapshot()["emlio_tier_total"]
    assert snap == {"cache": 3, "remote": 1}


def test_histogram_quantiles_log2_buckets():
    reg = Registry()
    h = reg.histogram("emlio_lat_seconds")
    for v in (0.001, 0.002, 0.004, 1.0):
        h.observe(v)
    snap = h.snapshot()
    assert snap["count"] == 4
    assert snap["sum"] == pytest.approx(1.007)
    # The quantile is the upper bound of the first bucket reaching rank q.
    assert h.quantile(0.5) in LOG2_BUCKETS
    assert h.quantile(0.5) >= 0.002
    assert h.quantile(1.0) >= 1.0


def test_histogram_overflow_bucket():
    reg = Registry()
    h = reg.histogram("emlio_big_seconds")
    h.observe(10_000_000.0)  # beyond the last log2 boundary
    assert h.snapshot()["overflow"] == 1
    assert h.quantile(0.5) == LOG2_BUCKETS[-1]


def test_get_or_create_returns_same_instrument():
    reg = Registry()
    assert reg.counter("emlio_x") is reg.counter("emlio_x")
    with pytest.raises(ValueError):
        reg.gauge("emlio_x")  # kind mismatch must fail loudly


def test_disabled_registry_is_noop():
    reg = Registry(enabled=False)
    c = reg.counter("emlio_never")
    c.inc(100)
    reg.histogram("emlio_never_seconds").observe(1.0)
    assert reg.snapshot() == {}
    assert reg.render_prometheus() == ""


def test_collectors_run_at_snapshot_time_only():
    reg = Registry()
    g = reg.gauge("emlio_collected")
    calls = []

    def collect():
        calls.append(1)
        g.set(42)

    reg.register_collector(collect)
    assert calls == []
    assert reg.snapshot()["emlio_collected"] == 42
    assert len(calls) == 1


def test_collector_errors_are_swallowed():
    reg = Registry()
    reg.counter("emlio_ok").inc()

    def bad():
        raise RuntimeError("collector bug")

    reg.register_collector(bad)
    assert reg.snapshot()["emlio_ok"] == 1


def test_counter_thread_safety():
    reg = Registry()
    c = reg.counter("emlio_races_total")

    def spin():
        for _ in range(10_000):
            c.inc()

    threads = [threading.Thread(target=spin) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert reg.snapshot()["emlio_races_total"] == 40_000


def test_render_prometheus_is_valid_text():
    reg = Registry()
    reg.counter("emlio_sent_total", "bytes sent").inc(3)
    reg.gauge("emlio_nodes", labelnames=("transport",)).labels(transport="shm").set(2)
    h = reg.histogram("emlio_lat_seconds", "latency")
    h.observe(0.003)
    h.observe(2.0)
    text = reg.render_prometheus()
    assert check_prometheus_text(text) == []
    assert "# TYPE emlio_sent_total counter" in text
    assert 'emlio_nodes{transport="shm"} 2' in text
    assert 'emlio_lat_seconds_bucket{le="+Inf"} 2' in text
    assert "emlio_lat_seconds_count 2" in text


def test_exporter_scrape_endpoints():
    reg = Registry()
    reg.counter("emlio_scraped_total").inc(7)
    exporter = MetricsExporter(reg, port=0)
    try:
        base = f"http://127.0.0.1:{exporter.port}"
        text = urllib.request.urlopen(f"{base}/metrics", timeout=5).read().decode()
        assert "emlio_scraped_total 7" in text
        assert check_prometheus_text(text) == []
        body = json.loads(
            urllib.request.urlopen(f"{base}/metrics.json", timeout=5).read()
        )
        assert body["emlio_scraped_total"] == 7
        health = urllib.request.urlopen(f"{base}/healthz", timeout=5)
        assert health.status == 200
        with pytest.raises(urllib.error.HTTPError):
            urllib.request.urlopen(f"{base}/nope", timeout=5)
    finally:
        exporter.close()


def test_check_prometheus_text_rejects_garbage():
    assert check_prometheus_text("") != []
    assert any("unparseable" in p for p in check_prometheus_text("{oops} 1"))
    assert any("non-numeric" in p for p in check_prometheus_text("emlio_x pizza"))
