"""Tests for repro.util.logging (TimestampLogger)."""

import threading

import pytest

from repro.util.clock import VirtualClock
from repro.util.logging import TimestampLogger


def test_log_records_clock_time():
    clock = VirtualClock(100.0)
    logger = TimestampLogger(clock)
    ev = logger.log("batch_send", batch=3)
    assert ev.t == 100.0
    assert ev.kind == "batch_send"
    assert ev.fields["batch"] == 3


def test_component_name_stamped_on_events():
    logger = TimestampLogger(VirtualClock(), name="daemon0")
    ev = logger.log("epoch_start")
    assert ev.fields["component"] == "daemon0"


def test_events_filter_by_kind():
    logger = TimestampLogger(VirtualClock())
    logger.log("a")
    logger.log("b")
    logger.log("a")
    assert len(logger.events("a")) == 2
    assert len(logger.events()) == 3


def test_span_between_markers():
    clock = VirtualClock()
    logger = TimestampLogger(clock)
    logger.log("epoch_start")
    clock.advance(12.5)
    logger.log("epoch_end")
    assert logger.span("epoch_start", "epoch_end") == pytest.approx(12.5)


def test_span_missing_marker_raises():
    logger = TimestampLogger(VirtualClock())
    logger.log("epoch_start")
    with pytest.raises(ValueError):
        logger.span("epoch_start", "epoch_end")


def test_merge_is_time_sorted():
    clock = VirtualClock()
    a = TimestampLogger(clock, name="a")
    b = TimestampLogger(clock, name="b")
    a.log("x")
    clock.advance(1)
    b.log("y")
    clock.advance(1)
    a.log("z")
    merged = a.merge(b)
    assert [e.kind for e in merged] == ["x", "y", "z"]


def test_thread_safety_no_lost_events():
    logger = TimestampLogger()

    def worker():
        for _ in range(200):
            logger.log("tick")

    threads = [threading.Thread(target=worker) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len(logger) == 1600


def test_event_json_roundtrippable():
    import json

    logger = TimestampLogger(VirtualClock(7.0), name="recv")
    ev = logger.log("batch_recv", nbytes=123)
    obj = json.loads(ev.to_json())
    assert obj == {"t": 7.0, "kind": "batch_recv", "nbytes": 123, "component": "recv"}
