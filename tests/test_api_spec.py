"""ClusterSpec validation, JSON/TOML round-trip identity, and registries."""

import dataclasses

import pytest

from repro.api import (
    CODECS,
    ClusterSpec,
    DaemonSpec,
    DatasetSpec,
    DuplicateComponentError,
    EnergySpec,
    NETWORK_PROFILES,
    NetworkSpec,
    ObservabilitySpec,
    PipelineSpec,
    POWER_MODELS,
    ReceiverSpec,
    RecoverySpec,
    Registry,
    SpecError,
    STORAGE_BACKENDS,
    StorageSpec,
    UnknownComponentError,
    preset,
    PRESETS,
)

#: A spec exercising every section away from its defaults (explicit
#: daemons, inline network, recovery + energy on, tuples everywhere).
FULL = ClusterSpec(
    name="full",
    dataset=DatasetSpec(kind="tokens", n=32, records_per_shard=8,
                        context_len=128, vocab_size=512, seed=9),
    pipeline=PipelineSpec(batch_size=4, epochs=3, hwm=8, daemon_threads=2,
                          streams_per_node=3, prefetch=4, output_hw=(24, 24),
                          coverage="replicate", seed=5, reorder_window=-1,
                          codec="tokens"),
    storage=StorageSpec(daemons=(
        DaemonSpec(root="/data/a", shards=("s0", "s1")),
        DaemonSpec(root="/data/b", shards=("s2",)),
    )),
    receivers=ReceiverSpec(num_nodes=3, stall_timeout_s=12.5),
    network=NetworkSpec(rtt_ms=4.5, bandwidth_gbps=10.0),
    recovery=RecoverySpec(enabled=True, ledger_path="/tmp/ledger.txt",
                          reorder_window=16, heartbeat_interval_s=0.1,
                          miss_threshold=3, dead_threshold=7, hung_after_s=1.5),
    energy=EnergySpec(enabled=True, cpu_model="epyc-7763", gpu_model="t4",
                      interval_s=0.25),
    observability=ObservabilitySpec(metrics_port=9477, trace_dir="/tmp/traces",
                                    trace_sample=0.05),
)


# -- round trips ---------------------------------------------------------------


@pytest.mark.parametrize("spec", [ClusterSpec(), FULL], ids=["default", "full"])
def test_spec_round_trips_json_and_toml_identically(spec):
    assert ClusterSpec.from_json(spec.to_json()) == spec
    assert ClusterSpec.from_toml(spec.to_toml()) == spec
    assert ClusterSpec.from_dict(spec.to_dict()) == spec


@pytest.mark.parametrize("name", sorted(PRESETS.names()))
def test_every_preset_round_trips_both_formats(name):
    spec = preset(name)
    assert ClusterSpec.from_toml(spec.to_toml()) == spec
    assert ClusterSpec.from_json(spec.to_json()) == spec


@pytest.mark.parametrize("suffix", [".json", ".toml"])
def test_spec_file_round_trip(tmp_path, suffix):
    path = FULL.to_file(tmp_path / f"spec{suffix}")
    assert ClusterSpec.from_file(path) == FULL


def test_spec_file_unknown_suffix_and_missing_file(tmp_path):
    with pytest.raises(SpecError, match="unsupported spec format"):
        ClusterSpec().to_file(tmp_path / "spec.yaml")
    with pytest.raises(SpecError, match="not found"):
        ClusterSpec.from_file(tmp_path / "nope.toml")
    bad = tmp_path / "bad.toml"
    bad.write_text("this is [not toml")
    with pytest.raises(SpecError, match="not valid TOML"):
        ClusterSpec.from_file(bad)
    bad_json = tmp_path / "bad.json"
    bad_json.write_text("{nope")
    with pytest.raises(SpecError, match="not valid JSON"):
        ClusterSpec.from_file(bad_json)


def test_partial_files_fill_defaults(tmp_path):
    path = tmp_path / "partial.toml"
    path.write_text('name = "partial"\n[pipeline]\nbatch_size = 4\n')
    spec = ClusterSpec.from_file(path)
    assert spec.name == "partial"
    assert spec.pipeline.batch_size == 4
    assert spec.pipeline.hwm == PipelineSpec().hwm  # untouched default
    assert spec.dataset == DatasetSpec()


# -- validation errors ---------------------------------------------------------


def test_unknown_keys_rejected_loudly():
    with pytest.raises(SpecError, match="unknown key.*'pipelines'"):
        ClusterSpec.from_dict({"pipelines": {}})
    with pytest.raises(SpecError, match="unknown key.*'batchsize'"):
        ClusterSpec.from_dict({"pipeline": {"batchsize": 4}})


@pytest.mark.parametrize(
    "section,bad,match",
    [
        ("pipeline", {"batch_size": 0}, "batch_size"),
        ("pipeline", {"coverage": "broadcast"}, "coverage"),
        ("pipeline", {"reorder_window": -2}, "reorder_window"),
        ("pipeline", {"output_hw": [16]}, "pair of ints"),
        ("pipeline", {"codec": ""}, "codec"),
        ("pipeline", {"workers": 0}, "workers"),
        ("pipeline", {"payload_version": 1}, "payload_version"),
        ("pipeline", {"payload_version": 4}, "payload_version"),
        ("dataset", {"kind": "webdataset"}, "dataset.kind"),
        ("dataset", {"kind": "existing"}, "requires dataset.root"),
        ("dataset", {"n": 0}, "dataset.n"),
        ("dataset", {"context_len": 1}, "context_len"),
        ("receivers", {"num_nodes": 0}, "num_nodes"),
        ("receivers", {"stall_timeout_s": 0}, "stall_timeout_s"),
        ("network", {"profile": "wan-30ms", "rtt_ms": 1.0}, "not both"),
        ("network", {"rtt_ms": -1.0}, "rtt_ms"),
        ("network", {"bandwidth_gbps": 10.0}, "needs network.rtt_ms"),
        ("recovery", {"miss_threshold": 3, "dead_threshold": 3}, "exceed"),
        ("recovery", {"heartbeat_interval_s": 0}, "interval_s"),
        ("recovery", {"dedup": False}, "dedup"),
        ("energy", {"interval_s": 0}, "interval_s"),
        ("storage", {"num_daemons": 0}, "num_daemons"),
        ("storage", {"verify_reads": "always"}, "verify_reads"),
        ("storage", {"verify_reads": 1}, "verify_reads"),
        ("observability", {"metrics_port": 65536}, "metrics_port"),
        ("observability", {"metrics_port": -1}, "metrics_port"),
        ("observability", {"metrics_port": True}, "metrics_port"),
        ("observability", {"trace_sample": 1.5, "trace_dir": "/t"}, "trace_sample"),
        ("observability", {"trace_sample": -0.1, "trace_dir": "/t"}, "trace_sample"),
        ("observability", {"trace_sample": 0.5}, "requires observability.trace_dir"),
    ],
)
def test_section_validation_errors(section, bad, match):
    with pytest.raises(SpecError, match=match):
        ClusterSpec.from_dict({section: bad})


def test_storage_daemon_validation():
    with pytest.raises(SpecError, match="duplicate storage daemon roots"):
        StorageSpec(daemons=(DaemonSpec("/a"), DaemonSpec("/a")))
    with pytest.raises(SpecError, match="owned by two daemons"):
        StorageSpec(daemons=(DaemonSpec("/a", ("s0",)), DaemonSpec("/b", ("s0",))))
    with pytest.raises(SpecError, match="per-daemon shard lists"):
        StorageSpec(daemons=(DaemonSpec("/a"), DaemonSpec("/b")))
    with pytest.raises(SpecError, match="not both"):
        StorageSpec(num_daemons=2, daemons=(DaemonSpec("/a", ("s0",)),))
    with pytest.raises(SpecError, match="non-empty"):
        DaemonSpec("/a", shards=())


def test_pipeline_spec_resolves_to_config():
    cfg = FULL.pipeline.to_config()
    assert cfg.batch_size == 4 and cfg.coverage == "replicate"
    assert cfg.effective_reorder_window == 3 * 8  # AUTO: streams x hwm
    assert cfg.workers == 1 and cfg.payload_version == 3  # the defaults


def test_pipeline_spec_forwards_workers_and_payload_version():
    spec = PipelineSpec(workers=4, payload_version=2)
    cfg = spec.to_config()
    assert cfg.workers == 4 and cfg.payload_version == 2
    # And they survive the serialization round trip like every knob.
    cluster = ClusterSpec(pipeline=spec)
    assert ClusterSpec.from_toml(cluster.to_toml()).pipeline.workers == 4
    assert ClusterSpec.from_json(cluster.to_json()).pipeline.payload_version == 2


@pytest.mark.parametrize("verify", [True, False, "open"])
def test_storage_verify_reads_reaches_config(verify):
    from repro.api.deploy import _resolve_config

    spec = ClusterSpec(storage=StorageSpec(verify_reads=verify))
    assert _resolve_config(spec).verify_reads == verify
    # The knob round-trips through both serialization formats.
    assert ClusterSpec.from_toml(spec.to_toml()).storage.verify_reads == verify
    assert ClusterSpec.from_json(spec.to_json()).storage.verify_reads == verify


def test_recovery_spec_resolves_to_config(tmp_path):
    rc = FULL.recovery.to_config(ledger_path=tmp_path / "l.txt")
    assert rc.membership.miss_threshold == 3
    assert rc.reconnect.max_retries == 5
    assert rc.ledger_path == tmp_path / "l.txt"
    assert FULL.recovery.to_config().ledger_path == "/tmp/ledger.txt"


# -- registries ----------------------------------------------------------------


def test_registry_duplicate_and_unknown_errors():
    reg = Registry("widget")
    reg.register("a", 1)
    with pytest.raises(DuplicateComponentError, match="already registered"):
        reg.register("a", 2)
    assert reg.get("a") == 1
    reg.register("a", 2, replace=True)
    assert reg.get("a") == 2
    with pytest.raises(UnknownComponentError, match=r"unknown widget 'b'.*\['a'\]"):
        reg.get("b")
    with pytest.raises(ValueError, match="non-empty string"):
        reg.register("", 3)
    assert "a" in reg and list(reg) == ["a"] and len(reg) == 1


def test_seeded_registries_cover_shipped_components():
    assert {"auto", "sjpg", "raw", "tokens"} <= set(CODECS.names())
    assert {"local", "wan-30ms"} <= set(NETWORK_PROFILES.names())
    assert {"localfs", "nfs"} <= set(STORAGE_BACKENDS.names())
    assert {"xeon-gold-6126", "quadro-rtx-6000"} <= set(POWER_MODELS.names())


def test_network_profile_registration_shared_with_emulation():
    from repro.net.emulation import PROFILES, NetworkProfile, register_profile

    name = "test-shared-profile"
    try:
        register_profile(NetworkProfile(name, rtt_s=0.001))
        assert name in NETWORK_PROFILES  # one backing table
        with pytest.raises(ValueError, match="already registered"):
            register_profile(NetworkProfile(name, rtt_s=0.002))
        spec = ClusterSpec(network=NetworkSpec(profile=name))
        from repro.api.deploy import _resolve_profile

        assert _resolve_profile(spec).rtt_s == 0.001
    finally:
        PROFILES.pop(name, None)


def test_presets_are_frozen_and_replaceable():
    base = preset("quickstart")
    with pytest.raises(dataclasses.FrozenInstanceError):
        base.name = "mutated"
    derived = dataclasses.replace(base, name="derived")
    assert derived.pipeline == base.pipeline and derived.name == "derived"
    with pytest.raises(UnknownComponentError, match="unknown preset"):
        preset("no-such-topology")
