"""Tests for the operational tools: fsck, convert, planview."""

import pytest

from repro.tools.convert import main as convert_main
from repro.tools.fsck import fsck_dataset, main as fsck_main
from repro.tools.planview import main as planview_main


def test_fsck_clean_dataset(small_imagenet):
    report = fsck_dataset(small_imagenet.root)
    assert report.ok
    assert report.shards_checked == small_imagenet.num_shards
    assert report.records_checked == small_imagenet.num_samples
    assert report.bytes_checked == small_imagenet.nbytes


def test_fsck_detects_bitflip(small_imagenet):
    shard = small_imagenet.root / small_imagenet.indexes[0].path
    raw = bytearray(shard.read_bytes())
    raw[100] ^= 0xFF
    shard.write_bytes(bytes(raw))
    report = fsck_dataset(small_imagenet.root)
    assert not report.ok
    assert any("record" in e for e in report.errors)


def test_fsck_detects_missing_shard(small_imagenet):
    (small_imagenet.root / small_imagenet.indexes[1].path).unlink()
    report = fsck_dataset(small_imagenet.root)
    assert not report.ok
    assert any("missing" in e for e in report.errors)


def test_fsck_detects_truncation(small_imagenet):
    shard = small_imagenet.root / small_imagenet.indexes[0].path
    raw = shard.read_bytes()
    shard.write_bytes(raw[:-10])
    report = fsck_dataset(small_imagenet.root)
    assert not report.ok
    assert any("bytes" in e for e in report.errors)


def test_fsck_detects_wrong_label(small_imagenet, tmp_path):
    """Tamper with an index label: fsck must cross-check file vs index."""
    import json

    ix = small_imagenet.indexes[0]
    index_path = small_imagenet.root / f"mapping_{ix.shard}.json"
    obj = json.loads(index_path.read_text())
    obj["records"][0][2] += 1  # corrupt the label field
    index_path.write_text(json.dumps(obj))
    report = fsck_dataset(small_imagenet.root)
    assert not report.ok
    assert any("label" in e for e in report.errors)


def test_fsck_empty_dir(tmp_path):
    report = fsck_dataset(tmp_path)
    assert not report.ok


def test_fsck_cli(small_imagenet, capsys):
    assert fsck_main([str(small_imagenet.root)]) == 0
    out = capsys.readouterr().out
    assert "OK" in out
    assert fsck_main([]) == 2


def test_fsck_cli_failure_exit(small_imagenet, capsys):
    shard = small_imagenet.root / small_imagenet.indexes[0].path
    raw = bytearray(shard.read_bytes())
    raw[50] ^= 0x01
    shard.write_bytes(bytes(raw))
    assert fsck_main([str(small_imagenet.root)]) == 1
    assert "FAILED" in capsys.readouterr().out


def test_convert_cli_imagenet(tmp_path, capsys):
    rc = convert_main(["imagenet", "8", str(tmp_path / "out"), "--shard-size", "4"])
    assert rc == 0
    assert "8 samples / 2 shards" in capsys.readouterr().out
    assert fsck_dataset(tmp_path / "out").ok


def test_convert_cli_text(tmp_path, capsys):
    rc = convert_main(
        ["text", "6", str(tmp_path / "llm"), "--shard-size", "3", "--context-len", "32"]
    )
    assert rc == 0
    assert "6 samples / 2 shards" in capsys.readouterr().out
    # Token records don't use pack_example framing; skip label verification.
    report = fsck_dataset(tmp_path / "llm", verify_labels=False)
    assert report.ok


def test_planview_cli(small_imagenet, capsys):
    rc = planview_main(
        [str(small_imagenet.root), "--nodes", "2", "--batch-size", "4", "--threads", "2"]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "coverage" in out and "OK" in out
