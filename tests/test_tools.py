"""Tests for the operational tools: fsck, convert, planview."""

import pytest

from repro.tools.convert import main as convert_main
from repro.tools.fsck import fsck_dataset, main as fsck_main
from repro.tools.planview import main as planview_main


def test_fsck_clean_dataset(small_imagenet):
    report = fsck_dataset(small_imagenet.root)
    assert report.ok
    assert report.shards_checked == small_imagenet.num_shards
    assert report.records_checked == small_imagenet.num_samples
    assert report.bytes_checked == small_imagenet.nbytes


def test_fsck_detects_bitflip(small_imagenet):
    shard = small_imagenet.root / small_imagenet.indexes[0].path
    raw = bytearray(shard.read_bytes())
    raw[100] ^= 0xFF
    shard.write_bytes(bytes(raw))
    report = fsck_dataset(small_imagenet.root)
    assert not report.ok
    assert any("record" in e for e in report.errors)


def test_fsck_detects_missing_shard(small_imagenet):
    (small_imagenet.root / small_imagenet.indexes[1].path).unlink()
    report = fsck_dataset(small_imagenet.root)
    assert not report.ok
    assert any("missing" in e for e in report.errors)


def test_fsck_detects_truncation(small_imagenet):
    shard = small_imagenet.root / small_imagenet.indexes[0].path
    raw = shard.read_bytes()
    shard.write_bytes(raw[:-10])
    report = fsck_dataset(small_imagenet.root)
    assert not report.ok
    assert any("bytes" in e for e in report.errors)


def test_fsck_detects_wrong_label(small_imagenet, tmp_path):
    """Tamper with an index label: fsck must cross-check file vs index."""
    import json

    ix = small_imagenet.indexes[0]
    index_path = small_imagenet.root / f"mapping_{ix.shard}.json"
    obj = json.loads(index_path.read_text())
    obj["records"][0][2] += 1  # corrupt the label field
    index_path.write_text(json.dumps(obj))
    report = fsck_dataset(small_imagenet.root)
    assert not report.ok
    assert any("label" in e for e in report.errors)


def test_fsck_empty_dir(tmp_path):
    report = fsck_dataset(tmp_path)
    assert not report.ok


def test_fsck_cli(small_imagenet, capsys):
    assert fsck_main([str(small_imagenet.root)]) == 0
    out = capsys.readouterr().out
    assert "OK" in out
    assert fsck_main([]) == 2


def test_fsck_cli_failure_exit(small_imagenet, capsys):
    shard = small_imagenet.root / small_imagenet.indexes[0].path
    raw = bytearray(shard.read_bytes())
    raw[50] ^= 0x01
    shard.write_bytes(bytes(raw))
    assert fsck_main([str(small_imagenet.root)]) == 1
    assert "FAILED" in capsys.readouterr().out


def test_convert_cli_imagenet(tmp_path, capsys):
    rc = convert_main(["imagenet", "8", str(tmp_path / "out"), "--shard-size", "4"])
    assert rc == 0
    assert "8 samples / 2 shards" in capsys.readouterr().out
    assert fsck_dataset(tmp_path / "out").ok


def test_convert_cli_text(tmp_path, capsys):
    rc = convert_main(
        ["text", "6", str(tmp_path / "llm"), "--shard-size", "3", "--context-len", "32"]
    )
    assert rc == 0
    assert "6 samples / 2 shards" in capsys.readouterr().out
    # Token records don't use pack_example framing; skip label verification.
    report = fsck_dataset(tmp_path / "llm", verify_labels=False)
    assert report.ok


def test_planview_cli(small_imagenet, capsys):
    rc = planview_main(
        [str(small_imagenet.root), "--nodes", "2", "--batch-size", "4", "--threads", "2"]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "coverage" in out and "OK" in out


# -- cluster status CLI --------------------------------------------------------


def test_cluster_cli_snapshot_renders_members_and_ownership(
    small_imagenet, tmp_path, capsys
):
    import json

    from repro.core.config import EMLIOConfig
    from repro.core.recovery import RecoveryConfig
    from repro.core.service import EMLIOService
    from repro.tools.cluster import main as cluster_main

    cfg = EMLIOConfig(batch_size=4, output_hw=(16, 16))
    with EMLIOService(
        cfg, small_imagenet, stall_timeout=30.0,
        recovery=RecoveryConfig(ledger_path=tmp_path / "ledger.txt"),
    ) as svc:
        for _ in svc.epoch(0):
            pass
        snap_path = tmp_path / "status.json"
        snap_path.write_text(json.dumps(svc.cluster_status()))

    rc = cluster_main(["--snapshot", str(snap_path)])
    out = capsys.readouterr().out
    assert rc == 0
    assert "receiver:0" in out and "alive" in out
    assert "storage ownership" in out and "all shards" in out
    assert "failovers: 0 daemon, 0 receiver" in out


def test_cluster_cli_snapshot_missing_file(capsys):
    from repro.tools.cluster import main as cluster_main

    assert cluster_main(["--snapshot", "/nonexistent/status.json"]) == 2
    assert "not found" in capsys.readouterr().err


def test_cluster_cli_watch_observes_live_publishers(capsys):
    import json
    import threading

    import time

    from repro.net.heartbeat import HeartbeatPublisher
    from repro.tools.cluster import main as cluster_main

    # Let the CLI bind port 0 itself (no pre-pick race) and learn the real
    # port from its stderr banner, polled through capsys mid-run.
    result: dict = {}
    t = threading.Thread(
        target=lambda: result.update(
            rc=cluster_main(["--watch", "1.5", "--interval", "0.05",
                             "--port", "0", "--json"])
        ),
        daemon=True,
    )
    t.start()
    out_acc = err_acc = ""
    deadline = time.monotonic() + 5.0
    while "listening on 127.0.0.1:" not in err_acc and time.monotonic() < deadline:
        captured = capsys.readouterr()
        out_acc += captured.out
        err_acc += captured.err
        time.sleep(0.02)
    port = int(err_acc.split("listening on 127.0.0.1:")[1].split()[0])
    pub = HeartbeatPublisher(
        "daemon:demo", "daemon", ("127.0.0.1", port), interval_s=0.05,
        progress_fn=lambda: 17,
    ).start()
    t.join(timeout=10.0)
    pub.kill()
    assert result["rc"] == 0
    snap = json.loads(out_acc + capsys.readouterr().out)
    members = {m["member_id"]: m for m in snap["members"]}
    assert members["daemon:demo"]["status"] == "alive"
    assert members["daemon:demo"]["progress"] == 17


def test_cluster_cli_renders_rates_queue_depth_and_rebalance(tmp_path, capsys):
    """The watch/snapshot tables show progress *rates* and queue depth
    (not just raw counters), and the snapshot reports the last rebalance."""
    import json

    from repro.tools.cluster import _render_members, _render_snapshot

    member = {
        "member_id": "receiver:0", "role": "receiver", "status": "alive",
        "state": "serving", "progress": 120, "rate": 12.34, "queue_depth": 3,
        "beats": 40, "last_seen": 1.0, "incarnation": 0,
    }
    _render_members([member])
    out = capsys.readouterr().out
    assert "RATE/S" in out and "QDEPTH" in out
    assert "12.3" in out and " 3 " in out.replace("\n", " ")

    # A daemon with cache counters renders a HIT%; members without any
    # cache reads render "-" (the receiver above has no counters at all).
    daemon = dict(
        member, member_id="daemon:0@/data", role="daemon",
        cache_hits=9, cache_misses=3,
    )
    _render_members([member, daemon])
    out = capsys.readouterr().out
    assert "HIT%" in out
    assert "75%" in out
    assert out.count("-") >= 1  # the cache-less receiver's HIT% column

    # Per-batch stage costs render in µs for members reporting them (the
    # receivers); daemons have no consume pipeline — all zeros become "-".
    staged = dict(member, decode_ns=125_000, preprocess_ns=2_000_000,
                  starved_ns=50_000)
    _render_members([staged, daemon])
    out = capsys.readouterr().out
    assert "D/P/S µs" in out
    assert "125/2000/50" in out

    snap = {
        "membership": {"members": [member]},
        "num_nodes": 3, "dead_nodes": [], "endpoints": {},
        "ownership": {}, "failovers": 0, "receiver_failovers": 0,
        "reassigned_batches": 4, "rebalances": 1,
        "last_rebalance": {"kind": "receiver_join", "epoch": 0,
                           "node": 2, "moved": 4},
    }
    _render_snapshot(snap)
    out = capsys.readouterr().out
    assert "rebalances: 1" in out
    assert "4 batches -> joined node 2" in out
    # JSON snapshots round-trip the new fields untouched.
    assert json.loads(json.dumps(snap))["last_rebalance"]["moved"] == 4


# -- benchcheck history (the tracked perf trajectory) --------------------------


def _e2e_snapshot(tmp_path, name, throughput):
    import json

    body = {
        "bench": "e2e_loopback",
        "samples": 512,
        "emlio": {"epoch_wall_s": 1.0, "throughput_samples_per_s": throughput},
        "pytorch_baseline": {"epoch_wall_s": 2.0, "throughput_samples_per_s": throughput / 2},
        "speedup_x": 2.0,
    }
    path = tmp_path / name
    path.write_text(json.dumps(body))
    return path


def test_benchcheck_history_append_then_check(tmp_path, capsys):
    import json

    from repro.tools.benchcheck import main as benchcheck_main

    hist = tmp_path / "history.jsonl"
    snap = _e2e_snapshot(tmp_path, "BENCH_e2e_loopback.json", 1000.0)
    assert benchcheck_main(
        ["--append-history", "pr-1", str(snap), "--history-path", str(hist)]
    ) == 0
    entries = [json.loads(l) for l in hist.read_text().splitlines()]
    assert entries == [
        {"pr": "pr-1", "snapshot": "BENCH_e2e_loopback.json",
         "metric": "emlio.throughput_samples_per_s", "value": 1000.0}
    ]
    # The CI side: the same snapshot checks clean against its own entry.
    assert benchcheck_main(
        ["--check-history", str(snap), "--history-path", str(hist)]
    ) == 0
    capsys.readouterr()


def test_benchcheck_history_refuses_regression(tmp_path, capsys):
    from repro.tools.benchcheck import main as benchcheck_main

    hist = tmp_path / "history.jsonl"
    good = _e2e_snapshot(tmp_path, "BENCH_e2e_loopback.json", 1000.0)
    assert benchcheck_main(
        ["--append-history", "pr-1", str(good), "--history-path", str(hist)]
    ) == 0
    before = hist.read_text()
    # >10% below the last entry: append refuses and writes NOTHING.
    bad = _e2e_snapshot(tmp_path, "BENCH_e2e_loopback.json", 899.0)
    assert benchcheck_main(
        ["--append-history", "pr-2", str(bad), "--history-path", str(hist)]
    ) == 1
    assert "regressed" in capsys.readouterr().err
    assert hist.read_text() == before
    # The CI check gate fails on the same drop.
    assert benchcheck_main(
        ["--check-history", str(bad), "--history-path", str(hist)]
    ) == 1
    # Within tolerance (10%) both append and check pass.
    ok = _e2e_snapshot(tmp_path, "BENCH_e2e_loopback.json", 920.0)
    assert benchcheck_main(
        ["--check-history", str(ok), "--history-path", str(hist)]
    ) == 0
    assert benchcheck_main(
        ["--append-history", "pr-2", str(ok), "--history-path", str(hist)]
    ) == 0
    capsys.readouterr()


def test_benchcheck_history_tracks_micro_components(tmp_path, capsys):
    import json

    from repro.tools.benchcheck import main as benchcheck_main, tracked_metrics

    body = {
        "bench": "micro_components",
        "components": {
            "payload_roundtrip_v3": {"batches_per_s": 20000.0},
            "transport_tcp": {"seconds": 0.02, "mb_per_s": 50.0},
        },
    }
    snap = tmp_path / "BENCH_micro_components.json"
    snap.write_text(json.dumps(body))
    # Raw wall times are excluded — lower is *better* there, the drop
    # gate would fire on improvements.
    assert tracked_metrics(body) == {
        "components.payload_roundtrip_v3.batches_per_s": 20000.0,
        "components.transport_tcp.mb_per_s": 50.0,
    }
    hist = tmp_path / "history.jsonl"
    assert benchcheck_main(
        ["--append-history", "pr-1", str(snap), "--history-path", str(hist)]
    ) == 0
    assert benchcheck_main(
        ["--check-history", str(snap), "--history-path", str(hist)]
    ) == 0
    # A new series (no prior entry) passes the check and joins on append.
    body["components"]["new_metric"] = {"ops_per_s": 1.0}
    snap.write_text(json.dumps(body))
    assert benchcheck_main(
        ["--check-history", str(snap), "--history-path", str(hist)]
    ) == 0
    capsys.readouterr()


def test_benchcheck_history_flags_malformed_lines(tmp_path, capsys):
    from repro.tools.benchcheck import main as benchcheck_main

    hist = tmp_path / "history.jsonl"
    hist.write_text('{"pr": "x"}\nnot json\n')
    snap = _e2e_snapshot(tmp_path, "BENCH_e2e_loopback.json", 1000.0)
    assert benchcheck_main(
        ["--check-history", str(snap), "--history-path", str(hist)]
    ) == 1
    assert "malformed history entry" in capsys.readouterr().err


def test_benchcheck_history_modes_are_exclusive(tmp_path):
    from repro.tools.benchcheck import main as benchcheck_main

    snap = _e2e_snapshot(tmp_path, "BENCH_e2e_loopback.json", 1000.0)
    with pytest.raises(SystemExit):
        benchcheck_main(["--append-history", "pr-1", "--check-history", str(snap)])
