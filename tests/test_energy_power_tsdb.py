"""Tests for power models and the TSDB."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.energy.power_models import (
    BusyWindowTracker,
    CpuRaplModel,
    CpuSpec,
    GpuNvmlModel,
    GpuSpec,
    UtilizationGauges,
)
from repro.energy.tsdb import Point, TimeSeriesDB

# -- power models ---------------------------------------------------------------


def test_cpu_power_affine_in_utilization():
    spec = CpuSpec()
    gauges = UtilizationGauges()
    rapl = CpuRaplModel(spec, gauges)
    gauges.set_util("cpu", 0.0)
    assert rapl.package_power_w() == pytest.approx(spec.idle_w)
    gauges.set_util("cpu", 1.0)
    assert rapl.package_power_w() == pytest.approx(spec.max_w)
    gauges.set_util("cpu", 0.5)
    assert rapl.package_power_w() == pytest.approx((spec.idle_w + spec.max_w) / 2)


def test_default_spec_matches_table1_xeon():
    spec = CpuSpec()
    assert spec.sockets == 2
    assert spec.max_w == pytest.approx(250.0)  # 2x 125 W TDP


def test_rapl_read_energy_integrates_power():
    gauges = UtilizationGauges()
    rapl = CpuRaplModel(CpuSpec(), gauges)
    gauges.set_util("cpu", 1.0)
    e_pkg, _e_ram = rapl.read_energy(2.0)
    assert e_pkg == pytest.approx(2.0 * rapl.spec.max_w)


def test_dram_power_scales_with_mem_util():
    gauges = UtilizationGauges()
    rapl = CpuRaplModel(CpuSpec(), gauges)
    gauges.set_util("mem", 0.0)
    low = rapl.dram_power_w()
    gauges.set_util("mem", 1.0)
    assert rapl.dram_power_w() > low


def test_gpu_power_and_energy():
    gauges = UtilizationGauges()
    nvml = GpuNvmlModel(GpuSpec(count=2), gauges)
    gauges.set_util("gpu", 0.0)
    assert nvml.total_power_w() == pytest.approx(2 * 25.0)
    gauges.set_util("gpu", 1.0)
    assert nvml.read_energy(1.0) == pytest.approx(2 * 260.0)


def test_gpu_device_bounds():
    nvml = GpuNvmlModel(GpuSpec(count=1), UtilizationGauges())
    with pytest.raises(IndexError):
        nvml.power_w(1)


def test_gauge_bounds():
    g = UtilizationGauges()
    with pytest.raises(ValueError):
        g.set_util("cpu", 1.5)
    with pytest.raises(ValueError):
        g.set_util("cpu", -0.1)


def test_negative_delta_rejected():
    gauges = UtilizationGauges()
    with pytest.raises(ValueError):
        CpuRaplModel(CpuSpec(), gauges).read_energy(-1.0)
    with pytest.raises(ValueError):
        GpuNvmlModel(GpuSpec(), gauges).read_energy(-1.0)


def test_busy_window_tracker_converts_to_utilization():
    gauges = UtilizationGauges()
    tracker = BusyWindowTracker(gauges, "cpu", lanes=2)
    tracker.add_busy(0.1)  # 0.1 busy-seconds over a 0.1 s window on 2 lanes
    util = tracker.flush(0.1)
    assert util == pytest.approx(0.5)
    assert gauges.get_util("cpu") == pytest.approx(0.5)
    # Flush resets.
    assert tracker.flush(0.1) == 0.0


def test_busy_window_tracker_saturates_at_one():
    tracker = BusyWindowTracker(UtilizationGauges(), "gpu", lanes=1)
    tracker.add_busy(10.0)
    assert tracker.flush(0.1) == 1.0


def test_busy_tracker_validation():
    g = UtilizationGauges()
    with pytest.raises(ValueError):
        BusyWindowTracker(g, "cpu", lanes=0)
    t = BusyWindowTracker(g, "cpu")
    with pytest.raises(ValueError):
        t.add_busy(-1.0)
    with pytest.raises(ValueError):
        t.flush(0.0)


# -- TSDB -------------------------------------------------------------------------


def make_point(t, node="n0", **fields):
    return Point.make("energy", t, tags={"node_id": node}, fields=fields)


def test_write_and_query_interval():
    db = TimeSeriesDB()
    db.write_points([make_point(t, cpu_energy=1.0) for t in range(10)])
    pts = db.query("energy", start=2, end=5)
    assert [p.time for p in pts] == [2.0, 3.0, 4.0, 5.0]


def test_query_unknown_measurement_is_empty():
    assert TimeSeriesDB().query("nothing") == []


def test_out_of_order_writes_are_time_sorted():
    db = TimeSeriesDB()
    db.write_points([make_point(5), make_point(1), make_point(3)])
    assert [p.time for p in db.query("energy")] == [1.0, 3.0, 5.0]


def test_tag_filtering():
    db = TimeSeriesDB()
    db.write_points([make_point(1, node="a"), make_point(2, node="b")])
    assert len(db.query("energy", tags={"node_id": "a"})) == 1
    assert db.distinct_tag_values("energy", "node_id") == ["a", "b"]


def test_sum_fields_over_interval():
    db = TimeSeriesDB()
    db.write_points([make_point(t, cpu_energy=2.0, gpu_energy=3.0) for t in range(5)])
    totals = db.sum_fields("energy", start=1, end=3)
    assert totals == {"cpu_energy": 6.0, "gpu_energy": 9.0}


def test_persistence_roundtrip(tmp_path):
    db = TimeSeriesDB()
    db.write_points([make_point(t, node=f"n{t % 2}", cpu_energy=float(t)) for t in range(6)])
    path = tmp_path / "energy.jsonl"
    assert db.save(path) == 6
    loaded = TimeSeriesDB.load(path)
    assert loaded.sum_fields("energy") == db.sum_fields("energy")
    assert loaded.distinct_tag_values("energy", "node_id") == ["n0", "n1"]


def test_points_written_counter():
    db = TimeSeriesDB()
    db.write_points([make_point(1), make_point(2)])
    db.write_points([make_point(3)])
    assert db.points_written == 3


@settings(max_examples=50, deadline=None)
@given(st.lists(st.floats(min_value=0, max_value=1000), min_size=1, max_size=50))
def test_property_interval_sum_equals_total(times):
    db = TimeSeriesDB()
    db.write_points([make_point(t, cpu_energy=1.0) for t in times])
    total = db.sum_fields("energy")["cpu_energy"]
    lo, hi = min(times), max(times)
    in_range = db.sum_fields("energy", start=lo, end=hi)["cpu_energy"]
    assert in_range == pytest.approx(total)
    # Split-interval additivity.
    mid = (lo + hi) / 2
    left = db.sum_fields("energy", start=lo, end=mid).get("cpu_energy", 0.0)
    right = db.sum_fields("energy", start=mid, end=hi).get("cpu_energy", 0.0)
    on_boundary = db.sum_fields("energy", start=mid, end=mid).get("cpu_energy", 0.0)
    assert left + right - on_boundary == pytest.approx(total)
