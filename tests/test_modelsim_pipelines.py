"""Tests for the pipeline models: mechanics at small scale, paper shape at
reduced scale (fast versions of the figure sweeps)."""

import pytest

from repro.harness.report import relative_spread
from repro.modelsim.pipelines import (
    DaliPipelineModel,
    EmlioPipelineModel,
    PytorchPipelineModel,
    WorkloadSpec,
    make_model,
)
from repro.net.emulation import LAN_0_1MS, LAN_10MS, LOCAL, WAN_30MS, NetworkProfile

# A 1/50-scale ImageNet: same per-sample geometry, 2k samples.
SMALL = WorkloadSpec("small-imagenet", num_samples=2_000, sample_bytes=100_000, mpix_per_sample=0.15, batch_size=64)


def run(loader, profile, **kw):
    return make_model(loader, SMALL, profile, **kw).run()


def test_workload_spec_validation():
    with pytest.raises(ValueError):
        WorkloadSpec("bad", num_samples=0, sample_bytes=1, mpix_per_sample=0.1)
    with pytest.raises(ValueError):
        WorkloadSpec("bad", num_samples=1, sample_bytes=0, mpix_per_sample=0.1)
    w = WorkloadSpec("ok", num_samples=100, sample_bytes=10, mpix_per_sample=0.1, batch_size=32)
    assert w.num_batches == 4
    assert w.total_bytes == 1000


def test_make_model_factory():
    assert isinstance(make_model("pytorch", SMALL, LOCAL), PytorchPipelineModel)
    assert isinstance(make_model("dali", SMALL, LOCAL), DaliPipelineModel)
    assert isinstance(make_model("emlio", SMALL, LOCAL), EmlioPipelineModel)
    with pytest.raises(ValueError):
        make_model("ffcv", SMALL, LOCAL)


def test_all_loaders_complete_and_account():
    for loader in ("pytorch", "dali", "emlio"):
        r = run(loader, LAN_0_1MS)
        assert r.duration_s > 0
        assert r.samples == SMALL.num_samples
        assert r.batches == SMALL.num_batches
        assert r.compute_energy.total_j > 0
        assert r.storage_energy.total_j > 0


def test_train_time_is_a_lower_bound():
    from repro.train.models import RESNET50_PROFILE

    floor = SMALL.num_samples * RESNET50_PROFILE.train_s_per_sample
    for loader in ("pytorch", "dali", "emlio"):
        assert run(loader, LOCAL).duration_s >= floor


def test_baselines_degrade_monotonically_with_rtt():
    for loader in ("pytorch", "dali"):
        durations = [run(loader, p).duration_s for p in (LAN_0_1MS, LAN_10MS, WAN_30MS)]
        assert durations[0] < durations[1] < durations[2]


def test_emlio_is_rtt_flat_within_5_percent():
    """The paper's headline claim (±5 % from 0.1 ms to 30 ms)."""
    durations = [
        run("emlio", p).duration_s for p in (LOCAL, LAN_0_1MS, LAN_10MS, WAN_30MS)
    ]
    assert relative_spread(durations) < 0.05


def test_emlio_energy_rtt_flat():
    energies = [
        run("emlio", p).total_energy_j for p in (LAN_0_1MS, LAN_10MS, WAN_30MS)
    ]
    assert relative_spread(energies) < 0.05


def test_emlio_beats_baselines_at_wan():
    emlio = run("emlio", WAN_30MS)
    dali = run("dali", WAN_30MS)
    pytorch = run("pytorch", WAN_30MS)
    assert dali.duration_s / emlio.duration_s > 3.0
    assert pytorch.duration_s / emlio.duration_s > 6.0
    assert dali.total_energy_j > emlio.total_energy_j
    assert pytorch.total_energy_j > dali.total_energy_j


def test_pytorch_slower_than_dali_everywhere():
    for p in (LAN_0_1MS, LAN_10MS, WAN_30MS):
        assert run("pytorch", p).duration_s > run("dali", p).duration_s


def test_baseline_energy_grows_with_duration():
    a = run("dali", LAN_0_1MS)
    b = run("dali", WAN_30MS)
    assert b.total_energy_j > 2 * a.total_energy_j


def test_more_pytorch_workers_help_at_rtt():
    slow = run("pytorch", LAN_10MS, num_workers=2)
    fast = run("pytorch", LAN_10MS, num_workers=8)
    assert fast.duration_s < slow.duration_s


def test_emlio_hwm_bounds_matter_at_wan():
    """Tiny HWM strangles the pipe at high RTT; the default does not."""
    wan = NetworkProfile("wan-fat", rtt_s=0.2, bandwidth_bps=10e9 / 8)
    tight = run("emlio", wan, hwm=1, streams=1)
    roomy = run("emlio", wan, hwm=16, streams=2)
    assert roomy.duration_s <= tight.duration_s


def test_emlio_network_bytes_match_dataset():
    r = run("emlio", LAN_10MS)
    assert r.network_bytes == pytest.approx(SMALL.total_bytes, rel=0.01)


def test_local_fraction_reduces_network_traffic():
    remote = run("dali", LAN_10MS, local_fraction=0.0)
    half = run("dali", LAN_10MS, local_fraction=0.5)
    assert half.network_bytes < remote.network_bytes * 0.7
    assert half.duration_s < remote.duration_s


def test_local_fraction_validation():
    with pytest.raises(ValueError):
        run("dali", LOCAL, local_fraction=1.5)


def test_ddp_sync_extends_epoch():
    base = run("emlio", LAN_10MS)
    synced = run("emlio", LAN_10MS, ddp_sync_s=0.05)
    assert synced.duration_s > base.duration_s + 0.04 * SMALL.num_batches


def test_preprocess_and_train_flags():
    r_only = run("pytorch", LAN_0_1MS, preprocess=False, train=False)
    rp = run("pytorch", LAN_0_1MS, preprocess=True, train=False)
    rpt = run("pytorch", LAN_0_1MS, preprocess=True, train=True)
    assert r_only.duration_s <= rp.duration_s <= rpt.duration_s
    assert rpt.compute_energy.gpu_j > rp.compute_energy.gpu_j


def test_result_row_fields():
    row = run("emlio", LAN_0_1MS).row()
    assert set(row) == {
        "loader", "workload", "rtt_ms", "duration_s", "cpu_kj", "dram_kj", "gpu_kj", "total_kj",
    }


def test_determinism():
    a = run("dali", LAN_10MS)
    b = run("dali", LAN_10MS)
    assert a.duration_s == b.duration_s
    assert a.total_energy_j == b.total_energy_j
