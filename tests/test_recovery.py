"""Chaos suite for the recovery subsystem (ledger, reconnect, failover).

Fast unit tests cover the building blocks (DeliveryLedger, BatchProvider
dedup/reorder, PUSH reconnect, serve_epoch error aggregation, the resume
CLI).  The ``slow``-marked scenarios are the end-to-end chaos experiments:
kill-daemon-mid-epoch with failover, transient connection drops, and a
receiver restart resuming from the persistent ledger — each asserting that
every planned sample is delivered **exactly once** after recovery.
"""

import itertools
import queue
import threading
import time

import pytest

from repro.core.config import EMLIOConfig
from repro.core.daemon import EMLIODaemon
from repro.core.planner import Planner
from repro.core.provider import BatchProvider
from repro.core.recovery import (
    DaemonKilled,
    DeliveryLedger,
    EpochServeError,
    FailoverCoordinator,
    FailoverError,
    RecoveryConfig,
)
from repro.core.service import EMLIOService
from repro.net.mq import PullSocket, PushSocket, ReconnectPolicy
from repro.serialize.payload import BatchPayload, decode_batch, encode_batch

FAST_RECONNECT = ReconnectPolicy(max_retries=10, base_delay_s=0.01, max_delay_s=0.1)


# -- DeliveryLedger ------------------------------------------------------------


def test_ledger_records_and_reloads(tmp_path):
    path = tmp_path / "ledger.txt"
    ledger = DeliveryLedger(path)
    assert ledger.record(0, 0, 3)
    assert ledger.record(0, 0, 5)
    assert ledger.record(1, 2, 0)
    assert not ledger.record(0, 0, 3)  # duplicate
    assert (0, 0, 3) in ledger and len(ledger) == 3
    ledger.close()

    reloaded = DeliveryLedger(path)  # a restarted receiver sees everything
    assert reloaded.delivered() == {(0, 0, 3), (0, 0, 5), (1, 2, 0)}
    assert reloaded.delivered(epoch=0) == {(0, 0, 3), (0, 0, 5)}
    assert reloaded.delivered(epoch=1, node=2) == {(1, 2, 0)}
    reloaded.close()


def test_ledger_memory_only():
    ledger = DeliveryLedger(None)
    ledger.record(0, 0, 1)
    assert (0, 0, 1) in ledger
    ledger.close()


def test_ledger_rejects_interior_corruption(tmp_path):
    path = tmp_path / "ledger.txt"
    path.write_text("0 0 1\nnot a ledger line\n0 0 2\n")
    with pytest.raises(ValueError, match="corrupt"):
        DeliveryLedger(path)


def test_ledger_rejects_terminated_corrupt_tail(tmp_path):
    """A newline-terminated malformed last line is corruption, not a torn
    append (records are written whole): fail loudly, don't auto-repair."""
    path = tmp_path / "ledger.txt"
    path.write_text("0 0 1\ngarbage\n")
    with pytest.raises(ValueError, match="corrupt"):
        DeliveryLedger(path)
    assert "garbage" in path.read_text()  # the evidence is preserved


def test_recovery_config_rejects_dedup_off_with_reconnect():
    with pytest.raises(ValueError, match="dedup"):
        RecoveryConfig(dedup=False)  # default reconnect policy is active
    # Valid: no reconnection means no replays to dedup.
    RecoveryConfig(dedup=False, reconnect=ReconnectPolicy(max_retries=0))


def test_recovery_config_reorder_window_inherits_config(small_imagenet, tmp_path):
    """RecoveryConfig leaves reorder_window to EMLIOConfig unless set."""
    cfg = EMLIOConfig(batch_size=4, output_hw=(16, 16), reorder_window=5)
    with EMLIOService(
        cfg, small_imagenet, stall_timeout=5.0,
        recovery=RecoveryConfig(ledger_path=tmp_path / "l.txt"),
    ) as svc:
        assert svc.receiver.reorder_window == 5
    with EMLIOService(
        cfg, small_imagenet, stall_timeout=5.0,
        recovery=RecoveryConfig(ledger_path=tmp_path / "l2.txt", reorder_window=2),
    ) as svc:
        assert svc.receiver.reorder_window == 2


def test_ledger_tolerates_and_repairs_torn_tail(tmp_path):
    """A crash mid-write leaves a truncated final line; loading drops it
    (the batch counts as undelivered) and repairs the file for appends."""
    path = tmp_path / "ledger.txt"
    path.write_text("0 0 1\n0 0 2\n0 0")  # torn: no seq, no newline
    ledger = DeliveryLedger(path)
    assert ledger.delivered() == {(0, 0, 1), (0, 0, 2)}
    assert ledger.record(0, 0, 3)  # append lands on a clean line
    ledger.close()
    assert DeliveryLedger(path).delivered() == {(0, 0, 1), (0, 0, 2), (0, 0, 3)}


def test_ledger_drops_unterminated_tail_even_when_it_parses(tmp_path):
    """'0 0 35\\n' torn to '0 0 3' parses as a valid key for the *wrong*
    batch; an unterminated tail must be dropped, never trusted — and never
    appended onto."""
    path = tmp_path / "ledger.txt"
    path.write_text("0 0 1\n0 0 3")  # parseable, but no trailing newline
    ledger = DeliveryLedger(path)
    assert ledger.delivered() == {(0, 0, 1)}  # the torn key is not trusted
    assert ledger.record(0, 0, 4)
    ledger.close()
    assert DeliveryLedger(path).delivered() == {(0, 0, 1), (0, 0, 4)}


# -- payload sequence numbers --------------------------------------------------


def test_payload_seq_defaults_to_batch_index():
    p = BatchPayload(epoch=1, batch_index=7, shard="s", samples=[b"x"], labels=[0])
    assert p.seq == 7
    assert decode_batch(encode_batch(p)).seq == 7


def test_payload_decodes_v1_without_seq():
    from repro.serialize.msgpack import packb

    v1 = packb(
        {
            "v": 1,
            "epoch": 0,
            "batch_index": 4,
            "shard": "s",
            "node_id": 0,
            "samples": [b"x"],
            "labels": [1],
            "meta": {},
        }
    )
    p = decode_batch(v1)
    assert p.seq == 4  # falls back to batch_index


# -- BatchProvider dedup / reorder window --------------------------------------


def _payload(seq, epoch=0):
    return BatchPayload(
        epoch=epoch, batch_index=seq, shard="s", samples=[b"x"], labels=[0], seq=seq
    )


def test_provider_dedup_drops_duplicates_silently():
    q: queue.Queue = queue.Queue()
    for seq in (0, 1, 1, 0, 2):
        q.put(_payload(seq))
    provider = BatchProvider(q, expected_batches=3, timeout=1.0, dedup=True)
    for _ in range(3):
        provider()
    assert provider.complete
    assert provider.duplicates == 2


def test_provider_already_delivered_treated_as_duplicates():
    q: queue.Queue = queue.Queue()
    for seq in (0, 1, 2, 3):
        q.put(_payload(seq))
    provider = BatchProvider(
        q, expected_batches=2, timeout=1.0, dedup=True, already_delivered={(0, 0), (0, 1)}
    )
    provider()
    provider()
    assert provider.complete
    assert provider.duplicates == 2  # the replayed 0 and 1


def _emission_order(arrival, window):
    q: queue.Queue = queue.Queue()
    for seq in arrival:
        q.put(_payload(seq))
    emitted = []
    provider = BatchProvider(
        q, expected_batches=len(arrival), timeout=1.0, reorder_window=window,
        on_deliver=lambda p: emitted.append(p.seq),
    )
    for _ in range(len(arrival)):
        provider()
    assert provider.complete
    return emitted


def test_provider_reorder_window_covering_stream_fully_sorts():
    assert _emission_order([3, 0, 2, 1, 5, 4], window=6) == [0, 1, 2, 3, 4, 5]


def test_provider_reorder_window_is_bounded_best_effort():
    # Window of 2 buffers {2, 1}, emits 1; buffers {2, 0}, emits 0; then 2.
    assert _emission_order([2, 1, 0], window=2) == [1, 0, 2]


def test_provider_reorder_disabled_preserves_arrival_order():
    assert _emission_order([2, 0, 1], window=0) == [2, 0, 1]


def test_provider_on_deliver_fires_once_per_batch():
    q: queue.Queue = queue.Queue()
    for seq in (0, 0, 1):
        q.put(_payload(seq))
    seen = []
    provider = BatchProvider(
        q, expected_batches=2, timeout=1.0, dedup=True,
        on_deliver=lambda p: seen.append(p.seq),
    )
    provider()
    provider()
    assert sorted(seen) == [0, 1]


def test_provider_drops_stale_epoch_payloads():
    """A previous epoch's replayed tail left in the shared queue must not
    be consumed as this epoch's data."""
    q: queue.Queue = queue.Queue()
    q.put(_payload(4, epoch=0))  # stale replay from epoch 0
    q.put(_payload(0, epoch=1))
    q.put(_payload(1, epoch=1))
    provider = BatchProvider(q, expected_batches=2, timeout=1.0, dedup=True, epoch=1)
    provider()
    provider()
    assert provider.complete
    assert provider.stale == 1


def test_provider_strict_mode_rejects_stale_epoch_payloads():
    q: queue.Queue = queue.Queue()
    q.put(_payload(4, epoch=0))
    provider = BatchProvider(q, expected_batches=1, timeout=1.0, epoch=1)
    with pytest.raises(RuntimeError, match="epoch 0 payload in epoch 1"):
        provider()


def test_provider_parks_future_epoch_payloads_for_next_epoch():
    """Daemons may pipeline epoch e+1 while epoch e drains: early arrivals
    are parked in the shared holdover, not dropped as stale."""
    import collections

    q: queue.Queue = queue.Queue()
    holdover: collections.deque = collections.deque()
    q.put(_payload(0, epoch=1))  # epoch 1 arrives early
    q.put(_payload(0, epoch=0))
    p0 = BatchProvider(q, expected_batches=1, timeout=1.0, dedup=True,
                       epoch=0, holdover=holdover)
    p0()
    assert p0.complete and p0.stale == 0
    assert len(holdover) == 1
    # The next epoch's provider consumes the parked payload, queue untouched.
    p1 = BatchProvider(q, expected_batches=1, timeout=1.0, dedup=True,
                       epoch=1, holdover=holdover)
    p1()
    assert p1.complete and not holdover


def test_provider_without_dedup_still_rejects_duplicates():
    q: queue.Queue = queue.Queue()
    q.put(_payload(5))
    q.put(_payload(5))
    provider = BatchProvider(q, expected_batches=4, timeout=1.0)
    provider()
    with pytest.raises(RuntimeError, match="duplicate"):
        provider()


# -- PUSH stream reconnect -----------------------------------------------------


def _drain_until(pull, want, timeout=10.0):
    """Collect messages until every one in ``want`` arrived (replays of
    earlier messages are fine — the transport is at-least-once)."""
    want = set(want)
    got = set()
    deadline = time.monotonic() + timeout
    while not want <= got and time.monotonic() < deadline:
        try:
            got.add(pull.recv(timeout=0.2))
        except queue.Empty:
            continue
    return got


def test_push_reconnects_after_connection_drop():
    pull = PullSocket(hwm=32)
    push = PushSocket([pull.address], hwm=32, reconnect=FAST_RECONNECT)
    msgs = [f"m{i}".encode() for i in range(20)]
    for m in msgs[:5]:
        push.send(m)
    assert _drain_until(pull, msgs[:5]) == set(msgs[:5])
    push.drop_connection(0)  # mid-stream TCP reset
    for m in msgs[5:]:
        push.send(m)
    # Every post-drop message lands; uncredited pre-drop messages may be
    # replayed on top (at-least-once — dedup is the receiver's job).
    assert set(msgs[5:]) <= _drain_until(pull, msgs[5:])
    assert push.reconnects >= 1
    push.close()
    pull.close()


def test_push_replays_inflight_without_further_sends():
    """A drop with unacknowledged messages and *no* later sends must still
    replay: the credit reader flags the break and the writer heals."""
    pull = PullSocket(hwm=16)
    push = PushSocket([pull.address], hwm=8, reconnect=FAST_RECONNECT)
    msgs = [f"x{i}".encode() for i in range(6)]
    for m in msgs:
        push.send(m)
    # Don't consume yet: messages are in flight (uncredited), then the
    # connection dies.
    time.sleep(0.2)
    push.drop_connection(0)
    got = _drain_until(pull, msgs)
    assert got == set(msgs)
    push.close()
    pull.close()


def test_dead_stream_backlog_rescued_by_sibling_stream():
    """When one stream of a multi-stream socket dies for good, its queued
    and in-flight messages migrate to the surviving stream — no silent
    loss while siblings are healthy."""
    pull = PullSocket(hwm=2)
    push = PushSocket([pull.address], hwm=2, streams_per_endpoint=2)  # no policy
    msgs = [f"r{i}".encode() for i in range(20)]
    got: set = set()
    stop = threading.Event()

    def consume():
        while not stop.is_set():
            try:
                got.add(pull.recv(timeout=0.1))
            except queue.Empty:
                continue

    consumer = threading.Thread(target=consume, daemon=True)
    consumer.start()
    for m in msgs[:10]:
        push.send(m)
    # With hwm=2, several of these are still queued/in-flight on stream 0.
    push.drop_connection(0)  # stream 0 dies permanently (no reconnect)
    for m in msgs[10:]:
        push.send(m)  # routed to the survivor
    deadline = time.monotonic() + 10
    while not set(msgs) <= got and time.monotonic() < deadline:
        time.sleep(0.02)
    stop.set()
    consumer.join(timeout=5)
    assert set(msgs) <= got  # nothing silently lost
    push.close()
    pull.close()


def test_push_without_policy_dies_on_drop():
    pull = PullSocket(hwm=16)
    push = PushSocket([pull.address], hwm=4)  # no reconnect policy
    push.send(b"a")
    assert pull.recv(timeout=5) == b"a"
    push.drop_connection(0)
    deadline = time.monotonic() + 5
    with pytest.raises(ConnectionError):
        while time.monotonic() < deadline:
            push.try_send(b"b")  # eventually raises: every stream is dead
            time.sleep(0.02)
        raise AssertionError("stream never died")
    push.close()
    pull.close()


def test_reconnect_policy_validation():
    with pytest.raises(ValueError):
        ReconnectPolicy(max_retries=-1)
    with pytest.raises(ValueError):
        ReconnectPolicy(base_delay_s=0.5, max_delay_s=0.1)


# -- serve_epoch error aggregation ---------------------------------------------


def test_serve_epoch_aggregates_all_worker_errors(small_imagenet):
    """Every shard corrupted + two workers: both failures must surface."""
    for ix in small_imagenet.indexes:
        shard_path = small_imagenet.root / ix.path
        raw = bytearray(shard_path.read_bytes())
        raw[40] ^= 0xFF
        shard_path.write_bytes(bytes(raw))
    cfg = EMLIOConfig(batch_size=4, daemon_threads=2)
    plan = Planner(small_imagenet, num_nodes=1, config=cfg).plan()
    pull = PullSocket(hwm=64)
    daemon = EMLIODaemon(small_imagenet.root, plan, {0: ("127.0.0.1", pull.port)}, cfg)
    with pytest.raises(EpochServeError) as excinfo:
        daemon.serve_epoch(0)
    assert len(excinfo.value.exceptions) == 2
    daemon.close()
    pull.close()


def test_serve_epoch_single_error_raised_directly(small_imagenet):
    """One failing worker keeps the original exception type (no wrapping)."""
    shard_path = small_imagenet.root / small_imagenet.indexes[0].path
    raw = bytearray(shard_path.read_bytes())
    raw[40] ^= 0xFF
    shard_path.write_bytes(bytes(raw))
    from repro.tfrecord.reader import TFRecordCorruption

    cfg = EMLIOConfig(batch_size=4, daemon_threads=1)
    plan = Planner(small_imagenet, num_nodes=1, config=cfg).plan()
    pull = PullSocket(hwm=64)
    daemon = EMLIODaemon(small_imagenet.root, plan, {0: ("127.0.0.1", pull.port)}, cfg)
    with pytest.raises((TFRecordCorruption, ValueError)) as excinfo:
        daemon.serve_epoch(0)
    assert not isinstance(excinfo.value, EpochServeError)
    daemon.close()
    pull.close()


def test_killed_daemon_raises_daemon_killed(small_imagenet):
    cfg = EMLIOConfig(batch_size=4)
    plan = Planner(small_imagenet, num_nodes=1, config=cfg).plan()
    pull = PullSocket(hwm=64)
    daemon = EMLIODaemon(small_imagenet.root, plan, {0: ("127.0.0.1", pull.port)}, cfg)
    daemon.kill()
    with pytest.raises(DaemonKilled):
        daemon.serve_epoch(0)
    daemon.close()
    pull.close()


# -- FailoverCoordinator planning ----------------------------------------------


def _coordinator(small_imagenet, delivered=(), roots=None, reachable=None):
    cfg = EMLIOConfig(batch_size=4)
    plan = Planner(small_imagenet, num_nodes=1, config=cfg).plan()
    ledger = DeliveryLedger(None)
    for key in delivered:
        ledger.record(*key)
    shards = sorted(ix.shard for ix in small_imagenet.indexes)
    if roots is None:
        roots = {"a": {shards[0]}, "b": set(shards[1:])}
    return plan, FailoverCoordinator(plan, ledger, roots, reachable=reachable)


def test_failover_targets_only_undelivered_shard_batches(small_imagenet):
    plan, coord = _coordinator(small_imagenet, reachable=lambda root, path: True)
    dead_shards = coord.shards_of("a")
    residual = coord.residual_plan(0, shards=dead_shards)
    assert all(a.shard in dead_shards for a in residual.assignments)
    takeover = coord.plan_failover("a", 0)
    assert set().union(*takeover.values()) == {a.shard for a in residual.assignments}
    assert "a" not in takeover  # the dead root never takes its own shards


def test_failover_skips_fully_delivered_shards(small_imagenet):
    plan, coord0 = _coordinator(small_imagenet, reachable=lambda r, p: True)
    dead_shards = coord0.shards_of("a")
    delivered = [
        (a.epoch, a.node_id, a.batch_index)
        for a in plan.assignments
        if a.shard in dead_shards
    ]
    _plan, coord = _coordinator(
        small_imagenet, delivered=delivered, reachable=lambda r, p: True
    )
    assert coord.plan_failover("a", 0) == {}  # nothing owed, nothing to move


def test_failover_unreachable_shard_raises(small_imagenet):
    _plan, coord = _coordinator(small_imagenet, reachable=lambda root, path: False)
    with pytest.raises(FailoverError, match="no surviving daemon"):
        coord.plan_failover("a", 0)


def test_failover_explicit_survivors_can_include_dead_root(small_imagenet):
    """A root stays a takeover target while any daemon on it is alive —
    e.g. a failover daemon died on root 'b' but b's original daemon lives."""
    _plan, coord = _coordinator(small_imagenet, reachable=lambda root, path: True)
    takeover = coord.plan_failover("a", 0, survivors=["a", "b"])
    placed = set().union(*takeover.values()) if takeover else set()
    assert placed == coord.shards_of("a") & {
        a.shard for a in coord.residual_plan(0).assignments
    }
    # With survivors restricted to an unreachable set, it refuses loudly.
    _plan2, coord2 = _coordinator(
        small_imagenet, reachable=lambda root, path: root == "b"
    )
    with pytest.raises(FailoverError):
        coord2.plan_failover("a", 0, survivors=["c"])


# -- end-to-end chaos scenarios ------------------------------------------------


def _collect_labels(iterable):
    labels = []
    for _tensors, batch_labels in iterable:
        labels.extend(int(l) for l in batch_labels)
    return labels


def _expected_labels(dataset):
    return sorted(
        label for labels in dataset.labels().values() for label in labels
    )


@pytest.fixture
def shared_roots(small_imagenet, tmp_path):
    """Two storage 'sites' sharing one physical directory (shared mounts):
    each daemon owns a disjoint shard subset but can reach every shard."""
    site_a = tmp_path / "site_a"
    site_b = tmp_path / "site_b"
    site_a.symlink_to(small_imagenet.root, target_is_directory=True)
    site_b.symlink_to(small_imagenet.root, target_is_directory=True)
    shards = sorted(ix.shard for ix in small_imagenet.indexes)
    return {str(site_a): set(shards[:1]), str(site_b): set(shards[1:])}


@pytest.mark.slow
@pytest.mark.parametrize("kill_after", [0, 1])
def test_chaos_kill_daemon_mid_epoch_fails_over(
    small_imagenet, shared_roots, tmp_path, kill_after
):
    """A daemon dies mid-epoch; its undelivered batches fail over to the
    surviving daemon and the epoch completes with exactly-once delivery."""
    cfg = EMLIOConfig(batch_size=4, output_hw=(16, 16))
    recovery = RecoveryConfig(
        ledger_path=tmp_path / "ledger.txt", reconnect=FAST_RECONNECT
    )
    with EMLIOService(
        cfg, small_imagenet, storage_shards=shared_roots,
        stall_timeout=30.0, recovery=recovery,
    ) as svc:
        calls = itertools.count()
        victim = svc.daemons[0]

        def injector(assignment, push):
            if next(calls) == kill_after:
                victim.kill()
                raise DaemonKilled("chaos: daemon killed mid-epoch")

        victim.fault_injector = injector
        labels = _collect_labels(svc.epoch(0))
        assert svc.failovers == 1
        assert sorted(labels) == _expected_labels(small_imagenet)
        planned = svc.plan.keys(epoch=0)
        # All landed, once — and the completed epoch was compacted down to
        # a single checkpoint recording exactly the planned batch count.
        assert svc.ledger.completed_epochs() == {0: len(planned)}
        assert svc.ledger.delivered(epoch=0) == set()


@pytest.mark.slow
@pytest.mark.parametrize("drop_stream", [0, 1])
def test_chaos_connection_drop_is_retried_silently(
    small_imagenet, tmp_path, drop_stream
):
    """A transient TCP reset mid-epoch is absorbed by reconnect + dedup:
    the epoch completes with no surfaced error and exactly-once delivery."""
    cfg = EMLIOConfig(batch_size=4, output_hw=(16, 16), streams_per_node=2)
    recovery = RecoveryConfig(
        ledger_path=tmp_path / "ledger.txt", reconnect=FAST_RECONNECT
    )
    with EMLIOService(
        cfg, small_imagenet, stall_timeout=30.0, recovery=recovery
    ) as svc:
        dropped = threading.Event()

        def injector(assignment, push):
            if assignment.batch_index >= 2 and not dropped.is_set():
                dropped.set()
                push.drop_connection(drop_stream)

        svc.daemons[0].fault_injector = injector
        labels = _collect_labels(svc.epoch(0))
        assert dropped.is_set()
        assert svc.failovers == 0  # no daemon died — transport healed itself
        assert sorted(labels) == _expected_labels(small_imagenet)
        assert svc.ledger.completed_epochs() == {0: len(svc.plan.keys(epoch=0))}


@pytest.mark.slow
def test_chaos_receiver_restart_resumes_from_ledger(small_imagenet, tmp_path):
    """Crash the whole deployment mid-epoch; a restarted service with the
    same ledger serves only the residual and the union is exactly-once."""
    cfg = EMLIOConfig(batch_size=4, output_hw=(16, 16))
    ledger_path = tmp_path / "ledger.txt"
    # compact_ledger=False: this test audits raw per-batch keys across runs
    # (compaction behaviour gets its own tests).
    recovery = RecoveryConfig(
        ledger_path=ledger_path, failover=False, reconnect=FAST_RECONNECT,
        compact_ledger=False,
    )
    planned = None

    # Run 1: the daemon dies after two batches; no failover is possible
    # (single root), so the receiver stalls and we "crash".
    with EMLIOService(
        cfg, small_imagenet, stall_timeout=1.0, recovery=recovery
    ) as svc1:
        planned = svc1.plan.keys(epoch=0)
        calls = itertools.count()
        victim = svc1.daemons[0]

        def injector(assignment, push):
            if next(calls) == 2:
                victim.kill()
                raise DaemonKilled("chaos: storage node lost")

        victim.fault_injector = injector
        with pytest.raises(Exception):
            _collect_labels(svc1.epoch(0))
        run1_keys = svc1.ledger.delivered(epoch=0)
    assert 0 < len(run1_keys) < len(planned)  # genuinely partial

    # Run 2: fresh service, same config + ledger → serves the residual only.
    with EMLIOService(
        cfg, small_imagenet, stall_timeout=30.0, recovery=recovery
    ) as svc2:
        assert svc2.plan.keys(epoch=0) == planned  # deterministic re-plan
        _collect_labels(svc2.epoch(0))
        run2_keys = svc2.ledger.delivered(epoch=0) - run1_keys
        assert run1_keys | run2_keys == planned
        # The resumed epoch emitted exactly the residual batch count — no
        # batch from run 1 was re-delivered.
        assert len(run2_keys) == len(planned) - len(run1_keys)

    # Exactly-once overall: a third run finds nothing left to do.
    with EMLIOService(
        cfg, small_imagenet, stall_timeout=5.0, recovery=recovery
    ) as svc3:
        assert _collect_labels(svc3.epoch(0)) == []


@pytest.mark.slow
def test_chaos_replicated_coverage_failover(small_imagenet, shared_roots, tmp_path):
    """Replicate mode: the receiver expects every batch; a daemon death
    mid-epoch must still end in exactly-once delivery of all of them."""
    cfg = EMLIOConfig(batch_size=4, output_hw=(16, 16), coverage="replicate")
    recovery = RecoveryConfig(
        ledger_path=tmp_path / "ledger.txt", reconnect=FAST_RECONNECT
    )
    with EMLIOService(
        cfg, small_imagenet, storage_shards=shared_roots,
        stall_timeout=30.0, recovery=recovery,
    ) as svc:
        calls = itertools.count()
        victim = svc.daemons[1]

        def injector(assignment, push):
            if next(calls) == 1:
                victim.kill()
                raise DaemonKilled("chaos")

        victim.fault_injector = injector
        labels = _collect_labels(svc.epoch(0))
        assert svc.failovers == 1
        assert sorted(labels) == _expected_labels(small_imagenet)
        assert svc.ledger.completed_epochs() == {0: len(svc.plan.keys(epoch=0))}


# -- resume CLI ----------------------------------------------------------------


def test_resume_cli_reports_residual(small_imagenet, tmp_path, capsys):
    from repro.tools.resume import main as resume_main

    cfg = EMLIOConfig(batch_size=4)
    plan = Planner(small_imagenet, num_nodes=1, config=cfg).plan()
    ledger_path = tmp_path / "ledger.txt"
    ledger = DeliveryLedger(ledger_path)
    keys = sorted(plan.keys(epoch=0))
    for key in keys[:2]:
        ledger.record(*key)
    ledger.close()

    rc = resume_main([str(small_imagenet.root), str(ledger_path), "--batch-size", "4"])
    out = capsys.readouterr().out
    assert rc == 0
    assert f"2/{len(keys)} batches delivered" in out
    assert f"{len(keys) - 2} residual" in out
    assert "resumable" in out


def test_resume_cli_json_residual_is_loadable(small_imagenet, tmp_path, capsys):
    import json

    from repro.tools.resume import main as resume_main

    cfg = EMLIOConfig(batch_size=4)
    plan = Planner(small_imagenet, num_nodes=1, config=cfg).plan()
    ledger_path = tmp_path / "ledger.txt"
    ledger = DeliveryLedger(ledger_path)
    keys = sorted(plan.keys(epoch=0))
    for key in keys[:3]:
        ledger.record(*key)
    ledger.close()

    rc = resume_main(
        [str(small_imagenet.root), str(ledger_path), "--batch-size", "4", "--json"]
    )
    assert rc == 0
    obj = json.loads(capsys.readouterr().out)
    residual_keys = {(r["epoch"], r["node_id"], r["seq"]) for r in obj["residual"]}
    assert residual_keys == set(keys[3:])


def test_resume_cli_complete_ledger(small_imagenet, tmp_path, capsys):
    from repro.tools.resume import main as resume_main

    cfg = EMLIOConfig(batch_size=4)
    plan = Planner(small_imagenet, num_nodes=1, config=cfg).plan()
    ledger_path = tmp_path / "ledger.txt"
    ledger = DeliveryLedger(ledger_path)
    for key in plan.keys():
        ledger.record(*key)
    ledger.close()
    rc = resume_main([str(small_imagenet.root), str(ledger_path), "--batch-size", "4"])
    assert rc == 0
    assert "complete" in capsys.readouterr().out


# -- ledger compaction (epoch checkpoints) -------------------------------------


def test_ledger_compaction_truncates_completed_epoch(tmp_path):
    """complete_epoch() collapses an epoch's per-batch lines into one
    checkpoint, shrinking the file and the in-memory key set (ROADMAP)."""
    path = tmp_path / "ledger.txt"
    ledger = DeliveryLedger(path)
    for seq in range(50):
        ledger.record(0, 0, seq)
    ledger.record(1, 0, 0)  # a live epoch that must survive compaction
    size_before = path.stat().st_size
    assert ledger.complete_epoch(0) == 50
    assert path.stat().st_size < size_before
    assert ledger.epoch_complete(0)
    assert ledger.completed_epochs() == {0: 50}
    assert len(ledger) == 1  # only the live epoch's key remains in memory
    assert ledger.delivered(epoch=0) == set()
    assert ledger.delivered(epoch=1) == {(1, 0, 0)}
    # The checkpoint still vouches for every batch of the epoch.
    assert (0, 0, 7) in ledger and ledger.covered((0, 0, 7))
    assert not ledger.record(0, 0, 99)  # completed epochs reject appends
    assert ledger.complete_epoch(0) == 50  # idempotent, count preserved
    ledger.close()

    reloaded = DeliveryLedger(path)  # checkpoint line round-trips
    assert reloaded.completed_epochs() == {0: 50}
    assert reloaded.delivered(epoch=1) == {(1, 0, 0)}
    assert "epoch-complete 0 50" in path.read_text()
    reloaded.close()


def test_ledger_v2_format_still_decodes(tmp_path):
    """A pre-compaction (v2) ledger — bare triplet lines — loads unchanged."""
    path = tmp_path / "ledger.txt"
    path.write_text("0 0 1\n0 0 2\n1 3 4\n")
    ledger = DeliveryLedger(path)
    assert ledger.delivered() == {(0, 0, 1), (0, 0, 2), (1, 3, 4)}
    assert ledger.completed_epochs() == {}
    ledger.close()


def test_ledger_rejects_corrupt_checkpoint_and_reassign_lines(tmp_path):
    for bad in ("epoch-complete 0\n", "epoch-complete a b\n", "reassign 0 1 2\n"):
        path = tmp_path / "ledger.txt"
        path.write_text("0 0 1\n" + bad)
        with pytest.raises(ValueError, match="corrupt"):
            DeliveryLedger(path)
        path.unlink()


def test_ledger_torn_tail_repair_keeps_checkpoints(tmp_path):
    path = tmp_path / "ledger.txt"
    path.write_text("epoch-complete 0 12\nreassign 1 0 5 1 9\n1 1 9\n1 1 1")  # torn
    ledger = DeliveryLedger(path)
    assert ledger.completed_epochs() == {0: 12}
    assert ledger.delivered() == {(1, 1, 9)}  # torn key dropped
    assert ledger.reassignments() == {(1, 0, 5): (1, 1, 9)}
    ledger.close()
    raw = path.read_text()
    assert raw.endswith("\n") and "1 1 1" not in raw.replace("1 1 9", "")


def test_ledger_reassignment_chain_collapses_to_final_owner(tmp_path):
    """A re-target whose new owner dies too is rewritten old -> final in
    place: the synthetic intermediate key vanishes from the map and
    coverage/resolve go straight to the final owner."""
    path = tmp_path / "ledger.txt"
    ledger = DeliveryLedger(path)
    ledger.record_reassignment((0, 1, 4), (0, 0, 10))  # node 1 died
    ledger.record_reassignment((0, 0, 10), (0, 2, 3))  # then node 0 died too
    assert not ledger.covered((0, 1, 4))
    assert ledger.reassignments() == {(0, 1, 4): (0, 2, 3)}  # depth 1, GC'd
    ledger.record(0, 2, 3)  # final owner delivers
    assert ledger.covered((0, 1, 4))
    assert ledger.resolve((0, 1, 4)) == (0, 2, 3)
    ledger.close()

    reloaded = DeliveryLedger(path)  # appended rewrites persist
    assert reloaded.covered((0, 1, 4))
    assert reloaded.reassignments(epoch=0) == {(0, 1, 4): (0, 2, 3)}
    reloaded.close()


def test_ledger_reassignment_storm_stays_bounded(tmp_path):
    """ROADMAP churn item: a failover storm with *no* epoch completion —
    the same residual batch re-owned over and over — must not grow the
    reassignment map with chain links.  One planned key, fifty failovers,
    one map entry."""
    path = tmp_path / "ledger.txt"
    ledger = DeliveryLedger(path)
    planned = (0, 0, 7)
    current = planned
    for round_no in range(50):
        new = (0, (round_no % 3) + 1, 100 + round_no)  # fresh synthetic seq
        ledger.record_reassignment(current, new)
        current = new
        assert len(ledger.reassignments()) == 1  # bounded, not a chain
        assert ledger.resolve(planned) == current
    assert ledger.reassignments() == {planned: current}
    assert not ledger.covered(planned)
    ledger.record(*current)
    assert ledger.covered(planned)
    ledger.close()

    reloaded = DeliveryLedger(path)  # survives a restart, still depth 1
    assert reloaded.reassignments() == {planned: current}
    assert reloaded.covered(planned)
    reloaded.close()


def test_ledger_load_collapses_pre_gc_chain_files(tmp_path):
    """Ledger files written before chain GC hold literal chains; loading
    collapses them to old -> final and drops synthetic intermediates."""
    path = tmp_path / "ledger.txt"
    path.write_text(
        "reassign 0 1 4 0 10\n"   # (0,1,4) -> (0,0,10)
        "reassign 0 0 10 2 3\n"   # (0,0,10) -> (0,2,3): a pre-GC chain
        "0 2 3\n"
    )
    ledger = DeliveryLedger(path)
    assert ledger.reassignments() == {(0, 1, 4): (0, 2, 3)}
    assert ledger.covered((0, 1, 4))
    ledger.close()


def test_ledger_reassignment_rejects_cross_epoch():
    ledger = DeliveryLedger(None)
    with pytest.raises(ValueError, match="crosses epochs"):
        ledger.record_reassignment((0, 1, 4), (1, 0, 10))
    ledger.close()


def test_ledger_compaction_drops_reassignments_of_completed_epoch(tmp_path):
    path = tmp_path / "ledger.txt"
    ledger = DeliveryLedger(path)
    ledger.record_reassignment((0, 1, 0), (0, 0, 5))
    ledger.record(0, 0, 5)
    ledger.record_reassignment((1, 1, 0), (1, 0, 5))
    ledger.complete_epoch(0)
    assert ledger.reassignments() == {(1, 1, 0): (1, 0, 5)}
    assert ledger.covered((0, 1, 0))  # via the epoch checkpoint now
    ledger.close()


# -- control-plane chaos: receiver failover, hung daemons, overlapping faults --

from repro.core.membership import MemberStatus, MembershipConfig  # noqa: E402

#: Detection thresholds tuned for chaos tests: ~100 ms to declare a silent
#: member dead, hang detection effectively off unless a test opts in.
FAST_MEMBERSHIP = MembershipConfig(
    interval_s=0.02, miss_threshold=2, dead_threshold=5, hung_after_s=30.0
)


@pytest.mark.slow
def test_chaos_kill_receiver_mid_epoch_fails_over(small_imagenet, shared_roots, tmp_path):
    """ACCEPTANCE: a receiver (compute node) dies mid-epoch; its undelivered
    batches are re-targeted onto the survivor and the epoch completes with
    exactly-once delivery of every planned sample."""
    cfg = EMLIOConfig(batch_size=4, output_hw=(16, 16))
    recovery = RecoveryConfig(
        ledger_path=tmp_path / "ledger.txt", reconnect=FAST_RECONNECT,
        membership=FAST_MEMBERSHIP,
    )
    with EMLIOService(
        cfg, small_imagenet, storage_shards=shared_roots,
        stall_timeout=30.0, recovery=recovery, num_nodes=2,
    ) as svc:
        svc.kill_receiver(1)  # crashes before consuming anything: full
        # partition must move — deterministic, no race with consumption
        labels = _collect_labels(svc.epoch(0))
        assert svc.receiver_failovers == 1
        assert sorted(labels) == _expected_labels(small_imagenet)
        planned = svc.plan.keys(epoch=0)
        # Exactly-once: every planned batch delivered under exactly one key
        # (original or re-targeted), then compacted into the checkpoint.
        assert svc.ledger.completed_epochs() == {0: len(planned)}
        assert svc.view.status_of("receiver:1") is MemberStatus.DEAD
        assert svc.view.status_of("receiver:0") is MemberStatus.ALIVE


@pytest.mark.slow
def test_chaos_kill_receiver_after_partial_consumption(small_imagenet, shared_roots, tmp_path):
    """Receiver dies after consuming part of its partition: only the
    *undelivered* remainder moves (ledger-diffed), nothing is delivered
    twice and nothing is lost."""
    cfg = EMLIOConfig(batch_size=4, output_hw=(16, 16))
    recovery = RecoveryConfig(
        ledger_path=tmp_path / "ledger.txt", reconnect=FAST_RECONNECT,
        membership=FAST_MEMBERSHIP,
    )
    with EMLIOService(
        cfg, small_imagenet, storage_shards=shared_roots,
        stall_timeout=30.0, recovery=recovery, num_nodes=2,
    ) as svc:
        labels = []
        killed = False
        for _tensors, batch_labels in svc.epoch(0):
            labels.extend(int(l) for l in batch_labels)
            if not killed:
                killed = True
                svc.kill_receiver(1)
        assert sorted(labels) == _expected_labels(small_imagenet)
        assert svc.ledger.completed_epochs() == {0: len(svc.plan.keys(epoch=0))}


@pytest.mark.slow
def test_chaos_kill_receiver_mid_epoch_on_shm_pair(small_imagenet, shared_roots, tmp_path):
    """ACCEPTANCE: a receiver attached over the shared-memory ring dies
    mid-epoch.  The producer sees the hard-crash signature (control-channel
    EOF / dead alive flag), the control plane re-targets the undelivered
    remainder onto the survivor — itself reached over shm — and the epoch
    completes with exactly-once delivery."""
    cfg = EMLIOConfig(batch_size=4, output_hw=(16, 16), transport="shm")
    recovery = RecoveryConfig(
        ledger_path=tmp_path / "ledger.txt", reconnect=FAST_RECONNECT,
        membership=FAST_MEMBERSHIP,
    )
    with EMLIOService(
        cfg, small_imagenet, storage_shards=shared_roots,
        stall_timeout=30.0, recovery=recovery, num_nodes=2,
    ) as svc:
        svc.kill_receiver(1)  # kill before consumption: the full partition
        # must move (shm serves so fast that a kill after the first
        # consumed batch often finds nothing left to fail over)
        labels = _collect_labels(svc.epoch(0))
        assert svc.receiver_failovers == 1
        assert sorted(labels) == _expected_labels(small_imagenet)
        assert svc.ledger.completed_epochs() == {0: len(svc.plan.keys(epoch=0))}
        # The re-targeted stream genuinely rode the ring to the survivor.
        stats = svc.stats()
        assert stats["transports"].get("0") == "shm"
        assert stats["shm_attaches"] >= 1


@pytest.mark.slow
def test_chaos_dead_receiver_partition_moves_in_later_epochs(
    small_imagenet, shared_roots, tmp_path
):
    """A node dead since epoch 0 owes nothing in epoch 1: its partition is
    re-targeted at epoch start (re-planning, not mid-epoch rescue)."""
    cfg = EMLIOConfig(batch_size=4, output_hw=(16, 16), epochs=2)
    recovery = RecoveryConfig(
        ledger_path=tmp_path / "ledger.txt", reconnect=FAST_RECONNECT,
        membership=FAST_MEMBERSHIP,
    )
    with EMLIOService(
        cfg, small_imagenet, storage_shards=shared_roots,
        stall_timeout=30.0, recovery=recovery, num_nodes=2,
    ) as svc:
        svc.kill_receiver(1)
        labels0 = _collect_labels(svc.epoch(0))
        assert sorted(labels0) == _expected_labels(small_imagenet)
        labels1 = _collect_labels(svc.epoch(1))  # epoch-start re-target path
        assert sorted(labels1) == _expected_labels(small_imagenet)
        assert svc.receiver_failovers == 2
        assert svc.ledger.completed_epochs() == {
            0: len(svc.plan.keys(epoch=0)), 1: len(svc.plan.keys(epoch=1)),
        }


@pytest.mark.slow
def test_chaos_hung_daemon_detected_via_heartbeats(small_imagenet, shared_roots, tmp_path):
    """ACCEPTANCE: a *hung* daemon — thread alive, no error raised, zero
    progress — is detected via frozen heartbeat progress and failed over.
    Thread-state watchdogs are structurally blind to this failure."""
    cfg = EMLIOConfig(batch_size=4, output_hw=(16, 16))
    recovery = RecoveryConfig(
        ledger_path=tmp_path / "ledger.txt", reconnect=FAST_RECONNECT,
        membership=MembershipConfig(
            interval_s=0.05, miss_threshold=3, dead_threshold=6, hung_after_s=0.4
        ),
    )
    with EMLIOService(
        cfg, small_imagenet, storage_shards=shared_roots,
        stall_timeout=30.0, recovery=recovery,
    ) as svc:
        victim = svc.daemons[0]
        svc.hang_daemon(0)
        labels = _collect_labels(svc.epoch(0))
        assert svc.failovers == 1
        assert sorted(labels) == _expected_labels(small_imagenet)
        # The victim never crashed on its own: it hung, the control plane
        # declared it dead from frozen progress, and the service killed it.
        assert victim.killed and victim.hung
        dead = svc.logger.events("member_dead")
        assert any("hung" in e.fields.get("reason", "") for e in dead)
        assert svc.ledger.completed_epochs() == {0: len(svc.plan.keys(epoch=0))}


@pytest.mark.slow
def test_chaos_kill_during_failover(small_imagenet, shared_roots, tmp_path):
    """Overlapping faults: the replacement daemon spawned by the first
    failover is killed on its first batch — the control plane must fail
    over the failover, and the epoch still completes exactly-once."""
    cfg = EMLIOConfig(batch_size=4, output_hw=(16, 16))
    recovery = RecoveryConfig(
        ledger_path=tmp_path / "ledger.txt", reconnect=FAST_RECONNECT,
        membership=FAST_MEMBERSHIP,
    )
    with EMLIOService(
        cfg, small_imagenet, storage_shards=shared_roots,
        stall_timeout=30.0, recovery=recovery,
    ) as svc:
        orig_make = svc._make_daemon
        armed = {"first_failover_daemon": True}

        def make(root, shards, plan=None):
            daemon = orig_make(root, shards, plan=plan)
            if plan is not None and armed["first_failover_daemon"]:
                armed["first_failover_daemon"] = False

                def injector(assignment, push, daemon=daemon):
                    daemon.kill()
                    raise DaemonKilled("chaos: replacement killed mid-failover")

                daemon.fault_injector = injector
            return daemon

        svc._make_daemon = make
        calls = itertools.count()
        victim = svc.daemons[0]

        def injector(assignment, push):
            if next(calls) == 1:
                victim.kill()
                raise DaemonKilled("chaos: daemon killed mid-epoch")

        victim.fault_injector = injector
        labels = _collect_labels(svc.epoch(0))
        assert svc.failovers == 2  # the failover itself failed over
        assert sorted(labels) == _expected_labels(small_imagenet)
        assert svc.ledger.completed_epochs() == {0: len(svc.plan.keys(epoch=0))}


@pytest.mark.slow
def test_chaos_drop_during_resume(small_imagenet, tmp_path):
    """Overlapping faults: a run crashes mid-epoch; the resumed run takes a
    TCP reset while serving the residual.  Reconnect + dedup absorb it and
    the union of both runs is exactly-once."""
    cfg = EMLIOConfig(batch_size=4, output_hw=(16, 16), streams_per_node=2)
    recovery = RecoveryConfig(
        ledger_path=tmp_path / "ledger.txt", failover=False,
        reconnect=FAST_RECONNECT,
    )
    with EMLIOService(
        cfg, small_imagenet, stall_timeout=1.0, recovery=recovery
    ) as svc1:
        planned = svc1.plan.keys(epoch=0)
        calls = itertools.count()
        victim = svc1.daemons[0]

        def injector(assignment, push):
            if next(calls) == 2:
                victim.kill()
                raise DaemonKilled("chaos: storage node lost")

        victim.fault_injector = injector
        labels1 = []
        with pytest.raises(Exception):
            for _tensors, batch_labels in svc1.epoch(0):
                labels1.extend(int(l) for l in batch_labels)
        run1_keys = svc1.ledger.delivered(epoch=0)
    assert 0 < len(run1_keys) < len(planned)

    with EMLIOService(
        cfg, small_imagenet, stall_timeout=30.0, recovery=recovery
    ) as svc2:
        dropped = threading.Event()

        def injector2(assignment, push):
            if not dropped.is_set():
                dropped.set()
                push.drop_connection(0)  # reset during the resume stream

        svc2.daemons[0].fault_injector = injector2
        labels2 = []
        for _tensors, batch_labels in svc2.epoch(0):
            labels2.extend(int(l) for l in batch_labels)
        assert dropped.is_set()
        assert sorted(labels1 + labels2) == _expected_labels(small_imagenet)
        assert svc2.ledger.completed_epochs() == {0: len(planned)}


@pytest.mark.slow
@pytest.mark.parametrize("seed", [7, 23])
def test_chaos_multi_fault_soak(small_imagenet, shared_roots, tmp_path, seed):
    """Randomized multi-fault soak: every epoch takes one fault (daemon
    kill, receiver kill, TCP reset) at a random point, in a random order.
    Every epoch must still deliver the full dataset exactly once."""
    import numpy as np

    rng = np.random.default_rng(seed)
    epochs = 3
    cfg = EMLIOConfig(batch_size=4, output_hw=(16, 16), epochs=epochs)
    recovery = RecoveryConfig(
        ledger_path=tmp_path / "ledger.txt", reconnect=FAST_RECONNECT,
        membership=FAST_MEMBERSHIP,
    )
    faults = [str(f) for f in rng.permutation(["kill_daemon", "kill_receiver", "drop"])]
    with EMLIOService(
        cfg, small_imagenet, storage_shards=shared_roots,
        stall_timeout=30.0, recovery=recovery, num_nodes=2,
    ) as svc:

        def inject(fault: str) -> None:
            if fault == "kill_daemon":
                live = [i for i, d in enumerate(svc.daemons) if not d.killed]
                if len(live) >= 2:  # keep one original root serving
                    svc.kill_daemon(int(rng.choice(live)))
                    return
                fault = "drop"
            if fault == "kill_receiver":
                live = [i for i in range(svc.num_nodes) if not svc.receivers[i].killed]
                if len(live) >= 2:
                    svc.kill_receiver(int(rng.choice(live)))
                    return
                fault = "drop"
            # TCP reset: arm a one-shot injector on a live daemon.
            armed = threading.Event()

            def injector(assignment, push):
                if not armed.is_set():
                    armed.set()
                    push.drop_connection(0)

            for d in svc.daemons:
                if not d.killed:
                    d.fault_injector = injector
                    break

        expected = _expected_labels(small_imagenet)
        for epoch in range(epochs):
            fault = faults[epoch]
            inject_at = int(rng.integers(0, 2))  # batches consumed first
            labels = []
            injected = False
            consumed = 0
            for _tensors, batch_labels in svc.epoch(epoch):
                labels.extend(int(l) for l in batch_labels)
                consumed += 1
                if not injected and consumed > inject_at:
                    injected = True
                    inject(fault)
            if not injected:  # tiny epoch consumed before the trigger point
                inject(fault)
            assert sorted(labels) == expected, f"epoch {epoch} fault {fault}"
        assert svc.ledger.completed_epochs() == {
            e: len(svc.plan.keys(epoch=e)) for e in range(epochs)
        }
