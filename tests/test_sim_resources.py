"""Tests for repro.sim.resources (Store, Resource)."""

import pytest

from repro.sim.core import Simulator
from repro.sim.resources import Resource, Store


def test_store_fifo_order():
    sim = Simulator()
    store = Store(sim)
    received = []

    def producer(sim):
        for i in range(5):
            yield store.put(i)
            yield sim.timeout(0.1)

    def consumer(sim):
        for _ in range(5):
            item = yield store.get()
            received.append(item)

    sim.process(producer(sim))
    sim.process(consumer(sim))
    sim.run()
    assert received == [0, 1, 2, 3, 4]


def test_bounded_store_blocks_producer():
    """With capacity 2 and a slow consumer, puts are paced by gets (HWM)."""
    sim = Simulator()
    store = Store(sim, capacity=2)
    put_times = []

    def producer(sim):
        for i in range(6):
            yield store.put(i)
            put_times.append(sim.now)

    def consumer(sim):
        for _ in range(6):
            yield sim.timeout(1.0)
            yield store.get()

    sim.process(producer(sim))
    sim.process(consumer(sim))
    sim.run()
    # First two puts admitted at t=0; each later put waits for a get (t=1..4).
    assert put_times == [0.0, 0.0, 1.0, 2.0, 3.0, 4.0]


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer(sim):
        item = yield store.get()
        got.append((sim.now, item))

    def producer(sim):
        yield sim.timeout(2.0)
        yield store.put("x")

    sim.process(consumer(sim))
    sim.process(producer(sim))
    sim.run()
    assert got == [(2.0, "x")]


def test_store_level_never_exceeds_capacity():
    sim = Simulator()
    store = Store(sim, capacity=3)
    max_level = 0

    def producer(sim):
        for i in range(20):
            yield store.put(i)

    def consumer(sim):
        nonlocal max_level
        for _ in range(20):
            yield sim.timeout(0.5)
            max_level = max(max_level, store.level)
            yield store.get()

    sim.process(producer(sim))
    sim.process(consumer(sim))
    sim.run()
    assert max_level <= 3


def test_try_get_nonblocking():
    sim = Simulator()
    store = Store(sim)
    ok, item = store.try_get()
    assert not ok and item is None

    def producer(sim):
        yield store.put(9)

    sim.process(producer(sim))
    sim.run()
    ok, item = store.try_get()
    assert ok and item == 9


def test_store_capacity_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        Store(sim, capacity=0)


def test_resource_serializes_access():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    spans = []

    def worker(sim, tag):
        yield res.request()
        start = sim.now
        yield sim.timeout(1.0)
        res.release()
        spans.append((tag, start, sim.now))

    for tag in "abc":
        sim.process(worker(sim, tag))
    sim.run()
    # Non-overlapping 1 s slots.
    assert [(s, e) for _t, s, e in spans] == [(0.0, 1.0), (1.0, 2.0), (2.0, 3.0)]


def test_resource_parallelism_matches_capacity():
    sim = Simulator()
    res = Resource(sim, capacity=3)
    finish = []

    def worker(sim):
        yield res.request()
        yield sim.timeout(1.0)
        res.release()
        finish.append(sim.now)

    for _ in range(6):
        sim.process(worker(sim))
    sim.run()
    assert finish == [1.0, 1.0, 1.0, 2.0, 2.0, 2.0]


def test_resource_over_release_raises():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    with pytest.raises(RuntimeError):
        res.release()


def test_resource_available_accounting():
    sim = Simulator()
    res = Resource(sim, capacity=2)

    def worker(sim):
        yield res.request()
        assert res.available >= 0
        yield sim.timeout(1.0)
        res.release()

    for _ in range(4):
        sim.process(worker(sim))
    sim.run()
    assert res.available == 2


def test_resource_use_helper():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    procs = [res.use(2.0), res.use(2.0)]
    sim.run_all(procs)
    assert sim.now == 4.0
