"""Tests for DES components, cluster specs, and energy integration."""

import pytest

from repro.energy.power_models import CpuSpec, GpuSpec
from repro.modelsim.clusters import (
    NODES,
    TACC_COMPUTE,
    UC_COMPUTE,
    UC_STORAGE,
    NodeSpec,
    StorageSpec,
)
from repro.modelsim.components import BusyLedger, CpuPool, GpuStream, Link, StorageDevice
from repro.modelsim.energy import CPU_POWER_LANES, integrate_node_energy
from repro.net.emulation import NetworkProfile
from repro.sim.core import Simulator

# -- clusters --------------------------------------------------------------------


def test_table1_inventory():
    assert set(NODES) == {
        "uc-compute-gpu_rtx_6000",
        "uc-storage-compute_skylake",
        "tacc-compute-gpu_p100",
        "tacc-storage",
    }
    assert UC_COMPUTE.has_gpu and not UC_STORAGE.has_gpu
    assert TACC_COMPUTE.gpu.count == 2  # 2x P100
    assert UC_COMPUTE.nic_bps == pytest.approx(10e9 / 8)


def test_storage_spec_validation():
    with pytest.raises(ValueError):
        StorageSpec("bad", seq_read_bps=0, access_latency_s=0.001)
    with pytest.raises(ValueError):
        StorageSpec("bad", seq_read_bps=1e9, access_latency_s=-1)
    with pytest.raises(ValueError):
        StorageSpec("bad", seq_read_bps=1e9, access_latency_s=0, queue_depth=0)


# -- components -------------------------------------------------------------------


def test_storage_device_timing():
    sim = Simulator()
    ledger = BusyLedger()
    spec = StorageSpec("ssd", seq_read_bps=100e6, access_latency_s=1e-3, queue_depth=1)
    disk = StorageDevice(sim, spec, ledger)
    p = disk.read(100e6)  # 1 second of transfer + 1 ms latency
    sim.run(until=p)
    assert sim.now == pytest.approx(1.001)
    assert ledger.get("disk") == pytest.approx(1.001)
    assert ledger.bytes["disk"] == 100e6


def test_storage_random_read_pays_extra_seek():
    sim = Simulator()
    spec = StorageSpec("hdd", seq_read_bps=100e6, access_latency_s=5e-3, queue_depth=1)
    disk = StorageDevice(sim, spec, BusyLedger())
    p = disk.read(1000, sequential=False)
    sim.run(until=p)
    assert sim.now == pytest.approx(2 * 5e-3 + 1000 / 100e6)


def test_storage_queue_depth_parallelism():
    sim = Simulator()
    spec = StorageSpec("ssd", seq_read_bps=1e9, access_latency_s=0.1, queue_depth=4)
    disk = StorageDevice(sim, spec, BusyLedger())
    procs = [disk.read(0) for _ in range(8)]
    sim.run_all(procs)
    assert sim.now == pytest.approx(0.2)  # two waves of four


def test_link_request_response_pays_rtt():
    sim = Simulator()
    profile = NetworkProfile("x", rtt_s=0.02, bandwidth_bps=float("inf"))
    link = Link(sim, profile, BusyLedger())
    p = link.round_trip(100, 100)
    sim.run(until=p)
    assert sim.now == pytest.approx(0.02)


def test_link_pipelined_transfers_overlap_propagation():
    """Ten pipelined messages over a 50 ms one-way link take ~1 one-way
    (plus serialization), not 10."""
    sim = Simulator()
    profile = NetworkProfile("x", rtt_s=0.1, bandwidth_bps=float("inf"))
    link = Link(sim, profile, BusyLedger())
    procs = [link.transfer(1000) for _ in range(10)]
    sim.run_all(procs)
    assert sim.now == pytest.approx(0.05, abs=1e-6)


def test_link_serialization_is_exclusive():
    sim = Simulator()
    profile = NetworkProfile("x", rtt_s=0.0, bandwidth_bps=1e6)
    ledger = BusyLedger()
    link = Link(sim, profile, ledger)
    procs = [link.transfer(1e6) for _ in range(3)]  # 1 s each on the NIC
    sim.run_all(procs)
    assert sim.now == pytest.approx(3.0)
    assert ledger.bytes["link"] == pytest.approx(3e6)


def test_cpu_pool_capacity():
    sim = Simulator()
    cpu = CpuPool(sim, cores=2, ledger=BusyLedger())
    procs = [cpu.run(1.0) for _ in range(4)]
    sim.run_all(procs)
    assert sim.now == pytest.approx(2.0)


def test_gpu_stream_serializes():
    sim = Simulator()
    ledger = BusyLedger()
    gpu = GpuStream(sim, ledger)
    procs = [gpu.run(0.5) for _ in range(3)]
    sim.run_all(procs)
    assert sim.now == pytest.approx(1.5)
    assert ledger.get("gpu") == pytest.approx(1.5)


def test_ledger_validation():
    ledger = BusyLedger()
    with pytest.raises(ValueError):
        ledger.add("x", -1.0)


# -- energy integration --------------------------------------------------------------


def make_node(gpu=True):
    return NodeSpec(
        name="test",
        cpu=CpuSpec(sockets=1, tdp_w=100.0, idle_frac=0.5, dram_idle_w=2.0, dram_active_w=10.0),
        storage=StorageSpec("ssd", seq_read_bps=1e9, access_latency_s=0),
        nic_bps=1e9,
        gpu=GpuSpec(count=1, idle_w=10.0, max_w=110.0) if gpu else None,
        cores=8,
    )


def test_idle_node_energy_is_idle_power_times_time():
    node = make_node()
    e = integrate_node_energy(node, BusyLedger(), duration_s=100.0)
    assert e.cpu_j == pytest.approx(50.0 * 100.0)  # idle 50 W
    assert e.gpu_j == pytest.approx(10.0 * 100.0)
    assert e.dram_j == pytest.approx(2.0 * 100.0)


def test_busy_time_adds_dynamic_energy():
    node = make_node()
    ledger = BusyLedger()
    ledger.add("cpu", CPU_POWER_LANES * 10.0)  # 10 s at full package power
    ledger.add("gpu", 20.0)
    e = integrate_node_energy(node, ledger, duration_s=100.0)
    assert e.cpu_j == pytest.approx(50.0 * 100.0 + 50.0 * 10.0)
    assert e.gpu_j == pytest.approx(10.0 * 100.0 + 100.0 * 20.0)


def test_gpu_energy_zero_without_gpu():
    e = integrate_node_energy(make_node(gpu=False), BusyLedger(), duration_s=10.0)
    assert e.gpu_j == 0.0


def test_busy_beyond_capacity_is_clamped():
    node = make_node()
    ledger = BusyLedger()
    ledger.add("gpu", 1e9)  # absurd busy time
    e = integrate_node_energy(node, ledger, duration_s=10.0)
    assert e.gpu_j <= 10.0 * 10.0 + 100.0 * 10.0


def test_energy_validation():
    with pytest.raises(ValueError):
        integrate_node_energy(make_node(), BusyLedger(), duration_s=-1.0)


def test_total_and_dict():
    e = integrate_node_energy(make_node(), BusyLedger(), duration_s=5.0)
    assert e.total_j == pytest.approx(e.cpu_j + e.dram_j + e.gpu_j)
    assert e.as_dict()["node"] == "test"
