"""Full-stack integration: dataset → EMLIO over emulated TCP → DALI-like
pipeline → real training, with the EnergyMonitor attached — every subsystem
in one test path."""

import time

import numpy as np
import pytest

from repro.core.config import EMLIOConfig
from repro.core.service import EMLIOService
from repro.data.datasets import SyntheticImageNet
from repro.energy.monitor import EnergyMonitor
from repro.energy.power_models import CpuSpec, GpuSpec
from repro.gpu.device import SimulatedGPU
from repro.net.emulation import NetworkProfile
from repro.tfrecord.sharder import write_shards
from repro.train.loop import Trainer
from repro.train.models import RESNET50_PROFILE, MLPClassifier


@pytest.fixture
def learnable_dataset(tmp_path):
    gen = SyntheticImageNet(
        48, seed=11, image_hw=(16, 16), num_classes=4, class_conditional=True
    )
    return write_shards(iter(gen), tmp_path / "ds", records_per_shard=12)


def test_emlio_feeds_real_training(learnable_dataset):
    cfg = EMLIOConfig(batch_size=8, epochs=2, output_hw=(16, 16), seed=3)
    model = MLPClassifier(input_dim=3 * 16 * 16, num_classes=4, hidden=48, seed=0)
    with EMLIOService(cfg, learnable_dataset) as svc:
        trainer = Trainer(model, RESNET50_PROFILE, gpu=svc.receiver.gpu, lr=0.1)
        log0 = trainer.run_epoch(svc.epoch(0), epoch=0)
        log1 = trainer.run_epoch(svc.epoch(1), epoch=1)
    assert log0.samples == log1.samples == learnable_dataset.num_samples
    # Class-conditional data through a real MLP: epoch-2 loss beats epoch-1.
    assert np.mean(log1.losses) < np.mean(log0.losses)
    # GPU accounting saw both preprocessing and training kernels.
    assert svc.receiver.gpu.kernels_run >= log0.batches + log1.batches


def test_energy_monitor_attached_to_live_epoch(learnable_dataset):
    monitor = EnergyMonitor(
        node_id="compute", cpu_spec=CpuSpec(), gpu_spec=GpuSpec(), interval=0.02
    )
    cfg = EMLIOConfig(batch_size=8, output_hw=(16, 16))
    gpu = SimulatedGPU(tracker=monitor.gpu_tracker)
    profile = NetworkProfile("lan", rtt_s=0.002)
    with monitor:
        with EMLIOService(cfg, learnable_dataset, profile=profile, gpu=gpu,
                          cpu_tracker=monitor.cpu_tracker) as svc:
            t_start = time.time()
            n = sum(len(labels) for _t, labels in svc.epoch(0))
            t_end = time.time()
        time.sleep(0.05)
    assert n == learnable_dataset.num_samples
    report = monitor.query(start=t_start, end=t_end + 0.1)
    assert report.samples > 0
    assert report.cpu_j > 0 and report.gpu_j > 0
    # Timeline and energy trace are alignable: the epoch span is positive
    # and covered by monitor samples.
    span = svc.receiver.logger.span("epoch_start", "epoch_end")
    assert span > 0


def test_epoch_shuffling_changes_batch_order_not_content(learnable_dataset):
    cfg = EMLIOConfig(batch_size=8, epochs=2, output_hw=(16, 16), seed=1)
    with EMLIOService(cfg, learnable_dataset) as svc:
        labels0 = [tuple(l.tolist()) for _t, l in svc.epoch(0)]
        labels1 = [tuple(l.tolist()) for _t, l in svc.epoch(1)]
    assert labels0 != labels1  # SGD randomization across epochs
    flat0 = sorted(x for batch in labels0 for x in batch)
    flat1 = sorted(x for batch in labels1 for x in batch)
    assert flat0 == flat1  # but the same sample multiset


def test_fsck_clean_after_serving(learnable_dataset):
    """Serving an epoch must not mutate shards (mmap is read-only)."""
    from repro.tools.fsck import fsck_dataset

    cfg = EMLIOConfig(batch_size=8, output_hw=(16, 16))
    with EMLIOService(cfg, learnable_dataset) as svc:
        for _ in svc.epoch(0):
            pass
    assert fsck_dataset(learnable_dataset.root).ok
