"""Unit tests for the DelayPipe and LinkShaper (netem substitute)."""

import threading
import time

import pytest

from repro.net.emulation import PROFILES, DelayPipe, LinkShaper, NetworkProfile


def collect_pipe(delays_items):
    """Run a DelayPipe over (delay, item) pairs; return delivery order."""
    received = []
    done = threading.Event()
    n = len(delays_items)

    def deliver(item):
        received.append(item)
        if len(received) == n:
            done.set()

    pipe = DelayPipe(deliver)
    for delay, item in delays_items:
        pipe.submit(item, delay)
    assert done.wait(timeout=5)
    pipe.close()
    return received


def test_delay_pipe_delivers_everything():
    assert collect_pipe([(0.01, i) for i in range(20)]) == list(range(20))


def test_delay_pipe_preserves_fifo_even_with_shrinking_delays():
    """A later item with a smaller delay must not overtake (TCP ordering)."""
    items = [(0.05, "slow"), (0.0, "fast")]
    assert collect_pipe(items) == ["slow", "fast"]


def test_delay_pipe_applies_delay():
    received = []
    done = threading.Event()
    pipe = DelayPipe(lambda item: (received.append(time.monotonic()), done.set()))
    t0 = time.monotonic()
    pipe.submit("x", 0.05)
    assert done.wait(timeout=5)
    assert received[0] - t0 >= 0.045
    pipe.close()


def test_delay_pipe_rejects_negative_delay():
    pipe = DelayPipe(lambda item: None)
    with pytest.raises(ValueError):
        pipe.submit("x", -0.1)
    pipe.close()


def test_delay_pipe_submit_after_close_rejected():
    pipe = DelayPipe(lambda item: None)
    pipe.close()
    with pytest.raises(RuntimeError):
        pipe.submit("x", 0.0)


def test_delay_pipe_close_drains():
    received = []
    pipe = DelayPipe(received.append)
    for i in range(5):
        pipe.submit(i, 0.02)
    pipe.close(drain=True)
    assert received == [0, 1, 2, 3, 4]


def test_link_shaper_delay_components():
    shaper = LinkShaper(NetworkProfile("x", rtt_s=0.02, bandwidth_bps=1e6))
    # Propagation floor is always paid.
    assert shaper.delay_for(0) >= 0.01
    # Large payloads add serialization backlog.
    big = shaper.delay_for(2_000_000)
    assert big > 1.0  # 2 MB over 1 MB/s


def test_link_shaper_unshaped_bandwidth():
    shaper = LinkShaper(NetworkProfile("x", rtt_s=0.01))
    assert shaper.delay_for(10**9) == pytest.approx(0.005)


def test_builtin_profiles_cover_paper_regimes():
    assert set(PROFILES) == {
        "local", "lan-0.1ms", "lan-1ms", "lan-10ms", "wan-30ms", "shm"
    }
    assert PROFILES["wan-30ms"].rtt_s == pytest.approx(0.03)
    assert PROFILES["local"].rtt_s == 0.0
    # The shm profile is a co-located pair: nothing to shape.
    assert PROFILES["shm"].rtt_s == 0.0
    assert PROFILES["shm"].bandwidth_bps == float("inf")
    # All emulated regimes ride the testbed's 10 GbE.
    for name, p in PROFILES.items():
        if name != "shm":
            assert p.bandwidth_bps == pytest.approx(10e9 / 8)
