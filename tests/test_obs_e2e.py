"""E2E telemetry acceptance: full trace chains over both transports, plus
a valid, series-complete /metrics scrape from a live deployment.

This is the CI-facing demo the observability PR promises: deploy the
quickstart preset with ``trace_sample = 1.0``, consume an epoch, and the
trace stream must reconstruct a complete 7-stage span chain
(read → encode → send → recv → decode → preprocess → consume) for every
batch — no orphans, monotonic stage starts — under TCP and under the
shared-memory ring alike.  The same helpers back ``repro.tools.trace
--validate``, so the CLI and this test cannot drift apart.
"""

from __future__ import annotations

import dataclasses
import urllib.request

import pytest

from repro.api import EMLIO, preset
from repro.api.spec import ObservabilitySpec
from repro.obs.trace import SPAN_STAGES
from repro.tools import trace as trace_tool
from repro.tools.benchcheck import check_prometheus_text


def _traced_quickstart(tmp_path, transport: str, metrics_port=0):
    spec = preset("quickstart")
    return dataclasses.replace(
        spec,
        network=dataclasses.replace(spec.network, transport=transport),
        observability=ObservabilitySpec(
            metrics_port=metrics_port,
            trace_dir=str(tmp_path / f"traces-{transport}"),
            trace_sample=1.0,
        ),
    )


@pytest.mark.parametrize("transport", ["tcp", "shm"])
def test_full_trace_chain_per_batch(tmp_path, transport):
    spec = _traced_quickstart(tmp_path, transport, metrics_port=None)
    with EMLIO.deploy(spec) as dep:
        batches = sum(1 for _ in dep.epoch(0))
        status = dep.status()
    assert batches == 8  # 64 samples / batch_size 8
    telemetry = status["telemetry"]
    assert telemetry["trace_sample"] == 1.0
    assert telemetry["metrics_endpoint"] is None
    # close() flushed the writer; every batch must reconstruct fully.
    traces = trace_tool.group_traces(
        trace_tool.read_spans(spec.observability.trace_dir)
    )
    assert len(traces) == batches
    for trace, recs in traces.items():
        epoch, _node, seq = trace_tool.parse_trace_id(trace)
        assert epoch == 0 and 0 <= seq < batches
        assert trace_tool.validate_chain(recs) == [], trace
        assert [r["span"] for r in recs] == list(SPAN_STAGES)
    # The CLI view over the same stream agrees.
    assert trace_tool.main(
        ["--trace-dir", spec.observability.trace_dir, "--epoch", "0", "--validate"]
    ) == 0


def test_metrics_scrape_covers_all_subsystems(tmp_path):
    spec = _traced_quickstart(tmp_path, "tcp")
    with EMLIO.deploy(spec) as dep:
        for _ in dep.epoch(0):
            pass
        endpoint = dep.status()["telemetry"]["metrics_endpoint"]
        assert endpoint and endpoint.endswith("/metrics")
        text = urllib.request.urlopen(endpoint, timeout=5).read().decode()
    assert check_prometheus_text(text) == []
    # Transport, storage-tier, pipeline-stage, and failover series all
    # present — the acceptance criterion for the scrape surface.
    for series in (
        "emlio_transport_bytes_sent_total",
        "emlio_transport_batches_sent_total",
        'emlio_transport_nodes{transport="tcp"} 1',
        'emlio_storage_tier_reads_total{tier=',
        'emlio_pipeline_stage_ns{stage="decode"}',
        'emlio_pipeline_stage_ns{stage="preprocess"}',
        'emlio_failovers_total{kind="daemon"} 0',
        'emlio_failovers_total{kind="receiver"} 0',
        "emlio_batches_received_total 8",
        "emlio_decode_seconds_count 8",
        "emlio_preprocess_seconds_count",
        "emlio_heartbeat_decode_errors_total 0",
    ):
        assert series in text, series


def test_trace_writer_stats_surface_in_status(tmp_path):
    spec = _traced_quickstart(tmp_path, "tcp", metrics_port=None)
    with EMLIO.deploy(spec) as dep:
        for _ in dep.epoch(0):
            pass
        telemetry = dep.status()["telemetry"]
    # 8 batches x 7 stages, plus the service timeline events that share
    # the sink; nothing may be dropped at quickstart scale.
    assert telemetry["spans_written"] >= 8 * len(SPAN_STAGES)
    assert telemetry["spans_dropped"] == 0
    assert telemetry["trace_dir"] == spec.observability.trace_dir


def test_observability_defaults_are_inert(tmp_path):
    """No [observability] section: no exporter, no trace files, same data."""
    with EMLIO.deploy(preset("quickstart")) as dep:
        n = sum(len(l) for _t, l in dep.epoch(0))
        telemetry = dep.status()["telemetry"]
    assert n == 64
    assert telemetry == {
        "metrics_endpoint": None,
        "trace_dir": None,
        "trace_sample": 0.0,
        "spans_written": 0,
        "spans_dropped": 0,
    }
