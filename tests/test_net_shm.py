"""Shared-memory ring transport: layout, wrap-around, handshake, doorbell.

Covers the SPSC ring invariants directly (including Hypothesis property
tests for wrap-around with arbitrary frame sizes, sequentially and under
concurrent producer/consumer threads), the TCP-carried handshake with its
ack/nack/fallback paths, doorbell wakeup semantics, and peer-death
signalling — the contracts the daemon's failover path and the receiver's
drain loop rest on.
"""

import json
import socket
import threading
import time
from collections import deque
from multiprocessing import shared_memory

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.channel import Listener, connect_channel
from repro.net.emulation import NetworkProfile
from repro.net.mq import PullSocket, PushSocket
from repro.net.shm import (
    MIN_RING_BYTES,
    SHM_ACK,
    SHM_HELLO,
    SHM_NACK,
    RingReceiver,
    ShmAttachError,
    ShmHandshakeRefused,
    ShmPushSocket,
    ShmRing,
    is_local_host,
    shm_eligible,
)

CAP = MIN_RING_BYTES  # the smallest legal ring: wraps come fast


@pytest.fixture
def ring_pair():
    prod = ShmRing.create(CAP)
    cons = ShmRing.attach(prod.name, CAP)
    yield prod, cons
    cons.close()
    prod.close()


def _drain_one(cons, expect: bytes):
    item = cons.try_read()
    assert item is not None
    view, lease = item
    assert bytes(view) == expect
    lease.release()


# -- ring basics ---------------------------------------------------------------


def test_ring_roundtrip_single_frame(ring_pair):
    prod, cons = ring_pair
    assert prod.try_write((b"hello",), 5, hwm=4)
    view, lease = cons.try_read()
    assert bytes(view) == b"hello"
    assert lease.nbytes == 5
    assert prod.frames_written == 1 and prod.frames_released == 0
    lease.release()
    assert prod.frames_released == 1
    assert prod.used_bytes == 0  # span reclaimed, not just credited


def test_ring_scatter_gather_parts(ring_pair):
    prod, cons = ring_pair
    assert prod.try_write((b"ab", b"", b"cd"), 4, hwm=4)
    _drain_one(cons, b"abcd")


def test_ring_zero_length_frame(ring_pair):
    prod, cons = ring_pair
    assert prod.try_write((), 0, hwm=4)
    view, lease = cons.try_read()
    assert bytes(view) == b"" and lease.nbytes == 0
    lease.release()
    assert prod.frames_released == 1


def test_ring_rejects_oversized_frame(ring_pair):
    prod, _cons = ring_pair
    with pytest.raises(ValueError, match="exceeds the shm ring"):
        prod.try_write((b"x" * CAP,), CAP, hwm=4)


def test_ring_hwm_backpressure(ring_pair):
    prod, cons = ring_pair
    assert prod.try_write((b"a",), 1, hwm=2)
    assert prod.try_write((b"b",), 1, hwm=2)
    assert not prod.try_write((b"c",), 1, hwm=2)  # credit window exhausted
    _view, lease = cons.try_read()
    lease.release()
    assert prod.try_write((b"c",), 1, hwm=2)  # release is the credit grant


def test_ring_byte_backpressure_then_wraparound(ring_pair):
    prod, cons = ring_pair
    big = CAP // 2 - 1024
    assert prod.try_write((b"\x01" * big,), big, hwm=8)
    assert prod.try_write((b"\x02" * big,), big, hwm=8)
    assert not prod.try_write((b"\x03" * big,), big, hwm=8)  # no free span
    _drain_one(cons, b"\x01" * big)
    # The third frame straddles the end: pad + restart at offset 0.
    assert prod.try_write((b"\x03" * big,), big, hwm=8)
    _drain_one(cons, b"\x02" * big)
    _drain_one(cons, b"\x03" * big)
    assert prod.used_bytes == 0


def test_ring_large_frame_wraps_repeatedly(ring_pair):
    prod, cons = ring_pair
    big = (CAP * 5) // 8  # > half the ring: every iteration wraps
    for i in range(6):
        payload = bytes([i + 1]) * big
        assert prod.try_write((payload,), big, hwm=4)
        _drain_one(cons, payload)
    assert prod.frames_released == 6
    assert prod.used_bytes == 0


def test_ring_out_of_order_release(ring_pair):
    prod, cons = ring_pair
    for tag in (b"a", b"b", b"c"):
        assert prod.try_write((tag * 100,), 100, hwm=8)
    leases = []
    for _ in range(3):
        _view, lease = cons.try_read()
        leases.append(lease)
    used_all = prod.used_bytes
    leases[1].release()  # middle first: credit advances, bytes park
    assert prod.frames_released == 1
    assert prod.used_bytes == used_all
    leases[0].release()  # prefix [0, 1] now clear
    assert prod.frames_released == 2
    assert 0 < prod.used_bytes < used_all
    leases[2].release()
    assert prod.frames_released == 3
    assert prod.used_bytes == 0


def test_lease_release_idempotent(ring_pair):
    prod, cons = ring_pair
    assert prod.try_write((b"x",), 1, hwm=4)
    _view, lease = cons.try_read()
    lease.release()
    lease.release()
    assert prod.frames_released == 1
    assert lease.released


def test_attach_validates_layout():
    prod = ShmRing.create(CAP)
    try:
        with pytest.raises(ShmAttachError, match="unexpected layout"):
            ShmRing.attach(prod.name, CAP * 2)
    finally:
        prod.close()
    with pytest.raises(ShmAttachError, match="cannot attach"):
        ShmRing.attach("emlr-no-such-segment", CAP)


def test_create_rejects_tiny_capacity():
    with pytest.raises(ValueError, match="capacity"):
        ShmRing.create(MIN_RING_BYTES - 1)


def test_producer_close_unlinks_segment():
    prod = ShmRing.create(CAP)
    name = prod.name
    cons = ShmRing.attach(name, CAP)
    prod.close()
    with pytest.raises(FileNotFoundError):
        shared_memory.SharedMemory(name=name)
    # The consumer's mapping stays valid after the unlink.
    assert not cons.producer_alive
    cons.close()


# -- Hypothesis: wrap-around with arbitrary frame sizes ------------------------

# Sizes span the interesting regimes: empty frames, typical batches, and
# frames larger than half the ring (every write wraps).
_SIZES = st.lists(
    st.integers(min_value=0, max_value=(CAP * 5) // 8), min_size=1, max_size=24
)


def _payload(i: int, size: int) -> bytes:
    return bytes([(i * 31 + size) % 255 + 1]) * size


@settings(max_examples=25, deadline=None)
@given(sizes=_SIZES, hwm=st.integers(min_value=1, max_value=8))
def test_ring_preserves_frames_in_order(sizes, hwm):
    """Interleaved write/read: every frame arrives intact, in FIFO order,
    and a full drain reclaims every byte regardless of wrap pattern."""
    prod = ShmRing.create(CAP)
    cons = ShmRing.attach(prod.name, CAP)
    try:
        pending = deque()
        for i, size in enumerate(sizes):
            payload = _payload(i, size)
            stalls = 0
            while not prod.try_write((payload,), size, hwm):
                item = cons.try_read()
                if item is None:
                    # Legitimate only at a wrap boundary: the failed write
                    # published a pad, and skipping it reclaims bytes
                    # without yielding a frame.  More than a couple of
                    # frameless rounds means a real deadlock.
                    stalls += 1
                    assert stalls <= 2, "ring deadlocked"
                    continue
                stalls = 0
                view, lease = item
                assert bytes(view) == pending.popleft()
                lease.release()
            pending.append(payload)
        while pending:
            item = cons.try_read()
            assert item is not None
            view, lease = item
            assert bytes(view) == pending.popleft()
            lease.release()
        assert cons.try_read() is None
        assert prod.frames_released == prod.frames_written == len(sizes)
        assert prod.used_bytes == 0
    finally:
        cons.close()
        prod.close()


@settings(max_examples=10, deadline=None)
@given(sizes=_SIZES, hwm=st.integers(min_value=1, max_value=8))
def test_ring_concurrent_producer_consumer(sizes, hwm):
    """A producer thread races the consuming thread across wrap-arounds;
    the consumer still sees every frame byte-for-byte, in order."""
    prod = ShmRing.create(CAP)
    cons = ShmRing.attach(prod.name, CAP)
    errors = []

    def produce():
        try:
            for i, size in enumerate(sizes):
                payload = _payload(i, size)
                while not prod.try_write((payload,), size, hwm):
                    time.sleep(0.0002)
        except Exception as err:  # pragma: no cover - surfaced via errors
            errors.append(err)

    producer = threading.Thread(target=produce)
    producer.start()
    try:
        deadline = time.monotonic() + 30
        for i, size in enumerate(sizes):
            while True:
                item = cons.try_read()
                if item is not None:
                    break
                assert time.monotonic() < deadline, "consumer starved"
                time.sleep(0.0002)
            view, lease = item
            assert bytes(view) == _payload(i, size)
            lease.release()
        producer.join(timeout=30)
        assert not producer.is_alive() and not errors
        assert prod.frames_released == len(sizes)
        assert prod.used_bytes == 0
    finally:
        producer.join(timeout=1)
        cons.close()
        prod.close()


# -- handshake, doorbell, peer death -------------------------------------------


def test_shm_handshake_and_transfer():
    # hwm > the burst size: the whole burst is sent before the first recv,
    # and recv (not the drain loop) is what releases the leases.
    pull = PullSocket(hwm=16, pooled=True)
    push = ShmPushSocket("127.0.0.1", pull.port, hwm=16)
    try:
        assert pull.shm_attaches == 1
        assert pull.num_rings == 1
        assert push.num_streams == 1
        sent = [bytes([i]) * 100 for i in range(10)]
        for payload in sent:
            push.send(payload)
        got = [pull.recv(timeout=10) for _ in range(10)]
        assert got == sent
        (ring,) = pull._rings
        assert ring.bytes_received == sum(len(p) for p in sent)
        # The socket total adds control-channel traffic (hello, doorbells).
        assert pull.bytes_received >= ring.bytes_received
        assert push.frames_sent == 10
    finally:
        push.close(timeout=10)
        pull.close()


def test_shm_and_tcp_pushers_share_a_pull_socket():
    pull = PullSocket(hwm=8, pooled=True)
    shm_push = ShmPushSocket("127.0.0.1", pull.port, hwm=8)
    tcp_push = PushSocket([("127.0.0.1", pull.port)], hwm=8)
    try:
        shm_push.send(b"ring" * 64)
        tcp_push.send(b"sock" * 64)
        got = {pull.recv(timeout=10) for _ in range(2)}
        assert got == {b"ring" * 64, b"sock" * 64}
        assert pull.num_rings == 1
    finally:
        shm_push.close(timeout=10)
        tcp_push.close(timeout=10)
        pull.close()


def test_malformed_hello_is_nacked():
    pull = PullSocket(hwm=4, pooled=True)
    chan = connect_channel("127.0.0.1", pull.port)
    try:
        chan.send(SHM_HELLO + b"this is not json")
        reply = chan.recv()
        assert reply[:1] == SHM_NACK
        assert b"malformed" in reply
    finally:
        chan.close()
        pull.close()


def test_foreign_host_hello_rejected():
    hello = json.dumps(
        {"name": "x", "capacity": CAP, "host": "not-" + socket.gethostname()}
    ).encode()
    with pytest.raises(ShmAttachError, match="not this host"):
        RingReceiver.from_hello(hello)


def test_handshake_nack_raises_refused():
    listener = Listener()

    def serve(chan):
        try:
            chan.recv()
            chan.send(SHM_NACK + b"no shm here")
        except (ConnectionError, OSError):
            pass

    listener.serve_forever(serve)
    try:
        with pytest.raises(ShmHandshakeRefused, match="no shm here"):
            ShmPushSocket("127.0.0.1", listener.port, hwm=4)
    finally:
        listener.close()


def test_handshake_ack_must_be_ack():
    # A server speaking a different protocol (first reply is not 0x03)
    # reads as refused, never as an attached ring.
    listener = Listener()

    def serve(chan):
        try:
            chan.recv()
            chan.send(b"\x00garbage")
        except (ConnectionError, OSError):
            pass

    listener.serve_forever(serve)
    try:
        with pytest.raises(ShmHandshakeRefused):
            ShmPushSocket("127.0.0.1", listener.port, hwm=4)
    finally:
        listener.close()


def test_doorbell_set_on_control_loss():
    prod = ShmRing.create(CAP)
    recv = RingReceiver(ShmRing.attach(prod.name, CAP), hwm=4)
    try:
        assert not recv.doorbell.is_set()
        assert not recv.finished  # producer alive, nothing to drain yet
        recv.control_lost()
        assert recv.doorbell.is_set()  # drain loop wakes to observe death
        assert recv.finished  # gone + drained
    finally:
        recv.close()
        prod.close()


def test_consumer_death_turns_sends_into_connection_error():
    pull = PullSocket(hwm=4, pooled=True)
    push = ShmPushSocket("127.0.0.1", pull.port, hwm=4)
    pull.close()
    try:
        with pytest.raises(ConnectionError):
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                push.send(b"x" * 64)
                time.sleep(0.005)
            raise AssertionError("peer death never surfaced")
    finally:
        push.close(timeout=1)


def test_drop_connection_is_the_hard_crash_signature():
    pull = PullSocket(hwm=4, pooled=True)
    push = ShmPushSocket("127.0.0.1", pull.port, hwm=4)
    try:
        push.send(b"delivered" * 10)
        assert pull.recv(timeout=10) == b"delivered" * 10
        push.drop_connection()
        with pytest.raises((ConnectionError, RuntimeError)):
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                push.send(b"x")
                time.sleep(0.005)
            raise AssertionError("severed control channel never surfaced")
        # The receiver prunes the ring once the EOF lands and it drains.
        deadline = time.monotonic() + 10
        while pull.num_rings and time.monotonic() < deadline:
            time.sleep(0.01)
        assert pull.num_rings == 0
    finally:
        push.close(timeout=1)
        pull.close()


def test_send_on_closed_socket_raises():
    pull = PullSocket(hwm=4, pooled=True)
    push = ShmPushSocket("127.0.0.1", pull.port, hwm=4)
    push.close(timeout=5)
    try:
        with pytest.raises(RuntimeError, match="closed"):
            push.send(b"x")
    finally:
        pull.close()


# -- transport selection -------------------------------------------------------


def test_shm_eligible_matrix():
    shaped = NetworkProfile("lan", rtt_s=0.001)
    flat = NetworkProfile("shm-like", rtt_s=0.0)
    assert shm_eligible("shm", "10.0.0.9", shaped)  # forced: always attempt
    assert not shm_eligible("tcp", "127.0.0.1", None)
    assert shm_eligible("auto", "127.0.0.1", None)
    assert shm_eligible("auto", "127.0.0.1", flat)
    # Shaped links declare the pair "not co-located" for the experiment.
    assert not shm_eligible("auto", "127.0.0.1", shaped)


def test_is_local_host():
    assert is_local_host("127.0.0.1")
    assert is_local_host("localhost")
    assert is_local_host(socket.gethostname())
    assert not is_local_host("no-such-host.invalid")
