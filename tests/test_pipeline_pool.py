"""The bounded preprocess worker pool (Pipeline workers > 1).

Pins the pool's contract: output order is the source order regardless of
worker count, augmentation is deterministic per (seed, sequence), source
and preprocess errors surface to ``run()``, teardown joins every thread,
and per-stage timing flows into the shared :class:`PipelineStats`.
"""

import threading

import numpy as np
import pytest

from repro.codec.sjpg import sjpg_encode
from repro.data.samples import smooth_image
from repro.gpu.device import SimulatedGPU
from repro.gpu.pipeline import EndOfData, Pipeline, PipelineStats


def _source(n_batches, batch_size=2, hw=16):
    """A serial source emitting ``n_batches`` with position-coded labels."""
    rng = np.random.default_rng(0)
    encoded = [sjpg_encode(smooth_image(rng, hw, hw), quality=80) for _ in range(4)]
    state = {"i": 0}

    def source():
        i = state["i"]
        if i >= n_batches:
            raise EndOfData
        state["i"] = i + 1
        samples = [encoded[(i + j) % len(encoded)] for j in range(batch_size)]
        labels = [i * batch_size + j for j in range(batch_size)]
        return samples, labels

    return source


def _drain(pipe):
    out = []
    with pipe:
        for tensors, labels in pipe:
            out.append((tensors, labels))
    return out


@pytest.mark.parametrize("workers", [2, 4])
def test_pool_preserves_source_order(workers):
    batches = _drain(
        Pipeline(_source(16), workers=workers, prefetch=3, output_hw=(8, 8))
    )
    assert len(batches) == 16
    flat = [int(l) for _t, ls in batches for l in ls]
    assert flat == list(range(32))  # exact single-worker order


def test_pool_matches_own_rerun_deterministically():
    """(seed, sequence)-derived rng: the same pooled config reproduces
    bit-identical tensors run over run, regardless of worker scheduling."""
    a = _drain(Pipeline(_source(8), workers=4, seed=7, output_hw=(8, 8)))
    b = _drain(Pipeline(_source(8), workers=4, seed=7, output_hw=(8, 8)))
    for (ta, la), (tb, lb) in zip(a, b):
        np.testing.assert_array_equal(ta, tb)
        np.testing.assert_array_equal(la, lb)


def test_pool_source_error_reaches_consumer():
    state = {"i": 0}

    def source():
        if state["i"] >= 3:
            raise RuntimeError("shard went away")
        state["i"] += 1
        return _source(99)()

    pipe = Pipeline(source, workers=3, output_hw=(8, 8))
    with pipe:
        for _ in range(3):
            pipe.run()
        with pytest.raises(RuntimeError, match="shard went away"):
            pipe.run()


def test_pool_preprocess_error_reaches_consumer():
    def bad_preprocess(samples, output_hw, rng):
        raise ValueError("corrupt sample")

    pipe = Pipeline(_source(4), workers=2, preprocess_fn=bad_preprocess,
                    output_hw=(8, 8))
    with pipe:
        with pytest.raises(ValueError, match="corrupt sample"):
            pipe.run()


def test_pool_end_of_data_is_sticky():
    pipe = Pipeline(_source(2), workers=2, output_hw=(8, 8))
    with pipe:
        pipe.run()
        pipe.run()
        for _ in range(3):  # later callers keep seeing the end
            with pytest.raises(EndOfData):
                pipe.run()


def test_teardown_joins_every_pool_thread():
    before = set(threading.enumerate())
    pipe = Pipeline(_source(64), workers=4, prefetch=2, output_hw=(8, 8))
    pipe.build()
    pipe.run()  # pool is actively mid-epoch when torn down
    pipe.teardown()
    leaked = [
        t for t in set(threading.enumerate()) - before
        if t.is_alive() and t.name.startswith("dali-")
    ]
    assert leaked == []


def test_workers_validation():
    with pytest.raises(ValueError, match="workers"):
        Pipeline(_source(1), workers=0)


def test_pool_records_shared_stage_stats():
    stats = PipelineStats()
    stats.record_decode(0.002)  # the receiver's share of the chain
    pipe = Pipeline(_source(6), workers=3, output_hw=(8, 8), stats=stats)
    assert len(_drain(pipe)) == 6
    snap = stats.snapshot()
    assert snap["batches"] == 6 and snap["samples"] == 12
    assert snap["preprocess_s"] > 0
    per_batch = stats.per_batch_ns()
    assert per_batch["decode_ns"] == 2_000_000
    assert per_batch["preprocess_ns"] > 0
    assert set(per_batch) == {"decode_ns", "preprocess_ns", "starved_ns"}


def test_pool_realtime_gpu_accounting_matches_submit():
    """submit_overlapped runs kernels outside the stream lock but books
    the same busy time and kernel count as the serial submit path."""
    gpu = SimulatedGPU(realtime=False)
    batches = _drain(Pipeline(_source(5), gpu=gpu, workers=2, output_hw=(8, 8)))
    assert len(batches) == 5
    snap = gpu.snapshot()
    assert snap["kernels_run"] == 5
    assert snap["busy_s"] > 0
