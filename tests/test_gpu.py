"""Tests for the simulated GPU, preprocessing ops, and DALI-like pipeline."""

import threading
import time

import numpy as np
import pytest

from repro.codec.raw import raw_encode
from repro.codec.sjpg import sjpg_encode
from repro.data.samples import smooth_image
from repro.energy.power_models import BusyWindowTracker, UtilizationGauges
from repro.gpu.device import GpuCostModel, SimulatedGPU
from repro.gpu.ops import (
    batch_megapixels,
    decode_sample,
    normalize_batch,
    preprocess_batch,
    random_crop,
    resize_bilinear,
)
from repro.gpu.pipeline import EndOfData, Pipeline

# -- device ---------------------------------------------------------------------


def test_gpu_accounts_busy_time():
    gpu = SimulatedGPU()
    gpu.submit(lambda: 1 + 1, modeled_s=0.5)
    gpu.submit(lambda: 2, modeled_s=0.25)
    snap = gpu.snapshot()
    assert snap["busy_s"] == pytest.approx(0.75)
    assert snap["kernels_run"] == 2


def test_gpu_realtime_occupies_wall_time():
    gpu = SimulatedGPU(realtime=True)
    start = time.monotonic()
    gpu.submit(lambda: None, modeled_s=0.05)
    assert time.monotonic() - start >= 0.045


def test_gpu_feeds_busy_tracker():
    gauges = UtilizationGauges()
    tracker = BusyWindowTracker(gauges, "gpu")
    gpu = SimulatedGPU(tracker=tracker)
    gpu.submit(lambda: None, modeled_s=0.05)
    tracker.flush(0.1)
    assert gauges.get_util("gpu") == pytest.approx(0.5)


def test_gpu_serializes_kernels():
    """Kernels from many threads never overlap (single CUDA stream)."""
    gpu = SimulatedGPU()
    active = []
    overlaps = []
    lock = threading.Lock()

    def kernel():
        with lock:
            active.append(1)
            if len(active) > 1:
                overlaps.append(True)
        time.sleep(0.01)
        with lock:
            active.pop()

    threads = [
        threading.Thread(target=gpu.submit, args=(kernel, 0.0)) for _ in range(8)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not overlaps


def test_gpu_negative_cost_rejected():
    with pytest.raises(ValueError):
        SimulatedGPU().submit(lambda: None, modeled_s=-1.0)


def test_cost_model_scaling():
    cm = GpuCostModel()
    assert cm.decode_time(2.0) > cm.decode_time(1.0)
    assert cm.train_step_time(64) > cm.train_step_time(32)


# -- ops -------------------------------------------------------------------------


def test_decode_sample_dispatch(rng):
    img = smooth_image(rng, 24, 24)
    out = decode_sample(sjpg_encode(img))
    assert out.shape == (24, 24, 3)
    raw = decode_sample(raw_encode(b"\x07" * 3 * 100))
    assert raw.ndim == 3 and raw.shape[2] == 3


def test_decode_unknown_magic():
    with pytest.raises(ValueError):
        decode_sample(b"XXXXsomething")


def test_resize_identity(rng):
    img = smooth_image(rng, 32, 32)
    out = resize_bilinear(img, 32, 32)
    assert np.array_equal(out, img)


def test_resize_shapes(rng):
    img = smooth_image(rng, 30, 50)
    assert resize_bilinear(img, 60, 25).shape == (60, 25, 3)
    assert resize_bilinear(img, 7, 7).shape == (7, 7, 3)


def test_resize_constant_image_stays_constant():
    img = np.full((16, 16, 3), 99, dtype=np.uint8)
    out = resize_bilinear(img, 31, 9)
    assert np.all(out == 99)


def test_resize_validation(rng):
    img = smooth_image(rng, 16, 16)
    with pytest.raises(ValueError):
        resize_bilinear(img, 0, 10)
    with pytest.raises(ValueError):
        resize_bilinear(img[:, :, 0], 8, 8)


def test_random_crop_bounds(rng):
    img = smooth_image(rng, 40, 40)
    crop = random_crop(img, 16, 16, rng)
    assert crop.shape == (16, 16, 3)


def test_random_crop_upscales_small_images(rng):
    img = smooth_image(rng, 8, 8)
    crop = random_crop(img, 16, 16, rng)
    assert crop.shape == (16, 16, 3)


def test_normalize_batch_shape_and_stats(rng):
    batch = np.stack([smooth_image(rng, 16, 16) for _ in range(4)])
    out = normalize_batch(batch)
    assert out.shape == (4, 3, 16, 16)
    assert out.dtype == np.float32
    # Normalized values should be roughly centered.
    assert abs(float(out.mean())) < 3.0


def test_normalize_batch_validation():
    with pytest.raises(ValueError):
        normalize_batch(np.zeros((16, 16, 3), dtype=np.uint8))


def test_preprocess_batch_end_to_end(rng):
    samples = [sjpg_encode(smooth_image(rng, 20 + i, 24)) for i in range(3)]
    out = preprocess_batch(samples, (16, 16), rng)
    assert out.shape == (3, 3, 16, 16)


def test_batch_megapixels(rng):
    samples = [sjpg_encode(smooth_image(rng, 100, 100))]
    assert batch_megapixels(samples) == pytest.approx(100 * 100 * 3 / 1e6)
    assert batch_megapixels([raw_encode(b"z" * 1000)]) == pytest.approx(1016 / 1e6)


# -- pipeline --------------------------------------------------------------------


def make_source(rng, n_batches, batch=4, hw=(16, 16)):
    payloads = [
        (
            [sjpg_encode(smooth_image(rng, *hw)) for _ in range(batch)],
            list(range(batch)),
        )
        for _ in range(n_batches)
    ]
    state = {"i": 0}

    def source():
        if state["i"] >= len(payloads):
            raise EndOfData
        item = payloads[state["i"]]
        state["i"] += 1
        return item

    return source


def test_pipeline_yields_all_batches(rng):
    pipe = Pipeline(make_source(rng, 5), output_hw=(16, 16), prefetch=2)
    batches = list(pipe)
    assert len(batches) == 5
    for tensors, labels in batches:
        assert tensors.shape == (4, 3, 16, 16)
        assert labels.tolist() == [0, 1, 2, 3]
    assert pipe.stats.batches == 5
    assert pipe.stats.samples == 20


def test_pipeline_run_raises_end_of_data_repeatedly(rng):
    pipe = Pipeline(make_source(rng, 1), output_hw=(16, 16))
    pipe.run()
    with pytest.raises(EndOfData):
        pipe.run()
    with pytest.raises(EndOfData):
        pipe.run()  # stays terminal
    pipe.teardown()


def test_pipeline_warmup_fills_prefetch(rng):
    pipe = Pipeline(make_source(rng, 6), output_hw=(16, 16), prefetch=3)
    pipe.warmup()
    assert pipe._out.qsize() >= 3
    list(pipe)
    pipe.teardown()


def test_pipeline_sync_mode(rng):
    pipe = Pipeline(make_source(rng, 3), output_hw=(16, 16), exec_async=False)
    assert len(list(pipe)) == 3


def test_pipeline_source_error_propagates(rng):
    def bad_source():
        raise RuntimeError("source exploded")

    pipe = Pipeline(bad_source, output_hw=(16, 16))
    with pytest.raises(RuntimeError, match="source exploded"):
        pipe.run()
    pipe.teardown()


def test_pipeline_prefetch_validation(rng):
    with pytest.raises(ValueError):
        Pipeline(make_source(rng, 1), prefetch=0)


def test_pipeline_teardown_with_full_queue(rng):
    pipe = Pipeline(make_source(rng, 10), output_hw=(16, 16), prefetch=1)
    pipe.warmup()
    pipe.teardown()  # must not hang with the worker blocked on a full queue


def test_pipeline_context_manager(rng):
    with Pipeline(make_source(rng, 2), output_hw=(16, 16)) as pipe:
        tensors, _labels = pipe.run()
        assert tensors.shape[0] == 4
