"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.datasets import SyntheticImageNet, SyntheticRecords
from repro.tfrecord.sharder import write_shards


def pytest_configure(config: pytest.Config) -> None:
    config.addinivalue_line(
        "markers",
        "slow: long-running end-to-end chaos scenarios (kill/drop/restart); "
        'deselect with -m "not slow"',
    )


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture
def small_imagenet(tmp_path):
    """A tiny sharded ImageNet-like dataset: 24 samples, 8 per shard."""
    gen = SyntheticImageNet(24, seed=7, image_hw=(32, 32), num_classes=10)
    return write_shards(iter(gen), tmp_path / "imagenet", records_per_shard=8)


@pytest.fixture
def small_synthetic(tmp_path):
    """A tiny RAW-record dataset: 12 samples of 4 KiB, 4 per shard."""
    gen = SyntheticRecords(12, sample_bytes=4096, seed=3)
    return write_shards(iter(gen), tmp_path / "synthetic", records_per_shard=4)
