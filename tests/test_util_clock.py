"""Tests for repro.util.clock."""

import time

import pytest

from repro.util.clock import Clock, MonotonicClock, VirtualClock, WallClock


def test_wall_clock_tracks_time():
    c = WallClock()
    t0 = c.now()
    time.sleep(0.01)
    assert c.now() > t0


def test_monotonic_clock_never_goes_backwards():
    c = MonotonicClock()
    samples = [c.now() for _ in range(100)]
    assert samples == sorted(samples)


def test_virtual_clock_starts_at_given_time():
    assert VirtualClock(42.0).now() == 42.0


def test_virtual_clock_advance():
    c = VirtualClock()
    c.advance(1.5)
    c.advance(0.5)
    assert c.now() == 2.0


def test_virtual_clock_advance_zero_is_allowed():
    c = VirtualClock(5.0)
    c.advance(0.0)
    assert c.now() == 5.0


def test_virtual_clock_rejects_negative_advance():
    with pytest.raises(ValueError):
        VirtualClock().advance(-0.1)


def test_virtual_clock_set_forward():
    c = VirtualClock(1.0)
    c.set(3.0)
    assert c.now() == 3.0


def test_virtual_clock_set_backwards_rejected():
    c = VirtualClock(10.0)
    with pytest.raises(ValueError):
        c.set(9.9)


def test_clocks_satisfy_protocol():
    for clock in (WallClock(), MonotonicClock(), VirtualClock()):
        assert isinstance(clock, Clock)
