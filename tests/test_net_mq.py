"""Tests for PUSH/PULL message sockets: fan-in, HWM backpressure, streams."""

import queue
import threading
import time

import pytest

from repro.net.channel import Listener, connect_channel
from repro.net.mq import PullSocket, PushSocket


@pytest.fixture
def pull():
    sock = PullSocket(hwm=16)
    yield sock
    sock.close()


def test_basic_push_pull(pull):
    push = PushSocket([pull.address], hwm=4)
    push.send(b"hello")
    assert pull.recv(timeout=5) == b"hello"
    push.close()


def test_messages_from_one_stream_arrive_in_order(pull):
    push = PushSocket([pull.address], hwm=64)
    msgs = [f"m{i}".encode() for i in range(50)]
    for m in msgs:
        push.send(m)
    got = [pull.recv(timeout=5) for _ in range(50)]
    assert got == msgs
    push.close()


def test_multiple_pushers_fan_in(pull):
    pushers = [PushSocket([pull.address], hwm=8) for _ in range(3)]
    for i, p in enumerate(pushers):
        for j in range(10):
            p.send(f"p{i}-{j}".encode())
    got = {pull.recv(timeout=5) for _ in range(30)}
    assert got == {f"p{i}-{j}".encode() for i in range(3) for j in range(10)}
    for p in pushers:
        p.close()


def test_multi_stream_push(pull):
    push = PushSocket([pull.address], hwm=8, streams_per_endpoint=4)
    assert push.num_streams == 4
    for i in range(40):
        push.send(f"{i}".encode())
    got = {pull.recv(timeout=5) for _ in range(40)}
    assert got == {f"{i}".encode() for i in range(40)}
    push.close()


def test_hwm_blocks_sender_until_receiver_drains():
    """With a tiny receive HWM and no reader, a pusher eventually blocks;
    draining unblocks it — the §4.5 backpressure behaviour."""
    pull = PullSocket(hwm=1)
    push = PushSocket([pull.address], hwm=1)
    sent = []
    finished = threading.Event()

    def producer():
        for i in range(30):
            push.send(b"x" * 2048)
            sent.append(i)
        finished.set()

    t = threading.Thread(target=producer, daemon=True)
    t.start()
    time.sleep(0.3)
    stalled_at = len(sent)
    # Without a consumer the producer must not complete all 30 sends.
    assert not finished.is_set()
    assert stalled_at < 30
    # Drain: the producer finishes.
    got = 0
    deadline = time.monotonic() + 10
    while got < 30 and time.monotonic() < deadline:
        try:
            pull.recv(timeout=1)
            got += 1
        except queue.Empty:
            break
    assert got == 30
    assert finished.wait(timeout=5)
    push.close()
    pull.close()


def test_try_send_reports_full():
    pull = PullSocket(hwm=1)
    push = PushSocket([pull.address], hwm=1)
    # Fill sender queue + receiver pipeline; eventually try_send returns False.
    filled = False
    for _ in range(200):
        if not push.try_send(b"y" * 1024):
            filled = True
            break
        time.sleep(0.002)
    assert filled
    # The stranded message can never earn a credit (no consumer); close must
    # drop it after the deadline instead of hanging.
    push.close(timeout=0.3)
    pull.close()


def test_try_recv_nonblocking(pull):
    assert pull.try_recv() is None
    push = PushSocket([pull.address], hwm=4)
    push.send(b"z")
    deadline = time.monotonic() + 5
    msg = None
    while msg is None and time.monotonic() < deadline:
        msg = pull.try_recv()
    assert msg == b"z"
    push.close()


def test_recv_timeout_raises(pull):
    with pytest.raises(queue.Empty):
        pull.recv(timeout=0.05)


def test_byte_accounting(pull):
    push = PushSocket([pull.address], hwm=4)
    push.send(b"12345")
    assert pull.recv(timeout=5) == b"12345"
    # Wire size = payload + 1 type byte.
    assert push.bytes_sent == 6
    deadline = time.monotonic() + 2
    while pull.bytes_received < 6 and time.monotonic() < deadline:
        time.sleep(0.01)
    assert pull.bytes_received == 6
    push.close()


def test_validation():
    with pytest.raises(ValueError):
        PushSocket([], hwm=4)
    with pytest.raises(ValueError):
        PullSocket(hwm=0)
    pull = PullSocket()
    with pytest.raises(ValueError):
        PushSocket([pull.address], hwm=0)
    with pytest.raises(ValueError):
        PushSocket([pull.address], hwm=1, streams_per_endpoint=0)
    pull.close()


def test_send_after_close_raises(pull):
    push = PushSocket([pull.address], hwm=4)
    push.close()
    with pytest.raises(RuntimeError):
        push.send(b"late")


def test_close_flushes_pending_messages():
    pull = PullSocket(hwm=64)
    push = PushSocket([pull.address], hwm=64)
    for i in range(20):
        push.send(f"{i}".encode())
    push.close()  # must flush, not drop
    got = sorted(int(pull.recv(timeout=5)) for _ in range(20))
    assert got == list(range(20))
    pull.close()


# -- transport bug regressions (credit inflation, pruning, accounting) --------


def test_spurious_credit_does_not_inflate_hwm():
    """Regression: a credit arriving with nothing in flight (e.g. a receiver
    double-acking a replayed message) must be ignored.  Releasing it anyway
    grows the semaphore past hwm, voiding the end-to-end backpressure bound."""
    hwm = 2
    with Listener() as listener:
        chans: queue.Queue = queue.Queue()

        def server():
            chan = listener.accept(timeout=5)
            chans.put(chan)
            while True:  # ack every data frame with one legit credit
                try:
                    frame = chan.recv()
                except (ConnectionError, OSError):
                    return
                if frame[:1] == b"\x00":
                    chan.send(b"\x01")

        threading.Thread(target=server, daemon=True).start()
        push = PushSocket([listener.address], hwm=hwm)
        server_chan = chans.get(timeout=5)
        stream = push._streams[0]
        server_chan.send(b"\x01")  # bogus credit: nothing is in flight
        push.send(b"payload")  # a real send, acked by the server
        # Wait until the real message is sent AND credited; frames are FIFO
        # per connection, so the bogus credit was processed before its ack.
        deadline = time.monotonic() + 5
        while time.monotonic() < deadline:
            with stream.lock:
                if stream.unflushed == 0 and not stream.inflight:
                    break
            time.sleep(0.01)
        got = 0
        while stream.credits.acquire(blocking=False):
            got += 1
        for _ in range(got):
            stream.credits.release()
        assert got == hwm, f"credit semaphore inflated to {got} (hwm={hwm})"
        push.close(timeout=1.0)
        server_chan.close()


def test_disconnected_channel_is_pruned(pull):
    """Regression: a PULL socket kept every disconnected channel forever —
    reconnect-heavy runs grew the channel list (and its accounting scan)
    without bound.  Dead channels must be pruned, with their byte counts
    folded into the retained total."""
    chan = connect_channel("127.0.0.1", pull.port)
    chan.send(b"\x00" + b"hello")
    assert pull.recv(timeout=5) == b"hello"
    assert pull.num_channels == 1
    chan.close()
    deadline = time.monotonic() + 5
    while pull.num_channels and time.monotonic() < deadline:
        time.sleep(0.01)
    assert pull.num_channels == 0  # corpse pruned
    assert pull.bytes_received == 6  # accounting survives the prune


def test_bytes_sent_not_double_counted_during_resurrect(pull):
    """Regression: ``PushSocket.bytes_sent`` read stream counters without the
    stream lock, so a read racing ``_resurrect``'s retire-and-swap critical
    section counted the dying channel twice (once live, once retired).

    Deterministic replay: a thread holds the stream lock mid-swap — retired
    already bumped, the channel counter not yet replaced — while the main
    thread reads the property."""
    push = PushSocket([pull.address], hwm=4)
    stream = push._streams[0]
    with stream.lock:
        stream.chan.bytes_sent = 100
        stream.retired_bytes = 0
    mid_swap = threading.Event()

    def fake_resurrect():
        with stream.lock:
            stream.retired_bytes += stream.chan.bytes_sent
            mid_swap.set()
            time.sleep(0.3)  # hold the critical section open
            stream.chan.bytes_sent = 0  # the swap completes

    t = threading.Thread(target=fake_resurrect, daemon=True)
    t.start()
    assert mid_swap.wait(timeout=5)
    observed = push.bytes_sent  # must block until the swap completes
    t.join(timeout=5)
    assert observed == 100, f"double-counted mid-swap: {observed}"
    push.close(timeout=1.0)


# -- pooled (zero-copy) receive mode ------------------------------------------


def test_pooled_pull_recv_frame_zero_copy():
    pull = PullSocket(hwm=8, pooled=True)
    push = PushSocket([pull.address], hwm=8)
    push.send(b"p" * 2000)
    frame = pull.recv_frame(timeout=5)
    assert isinstance(frame.data, memoryview)
    assert frame.data == b"p" * 2000
    frame.release()
    frame.release()  # idempotent
    assert pull.pool.free >= 1
    # The released buffer is reused for a later frame (pool hit), and the
    # copying recv() still works in pooled mode.
    push.send(b"q" * 100)
    msg = pull.recv(timeout=5)
    assert msg == b"q" * 100 and isinstance(msg, bytes)
    deadline = time.monotonic() + 2
    while pull.pool.hits == 0 and time.monotonic() < deadline:
        time.sleep(0.01)
    assert pull.pool.hits >= 1
    push.close()
    pull.close()


def test_pooled_send_parts_roundtrip():
    pull = PullSocket(hwm=8, pooled=True)
    push = PushSocket([pull.address], hwm=8)
    segments = (b"head|", b"x" * 1500, b"|tail")
    push.send_parts(segments)
    frame = pull.recv_frame(timeout=5)
    assert frame.data == b"".join(segments)
    frame.release()
    push.close()
    pull.close()


def test_close_flushes_credit_starved_writer():
    """Regression: with a small HWM the stream queue empties while the
    writer still holds popped-but-unsent messages hostage to outstanding
    credits; close() must wait for those too, not just empty queues —
    otherwise the tail of an epoch is silently dropped (surfaced as a
    receiver stall over narrow shaped links)."""
    pull = PullSocket(hwm=1)
    push = PushSocket([pull.address], hwm=1)
    done = threading.Event()

    def send_and_close():
        for i in range(6):
            push.send(f"{i}".encode())
        push.close(timeout=10.0)  # returns only once everything is on the wire
        done.set()

    t = threading.Thread(target=send_and_close, daemon=True)
    t.start()
    # Drain slowly: each recv returns one credit, releasing the next send.
    got = []
    for _ in range(6):
        time.sleep(0.05)
        got.append(int(pull.recv(timeout=5)))
    t.join(timeout=10.0)
    assert done.is_set()
    assert sorted(got) == list(range(6))
    pull.close()
