"""Tests for synthetic dataset generators."""

import numpy as np
import pytest

from repro.codec.raw import raw_decode
from repro.codec.sjpg import sjpg_decode
from repro.data.datasets import (
    COCO_SPEC,
    IMAGENET_SPEC,
    SPECS,
    SYNTHETIC_SPEC,
    SyntheticCOCO,
    SyntheticImageNet,
    SyntheticRecords,
    build_dataset,
)
from repro.data.samples import labelled_stream, smooth_image
from repro.tfrecord.sharder import unpack_example


def test_specs_match_paper_sizes():
    assert IMAGENET_SPEC.sample_bytes == 100_000
    assert COCO_SPEC.sample_bytes == 200_000
    assert SYNTHETIC_SPEC.sample_bytes == 2_000_000
    assert set(SPECS) == {"imagenet", "coco", "synthetic"}


def test_imagenet_generator_yields_decodable_images():
    gen = SyntheticImageNet(4, seed=0, image_hw=(32, 32), num_classes=10)
    items = list(gen)
    assert len(items) == 4
    for sample, label in items:
        img = sjpg_decode(sample)
        assert img.shape == (32, 32, 3)
        assert 0 <= label < 10


def test_generator_deterministic_by_seed():
    a = list(SyntheticImageNet(3, seed=5, image_hw=(16, 16)))
    b = list(SyntheticImageNet(3, seed=5, image_hw=(16, 16)))
    assert a == b


def test_generator_varies_by_seed():
    a = list(SyntheticImageNet(3, seed=1, image_hw=(16, 16)))
    b = list(SyntheticImageNet(3, seed=2, image_hw=(16, 16)))
    assert a != b


def test_coco_uses_80_classes():
    gen = SyntheticCOCO(20, seed=0, image_hw=(16, 16))
    labels = [label for _s, label in gen]
    assert all(0 <= l < 80 for l in labels)
    assert gen.spec.name == "coco"


def test_synthetic_records_exact_size():
    gen = SyntheticRecords(3, sample_bytes=4096, seed=0)
    for sample, label in gen:
        assert len(sample) == 4096
        assert raw_decode(sample)  # verifies framing
        assert 0 <= label < 10


def test_synthetic_record_too_small_rejected():
    gen = SyntheticRecords(1, sample_bytes=8)
    with pytest.raises(ValueError):
        list(gen)


def test_empty_dataset_rejected():
    with pytest.raises(ValueError):
        SyntheticImageNet(0)


def test_build_dataset_end_to_end(tmp_path):
    ds = build_dataset("imagenet", 10, tmp_path, seed=1, records_per_shard=4, image_hw=(16, 16))
    assert ds.num_samples == 10
    assert ds.num_shards == 3
    # Every record decodes back to an image.
    from repro.tfrecord.reader import scan_records

    for ix in ds.indexes:
        for record in scan_records(ds.root / ix.path):
            sample, label = unpack_example(record)
            assert sjpg_decode(sample).shape == (16, 16, 3)


def test_build_dataset_unknown_kind(tmp_path):
    with pytest.raises(ValueError, match="unknown dataset kind"):
        build_dataset("cifar", 4, tmp_path)


def test_smooth_image_properties(rng):
    img = smooth_image(rng, 33, 47, channels=3)
    assert img.shape == (33, 47, 3)
    assert img.dtype == np.uint8
    assert img.min() == 0 and img.max() == 255  # normalized to full range


def test_labelled_stream_bounds(rng):
    labels = labelled_stream(rng, 10, 1000)
    assert labels.min() >= 0 and labels.max() < 10


def test_labelled_stream_validation(rng):
    with pytest.raises(ValueError):
        labelled_stream(rng, 0, 5)
