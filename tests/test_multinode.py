"""Live multi-compute-node tests: one daemon feeding two receivers.

Exercises the data-parallel half of Algorithm 2 that the single-node
EMLIOService doesn't: a partitioned plan split across two PULL endpoints,
one PUSH daemon serving both, every sample delivered to exactly one node.
"""

import threading

import pytest

from repro.core.config import EMLIOConfig
from repro.core.daemon import EMLIODaemon
from repro.core.planner import Planner
from repro.core.receiver import EMLIOReceiver


@pytest.fixture
def two_node_setup(small_imagenet):
    cfg = EMLIOConfig(batch_size=4, output_hw=(16, 16), coverage="partition")
    plan = Planner(small_imagenet, num_nodes=2, config=cfg).plan()
    receivers = [
        EMLIOReceiver(node_id=i, plan=plan, config=cfg, stall_timeout=30.0) for i in range(2)
    ]
    daemon = EMLIODaemon(
        small_imagenet.root,
        plan,
        {i: ("127.0.0.1", r.port) for i, r in enumerate(receivers)},
        cfg,
    )
    yield cfg, plan, receivers, daemon
    daemon.close()
    for r in receivers:
        r.close()


def _consume(receiver, epoch, out, lock):
    labels = []
    for _tensors, batch_labels in receiver.epoch(epoch):
        labels.extend(int(l) for l in batch_labels)
    with lock:
        out[receiver.node_id] = labels


def test_partition_delivers_each_sample_to_exactly_one_node(
    two_node_setup, small_imagenet
):
    _cfg, plan, receivers, daemon = two_node_setup
    results: dict[int, list[int]] = {}
    lock = threading.Lock()
    consumers = [
        threading.Thread(target=_consume, args=(r, 0, results, lock), daemon=True)
        for r in receivers
    ]
    for t in consumers:
        t.start()
    daemon.serve_epoch(0)
    for t in consumers:
        t.join(timeout=60.0)
        assert not t.is_alive()

    # Per-node counts match the plan; union is the full dataset.
    for node in range(2):
        assert len(results[node]) == plan.samples_per_node(node, epoch=0)
    expected = sorted(
        label for labels in small_imagenet.labels().values() for label in labels
    )
    assert sorted(results[0] + results[1]) == expected
    assert results[0] and results[1]  # both nodes actually participated


def test_daemon_tracks_per_node_traffic(two_node_setup):
    _cfg, plan, receivers, daemon = two_node_setup
    results: dict[int, list[int]] = {}
    lock = threading.Lock()
    consumers = [
        threading.Thread(target=_consume, args=(r, 0, results, lock), daemon=True)
        for r in receivers
    ]
    for t in consumers:
        t.start()
    daemon.serve_epoch(0)
    for t in consumers:
        t.join(timeout=60.0)
    snap = daemon.stats.snapshot()
    assert snap["batches_sent"] == len(plan.assignments)
    assert receivers[0].batches_received == plan.batches_per_node(0, epoch=0)
    assert receivers[1].batches_received == plan.batches_per_node(1, epoch=0)


def test_replicate_coverage_sends_everything_to_both(small_imagenet):
    cfg = EMLIOConfig(batch_size=4, output_hw=(16, 16), coverage="replicate")
    plan = Planner(small_imagenet, num_nodes=2, config=cfg).plan()
    receivers = [
        EMLIOReceiver(node_id=i, plan=plan, config=cfg, stall_timeout=30.0) for i in range(2)
    ]
    daemon = EMLIODaemon(
        small_imagenet.root,
        plan,
        {i: ("127.0.0.1", r.port) for i, r in enumerate(receivers)},
        cfg,
    )
    results: dict[int, list[int]] = {}
    lock = threading.Lock()
    consumers = [
        threading.Thread(target=_consume, args=(r, 0, results, lock), daemon=True)
        for r in receivers
    ]
    for t in consumers:
        t.start()
    daemon.serve_epoch(0)
    for t in consumers:
        t.join(timeout=60.0)
    expected = sorted(
        label for labels in small_imagenet.labels().values() for label in labels
    )
    # Algorithm 2's literal contract: each node receives the full dataset.
    assert sorted(results[0]) == expected
    assert sorted(results[1]) == expected
    daemon.close()
    for r in receivers:
        r.close()
