"""Tests for CRC-32C: known vectors, fast-path vs reference, masking."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tfrecord.crc32c import (
    crc32c,
    crc32c_reference,
    masked_crc32c,
    unmask_crc32c,
)

# Known CRC-32C vectors (RFC 3720 / common test suite values).
KNOWN = [
    (b"", 0x00000000),
    (b"a", 0xC1D04330),
    (b"abc", 0x364B3FB7),
    (b"123456789", 0xE3069283),
    (b"\x00" * 32, 0x8A9136AA),
    (b"\xff" * 32, 0x62A8AB43),
    (bytes(range(32)), 0x46DD794E),
]


@pytest.mark.parametrize("data,expected", KNOWN)
def test_known_vectors(data, expected):
    assert crc32c(data) == expected
    assert crc32c_reference(data) == expected


def test_fast_path_matches_reference_across_sizes():
    # Cover the scalar path (<1024), the threshold, and the sliced path with
    # every possible remainder length.
    data = bytes((i * 131 + 17) % 256 for i in range(5000))
    for n in [0, 1, 7, 8, 9, 1023, 1024, 1025, 4096, 4097, 4999, 5000]:
        assert crc32c(data[:n]) == crc32c_reference(data[:n]), n


@settings(max_examples=100, deadline=None)
@given(st.binary(min_size=0, max_size=4096))
def test_property_fast_equals_reference(data):
    assert crc32c(data) == crc32c_reference(data)


def test_crc_detects_single_bit_flip():
    data = bytearray(b"The quick brown fox jumps over the lazy dog" * 50)
    original = crc32c(bytes(data))
    data[100] ^= 0x01
    assert crc32c(bytes(data)) != original


def test_masking_roundtrip():
    for data, _ in KNOWN:
        masked = masked_crc32c(data)
        assert unmask_crc32c(masked) == crc32c(data)


def test_mask_values_are_32bit():
    assert 0 <= masked_crc32c(b"x" * 100) <= 0xFFFFFFFF


def test_known_tfrecord_masked_crc():
    # masked crc of an 8-byte little-endian length field for length 3.
    import struct

    length_bytes = struct.pack("<Q", 3)
    crc = crc32c(length_bytes)
    expected_mask = (((crc >> 15) | (crc << 17)) + 0xA282EAD8) & 0xFFFFFFFF
    assert masked_crc32c(length_bytes) == expected_mask


def test_memoryview_and_bytearray_inputs():
    data = b"hello world" * 200
    assert crc32c(memoryview(data)) == crc32c(data)
    assert crc32c(bytearray(data)) == crc32c(data)
