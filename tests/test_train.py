"""Tests for the training substrate: model math, DDP, and the loop."""

import numpy as np
import pytest

from repro.net.emulation import LAN_10MS, LOCAL, NetworkProfile
from repro.train.ddp import RingAllReduce, allreduce_cost_s
from repro.train.loop import EpochLog, Trainer
from repro.train.models import (
    PROFILES,
    RESNET50_PROFILE,
    VGG19_PROFILE,
    MLPClassifier,
    SGDOptimizer,
)

# -- model math -------------------------------------------------------------------


def make_blob_problem(n=64, dim=12, classes=3, seed=0):
    """Linearly separable blobs: anything sane learns this."""
    rng = np.random.default_rng(seed)
    centers = rng.normal(0, 5.0, (classes, dim))
    y = rng.integers(0, classes, n)
    x = centers[y] + rng.normal(0, 0.5, (n, dim))
    return x.astype(np.float32), y.astype(np.int64)


def test_loss_is_log_c_on_zero_input():
    """Zero input -> zero logits -> exactly uniform softmax -> loss = ln C."""
    model = MLPClassifier(input_dim=12, num_classes=4, hidden=16, seed=0)
    x = np.zeros((8, 12), dtype=np.float32)
    y = np.zeros(8, dtype=np.int64)
    loss, _ = model.loss_and_grads(x, y)
    assert loss == pytest.approx(np.log(4), rel=1e-6)


def test_gradients_match_numerical():
    x, y = make_blob_problem(n=8, dim=5, classes=3)
    model = MLPClassifier(input_dim=5, num_classes=3, hidden=7, seed=1)
    _, grads = model.loss_and_grads(x, y)
    eps = 1e-6
    for p_idx, param in enumerate(model.params):
        flat = param.ravel()
        for k in np.random.default_rng(0).choice(flat.size, size=min(5, flat.size), replace=False):
            orig = flat[k]
            flat[k] = orig + eps
            lp, _ = model.loss_and_grads(x, y)
            flat[k] = orig - eps
            lm, _ = model.loss_and_grads(x, y)
            flat[k] = orig
            numeric = (lp - lm) / (2 * eps)
            assert grads[p_idx].ravel()[k] == pytest.approx(numeric, rel=1e-3, abs=1e-6)


def test_training_reduces_loss():
    x, y = make_blob_problem(n=128)
    model = MLPClassifier(input_dim=12, num_classes=3, hidden=32, seed=0)
    opt = SGDOptimizer(model.params, lr=0.1)
    first, _ = model.loss_and_grads(x, y)
    for _ in range(50):
        _, grads = model.loss_and_grads(x, y)
        opt.step(grads)
    final, _ = model.loss_and_grads(x, y)
    assert final < first * 0.3
    assert model.accuracy(x, y) > 0.9


def test_model_validation():
    with pytest.raises(ValueError):
        MLPClassifier(input_dim=0, num_classes=3)
    with pytest.raises(ValueError):
        MLPClassifier(input_dim=5, num_classes=1)
    model = MLPClassifier(input_dim=5, num_classes=3)
    with pytest.raises(ValueError):
        model.logits(np.zeros((2, 7), dtype=np.float32))
    with pytest.raises(ValueError):
        model.loss_and_grads(np.zeros((2, 5), dtype=np.float32), np.zeros(3, dtype=np.int64))


def test_optimizer_validation():
    model = MLPClassifier(input_dim=4, num_classes=2)
    with pytest.raises(ValueError):
        SGDOptimizer(model.params, lr=0.0)
    with pytest.raises(ValueError):
        SGDOptimizer(model.params, momentum=1.0)
    opt = SGDOptimizer(model.params)
    with pytest.raises(ValueError):
        opt.step([np.zeros(1)])


def test_nchw_input_is_flattened():
    model = MLPClassifier(input_dim=3 * 4 * 4, num_classes=2, hidden=8)
    x = np.random.default_rng(0).normal(size=(5, 3, 4, 4)).astype(np.float32)
    assert model.logits(x).shape == (5, 2)


def test_architecture_profiles():
    assert PROFILES["resnet50"] is RESNET50_PROFILE
    assert VGG19_PROFILE.gpu_util > RESNET50_PROFILE.gpu_util
    assert VGG19_PROFILE.param_bytes > RESNET50_PROFILE.param_bytes
    assert RESNET50_PROFILE.step_time(64) == pytest.approx(64 * 1.4e-3)


# -- DDP -----------------------------------------------------------------------------


def test_allreduce_average_is_exact():
    ar = RingAllReduce(num_ranks=3, profile=LOCAL)
    g0 = [np.array([1.0, 2.0]), np.array([[1.0]])]
    g1 = [np.array([3.0, 4.0]), np.array([[2.0]])]
    g2 = [np.array([5.0, 6.0]), np.array([[3.0]])]
    avg = ar.average([g0, g1, g2])
    assert np.allclose(avg[0], [3.0, 4.0])
    assert np.allclose(avg[1], [[2.0]])
    assert ar.sync_count == 1
    assert ar.modeled_sync_s > 0


def test_allreduce_single_rank_is_free():
    ar = RingAllReduce(num_ranks=1, profile=LAN_10MS)
    g = [np.ones(4)]
    out = ar.average([g])
    assert np.allclose(out[0], 1.0)
    assert ar.modeled_sync_s == 0.0


def test_allreduce_cost_increases_with_rtt():
    nbytes = 25_600_000 * 4
    local = allreduce_cost_s(nbytes, 4, LOCAL)
    wan = allreduce_cost_s(nbytes, 4, NetworkProfile("wan", rtt_s=0.03, bandwidth_bps=10e9 / 8))
    assert wan > local


def test_allreduce_cost_scaling_with_ranks():
    nbytes = 10**6
    p = NetworkProfile("x", rtt_s=0.001, bandwidth_bps=1e9)
    assert allreduce_cost_s(nbytes, 1, p) == 0.0
    assert allreduce_cost_s(nbytes, 8, p) > allreduce_cost_s(nbytes, 2, p)


def test_allreduce_shape_mismatch_rejected():
    ar = RingAllReduce(num_ranks=2, profile=LOCAL)
    with pytest.raises(ValueError):
        ar.average([[np.zeros(2)], [np.zeros(3)]])
    with pytest.raises(ValueError):
        ar.average([[np.zeros(2)]])


def test_allreduce_validation():
    with pytest.raises(ValueError):
        RingAllReduce(num_ranks=0, profile=LOCAL)
    with pytest.raises(ValueError):
        allreduce_cost_s(-1, 2, LOCAL)


# -- Trainer ---------------------------------------------------------------------------


def fake_batches(n_batches, batch=8, dim=(3, 8, 8), classes=4, seed=0):
    rng = np.random.default_rng(seed)
    centers = rng.normal(0, 3.0, (classes, int(np.prod(dim))))
    out = []
    for _ in range(n_batches):
        y = rng.integers(0, classes, batch)
        x = centers[y] + rng.normal(0, 0.5, (batch, int(np.prod(dim))))
        out.append((x.reshape(batch, *dim).astype(np.float32), y.astype(np.int64)))
    return out


def test_trainer_epoch_log():
    model = MLPClassifier(input_dim=3 * 8 * 8, num_classes=4, hidden=32, seed=0)
    trainer = Trainer(model, RESNET50_PROFILE)
    log = trainer.run_epoch(fake_batches(10), epoch=0)
    assert log.batches == 10
    assert log.samples == 80
    assert len(log.losses) == 10
    assert log.times == sorted(log.times)
    assert log.duration_s > 0


def test_trainer_loss_decreases_over_epoch():
    model = MLPClassifier(input_dim=3 * 8 * 8, num_classes=4, hidden=32, seed=0)
    trainer = Trainer(model, RESNET50_PROFILE, lr=0.1)
    log = trainer.run_epoch(fake_batches(40), epoch=0)
    first5 = np.mean(log.losses[:5])
    last5 = np.mean(log.losses[-5:])
    assert last5 < first5


def test_trainer_gpu_accounting():
    model = MLPClassifier(input_dim=3 * 8 * 8, num_classes=4, hidden=16)
    trainer = Trainer(model, RESNET50_PROFILE)
    trainer.run_epoch(fake_batches(5))
    snap = trainer.gpu.snapshot()
    assert snap["kernels_run"] == 5
    assert snap["busy_s"] == pytest.approx(5 * RESNET50_PROFILE.step_time(8))


def test_moving_average_window():
    log = EpochLog(epoch=0, duration_s=1.0, losses=[4.0, 2.0, 0.0, 2.0], times=[1, 2, 3, 4])
    ma = log.moving_average(window=2)
    assert ma == [4.0, 3.0, 1.0, 1.0]
    with pytest.raises(ValueError):
        log.moving_average(0)


def test_final_loss_empty_raises():
    log = EpochLog(epoch=0, duration_s=0.0)
    with pytest.raises(ValueError):
        log.final_loss
