"""Tests for the Planner (Algorithm 2), including coverage invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import EMLIOConfig
from repro.core.planner import BatchAssignment, Planner
from repro.tfrecord.sharder import write_shards


def make_dataset(tmp_path, n=24, per_shard=8, size=50):
    samples = [(bytes([i % 256]) * size, i % 5) for i in range(n)]
    return write_shards(samples, tmp_path, records_per_shard=per_shard)


def test_plan_covers_every_record_exactly_once_partition(tmp_path):
    ds = make_dataset(tmp_path)
    cfg = EMLIOConfig(batch_size=4, epochs=2, coverage="partition")
    plan = Planner(ds, num_nodes=2, config=cfg).plan()
    for epoch in range(2):
        seen = []
        for a in plan.assignments:
            if a.epoch == epoch:
                seen.extend((a.shard, a.start_record + i) for i in range(a.count))
        assert len(seen) == ds.num_samples
        assert len(set(seen)) == ds.num_samples  # no duplicates


def test_replicate_mode_gives_full_dataset_per_node(tmp_path):
    ds = make_dataset(tmp_path)
    cfg = EMLIOConfig(batch_size=4, epochs=1, coverage="replicate")
    plan = Planner(ds, num_nodes=3, config=cfg).plan()
    expected_batches = sum(
        -(-ix.num_records // 4) for ix in ds.indexes
    )  # ceil per shard
    for node in range(3):
        assert plan.batches_per_node(node, epoch=0) == expected_batches
        assert plan.samples_per_node(node, epoch=0) == ds.num_samples


def test_batch_sizes_exact_except_shard_tail(tmp_path):
    ds = make_dataset(tmp_path, n=22, per_shard=10)  # shards of 10, 10, 2
    cfg = EMLIOConfig(batch_size=4, epochs=1)
    plan = Planner(ds, num_nodes=1, config=cfg).plan()
    full = [a for a in plan.assignments if a.count == 4]
    partial = [a for a in plan.assignments if a.count < 4]
    # Each 10-record shard gives 2 full + 1 tail of 2; the 2-record shard
    # gives 1 tail of 2.
    assert len(full) == 4
    assert sorted(a.count for a in partial) == [2, 2, 2]


def test_batches_are_contiguous_ranges(tmp_path):
    ds = make_dataset(tmp_path)
    cfg = EMLIOConfig(batch_size=3, epochs=1)
    plan = Planner(ds, num_nodes=1, config=cfg).plan()
    by_shard = {ix.shard: ix for ix in ds.indexes}
    for a in plan.assignments:
        ix = by_shard[a.shard]
        entries = ix.entries[a.start_record : a.start_record + a.count]
        assert a.offset == entries[0].offset
        assert a.nbytes == sum(e.size for e in entries)
        assert a.labels == tuple(e.label for e in entries)


def test_epoch_shuffling_differs_across_epochs(tmp_path):
    ds = make_dataset(tmp_path, n=32, per_shard=4)
    cfg = EMLIOConfig(batch_size=4, epochs=2, seed=3)
    plan = Planner(ds, num_nodes=1, config=cfg).plan()
    order0 = [a.shard for a in plan.for_epoch_node(0, 0)]
    order1 = [a.shard for a in plan.for_epoch_node(1, 0)]
    assert order0 != order1


def test_plan_deterministic_by_seed(tmp_path):
    ds = make_dataset(tmp_path)
    cfg = EMLIOConfig(batch_size=4, epochs=1, seed=11)
    p1 = Planner(ds, num_nodes=2, config=cfg).plan()
    p2 = Planner(ds, num_nodes=2, config=cfg).plan()
    assert p1.assignments == p2.assignments


def test_batch_index_is_dense_dispatch_order(tmp_path):
    ds = make_dataset(tmp_path)
    cfg = EMLIOConfig(batch_size=4, epochs=1)
    plan = Planner(ds, num_nodes=2, config=cfg).plan()
    for node in range(2):
        indexes = sorted(a.batch_index for a in plan.for_epoch_node(0, node))
        assert indexes == list(range(len(indexes)))


def test_thread_splits_partition_node_work(tmp_path):
    ds = make_dataset(tmp_path, n=40, per_shard=5)
    cfg = EMLIOConfig(batch_size=5, epochs=1)
    plan = Planner(ds, num_nodes=1, config=cfg).plan()
    splits = plan.thread_splits(0, 0, threads=3)
    flat = [a for split in splits for a in split]
    assert len(flat) == plan.batches_per_node(0, epoch=0)
    assert len({(a.epoch, a.node_id, a.batch_index) for a in flat}) == len(flat)
    sizes = [len(s) for s in splits]
    assert max(sizes) - min(sizes) <= 1  # balanced


def test_thread_splits_validation(tmp_path):
    ds = make_dataset(tmp_path)
    plan = Planner(ds, num_nodes=1, config=EMLIOConfig()).plan()
    with pytest.raises(ValueError):
        plan.thread_splits(0, 0, threads=0)


def test_label_map_built(tmp_path):
    ds = make_dataset(tmp_path)
    planner = Planner(ds, num_nodes=1, config=EMLIOConfig())
    assert set(planner.label_map) == {ix.shard for ix in ds.indexes}


def test_planner_validation(tmp_path):
    ds = make_dataset(tmp_path)
    with pytest.raises(ValueError):
        Planner(ds, num_nodes=0, config=EMLIOConfig())


def test_assignment_count_label_mismatch_rejected():
    with pytest.raises(ValueError):
        BatchAssignment(
            epoch=0, node_id=0, batch_index=0, shard="s", shard_path="s.tfrecord",
            start_record=0, offset=0, nbytes=10, count=3, labels=(1, 2),
        )


def test_config_validation():
    with pytest.raises(ValueError):
        EMLIOConfig(batch_size=0)
    with pytest.raises(ValueError):
        EMLIOConfig(epochs=0)
    with pytest.raises(ValueError):
        EMLIOConfig(hwm=0)
    with pytest.raises(ValueError):
        EMLIOConfig(coverage="broadcast")


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=60),
    per_shard=st.integers(min_value=1, max_value=16),
    batch=st.integers(min_value=1, max_value=8),
    nodes=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=100),
)
def test_property_partition_coverage(tmp_path_factory, n, per_shard, batch, nodes, seed):
    """For any dataset/batch/node geometry, partition plans cover every
    record exactly once per epoch and batches never span shards."""
    tmp = tmp_path_factory.mktemp("plan")
    ds = make_dataset(tmp, n=n, per_shard=per_shard, size=10)
    cfg = EMLIOConfig(batch_size=batch, epochs=1, seed=seed)
    plan = Planner(ds, num_nodes=nodes, config=cfg).plan()
    seen = set()
    for a in plan.assignments:
        for i in range(a.count):
            key = (a.shard, a.start_record + i)
            assert key not in seen
            seen.add(key)
        assert a.count <= batch
    assert len(seen) == ds.num_samples
