"""Tests for the SJPG and RAW codecs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codec.raw import raw_decode, raw_encode, raw_overhead
from repro.codec.sjpg import psnr, sjpg_decode, sjpg_decode_shape, sjpg_encode
from repro.data.samples import smooth_image


@pytest.fixture
def image(rng):
    return smooth_image(rng, 48, 64, channels=3)


def test_roundtrip_shape_and_dtype(image):
    out = sjpg_decode(sjpg_encode(image, quality=75))
    assert out.shape == image.shape
    assert out.dtype == np.uint8


def test_high_quality_high_psnr(image):
    out = sjpg_decode(sjpg_encode(image, quality=95))
    assert psnr(image, out) > 30.0


def test_quality_monotonic_in_fidelity(image):
    p = [psnr(image, sjpg_decode(sjpg_encode(image, quality=q))) for q in (10, 50, 95)]
    assert p[0] < p[1] < p[2]


def test_quality_monotonic_in_size(image):
    sizes = [len(sjpg_encode(image, quality=q)) for q in (10, 50, 95)]
    assert sizes[0] < sizes[1] < sizes[2]


def test_smooth_images_compress(image):
    encoded = sjpg_encode(image, quality=75)
    assert len(encoded) < image.nbytes / 2


def test_grayscale_and_single_channel(rng):
    gray2d = smooth_image(rng, 40, 40, channels=1)[:, :, 0]
    out = sjpg_decode(sjpg_encode(gray2d, quality=85))
    assert out.shape == (40, 40, 1)


def test_non_multiple_of_8_dimensions(rng):
    img = smooth_image(rng, 37, 53, channels=3)
    out = sjpg_decode(sjpg_encode(img, quality=85))
    assert out.shape == img.shape
    assert psnr(img, out) > 25.0


def test_decode_shape_peek(image):
    data = sjpg_encode(image, quality=75)
    assert sjpg_decode_shape(data) == image.shape


def test_bad_magic_rejected(image):
    data = bytearray(sjpg_encode(image))
    data[0] = ord("X")
    with pytest.raises(ValueError, match="magic"):
        sjpg_decode(bytes(data))


def test_quality_bounds():
    img = np.zeros((8, 8, 1), dtype=np.uint8)
    with pytest.raises(ValueError):
        sjpg_encode(img, quality=0)
    with pytest.raises(ValueError):
        sjpg_encode(img, quality=101)


def test_wrong_dtype_rejected():
    with pytest.raises(TypeError):
        sjpg_encode(np.zeros((8, 8, 3), dtype=np.float32))


def test_empty_image_rejected():
    with pytest.raises(ValueError):
        sjpg_encode(np.zeros((0, 8, 3), dtype=np.uint8))


def test_constant_image_roundtrips_exactly_at_high_quality():
    img = np.full((16, 16, 3), 128, dtype=np.uint8)
    out = sjpg_decode(sjpg_encode(img, quality=100))
    assert np.all(np.abs(out.astype(int) - 128) <= 1)


@settings(max_examples=20, deadline=None)
@given(
    h=st.integers(min_value=8, max_value=40),
    w=st.integers(min_value=8, max_value=40),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_property_roundtrip_psnr(h, w, seed):
    rng = np.random.default_rng(seed)
    img = smooth_image(rng, h, w, channels=3)
    out = sjpg_decode(sjpg_encode(img, quality=90))
    assert out.shape == img.shape
    assert psnr(img, out) > 24.0


# -- RAW codec ---------------------------------------------------------------


def test_raw_roundtrip():
    payload = b"\x01\x02\x03" * 1000
    assert raw_decode(raw_encode(payload)) == payload


def test_raw_exact_size():
    payload = b"z" * 500
    assert len(raw_encode(payload)) == 500 + raw_overhead()


def test_raw_detects_corruption():
    framed = bytearray(raw_encode(b"data" * 100))
    framed[50] ^= 0xFF
    with pytest.raises(ValueError, match="checksum"):
        raw_decode(bytes(framed))


def test_raw_detects_truncation():
    framed = raw_encode(b"data" * 100)
    with pytest.raises(ValueError, match="length"):
        raw_decode(framed[:-3])


def test_raw_bad_magic():
    framed = bytearray(raw_encode(b"x"))
    framed[0] = ord("Z")
    with pytest.raises(ValueError, match="magic"):
        raw_decode(bytes(framed))


def test_raw_empty_payload():
    assert raw_decode(raw_encode(b"")) == b""


@settings(max_examples=50, deadline=None)
@given(st.binary(min_size=0, max_size=4096))
def test_raw_property_roundtrip(payload):
    assert raw_decode(raw_encode(payload)) == payload
