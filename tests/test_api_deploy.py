"""EMLIO.deploy facade: dry-run planning, live deployments, callbacks,
the deploy CLI, and backward compatibility of the service layer."""

import dataclasses

import numpy as np
import pytest

from repro.api import (
    ClusterSpec,
    DatasetSpec,
    EMLIO,
    NetworkSpec,
    PipelineSpec,
    PRESETS,
    ReceiverSpec,
    RecoverySpec,
    SpecError,
    StorageSpec,
    preset,
)
from repro.api.deploy import Deployment, DeploymentPlan


def _tiny_spec(**overrides) -> ClusterSpec:
    """A deploy-in-milliseconds spec (24 samples, 3 shards)."""
    base = dict(
        name="tiny",
        dataset=DatasetSpec(kind="imagenet", n=24, records_per_shard=8,
                            image_hw=(32, 32), seed=7),
        pipeline=PipelineSpec(batch_size=4, output_hw=(16, 16)),
        receivers=ReceiverSpec(stall_timeout_s=20.0),
    )
    base.update(overrides)
    return ClusterSpec(**base)


# -- dry-run planning ----------------------------------------------------------


def test_plan_is_socketless_and_complete():
    plan = EMLIO.plan(_tiny_spec())
    assert isinstance(plan, DeploymentPlan)
    assert plan.dataset_samples == 24 and plan.dataset_shards == 3
    assert plan.batches_per_epoch == 6 and plan.total_batches == 6
    assert plan.num_nodes == 1 and plan.profile is None
    assert "tiny" in plan.summary()


def test_deploy_dry_run_equals_plan():
    plan = EMLIO.deploy(_tiny_spec(), dry_run=True)
    assert isinstance(plan, DeploymentPlan)
    # daemon_roots embed the per-call generated-dataset tempdir; every
    # other resolved field is deterministic.
    other = EMLIO.plan(_tiny_spec())
    assert dataclasses.replace(plan, daemon_roots=()) == dataclasses.replace(
        other, daemon_roots=()
    )


@pytest.mark.parametrize("name", sorted(PRESETS.names()))
def test_every_preset_plans_in_dry_run(name):
    plan = EMLIO.plan(preset(name))
    assert plan.total_batches > 0


def test_every_shipped_spec_file_plans(tmp_path):
    from repro.tools.deploy import DEFAULT_SPEC_DIR, _spec_files

    files = _spec_files([])
    assert DEFAULT_SPEC_DIR.is_dir() and len(files) >= 5
    for path in files:
        assert EMLIO.plan(ClusterSpec.from_file(path)).total_batches > 0


def test_plan_rejects_unknown_component_names():
    with pytest.raises(ValueError, match="unknown network profile"):
        EMLIO.plan(_tiny_spec(network=NetworkSpec(profile="warp-drive")))
    with pytest.raises(ValueError, match="unknown codec"):
        EMLIO.plan(_tiny_spec(pipeline=PipelineSpec(codec="avif")))
    with pytest.raises(ValueError, match="unknown storage backend"):
        EMLIO.plan(_tiny_spec(storage=StorageSpec(backend="s3")))
    with pytest.raises(SpecError, match="exceeds the dataset"):
        EMLIO.plan(_tiny_spec(storage=StorageSpec(num_daemons=64)))
    with pytest.raises(SpecError, match="cannot deploy"):
        EMLIO.deploy(42)


# -- live deployments ----------------------------------------------------------


def test_deploy_consumes_epoch_exactly_once(small_imagenet):
    spec = _tiny_spec(dataset=DatasetSpec(kind="existing", root="ignored"))
    with EMLIO.deploy(spec, dataset=small_imagenet) as dep:
        assert isinstance(dep, Deployment)
        labels = [int(l) for _t, ls in dep.epoch(0) for l in ls]
    expected = sorted(l for per in small_imagenet.labels().values() for l in per)
    assert sorted(labels) == expected


def test_deploy_generates_dataset_and_cleans_up(tmp_path):
    dep = EMLIO.deploy(_tiny_spec())
    owned = dep._owned_dir
    assert owned is not None
    import os

    assert os.path.isdir(owned.name)
    n = sum(len(l) for _t, l in dep.epoch(0))
    dep.close()
    assert n == 24
    assert not os.path.isdir(owned.name)  # generated dataset removed


def test_deploy_epoch_start_and_status_and_epochs(small_imagenet):
    starts = []
    spec = _tiny_spec(pipeline=PipelineSpec(batch_size=4, epochs=2, output_hw=(16, 16)))
    with EMLIO.deploy(spec, dataset=small_imagenet, on_epoch_start=starts.append) as dep:
        seen = [e for e, _t, _l in dep.epochs()]
        status = dep.status()
    assert starts == [0, 1]
    assert sorted(set(seen)) == [0, 1]
    assert status["spec"] == "tiny"
    assert status["pipeline"]["batches_received"] == 12
    assert status["cluster"]["num_nodes"] == 1
    assert status["energy"] is None


def test_deploy_tokens_codec_end_to_end():
    spec = ClusterSpec(
        name="tok",
        dataset=DatasetSpec(kind="tokens", n=16, context_len=64,
                            vocab_size=256, records_per_shard=8),
        pipeline=PipelineSpec(batch_size=4, codec="tokens"),
        receivers=ReceiverSpec(stall_timeout_s=20.0),
    )
    with EMLIO.deploy(spec) as dep:
        batches = list(dep.epoch(0))
    assert len(batches) == 4
    for tensors, labels in batches:
        assert tensors.shape == (4, 64) and tensors.dtype == np.int64
        assert len(labels) == 4


def test_quickstart_auto_transport_selects_shm():
    """ACCEPTANCE: the quickstart preset (transport="auto", co-located,
    unshaped) upgrades its daemon→receiver pair to the shm ring."""
    with EMLIO.deploy(preset("quickstart")) as dep:
        n = sum(len(l) for _t, l in dep.epoch(0))
        stats = dep.stats()
    assert n == 64
    assert stats["transports"] == {"0": "shm"}
    assert stats["shm_attaches"] >= 1


def test_deploy_forced_tcp_never_attaches_shm(small_imagenet):
    """The default transport stays plain TCP byte-for-byte: no handshake,
    no ring, even though the pair is co-located."""
    spec = _tiny_spec(dataset=DatasetSpec(kind="existing", root="ignored"))
    with EMLIO.deploy(spec, dataset=small_imagenet) as dep:
        n = sum(len(l) for _t, l in dep.epoch(0))
        stats = dep.stats()
    assert n == 24
    assert stats["transports"] == {"0": "tcp"}
    assert stats["shm_attaches"] == 0


def test_deploy_sharded_storage_splits_daemons(small_imagenet):
    spec = _tiny_spec(storage=StorageSpec(num_daemons=3))
    with EMLIO.deploy(spec, dataset=small_imagenet) as dep:
        n = sum(len(l) for _t, l in dep.epoch(0))
        per_daemon = [d.stats.snapshot()["batches_sent"] for d in dep.service.daemons]
    assert n == 24
    assert len(per_daemon) == 3 and all(c > 0 for c in per_daemon)


def test_deploy_recovery_callbacks_fire_on_failover(small_imagenet, tmp_path):
    events, failovers = [], []
    spec = _tiny_spec(
        storage=StorageSpec(num_daemons=1),
        recovery=RecoverySpec(enabled=True, heartbeat_interval_s=0.02,
                              miss_threshold=2, dead_threshold=5,
                              hung_after_s=30.0,
                              ledger_path=str(tmp_path / "ledger.txt")),
        receivers=ReceiverSpec(num_nodes=2, stall_timeout_s=20.0),
    )
    with EMLIO.deploy(spec, dataset=small_imagenet) as dep:
        dep.on_member_event(events.append)
        dep.on_failover(lambda kind, _info: failovers.append(kind))
        dep.service.kill_receiver(1)  # before consuming: full partition owed
        labels = [int(l) for _t, ls in dep.epoch(0) for l in ls]
        assert dep.service.receiver_failovers == 1
    expected = sorted(l for per in small_imagenet.labels().values() for l in per)
    assert sorted(labels) == expected  # survivor covered the dead node
    assert "receiver" in failovers
    assert any(ev["event"] == "dead" and ev["role"] == "receiver" for ev in events)


def test_deploy_energy_monitor_reports(small_imagenet):
    spec = _tiny_spec(
        energy=dataclasses.replace(_tiny_spec().energy, enabled=True, interval_s=0.02),
    )
    import time

    with EMLIO.deploy(spec, dataset=small_imagenet) as dep:
        for _ in dep.epoch(0):
            pass
        time.sleep(0.1)  # a few sampler ticks beyond the epoch
    # Algorithm 1's batch writer merges samples into the TSDB when the
    # monitor stops, so the totals are read after close().
    status = dep.status()
    assert status["energy"] is not None
    assert status["energy"]["cpu_j"] > 0 and status["energy"]["samples"] >= 2


def test_service_call_sites_unchanged(small_imagenet):
    """Acceptance: pre-existing EMLIOService(...) construction still works
    with no new required arguments."""
    from repro.core import EMLIOConfig, EMLIOService

    cfg = EMLIOConfig(batch_size=4, output_hw=(16, 16))
    with EMLIOService(cfg, small_imagenet) as svc:
        assert sum(len(l) for _t, l in svc.epoch(0)) == 24


# -- the deploy CLI ------------------------------------------------------------


def test_cli_dry_run_and_list_and_check(tmp_path, capsys):
    from repro.tools import deploy as cli

    spec_path = _tiny_spec().to_file(tmp_path / "tiny.toml")
    assert cli.main([str(spec_path), "--dry-run"]) == 0
    assert "tiny" in capsys.readouterr().out

    assert cli.main(["--list-presets"]) == 0
    out = capsys.readouterr().out
    for name in PRESETS.names():
        assert name in out

    assert cli.main(["--check-presets", str(tmp_path)]) == 0
    assert "ok" in capsys.readouterr().out


def test_cli_check_presets_fails_on_bad_spec(tmp_path, capsys):
    from repro.tools import deploy as cli

    (tmp_path / "broken.toml").write_text('[pipeline]\nbatch_size = 0\n')
    assert cli.main(["--check-presets", str(tmp_path)]) == 1
    assert "FAIL" in capsys.readouterr().out


def test_cli_runs_a_spec_file(tmp_path, capsys):
    from repro.tools import deploy as cli

    spec_path = _tiny_spec().to_file(tmp_path / "tiny.json")
    assert cli.main([str(spec_path)]) == 0
    out = capsys.readouterr().out
    assert "epoch 0: 6 batches / 24 samples" in out


def test_cli_error_paths(tmp_path, capsys):
    from repro.tools import deploy as cli

    assert cli.main([]) == 2
    assert cli.main([str(tmp_path / "missing.toml")]) == 2
    assert "error" in capsys.readouterr().err


def test_power_model_cross_type_rejected_at_plan_time():
    """A GPU model named as cpu_model (or vice versa) must fail the
    dry-run, not crash a sampler thread mid-run."""
    from repro.api import EnergySpec

    bad_cpu = _tiny_spec(energy=EnergySpec(enabled=True, cpu_model="t4"))
    with pytest.raises(SpecError, match="not a CPU power model"):
        EMLIO.plan(bad_cpu)
    bad_gpu = _tiny_spec(
        energy=EnergySpec(enabled=True, gpu_model="xeon-gold-6126")
    )
    with pytest.raises(SpecError, match="not a GPU power model"):
        EMLIO.plan(bad_gpu)
    no_gpu = _tiny_spec(energy=EnergySpec(enabled=True, gpu_model=None))
    assert EMLIO.plan(no_gpu).energy_enabled


def test_cli_unknown_preset_and_component_exit_cleanly(tmp_path, capsys):
    from repro.tools import deploy as cli

    assert cli.main(["--preset", "no-such-topology"]) == 2
    assert "unknown preset" in capsys.readouterr().err
    spec = _tiny_spec(network=NetworkSpec(profile="warp-drive"))
    path = spec.to_file(tmp_path / "warp.toml")
    assert cli.main([str(path), "--dry-run"]) == 2
    assert "unknown network profile" in capsys.readouterr().err


# -- spec-driven chaos + elastic sections --------------------------------------


def test_chaos_and_elastic_sections_validate():
    from repro.api import ChaosEventSpec, ChaosSpec, ElasticSpec

    spec = _tiny_spec(
        receivers=ReceiverSpec(num_nodes=2, stall_timeout_s=20.0),
        recovery=RecoverySpec(enabled=True),
        elastic=ElasticSpec(admit="auto", max_members=4, rebalance_threshold=0.1),
        chaos=ChaosSpec(events=(
            ChaosEventSpec(at_s=0.5, action="kill", target="receiver:1"),
            ChaosEventSpec(at_s=1.0, action="join", target="receiver"),
        )),
    )
    assert EMLIO.plan(spec).num_nodes == 2
    with pytest.raises(SpecError, match="chaos"):
        ChaosEventSpec(at_s=0.1, action="explode", target="daemon:0")
    with pytest.raises(SpecError, match="target"):
        ChaosEventSpec(at_s=0.1, action="kill", target="receiver")
    with pytest.raises(SpecError, match="join target"):
        ChaosEventSpec(at_s=0.1, action="join", target="receiver:2")
    with pytest.raises(SpecError, match="min_members"):
        _tiny_spec(elastic=ElasticSpec(min_members=2))
    with pytest.raises(SpecError, match="recovery.enabled"):
        _tiny_spec(chaos=ChaosSpec(events=(
            ChaosEventSpec(at_s=0.1, action="join", target="receiver"),
        )))


def test_chaos_events_out_of_range_receiver_rejected_at_plan():
    from repro.api import ChaosEventSpec, ChaosSpec

    spec = _tiny_spec(chaos=ChaosSpec(events=(
        ChaosEventSpec(at_s=0.1, action="kill", target="receiver:5"),
    )))
    with pytest.raises(SpecError, match="only 1 node"):
        EMLIO.plan(spec)


def test_chaos_and_elastic_round_trip_toml_and_json(tmp_path):
    from repro.api import ChaosEventSpec, ChaosSpec, ElasticSpec

    spec = _tiny_spec(
        receivers=ReceiverSpec(num_nodes=2, stall_timeout_s=20.0),
        recovery=RecoverySpec(enabled=True),
        elastic=ElasticSpec(max_members=3, rebalance_threshold=0.25),
        chaos=ChaosSpec(events=(
            ChaosEventSpec(at_s=0.4, action="kill", target="daemon:0"),
            ChaosEventSpec(at_s=1.2, action="join", target="receiver"),
        )),
    )
    for suffix in (".toml", ".json"):
        path = spec.to_file(tmp_path / f"drill{suffix}")
        assert ClusterSpec.from_file(path) == spec


@pytest.mark.slow
def test_deploy_runs_spec_driven_chaos_schedule(tmp_path):
    """Deploying a spec with a [chaos] kill schedule *is* the drill: the
    event fires from the deployment's timer, failover re-plans, and the
    epoch still delivers exactly once."""
    from repro.api import ChaosEventSpec, ChaosSpec

    spec = _tiny_spec(
        name="drill-live",
        dataset=DatasetSpec(kind="imagenet", n=96, records_per_shard=8,
                            image_hw=(32, 32), seed=7),
        pipeline=PipelineSpec(batch_size=4, output_hw=(16, 16)),
        network=NetworkSpec(rtt_ms=20.0),
        receivers=ReceiverSpec(num_nodes=2, stall_timeout_s=20.0),
        recovery=RecoverySpec(
            enabled=True,
            ledger_path=str(tmp_path / "ledger.txt"),
            heartbeat_interval_s=0.05,
            miss_threshold=2,
            dead_threshold=5,
            hung_after_s=0.0,
        ),
        chaos=ChaosSpec(events=(
            ChaosEventSpec(at_s=0.3, action="kill", target="receiver:1"),
        )),
    )
    fired = []
    with EMLIO.deploy(spec) as dep:
        dep.on_failover(lambda kind, info: fired.append(kind))
        samples = sum(len(l) for _t, l in dep.epoch(0))
        assert samples == 96
        # The schedule's kill lands at its offset even if the epoch raced
        # it; either way the timer fires and the node dies.
        import time as _time

        deadline = _time.monotonic() + 5.0
        while not dep.service.receivers[1].killed and _time.monotonic() < deadline:
            _time.sleep(0.02)
        assert dep.service.receivers[1].killed
        ledger = dep.service.ledger
        assert ledger.completed_epochs() == {0: len(dep.service.plan.keys(epoch=0))}


def test_chaos_out_of_range_target_also_rejected_at_live_deploy():
    """A drill the dry-run rejects must not deploy cleanly live."""
    from repro.api import ChaosEventSpec, ChaosSpec

    spec = _tiny_spec(chaos=ChaosSpec(events=(
        ChaosEventSpec(at_s=0.1, action="kill", target="receiver:5"),
    )))
    with pytest.raises(SpecError, match="only 1 node"):
        EMLIO.deploy(spec)
