"""Tests for the batch payload schema."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serialize.payload import BatchPayload, decode_batch, encode_batch


def make_payload(**overrides):
    kwargs = dict(
        epoch=2,
        batch_index=17,
        shard="shard_00003",
        samples=[b"aaa", b"bb", b"c"],
        labels=[5, 2, 9],
        node_id=1,
        meta={"rtt_class": "wan"},
    )
    kwargs.update(overrides)
    return BatchPayload(**kwargs)


def test_roundtrip_preserves_fields():
    p = make_payload()
    q = decode_batch(encode_batch(p))
    assert q == p


def test_batch_size_and_nbytes():
    p = make_payload()
    assert p.batch_size == 3
    assert p.nbytes == 6


def test_mismatched_lengths_rejected():
    with pytest.raises(ValueError):
        make_payload(labels=[1])


def test_empty_batch_roundtrip():
    p = make_payload(samples=[], labels=[])
    assert decode_batch(encode_batch(p)).batch_size == 0


def test_version_check():
    data = encode_batch(make_payload())
    from repro.serialize.msgpack import packb, unpackb

    obj = unpackb(data)
    obj["v"] = 99
    with pytest.raises(ValueError, match="version"):
        decode_batch(packb(obj))


def test_non_map_payload_rejected():
    from repro.serialize.msgpack import packb

    with pytest.raises(ValueError, match="map"):
        decode_batch(packb([1, 2, 3]))


@settings(max_examples=50, deadline=None)
@given(
    samples=st.lists(st.binary(min_size=0, max_size=256), min_size=0, max_size=16),
    epoch=st.integers(min_value=0, max_value=1000),
    batch_index=st.integers(min_value=0, max_value=10**6),
)
def test_property_roundtrip(samples, epoch, batch_index):
    labels = list(range(len(samples)))
    p = BatchPayload(
        epoch=epoch,
        batch_index=batch_index,
        shard="shard_00000",
        samples=samples,
        labels=labels,
    )
    assert decode_batch(encode_batch(p)) == p
