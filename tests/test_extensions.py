"""Tests for the future-work extensions: transports and co-scheduling."""

import pytest

from repro.modelsim.cosched import cosched_comparison
from repro.modelsim.pipelines import WorkloadSpec
from repro.modelsim.transports import NVME_OF, RDMA, TCP, TRANSPORTS, TransportSpec, transport_sweep
from repro.net.emulation import LAN_10MS, NetworkProfile

SMALL = WorkloadSpec("im-1k", num_samples=1_000, sample_bytes=100_000, mpix_per_sample=0.15, batch_size=64)


def test_transport_registry():
    assert set(TRANSPORTS) == {"tcp", "rdma", "nvme-of"}
    assert RDMA.per_op_overhead_s < NVME_OF.per_op_overhead_s < TCP.per_op_overhead_s
    assert RDMA.cpu_s_per_mb < TCP.cpu_s_per_mb


def test_transport_spec_validation():
    with pytest.raises(ValueError):
        TransportSpec("bad", per_op_overhead_s=1e-6, cpu_s_per_mb=0, bandwidth_efficiency=0.0)
    with pytest.raises(ValueError):
        TransportSpec("bad", per_op_overhead_s=-1, cpu_s_per_mb=0, bandwidth_efficiency=0.9)


def test_transport_profile_application():
    shaped = RDMA.apply_to_profile(LAN_10MS)
    assert shaped.rtt_s == LAN_10MS.rtt_s
    assert shaped.bandwidth_bps == pytest.approx(LAN_10MS.bandwidth_bps * 0.97)
    assert "rdma" in shaped.name


def test_transport_costs_application():
    costs = TCP.apply_to_costs()
    assert costs.serialize_s_per_mb > RDMA.apply_to_costs().serialize_s_per_mb


def test_transport_sweep_rdma_saves_cpu_energy():
    """The §6 hypothesis: kernel-bypass transports cut I/O CPU energy."""
    rows = transport_sweep(SMALL, LAN_10MS)
    by_name = {r["transport"]: r for r in rows}
    assert by_name["rdma"]["cpu_kj"] <= by_name["tcp"]["cpu_kj"]
    assert by_name["rdma"]["duration_s"] <= by_name["tcp"]["duration_s"] * 1.02
    assert by_name["nvme-of"]["cpu_kj"] <= by_name["tcp"]["cpu_kj"]


def test_cosched_reduces_time_and_energy():
    rows = cosched_comparison(SMALL, LAN_10MS)
    by_sched = {r["schedule"]: r for r in rows}
    un = by_sched["uncoordinated"]
    co = by_sched["cosched"]
    assert co["duration_s"] < un["duration_s"]
    assert co["total_kj"] < un["total_kj"]
    assert co["sync_residue_ms"] < un["sync_residue_ms"]


def test_cosched_gap_grows_with_rtt():
    lan = cosched_comparison(SMALL, NetworkProfile("l", rtt_s=1e-3, bandwidth_bps=10e9 / 8))
    wan = cosched_comparison(SMALL, NetworkProfile("w", rtt_s=30e-3, bandwidth_bps=10e9 / 8))

    def gap(rows):
        by = {r["schedule"]: r for r in rows}
        return by["uncoordinated"]["duration_s"] - by["cosched"]["duration_s"]

    assert gap(wan) > gap(lan)
