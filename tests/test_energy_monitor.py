"""Tests for the accumulator and the end-to-end EnergyMonitor."""

import time

import pytest

from repro.energy.accumulator import Accumulator
from repro.energy.monitor import EnergyMonitor, query_node
from repro.energy.power_models import CpuSpec, GpuSpec
from repro.energy.tsdb import TimeSeriesDB

# -- Accumulator -----------------------------------------------------------------


def test_merge_aligned_streams():
    acc = Accumulator(tick_interval=0.1)
    cpu = [(0.0, {"cpu_energy": 1.0}), (0.1, {"cpu_energy": 2.0})]
    gpu = [(0.0, {"gpu_energy": 5.0}), (0.1, {"gpu_energy": 6.0})]
    merged = acc.merge([cpu, gpu])
    assert len(merged) == 2
    assert merged[0].fields == {"cpu_energy": 1.0, "gpu_energy": 5.0}
    assert merged[1].fields == {"cpu_energy": 2.0, "gpu_energy": 6.0}
    assert not merged[0].interpolated


def test_interpolation_fills_missing_tick_exactly():
    acc = Accumulator(tick_interval=0.1)
    # CPU missed the middle tick: linear interpolation must give the mean.
    cpu = [(0.0, {"cpu_energy": 1.0}), (0.2, {"cpu_energy": 3.0})]
    gpu = [(0.0, {"gpu_energy": 1.0}), (0.1, {"gpu_energy": 1.0}), (0.2, {"gpu_energy": 1.0})]
    merged = acc.merge([cpu, gpu])
    assert len(merged) == 3
    mid = merged[1]
    assert mid.fields["cpu_energy"] == pytest.approx(2.0)
    assert "cpu_energy" in mid.interpolated
    assert "gpu_energy" not in mid.interpolated


def test_interpolation_multi_gap():
    acc = Accumulator(tick_interval=1.0)
    cpu = [(0.0, {"e": 0.0}), (4.0, {"e": 8.0})]
    anchor = [(float(k), {"g": 0.0}) for k in range(5)]
    merged = acc.merge([cpu, anchor])
    assert [m.fields["e"] for m in merged] == pytest.approx([0.0, 2.0, 4.0, 6.0, 8.0])


def test_edge_gaps_hold_nearest_value():
    acc = Accumulator(tick_interval=1.0)
    cpu = [(1.0, {"e": 5.0}), (2.0, {"e": 7.0})]
    anchor = [(float(k), {"g": 0.0}) for k in range(4)]
    merged = acc.merge([cpu, anchor])
    assert merged[0].fields["e"] == 5.0  # held backwards
    assert merged[3].fields["e"] == 7.0  # held forwards


def test_empty_streams():
    acc = Accumulator(tick_interval=0.1)
    assert acc.merge([[], []]) == []


def test_jittered_timestamps_snap_to_grid():
    acc = Accumulator(tick_interval=0.1)
    cpu = [(0.0, {"c": 1.0}), (0.104, {"c": 2.0}), (0.197, {"c": 3.0})]
    merged = acc.merge([cpu])
    assert len(merged) == 3
    assert [m.fields["c"] for m in merged] == [1.0, 2.0, 3.0]


def test_accumulator_validation():
    with pytest.raises(ValueError):
        Accumulator(tick_interval=0.0)


# -- EnergyMonitor end-to-end ------------------------------------------------------


def run_monitor(duration=0.25, interval=0.02, gpu=True, **kw):
    mon = EnergyMonitor(
        node_id="n0",
        cpu_spec=CpuSpec(),
        gpu_spec=GpuSpec() if gpu else None,
        interval=interval,
        **kw,
    )
    with mon:
        time.sleep(duration)
    return mon


def test_monitor_collects_samples():
    mon = run_monitor()
    report = mon.query()
    assert report.samples >= 5
    assert report.cpu_j > 0
    assert report.dram_j > 0
    assert report.gpu_j > 0


def test_monitor_without_gpu_has_no_gpu_energy():
    mon = run_monitor(gpu=False)
    report = mon.query()
    assert report.gpu_j == 0.0
    assert report.cpu_j > 0


def test_idle_energy_matches_power_model():
    interval = 0.02
    mon = run_monitor(duration=0.3, interval=interval)
    report = mon.query()
    # At idle, per-sample CPU energy must equal idle power * interval.
    expected_per_sample = mon.cpu_spec.idle_w * interval
    assert report.cpu_j / report.samples == pytest.approx(expected_per_sample, rel=0.05)


def test_busy_trackers_raise_measured_energy():
    mon_idle = run_monitor(duration=0.3)
    mon_busy = EnergyMonitor(node_id="n0", cpu_spec=CpuSpec(), gpu_spec=GpuSpec(), interval=0.02)
    with mon_busy:
        end = time.monotonic() + 0.3
        while time.monotonic() < end:
            mon_busy.cpu_tracker.add_busy(0.02)
            mon_busy.gpu_tracker.add_busy(0.02)
            time.sleep(0.005)
    idle = mon_idle.query()
    busy = mon_busy.query()
    assert busy.cpu_j / busy.samples > idle.cpu_j / idle.samples
    assert busy.gpu_j / busy.samples > idle.gpu_j / idle.samples


def test_dropped_samples_are_interpolated():
    # GPU sampler drops every 3rd tick; the merged series must stay gapless.
    mon = EnergyMonitor(
        node_id="n0",
        cpu_spec=CpuSpec(),
        gpu_spec=GpuSpec(),
        interval=0.02,
        gpu_drop_hook=lambda k: k % 3 == 1,
    )
    with mon:
        time.sleep(0.3)
    report = mon.query()
    assert report.interpolated_samples > 0
    pts = mon.tsdb.query("energy", tags={"node_id": "n0"})
    dropped = [p for p in pts if "gpu_energy" not in p.field_dict()]
    # Interior ticks must all carry gpu_energy after interpolation.
    assert len(dropped) <= 1  # at most a trailing edge tick


def test_interval_query_window():
    mon = run_monitor(duration=0.4)
    full = mon.query()
    pts = mon.tsdb.query("energy")
    t_mid = pts[len(pts) // 2].time
    half = mon.query(start=t_mid)
    assert 0 < half.cpu_j < full.cpu_j


def test_central_tsdb_cross_node_query():
    central = TimeSeriesDB()
    m1 = EnergyMonitor(node_id="compute", cpu_spec=CpuSpec(), gpu_spec=GpuSpec(), interval=0.02, tsdb=central)
    m2 = EnergyMonitor(node_id="storage", cpu_spec=CpuSpec(), interval=0.02, tsdb=central)
    with m1, m2:
        time.sleep(0.2)
    compute = query_node(central, "compute")
    storage = query_node(central, "storage")
    assert compute.samples > 0 and storage.samples > 0
    assert compute.gpu_j > 0
    assert storage.gpu_j == 0.0
    assert central.distinct_tag_values("energy", "node_id") == ["compute", "storage"]


def test_double_start_rejected():
    mon = EnergyMonitor(node_id="n0", interval=0.02)
    mon.start()
    with pytest.raises(RuntimeError):
        mon.start()
    mon.stop()


def test_stop_is_idempotent():
    mon = EnergyMonitor(node_id="n0", interval=0.02)
    mon.start()
    mon.stop()
    mon.stop()  # no error


def test_report_total_and_dict():
    mon = run_monitor()
    r = mon.query()
    assert r.total_j == pytest.approx(r.cpu_j + r.dram_j + r.gpu_j)
    d = r.as_dict()
    assert set(d) == {"cpu_j", "dram_j", "gpu_j", "total_j", "duration_s"}
