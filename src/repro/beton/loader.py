"""FFCV-style loader over a beton file.

Per epoch: shuffle the sample index, walk it in batches, read each sample
through the shared mmap (pure pointer arithmetic — no per-sample syscalls,
no frame parsing, no CRC), decode, and run the vectorized preprocessing
stage.  A small thread pool overlaps decode with the consumer, mirroring
FFCV's pipelined workers.

This loader is deliberately local-only: it takes a *path*, not a storage
backend — the format's strength (single local mmap) is exactly what denies
it a remote story, which is the contrast the paper draws in §2.
"""

from __future__ import annotations

import queue
import threading
from pathlib import Path
from typing import Iterator

import numpy as np

from repro.beton.format import BetonReader
from repro.gpu.ops import preprocess_batch
from repro.loaders.base import LoaderStats

_END = object()


class FFCVStyleLoader:
    """Batched, shuffled epochs over one memory-mapped beton file."""

    def __init__(
        self,
        path: str | Path,
        batch_size: int = 32,
        num_workers: int = 2,
        prefetch: int = 2,
        output_hw: tuple[int, int] = (64, 64),
        seed: int = 0,
    ) -> None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        self.reader = BetonReader(path)
        self.batch_size = batch_size
        self.num_workers = num_workers
        self.prefetch = prefetch
        self.output_hw = output_hw
        self.seed = seed
        self.stats = LoaderStats()

    def __len__(self) -> int:
        return len(self.reader)

    def epoch(self, epoch_index: int = 0) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Yield preprocessed (tensors, labels) batches for one epoch."""
        rng = np.random.default_rng((self.seed, epoch_index))
        order = rng.permutation(len(self.reader))
        batches = [
            order[i : i + self.batch_size] for i in range(0, len(order), self.batch_size)
        ]
        task_q: queue.Queue = queue.Queue()
        done_q: queue.Queue = queue.Queue(maxsize=max(1, self.prefetch) * self.num_workers)
        for i, b in enumerate(batches):
            task_q.put((i, b))
        for _ in range(self.num_workers):
            task_q.put(_END)

        worker_seeds = np.random.default_rng((self.seed, epoch_index, 2)).integers(
            0, 2**31, size=self.num_workers
        )

        def worker(wid: int) -> None:
            wrng = np.random.default_rng(worker_seeds[wid])
            while True:
                task = task_q.get()
                if task is _END:
                    done_q.put(_END)
                    return
                i, idxs = task
                try:
                    samples = []
                    labels = np.empty(len(idxs), dtype=np.int64)
                    for j, idx in enumerate(idxs):
                        view = self.reader.sample_view(int(idx))
                        self.stats.record_read(len(view))
                        samples.append(bytes(view))
                        labels[j] = self.reader.labels[idx]
                    tensors = preprocess_batch(samples, self.output_hw, wrng)
                    done_q.put((i, tensors, labels))
                except Exception as err:  # surface to consumer
                    done_q.put((i, err, None))

        threads = [
            threading.Thread(target=worker, args=(w,), daemon=True, name=f"ffcv-worker{w}")
            for w in range(self.num_workers)
        ]
        for t in threads:
            t.start()

        pending: dict[int, tuple] = {}
        next_index = 0
        finished = 0
        try:
            while next_index < len(batches):
                while next_index in pending:
                    _i, tensors, labels = pending.pop(next_index)
                    if isinstance(tensors, Exception):
                        raise tensors
                    self.stats.record_batch(len(labels))
                    yield tensors, labels
                    next_index += 1
                if next_index >= len(batches):
                    break
                item = done_q.get()
                if item is _END:
                    finished += 1
                    if finished == self.num_workers and next_index < len(batches):
                        missing = [i for i in range(next_index, len(batches)) if i not in pending]
                        if missing:
                            raise RuntimeError(f"workers exited with batches missing: {missing[:5]}")
                    continue
                pending[item[0]] = item
        finally:
            for t in threads:
                t.join(timeout=10.0)

    def close(self) -> None:
        """Release resources."""
        self.reader.close()

    def __enter__(self) -> "FFCVStyleLoader":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
