"""The beton file format: header + slot table + payload region.

Layout (little-endian)::

    offset 0   magic   b"BETON1\\0\\0"            (8 bytes)
    offset 8   u64     num_samples
    offset 16  u64     slot_size                  (bytes per payload slot)
    offset 24  u64     payload_offset             (start of slot region)
    offset 32  slot table: num_samples x (u64 length, i64 label)
    payload_offset + i*slot_size: sample i's bytes (first `length` valid)

Fixed-size slots trade space for O(1) index→address arithmetic: sample ``i``
lives at one computable offset, so a shuffled epoch is pure mmap pointer
chasing — FFCV's core trick.  ``slot_size`` is the maximum encoded sample
size rounded up to 64-byte alignment.
"""

from __future__ import annotations

import mmap
import struct
from pathlib import Path
from types import TracebackType
from typing import Iterable

import numpy as np

_MAGIC = b"BETON1\x00\x00"
_HEADER = struct.Struct("<8sQQQ")
_SLOT_ENTRY = struct.Struct("<Qq")
_ALIGN = 64


class BetonWriter:
    """Two-pass writer: buffer samples, then emit the slotted file."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._samples: list[tuple[bytes, int]] = []
        self._closed = False

    def append(self, sample: bytes, label: int) -> None:
        if self._closed:
            raise RuntimeError("append() after close()")
        if not sample:
            raise ValueError("beton slots cannot hold empty samples")
        self._samples.append((sample, int(label)))

    def close(self) -> dict[str, int]:
        """Write the file; returns layout stats."""
        if self._closed:
            raise RuntimeError("double close()")
        self._closed = True
        if not self._samples:
            raise ValueError("cannot write an empty beton file")
        max_len = max(len(s) for s, _l in self._samples)
        slot_size = -(-max_len // _ALIGN) * _ALIGN
        n = len(self._samples)
        payload_offset = _HEADER.size + n * _SLOT_ENTRY.size
        payload_offset = -(-payload_offset // _ALIGN) * _ALIGN
        with open(self.path, "wb") as fh:
            fh.write(_HEADER.pack(_MAGIC, n, slot_size, payload_offset))
            for sample, label in self._samples:
                fh.write(_SLOT_ENTRY.pack(len(sample), label))
            fh.write(b"\x00" * (payload_offset - _HEADER.size - n * _SLOT_ENTRY.size))
            for sample, _label in self._samples:
                fh.write(sample)
                fh.write(b"\x00" * (slot_size - len(sample)))
        return {
            "num_samples": n,
            "slot_size": slot_size,
            "file_bytes": payload_offset + n * slot_size,
            "payload_bytes": sum(len(s) for s, _l in self._samples),
        }

    def __enter__(self) -> "BetonWriter":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        if exc_type is None:
            self.close()


def write_beton(samples: Iterable[tuple[bytes, int]], path: str | Path) -> dict[str, int]:
    """Convert a sample stream to one beton file; returns layout stats."""
    writer = BetonWriter(path)
    for sample, label in samples:
        writer.append(sample, label)
    return writer.close()


class BetonReader:
    """Single-mmap random access: ``reader[i]`` -> ``(bytes, label)``."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._fh = open(self.path, "rb")
        self._mm = mmap.mmap(self._fh.fileno(), 0, access=mmap.ACCESS_READ)
        self._view = memoryview(self._mm)
        magic, n, slot_size, payload_offset = _HEADER.unpack_from(self._view, 0)
        if magic != _MAGIC:
            raise ValueError(f"bad beton magic: {magic!r}")
        self.num_samples = n
        self.slot_size = slot_size
        self.payload_offset = payload_offset
        table = np.frombuffer(
            self._view[_HEADER.size : _HEADER.size + n * _SLOT_ENTRY.size],
            dtype=np.dtype([("length", "<u8"), ("label", "<i8")]),
        )
        self.lengths = table["length"].copy()
        self.labels = table["label"].copy()
        expected = payload_offset + n * slot_size
        if len(self._view) < expected:
            raise ValueError(
                f"beton file truncated: {len(self._view)} bytes, layout needs {expected}"
            )

    def __len__(self) -> int:
        return self.num_samples

    def sample_view(self, i: int) -> memoryview:
        """Zero-copy view of sample ``i``'s bytes."""
        if not 0 <= i < self.num_samples:
            raise IndexError(f"sample {i} out of range [0, {self.num_samples})")
        start = self.payload_offset + i * self.slot_size
        return self._view[start : start + int(self.lengths[i])]

    def __getitem__(self, i: int) -> tuple[bytes, int]:
        return bytes(self.sample_view(i)), int(self.labels[i])

    def close(self) -> None:
        """Release resources."""
        self._view.release()
        self._mm.close()
        self._fh.close()

    def __enter__(self) -> "BetonReader":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.close()
