"""Beton: an FFCV-style memory-mapped dataset format (paper §2 related work).

FFCV accelerates *local* training I/O with a custom ``.beton`` file layout —
fixed-size sample slots addressable by index through one mmap, removing
per-sample open/seek/frame overhead — plus JIT-compiled preprocessing.
This package reproduces that design:

* :mod:`~repro.beton.format` — the slotted file format: header, fixed-size
  slot table, page-aligned payload region, single-mmap random access.
* :mod:`~repro.beton.loader` — the FFCV-style loader: index-shuffled
  epochs, mmap slot reads (no syscalls per sample), and a vectorized
  ("JIT-compiled" in FFCV; numpy-vectorized here) preprocessing stage.

The point the paper makes — and the bench reproduces — is that this wins
on local disks but has no remote story: the format *requires* a local (or
page-cache-backed) mmap, so over networked storage it degrades into
whole-file transfer.
"""

from repro.beton.format import BetonReader, BetonWriter, write_beton
from repro.beton.loader import FFCVStyleLoader

__all__ = ["BetonReader", "BetonWriter", "write_beton", "FFCVStyleLoader"]
