"""SJPG: a simple JPEG-like block-DCT image codec.

Pipeline (encode): uint8 HxWxC image → level shift → 8×8 block 2-D DCT
(scipy, orthonormal) → quality-scaled quantization → zigzag scan → run-length
encoding of zero runs → varint packing.  Decode reverses each stage; the
inverse DCT dominates, so decode cost scales with pixel count exactly like
real JPEG decode does.

Wire format::

    magic   b"SJPG"
    u8      version (=1)
    u8      quality (1..100)
    u16     height, width  (big-endian)
    u8      channels
    u32     number of RLE tokens
    bytes   varint-packed RLE token stream

The codec is lossy; tests bound reconstruction PSNR instead of asserting
bit-exactness.
"""

from __future__ import annotations

import struct

import numpy as np
from scipy.fft import dctn, idctn

_MAGIC = b"SJPG"
_VERSION = 1
_HDR = struct.Struct(">4sBBHHBI")

# Base luminance quantization table (ITU-T T.81 Annex K), used for every
# channel — chroma subsampling is out of scope for a cost-faithful codec.
_QBASE = np.array(
    [
        [16, 11, 10, 16, 24, 40, 51, 61],
        [12, 12, 14, 19, 26, 58, 60, 55],
        [14, 13, 16, 24, 40, 57, 69, 56],
        [14, 17, 22, 29, 51, 87, 80, 62],
        [18, 22, 37, 56, 68, 109, 103, 77],
        [24, 35, 55, 64, 81, 104, 113, 92],
        [49, 64, 78, 87, 103, 121, 120, 101],
        [72, 92, 95, 98, 112, 100, 103, 99],
    ],
    dtype=np.float64,
)


def _quant_table(quality: int) -> np.ndarray:
    """JPEG quality scaling of the base table (libjpeg convention)."""
    if not 1 <= quality <= 100:
        raise ValueError(f"quality must be in [1, 100], got {quality}")
    scale = 5000 / quality if quality < 50 else 200 - 2 * quality
    q = np.floor((_QBASE * scale + 50) / 100)
    return np.clip(q, 1, 255)


def _zigzag_order() -> np.ndarray:
    idx = []
    for s in range(15):
        diag = [(i, s - i) for i in range(8) if 0 <= s - i < 8]
        if s % 2 == 0:
            diag.reverse()
        idx.extend(diag)
    order = np.array([i * 8 + j for i, j in idx], dtype=np.int64)
    return order


_ZIGZAG = _zigzag_order()
_UNZIGZAG = np.argsort(_ZIGZAG)


def _to_blocks(channel: np.ndarray) -> tuple[np.ndarray, int, int]:
    """Pad to multiples of 8 and reshape to (nby, nbx, 8, 8)."""
    h, w = channel.shape
    ph = (-h) % 8
    pw = (-w) % 8
    if ph or pw:
        channel = np.pad(channel, ((0, ph), (0, pw)), mode="edge")
    hh, ww = channel.shape
    blocks = channel.reshape(hh // 8, 8, ww // 8, 8).transpose(0, 2, 1, 3)
    return np.ascontiguousarray(blocks), hh // 8, ww // 8


def _from_blocks(blocks: np.ndarray, h: int, w: int) -> np.ndarray:
    nby, nbx = blocks.shape[:2]
    full = blocks.transpose(0, 2, 1, 3).reshape(nby * 8, nbx * 8)
    return full[:h, :w]


# -- RLE + varint entropy stage ----------------------------------------------


def _zigzag_int(v: int) -> int:
    """Map signed to unsigned for varints (protobuf-style zigzag)."""
    return (v << 1) ^ (v >> 63)


def _rle_encode(flat: np.ndarray) -> np.ndarray:
    """Run-length encode: stream of (zero_run_length, nonzero_value) pairs.

    A trailing run of zeros is encoded as a single (run, 0) terminator pair.
    Returns an int64 array of interleaved (run, value) tokens.
    """
    nz = np.flatnonzero(flat)
    runs = np.diff(np.concatenate(([-1], nz))) - 1
    values = flat[nz].astype(np.int64)
    tokens = np.empty(2 * len(nz) + 2, dtype=np.int64)
    tokens[0 : 2 * len(nz) : 2] = runs
    tokens[1 : 2 * len(nz) : 2] = values
    trailing = len(flat) - (int(nz[-1]) + 1 if len(nz) else 0)
    tokens[-2] = trailing
    tokens[-1] = 0  # terminator value
    return tokens


def _rle_decode(tokens: np.ndarray, n: int) -> np.ndarray:
    """Expand (run, value) pairs into a dense array, vectorized.

    Nonzero positions are a cumsum-scatter: after the first i pairs the
    write cursor sits at ``sum(runs[:i]) + i`` (each value advances it by
    one).  The first zero value terminates the stream.
    """
    flat = np.zeros(n, dtype=np.int64)
    runs = tokens[0::2]
    values = tokens[1::2]
    pairs = min(len(runs), len(values))
    runs = runs[:pairs]
    values = values[:pairs]
    zeros = np.flatnonzero(values == 0)
    k = int(zeros[0]) if len(zeros) else pairs  # pairs before the terminator
    if k:
        positions = np.cumsum(runs[:k]) + np.arange(k)
        if int(positions.max()) >= n or int(positions.min()) < 0:
            raise ValueError("RLE stream overruns coefficient array")
        flat[positions] = values[:k]
    return flat


def _varint_pack(tokens: np.ndarray) -> bytes:
    """Pack int64 tokens as LEB128 varints of their zigzag mapping."""
    out = bytearray()
    for t in tokens.tolist():
        u = (t << 1) ^ (t >> 63)
        while True:
            byte = u & 0x7F
            u >>= 7
            if u:
                out.append(byte | 0x80)
            else:
                out.append(byte)
                break
    return bytes(out)


def _varint_unpack(data: bytes | memoryview, count: int) -> np.ndarray:
    """Unpack ``count`` LEB128 zigzag varints, vectorized.

    Terminal bytes (continuation bit clear) mark token boundaries, so one
    ``flatnonzero`` finds every token at once; payload bytes then
    accumulate per 7-bit position (at most 10 for a 64-bit value).
    """
    arr = np.frombuffer(data, dtype=np.uint8)
    if count == 0:
        if arr.size:
            raise ValueError(f"{arr.size} trailing bytes in varint stream")
        return np.empty(0, dtype=np.int64)
    ends = np.flatnonzero((arr & 0x80) == 0)
    if len(ends) < count:
        raise ValueError("truncated varint stream")
    last = int(ends[count - 1])
    if last + 1 != arr.size:
        raise ValueError(f"{arr.size - last - 1} trailing bytes in varint stream")
    ends = ends[:count]
    starts = np.empty(count, dtype=np.int64)
    starts[0] = 0
    starts[1:] = ends[:-1] + 1
    lens = ends - starts + 1
    maxlen = int(lens.max())
    if maxlen > 10:  # a 64-bit zigzag value is at most 10 LEB128 bytes
        raise ValueError("varint exceeds 64 bits")
    u = np.zeros(count, dtype=np.uint64)
    payload = (arr & 0x7F).astype(np.uint64)
    for j in range(maxlen):
        mask = lens > j
        u[mask] |= payload[starts[mask] + j] << np.uint64(7 * j)
    # Zigzag decode: (u >> 1) ^ -(u & 1), in int64 space.
    return (u >> np.uint64(1)).astype(np.int64) ^ -((u & np.uint64(1)).astype(np.int64))


# -- public API ----------------------------------------------------------------


def sjpg_encode(image: np.ndarray, quality: int = 75) -> bytes:
    """Encode an HxW or HxWxC uint8 image to SJPG bytes."""
    if image.dtype != np.uint8:
        raise TypeError(f"image must be uint8, got {image.dtype}")
    if image.ndim == 2:
        image = image[:, :, None]
    if image.ndim != 3:
        raise ValueError(f"image must be HxW or HxWxC, got shape {image.shape}")
    h, w, channels = image.shape
    if h == 0 or w == 0:
        raise ValueError(f"image must be non-empty, got shape {image.shape}")
    q = _quant_table(quality)

    all_tokens: list[np.ndarray] = []
    for ch in range(channels):
        blocks, _nby, _nbx = _to_blocks(image[:, :, ch].astype(np.float64) - 128.0)
        coeffs = dctn(blocks, axes=(-2, -1), norm="ortho")
        quantized = np.round(coeffs / q).astype(np.int64)
        flat = quantized.reshape(-1, 64)[:, _ZIGZAG].ravel()
        all_tokens.append(_rle_encode(flat))
    tokens = np.concatenate(all_tokens)
    body = _varint_pack(tokens)
    header = _HDR.pack(_MAGIC, _VERSION, quality, h, w, channels, len(tokens))
    return header + body


def _parse_header(data: bytes) -> tuple[int, int, int, int, int]:
    if len(data) < _HDR.size:
        raise ValueError("SJPG data too short for header")
    magic, version, quality, h, w, channels, ntok = _HDR.unpack_from(data)
    if magic != _MAGIC:
        raise ValueError(f"bad SJPG magic: {magic!r}")
    if version != _VERSION:
        raise ValueError(f"unsupported SJPG version {version}")
    return quality, h, w, channels, ntok


def sjpg_decode_shape(data: bytes) -> tuple[int, int, int]:
    """Peek (height, width, channels) without decoding the body."""
    _quality, h, w, channels, _ntok = _parse_header(data)
    return h, w, channels


def sjpg_decode(data: bytes) -> np.ndarray:
    """Decode SJPG bytes back to an HxWxC uint8 image.

    All channels share one inverse DCT: the per-channel coefficient grids
    are stacked into a single (C, nby, nbx, 8, 8) array so scipy is
    entered once per image instead of once per channel, in float32 — the
    transform is exact to well past quantization precision, so the round
    +clip at the end lands on the same pixels.
    """
    quality, h, w, channels, ntok = _parse_header(data)
    q = _quant_table(quality).astype(np.float32)
    tokens = _varint_unpack(data[_HDR.size :], ntok)

    nby = (h + 7) // 8
    nbx = (w + 7) // 8
    per_channel = nby * nbx * 64

    # Split the token stream back per channel at terminator boundaries.
    terminators = np.flatnonzero(tokens[1::2] == 0)
    if len(terminators) < channels:
        raise ValueError("token stream is missing channel terminators")
    quantized = np.empty((channels, nby, nbx, 8, 8), dtype=np.int64)
    start = 0
    for ch in range(channels):
        end = 2 * (int(terminators[np.searchsorted(terminators, start // 2)]) + 1)
        chunk = tokens[start:end]
        start = end
        flat = _rle_decode(chunk, per_channel)
        quantized[ch] = flat.reshape(-1, 64)[:, _UNZIGZAG].reshape(nby, nbx, 8, 8)
    coeffs = quantized.astype(np.float32) * q
    blocks = idctn(coeffs, axes=(-2, -1), norm="ortho")
    full = blocks.transpose(0, 1, 3, 2, 4).reshape(channels, nby * 8, nbx * 8)
    pixels = np.clip(np.round(full[:, :h, :w] + 128.0), 0, 255).astype(np.uint8)
    return np.ascontiguousarray(pixels.transpose(1, 2, 0))


def sjpg_decode_batch(datas: list[bytes]) -> list[np.ndarray]:
    """Decode many SJPG images, amortizing every stage across the batch.

    When all images share one geometry and quality — the common case for a
    training batch — the byte streams concatenate into a single varint
    parse, the RLE chunks expand through one segment-cumsum scatter, and
    all coefficient grids stack into a single (N*C, nby, nbx, 8, 8)
    inverse DCT.  Per-image numpy dispatch overhead, which dominates at
    thumbnail sizes, is paid once per batch instead of N*C times.  Mixed
    or structurally unusual batches fall back to per-image
    :func:`sjpg_decode`; output pixels are identical either way.
    """
    if not datas:
        return []
    headers = [_parse_header(d) for d in datas]
    if len({hdr[:4] for hdr in headers}) != 1:
        return [sjpg_decode(d) for d in datas]
    quality, h, w, channels, _ = headers[0]
    ntoks = np.array([hdr[4] for hdr in headers], dtype=np.int64)
    if np.any(ntoks % 2) or np.any(ntoks == 0):
        return [sjpg_decode(d) for d in datas]  # let the scalar path diagnose
    n = len(datas)

    # One varint parse over the concatenated bodies.  Streams never blend:
    # a well-formed stream's last byte has the continuation bit clear, and
    # the per-image boundary check below rejects anything else.
    arr = np.frombuffer(
        b"".join(d[_HDR.size :] for d in datas) if n > 1 else datas[0][_HDR.size :],
        dtype=np.uint8,
    )
    total = int(ntoks.sum())
    ends = np.flatnonzero((arr & 0x80) == 0)
    if len(ends) < total:
        raise ValueError("truncated varint stream")
    ends = ends[:total]
    byte_bounds = np.cumsum(np.array([len(d) - _HDR.size for d in datas], dtype=np.int64))
    tok_bounds = np.cumsum(ntoks)
    # Each image's ntok-th terminal byte must be its last body byte.
    if not np.array_equal(ends[tok_bounds - 1], byte_bounds - 1):
        return [sjpg_decode(d) for d in datas]
    starts = np.empty(total, dtype=np.int64)
    starts[0] = 0
    starts[1:] = ends[:-1] + 1
    lens = ends - starts + 1
    maxlen = int(lens.max())
    if maxlen > 10:
        raise ValueError("varint exceeds 64 bits")
    u = np.zeros(total, dtype=np.uint64)
    payload = (arr & 0x7F).astype(np.uint64)
    for j in range(maxlen):
        mask = lens > j
        u[mask] |= payload[starts[mask] + j] << np.uint64(7 * j)
    tokens = (u >> np.uint64(1)).astype(np.int64) ^ -((u & np.uint64(1)).astype(np.int64))

    # One scatter for every (image, channel) RLE chunk.  Terminator pairs
    # (value == 0) must partition the pair stream into exactly N*C chunks
    # aligned to image boundaries — the structure the encoder always
    # emits; anything else falls back to the scalar path.
    runs = tokens[0::2]
    values = tokens[1::2]
    npairs = total // 2
    term = values == 0
    term_idx = np.flatnonzero(term)
    if len(term_idx) != n * channels or not np.array_equal(
        term_idx[channels - 1 :: channels], tok_bounds // 2 - 1
    ):
        return [sjpg_decode(d) for d in datas]
    nby = (h + 7) // 8
    nbx = (w + 7) // 8
    per_channel = nby * nbx * 64
    chunk_id = np.cumsum(term) - term  # terminators strictly before each pair
    chunk_start = np.zeros(npairs, dtype=np.int64)
    chunk_base = np.zeros(npairs, dtype=np.int64)
    csum = np.cumsum(runs)
    later = chunk_id > 0  # pairs in chunk 0 start at offset 0 with base 0
    prev_term = term_idx[chunk_id[later] - 1]
    chunk_start[later] = prev_term + 1
    chunk_base[later] = csum[prev_term]
    # Inclusive run-cumsum within the chunk, plus the pair's chunk-local
    # index: the same position law _rle_decode applies per chunk.
    pos = csum - chunk_base + (np.arange(npairs) - chunk_start)
    keep = ~term
    pos = pos[keep]
    if len(pos) and (int(pos.max()) >= per_channel or int(pos.min()) < 0):
        raise ValueError("RLE stream overruns coefficient array")
    flat = np.zeros(n * channels * per_channel, dtype=np.int64)
    flat[chunk_id[keep] * per_channel + pos] = values[keep]

    q = _quant_table(quality).astype(np.float32)
    quantized = flat.reshape(-1, 64)[:, _UNZIGZAG].reshape(n * channels, nby, nbx, 8, 8)
    coeffs = quantized.astype(np.float32) * q
    blocks = idctn(coeffs, axes=(-2, -1), norm="ortho")
    # Level-shift, round, clip in place on the float output, then drop to
    # uint8 *before* the layout shuffles so the two forced copies move a
    # quarter of the bytes.
    blocks += 128.0
    np.rint(blocks, out=blocks)
    np.clip(blocks, 0, 255, out=blocks)
    bytes8 = blocks.astype(np.uint8)
    full = bytes8.transpose(0, 1, 3, 2, 4).reshape(n, channels, nby * 8, nbx * 8)
    nhwc = np.ascontiguousarray(full[:, :, :h, :w].transpose(0, 2, 3, 1))
    return list(nhwc)


def psnr(a: np.ndarray, b: np.ndarray) -> float:
    """Peak signal-to-noise ratio between two uint8 images, in dB."""
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    mse = np.mean((a.astype(np.float64) - b.astype(np.float64)) ** 2)
    if mse == 0:
        return float("inf")
    return float(10.0 * np.log10(255.0**2 / mse))
