"""Image codecs.

Training samples must be *decoded* — in the paper this is JPEG decode
offloaded to the GPU by DALI.  Stubbing decode with a sleep would make every
energy number fictional, so :mod:`repro.codec.sjpg` implements a real block-
DCT image codec (8×8 DCT, quality-scaled quantization, zigzag, run-length +
varint entropy coding).  Decode cost is genuinely proportional to pixel
count, which is what makes "preprocess energy" in the experiments earned.

:mod:`repro.codec.raw` is a passthrough codec with an exact-size header,
used for the paper's 2 MB synthetic records where the payload is opaque.
"""

from repro.codec.raw import raw_decode, raw_encode
from repro.codec.sjpg import sjpg_decode, sjpg_decode_shape, sjpg_encode

#: Record magic -> (encode, decode), the codec table this package ships.
#: :data:`repro.api.registry.CODECS` builds its image/raw entries from
#: here — add a format in one place and the registry picks it up.
#: ``TOK0`` records live in :mod:`repro.data.text` to keep this package
#: image-only; the registry adds them at the API layer.
CODEC_TABLE = {
    "sjpg": (sjpg_encode, sjpg_decode),
    "raw": (raw_encode, raw_decode),
}

__all__ = [
    "CODEC_TABLE",
    "raw_decode",
    "raw_encode",
    "sjpg_decode",
    "sjpg_decode_shape",
    "sjpg_encode",
]
