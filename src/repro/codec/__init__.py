"""Image codecs.

Training samples must be *decoded* — in the paper this is JPEG decode
offloaded to the GPU by DALI.  Stubbing decode with a sleep would make every
energy number fictional, so :mod:`repro.codec.sjpg` implements a real block-
DCT image codec (8×8 DCT, quality-scaled quantization, zigzag, run-length +
varint entropy coding).  Decode cost is genuinely proportional to pixel
count, which is what makes "preprocess energy" in the experiments earned.

:mod:`repro.codec.raw` is a passthrough codec with an exact-size header,
used for the paper's 2 MB synthetic records where the payload is opaque.
"""

from repro.codec.raw import raw_decode, raw_encode
from repro.codec.sjpg import sjpg_decode, sjpg_decode_shape, sjpg_encode

__all__ = [
    "raw_decode",
    "raw_encode",
    "sjpg_decode",
    "sjpg_decode_shape",
    "sjpg_encode",
]
