"""RAW passthrough codec with an exact-size header.

The paper's synthetic workload uses opaque 2 MB records; what matters is
moving and "decoding" exactly N bytes.  RAW frames a payload with a magic +
length header and a cheap checksum so corruption in the transfer path is
still detectable.
"""

from __future__ import annotations

import struct

import numpy as np

_MAGIC = b"RAW0"
_HDR = struct.Struct(">4sQI")


def _checksum(payload: bytes) -> int:
    """Cheap vectorized additive checksum (not CRC; this path is hot)."""
    arr = np.frombuffer(payload, dtype=np.uint8)
    return int(arr.sum(dtype=np.uint64) & 0xFFFFFFFF)


def raw_encode(payload: bytes) -> bytes:
    """Frame ``payload``; output is exactly ``len(payload) + 16`` bytes."""
    return _HDR.pack(_MAGIC, len(payload), _checksum(payload)) + payload


def raw_decode(data: bytes) -> bytes:
    """Unframe and verify a RAW record."""
    if len(data) < _HDR.size:
        raise ValueError("RAW data too short for header")
    magic, length, checksum = _HDR.unpack_from(data)
    if magic != _MAGIC:
        raise ValueError(f"bad RAW magic: {magic!r}")
    payload = data[_HDR.size :]
    if len(payload) != length:
        raise ValueError(f"RAW length mismatch: header {length}, body {len(payload)}")
    if _checksum(payload) != checksum:
        raise ValueError("RAW checksum mismatch")
    return payload


def raw_overhead() -> int:
    """Framing overhead in bytes."""
    return _HDR.size
