"""EMLIO.deploy — the stable consumer facade over the service internals.

``EMLIO.deploy(spec)`` turns a :class:`~repro.api.spec.ClusterSpec` into a
running :class:`Deployment`: dataset materialized, component names resolved
through the registries, daemons + receivers wired over (optionally shaped)
loopback TCP.  The deployment exposes the consumption surface
(:meth:`~Deployment.epoch` / :meth:`~Deployment.epochs`), lifecycle
callbacks (``on_epoch_start``, ``on_failover``, ``on_member_event``), a
JSON-able :meth:`~Deployment.status`, and context-manager shutdown.

``EMLIO.deploy(spec, dry_run=True)`` (or :meth:`EMLIO.plan`) stops after
planning: the spec is validated, every component name resolved, the
dataset materialized, and the batch plan computed — but no socket is bound
and no daemon spawned.  CI uses this to prove every shipped scenario file
still deploys.

The facade is a layer *on top of* :class:`~repro.core.service.EMLIOService`
— construct the service (or daemons/receivers) directly when you need
something the spec vocabulary does not say yet.
"""

from __future__ import annotations

import tempfile
import threading
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Callable, Iterator

import numpy as np

from repro.api.registry import CODECS, NETWORK_PROFILES, POWER_MODELS, STORAGE_BACKENDS
from repro.api.spec import ChaosEventSpec, ClusterSpec, SpecError
from repro.core.planner import Planner
from repro.core.service import EMLIOService
from repro.net.emulation import NetworkProfile
from repro.obs import Telemetry
from repro.tfrecord.sharder import ShardedDataset, write_shards


def _materialize_dataset(
    spec: ClusterSpec, dataset: ShardedDataset | None
) -> tuple[ShardedDataset, tempfile.TemporaryDirectory | None]:
    """The dataset to serve, plus the tempdir owning it (when generated)."""
    if dataset is not None:
        return dataset, None
    ds = spec.dataset
    if ds.kind == "existing":
        root = Path(ds.root)
        if not root.is_dir():
            raise SpecError(f"dataset.root does not exist: {root}")
        return ShardedDataset.open(root), None
    owned: tempfile.TemporaryDirectory | None = None
    if ds.root is not None:
        root = Path(ds.root)
    else:
        owned = tempfile.TemporaryDirectory(prefix=f"emlio-{spec.name}-")
        root = Path(owned.name) / "dataset"
    if ds.kind == "tokens":
        from repro.data.text import SyntheticTokenDataset

        gen = iter(
            SyntheticTokenDataset(
                ds.n, context_len=ds.context_len, vocab_size=ds.vocab_size, seed=ds.seed
            )
        )
        return write_shards(gen, root, records_per_shard=ds.records_per_shard), owned
    from repro.data.datasets import build_dataset

    kwargs: dict = {}
    if ds.kind in ("imagenet", "coco"):
        kwargs = {"image_hw": ds.image_hw, "num_classes": ds.num_classes}
    elif ds.kind == "synthetic":
        kwargs = {"sample_bytes": ds.sample_bytes}
    return (
        build_dataset(
            ds.kind, ds.n, root, seed=ds.seed,
            records_per_shard=ds.records_per_shard, **kwargs,
        ),
        owned,
    )


def _validate_chaos(spec: ClusterSpec) -> None:
    """Reject chaos events that can never fire on this topology.

    Called by both :meth:`EMLIO.plan` *and* :meth:`EMLIO.deploy` — a drill
    that CI's dry-run rejects must not deploy cleanly live (the timer would
    swallow the IndexError and the drill would silently never happen).
    """
    for event in spec.chaos.events:
        kind, _, arg = event.target.partition(":")
        if kind == "receiver" and arg.isdigit() and int(arg) >= spec.receivers.num_nodes:
            raise SpecError(
                f"chaos event targets receiver:{arg} but the spec deploys "
                f"only {spec.receivers.num_nodes} node(s)"
            )


def _resolve_profile(spec: ClusterSpec) -> NetworkProfile | None:
    net = spec.network
    if net.profile is not None:
        return NETWORK_PROFILES.get(net.profile)
    if net.rtt_ms is None:
        return None
    bandwidth = (
        net.bandwidth_gbps * 1e9 / 8 if net.bandwidth_gbps is not None else float("inf")
    )
    return NetworkProfile(
        f"inline-{net.rtt_ms:g}ms", rtt_s=net.rtt_ms / 1e3, bandwidth_bps=bandwidth
    )


def _resolve_config(spec: ClusterSpec):
    """The pipeline config with the network section's transport and the
    storage section's read-verification policy folded in."""
    return replace(
        spec.pipeline.to_config(),
        transport=spec.network.effective_transport,
        shm_ring_bytes=spec.network.shm_ring_bytes,
        verify_reads=spec.storage.verify_reads,
    )


def _resolve_storage_shards(
    spec: ClusterSpec, dataset: ShardedDataset
) -> dict[str, set[str]] | None:
    """Map the storage spec onto the service's ``storage_shards`` argument."""
    storage = spec.storage
    STORAGE_BACKENDS.get(storage.backend)  # fail fast on unknown backends
    all_shards = [ix.shard for ix in dataset.indexes]
    if storage.daemons:
        if len(storage.daemons) == 1 and storage.daemons[0].shards is None:
            d = storage.daemons[0]
            if Path(d.root).resolve() == Path(dataset.root).resolve():
                return None  # the plain single-daemon service path
            return {d.root: set(all_shards)}
        return {d.root: set(d.shards or all_shards) for d in storage.daemons}
    n = storage.num_daemons
    if n == 1:
        return None
    if n > len(all_shards):
        raise SpecError(
            f"storage.num_daemons={n} exceeds the dataset's {len(all_shards)} shards"
        )
    # Distinct root strings over one directory: "<root>", "<root>/.", ... —
    # each daemon owns a contiguous slice of the shard list.
    split: dict[str, set[str]] = {}
    for i in range(n):
        root = str(dataset.root) + "/." * i
        split[root] = set(all_shards[i::n])
    return split


def _resolve_storage_runtime(
    spec: ClusterSpec,
    dataset: ShardedDataset,
    config,
    profile: NetworkProfile | None,
) -> tuple[Callable | None, Callable[[], None] | None]:
    """Resolve ``[storage]`` into ``(storage_factory, closer)``.

    The factory is threaded into :class:`EMLIOService` and called once per
    daemon root; ``closer`` releases any shared infrastructure the factory
    depends on (today: the NFS :class:`StorageServer`).  ``(None, None)``
    means the daemon's built-in localfs mmap path — deliberately identical
    to pre-tier deployments.

    Live-deploy only: binding the NFS server's socket here is exactly what
    :meth:`EMLIO.plan` must not do.
    """
    storage = spec.storage
    backend_entry = STORAGE_BACKENDS.get(storage.backend)
    cache_bytes = storage.cache_bytes
    verify = config.verify_reads

    def wrap(backend):
        if cache_bytes > 0:
            from repro.storage.cache import CachedBackend

            return CachedBackend(backend, cache_bytes)
        return backend

    if storage.backend == "localfs":
        if cache_bytes == 0:
            return None, None
        from repro.storage.backend import LocalFSBackend

        return (lambda root: wrap(LocalFSBackend(root, verify=verify))), None
    if storage.backend == "nfs":
        from repro.storage.backend import NFSBackend
        from repro.storage.nfs import NFSMount
        from repro.storage.server import StorageServer

        # One shared server over the dataset root; split daemon roots
        # ("<root>/.", ...) address shards by relative filename, so a
        # single export serves every daemon.
        server = StorageServer(str(dataset.root), profile=profile)

        def nfs_factory(root: str):
            mount = NFSMount("127.0.0.1", server.port, profile=profile)
            return wrap(NFSBackend(mount, verify=verify))

        return nfs_factory, server.close
    if storage.backend == "objectstore":
        from repro.storage.objectstore import ObjectStoreBackend

        latency_s = storage.latency_ms / 1e3

        def obj_factory(root: str):
            return wrap(
                ObjectStoreBackend(root, request_latency_s=latency_s, verify=verify)
            )

        return obj_factory, None
    # Registry extension point: any ``factory(root) -> StorageBackend``.
    return (lambda root: wrap(backend_entry(root))), None


def _resolve_telemetry(spec: ClusterSpec) -> tuple[Telemetry, object | None]:
    """Resolve ``[observability]`` into ``(telemetry, exporter)``.

    Live-deploy only (the exporter binds a socket, which is exactly what
    :meth:`EMLIO.plan` must not do).  The :class:`~repro.obs.Telemetry`
    handle is always built — the metric registry is collected lazily at
    scrape/status time, so an unconfigured section costs nothing on the
    data path.  The exporter starts only when ``metrics_port`` is set
    (``0`` binds an ephemeral port, read back from ``status()``).
    """
    obs = spec.observability
    telemetry = Telemetry(
        trace_dir=obs.trace_dir, trace_sample=obs.trace_sample
    )
    exporter = None
    if obs.metrics_port is not None:
        from repro.obs.exporter import MetricsExporter

        try:
            exporter = MetricsExporter(telemetry.registry, port=obs.metrics_port)
        except BaseException:
            telemetry.close()
            raise
    return telemetry, exporter


def _resolve_preprocess(spec: ClusterSpec) -> Callable | None:
    codec = CODECS.get(spec.pipeline.codec)
    if spec.pipeline.codec == "auto":
        return None  # the pipeline's built-in magic-dispatch path
    return codec.batch_preprocess


def _resolve_power(spec: ClusterSpec):
    """Resolve + type-check the energy section's power-model names.

    POWER_MODELS holds CPU and GPU parameter sets in one namespace; a spec
    naming a GPU model as ``cpu_model`` must fail here (dry-run included),
    not as an AttributeError inside a sampler thread mid-run.
    """
    from repro.energy.power_models import CpuSpec, GpuSpec

    cpu = POWER_MODELS.get(spec.energy.cpu_model)
    if not isinstance(cpu, CpuSpec):
        raise SpecError(
            f"energy.cpu_model {spec.energy.cpu_model!r} is not a CPU power "
            f"model (got {type(cpu).__name__})"
        )
    gpu = None
    if spec.energy.gpu_model is not None:
        gpu = POWER_MODELS.get(spec.energy.gpu_model)
        if not isinstance(gpu, GpuSpec):
            raise SpecError(
                f"energy.gpu_model {spec.energy.gpu_model!r} is not a GPU "
                f"power model (got {type(gpu).__name__})"
            )
    return cpu, gpu


class _ChaosRunner:
    """Drives a spec's ``[chaos]`` schedule against a live deployment.

    Anchored at the *first* epoch start; every event fires once on its own
    timer thread.  Event errors are logged through the service logger and
    swallowed — a drill must never wedge the run it is drilling.
    """

    def __init__(self, service: EMLIOService, events: tuple[ChaosEventSpec, ...]) -> None:
        self.service = service
        self.events = events
        self._timers: list[threading.Timer] = []
        self._armed = False
        self._lock = threading.Lock()

    def arm(self) -> None:
        """Start the schedule (idempotent; called at the first epoch start)."""
        with self._lock:
            if self._armed:
                return
            self._armed = True
            for event in self.events:
                t = threading.Timer(event.at_s, self._fire, args=(event,))
                t.daemon = True
                t.start()
                self._timers.append(t)

    def _fire(self, event: ChaosEventSpec) -> None:
        try:
            kind, _, arg = event.target.partition(":")
            if event.action == "kill" and kind == "daemon":
                self.service.kill_daemon(int(arg))
            elif event.action == "kill" and kind == "receiver":
                self.service.kill_receiver(int(arg))
            elif event.action == "hang":
                self.service.hang_daemon(int(arg))
            elif event.action == "join" and event.target == "receiver":
                self.service.add_receiver()
            elif event.action == "join":
                self.service.add_daemon(arg)
            self.service.logger.log(
                "chaos_event", action=event.action, target=event.target, at_s=event.at_s
            )
        except Exception as err:  # noqa: BLE001 - drills never wedge the run
            self.service.logger.log(
                "chaos_event_failed",
                action=event.action,
                target=event.target,
                error=repr(err),
            )

    def cancel(self) -> None:
        with self._lock:
            for t in self._timers:
                t.cancel()
            self._timers.clear()


@dataclass(frozen=True)
class DeploymentPlan:
    """What a dry-run deploy resolved — no sockets, no daemons."""

    name: str
    dataset_samples: int
    dataset_shards: int
    daemon_roots: tuple[str, ...]
    num_nodes: int
    epochs: int
    batches_per_epoch: int
    total_batches: int
    profile: str | None
    codec: str
    recovery_enabled: bool
    energy_enabled: bool
    transport: str = "tcp"

    def summary(self) -> str:
        profile = self.profile or "loopback (no emulation)"
        return (
            f"{self.name}: {self.dataset_samples} samples / {self.dataset_shards} shards, "
            f"{len(self.daemon_roots)} daemon(s) -> {self.num_nodes} node(s), "
            f"{self.epochs} epoch(s) x {self.batches_per_epoch} batches, "
            f"codec={self.codec}, link={profile}, transport={self.transport}, "
            f"recovery={'on' if self.recovery_enabled else 'off'}, "
            f"energy={'on' if self.energy_enabled else 'off'}"
        )


class Deployment:
    """A running EMLIO cluster deployed from a spec.

    Not constructed directly — use :meth:`EMLIO.deploy`.  Thin by design:
    consumption iterates the underlying service; callbacks observe the
    control plane; :attr:`service` stays available for anything the facade
    does not wrap.
    """

    def __init__(
        self,
        spec: ClusterSpec,
        service: EMLIOService,
        dataset: ShardedDataset,
        monitor=None,
        owned_dir: tempfile.TemporaryDirectory | None = None,
        storage_closer: Callable[[], None] | None = None,
        telemetry: Telemetry | None = None,
        exporter=None,
    ) -> None:
        self.spec = spec
        self.service = service
        self.dataset = dataset
        self.monitor = monitor
        self._owned_dir = owned_dir
        self._storage_closer = storage_closer
        self.telemetry = telemetry
        self.exporter = exporter
        self._closed = False
        self._epoch_start_cbs: list[Callable[[int], None]] = []
        self._failover_cbs: list[Callable[[str, dict], None]] = []
        self._member_cbs: list[Callable[[dict], None]] = []
        self._rebalance_cbs: list[Callable[[dict], None]] = []
        self._chaos = (
            _ChaosRunner(service, spec.chaos.events) if spec.chaos.events else None
        )
        service.add_observer(self._dispatch)

    # -- lifecycle callbacks ---------------------------------------------------

    def on_epoch_start(self, fn: Callable[[int], None]) -> "Deployment":
        """Call ``fn(epoch_index)`` when an epoch starts serving."""
        self._epoch_start_cbs.append(fn)
        return self

    def on_failover(self, fn: Callable[[str, dict], None]) -> "Deployment":
        """Call ``fn(kind, info)`` after a failover re-plan lands.

        ``kind`` is ``"daemon"`` or ``"receiver"``; ``info`` carries the
        epoch plus what was re-planned.
        """
        self._failover_cbs.append(fn)
        return self

    def on_member_event(self, fn: Callable[[dict], None]) -> "Deployment":
        """Call ``fn(event)`` for every membership event the control plane
        consumes (``joined``/``suspect``/``dead``/``recovered``/``left``).
        Requires ``recovery.enabled``; fires from the monitor thread."""
        self._member_cbs.append(fn)
        return self

    def on_rebalance(self, fn: Callable[[dict], None]) -> "Deployment":
        """Call ``fn(info)`` after an elastic rebalance lands (a joined
        receiver adopted load, or shard ownership re-divided for a joined
        daemon).  ``info["variant"]`` is ``"receiver_join"`` or
        ``"daemon_join"``, plus the epoch and what moved."""
        self._rebalance_cbs.append(fn)
        return self

    def _dispatch(self, kind: str, info: dict) -> None:
        if kind == "epoch_start":
            if self._chaos is not None:
                self._chaos.arm()  # the [chaos] clock starts with epoch 0
            for fn in self._epoch_start_cbs:
                fn(info["epoch"])
        elif kind in ("failover", "receiver_failover"):
            short = "daemon" if kind == "failover" else "receiver"
            for fn in self._failover_cbs:
                fn(short, info)
        elif kind == "member_event":
            for fn in self._member_cbs:
                fn(info)
        elif kind == "rebalance":
            for fn in self._rebalance_cbs:
                fn(info)

    # -- elastic scale-out -----------------------------------------------------

    def add_receiver(self) -> int:
        """Admit a new compute node mid-run (elastic scale-out); the engine
        shifts load onto it at the next safe boundary.  Returns its id."""
        return self.service.add_receiver()

    def add_daemon(self, root: str, shards: set[str] | None = None) -> None:
        """Admit a new storage daemon mid-run; shard ownership re-divides
        (throughput-weighted) at the next epoch start."""
        self.service.add_daemon(root, shards=shards)

    # -- consumption -----------------------------------------------------------

    def epoch(self, epoch_index: int = 0) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Serve and consume one epoch of preprocessed batches."""
        return self.service.epoch(epoch_index)

    def epochs(self) -> Iterator[tuple[int, np.ndarray, np.ndarray]]:
        """Every planned epoch: yields ``(epoch, tensors, labels)``."""
        return self.service.epochs()

    # -- observation -----------------------------------------------------------

    def status(self) -> dict:
        """JSON-able deployment snapshot: cluster + pipeline + energy.

        Energy totals follow Algorithm 1's batch writer: samples merge
        into the TSDB when the monitor stops, so the ``energy`` section
        is complete after :meth:`close` (mid-run it reads as zero).
        """
        energy = None
        if self.monitor is not None:
            report = self.monitor.query()
            energy = {
                "cpu_j": report.cpu_j,
                "dram_j": report.dram_j,
                "gpu_j": report.gpu_j,
                "samples": report.samples,
            }
        obs = self.spec.observability
        trace = self.telemetry.stats().get("trace") if self.telemetry is not None else None
        telemetry = {
            "metrics_endpoint": self.exporter.endpoint if self.exporter is not None else None,
            "trace_dir": obs.trace_dir,
            "trace_sample": obs.trace_sample,
            "spans_written": trace["written"] if trace is not None else 0,
            "spans_dropped": trace["dropped"] if trace is not None else 0,
        }
        return {
            "spec": self.spec.name,
            "cluster": self.service.cluster_status(),
            "pipeline": self.service.stats(),
            "storage": self.service.storage_stats(),
            "telemetry": telemetry,
            "energy": energy,
        }

    def stats(self) -> dict:
        """The underlying service's counter snapshot."""
        return self.service.stats()

    # -- shutdown --------------------------------------------------------------

    def close(self) -> None:
        """Tear down the service (and energy monitor / generated dataset)."""
        if self._closed:
            return
        self._closed = True
        try:
            if self._chaos is not None:
                self._chaos.cancel()
            self.service.close()
        finally:
            if self.exporter is not None:
                self.exporter.close()
            if self.telemetry is not None:
                self.telemetry.close()
            if self._storage_closer is not None:
                self._storage_closer()
            if self.monitor is not None:
                self.monitor.stop()
            if self._owned_dir is not None:
                self._owned_dir.cleanup()

    def __enter__(self) -> "Deployment":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class EMLIO:
    """The stable entry point: ``EMLIO.deploy(spec)``."""

    @staticmethod
    def _coerce(spec: ClusterSpec | dict | str | Path) -> ClusterSpec:
        if isinstance(spec, ClusterSpec):
            return spec
        if isinstance(spec, dict):
            return ClusterSpec.from_dict(spec)
        if isinstance(spec, (str, Path)):
            return ClusterSpec.from_file(spec)
        raise SpecError(f"cannot deploy a {type(spec).__name__}; "
                        f"pass a ClusterSpec, dict, or spec-file path")

    @staticmethod
    def plan(
        spec: ClusterSpec | dict | str | Path,
        dataset: ShardedDataset | None = None,
    ) -> DeploymentPlan:
        """Dry-run: validate + resolve + plan, touching no sockets.

        Synthetic datasets are still materialized (the planner works from
        real shard indexes) — into a temporary directory that is removed
        before returning, unless ``dataset.root`` pins a location.
        """
        spec = EMLIO._coerce(spec)
        config = _resolve_config(spec)
        profile = _resolve_profile(spec)
        _resolve_preprocess(spec)
        spec.elastic.to_policy()
        _validate_chaos(spec)
        if spec.recovery.enabled:
            spec.recovery.to_config()
        if spec.energy.enabled:
            _resolve_power(spec)
        ds, owned = _materialize_dataset(spec, dataset)
        try:
            shards = _resolve_storage_shards(spec, ds)
            roots = tuple(sorted(shards)) if shards else (str(ds.root),)
            plan = Planner(ds, num_nodes=spec.receivers.num_nodes, config=config).plan()
            per_epoch = len(plan.keys(epoch=0))
            return DeploymentPlan(
                name=spec.name,
                dataset_samples=ds.num_samples,
                dataset_shards=ds.num_shards,
                daemon_roots=roots,
                num_nodes=spec.receivers.num_nodes,
                epochs=config.epochs,
                batches_per_epoch=per_epoch,
                total_batches=len(plan.assignments),
                profile=profile.name if profile is not None else None,
                codec=spec.pipeline.codec,
                recovery_enabled=spec.recovery.enabled,
                energy_enabled=spec.energy.enabled,
                transport=config.transport,
            )
        finally:
            if owned is not None:
                owned.cleanup()

    @staticmethod
    def deploy(
        spec: ClusterSpec | dict | str | Path,
        dataset: ShardedDataset | None = None,
        *,
        dry_run: bool = False,
        on_epoch_start: Callable[[int], None] | None = None,
        on_failover: Callable[[str, dict], None] | None = None,
        on_member_event: Callable[[dict], None] | None = None,
    ) -> "Deployment | DeploymentPlan":
        """Deploy a cluster from a spec (object, dict, or file path).

        ``dataset`` overrides the spec's dataset section with an
        already-built :class:`ShardedDataset` (tests and benchmarks reuse
        fixtures this way).  With ``dry_run=True`` this is :meth:`plan`.
        """
        spec = EMLIO._coerce(spec)
        if dry_run:
            return EMLIO.plan(spec, dataset)
        _validate_chaos(spec)
        config = _resolve_config(spec)
        profile = _resolve_profile(spec)
        preprocess = _resolve_preprocess(spec)
        ds, owned = _materialize_dataset(spec, dataset)
        try:
            storage_shards = _resolve_storage_shards(spec, ds)
            storage_factory, storage_closer = _resolve_storage_runtime(
                spec, ds, config, profile
            )
            recovery = spec.recovery.to_config() if spec.recovery.enabled else None
            telemetry, exporter = _resolve_telemetry(spec)
            monitor = None
            if spec.energy.enabled:
                from repro.energy.monitor import EnergyMonitor

                cpu_spec, gpu_spec = _resolve_power(spec)
                monitor = EnergyMonitor(
                    node_id=spec.name,
                    cpu_spec=cpu_spec,
                    gpu_spec=gpu_spec,
                    interval=spec.energy.interval_s,
                )
                monitor.start()
            try:
                service = EMLIOService(
                    config,
                    ds,
                    profile=profile,
                    storage_shards=storage_shards,
                    cpu_tracker=monitor.cpu_tracker if monitor is not None else None,
                    stall_timeout=spec.receivers.stall_timeout_s,
                    recovery=recovery,
                    num_nodes=spec.receivers.num_nodes,
                    preprocess_fn=preprocess,
                    elastic=spec.elastic.to_policy(),
                    storage_factory=storage_factory,
                    telemetry=telemetry,
                )
            except BaseException:
                if monitor is not None:
                    monitor.stop()
                raise
        except BaseException:
            if "exporter" in locals() and exporter is not None:
                exporter.close()
            if "telemetry" in locals():
                telemetry.close()
            if "storage_closer" in locals() and storage_closer is not None:
                storage_closer()
            if owned is not None:
                owned.cleanup()
            raise
        deployment = Deployment(
            spec, service, ds, monitor=monitor, owned_dir=owned,
            storage_closer=storage_closer, telemetry=telemetry, exporter=exporter,
        )
        if on_epoch_start is not None:
            deployment.on_epoch_start(on_epoch_start)
        if on_failover is not None:
            deployment.on_failover(on_failover)
        if on_member_event is not None:
            deployment.on_member_event(on_member_event)
        return deployment


__all__ = ["Deployment", "DeploymentPlan", "EMLIO"]
