"""repro.api — the declarative deployment API.

The stable, consumer-facing entry point to the EMLIO pipeline:

* :class:`~repro.api.spec.ClusterSpec` — a serializable description of one
  deployment (dataset, pipeline tunables, storage daemons, receivers,
  network profile, recovery/membership policy, energy modeling) with
  validation and lossless JSON/TOML round-trips;
* :mod:`~repro.api.registry` — component registries (codecs, network
  profiles, storage backends, power models) that resolve the spec's string
  references and let third parties ``register()`` new backends;
* :class:`~repro.api.deploy.EMLIO` — ``EMLIO.deploy(spec)`` returns a
  :class:`~repro.api.deploy.Deployment` with ``epoch()/epochs()``,
  lifecycle callbacks, ``status()``, and context-manager shutdown;
  ``dry_run=True`` validates and plans without touching a socket;
* :mod:`~repro.api.presets` — canonical specs for every shipped topology.

``EMLIOService`` and the daemon/receiver classes remain public — the
facade is sugar over them, not a replacement.
"""

from repro.api.deploy import Deployment, DeploymentPlan, EMLIO
from repro.api.presets import PRESETS, preset
from repro.api.registry import (
    CODECS,
    Codec,
    DuplicateComponentError,
    NETWORK_PROFILES,
    POWER_MODELS,
    Registry,
    RegistryError,
    STORAGE_BACKENDS,
    UnknownComponentError,
)
from repro.api.spec import (
    ChaosEventSpec,
    ChaosSpec,
    ClusterSpec,
    DaemonSpec,
    DatasetSpec,
    ElasticSpec,
    EnergySpec,
    NetworkSpec,
    ObservabilitySpec,
    PipelineSpec,
    ReceiverSpec,
    RecoverySpec,
    SpecError,
    StorageSpec,
)

__all__ = [
    "CODECS",
    "ChaosEventSpec",
    "ChaosSpec",
    "ClusterSpec",
    "Codec",
    "DaemonSpec",
    "DatasetSpec",
    "Deployment",
    "DeploymentPlan",
    "DuplicateComponentError",
    "EMLIO",
    "ElasticSpec",
    "EnergySpec",
    "NETWORK_PROFILES",
    "NetworkSpec",
    "ObservabilitySpec",
    "POWER_MODELS",
    "PRESETS",
    "PipelineSpec",
    "ReceiverSpec",
    "RecoverySpec",
    "Registry",
    "RegistryError",
    "STORAGE_BACKENDS",
    "SpecError",
    "StorageSpec",
    "UnknownComponentError",
    "preset",
]
