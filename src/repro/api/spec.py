"""ClusterSpec — the declarative description of one EMLIO deployment.

A :class:`ClusterSpec` is a frozen dataclass tree covering everything the
service layer needs: the dataset, the pipeline tunables, the storage-daemon
topology, the compute nodes, link emulation, the fault-tolerance policy,
and energy modeling.  It is the unit that topologies, CLIs, CI scenario
files, and tests share — build one in code, or load it from JSON/TOML:

    spec = ClusterSpec.from_file("cluster.toml")
    with EMLIO.deploy(spec) as deployment:
        for tensors, labels in deployment.epoch(0):
            ...

Specs serialize losslessly: ``ClusterSpec.from_file(p)`` after
``spec.to_file(p)`` compares equal for both formats.  Every field is
validated on construction; loading rejects unknown keys loudly, so a typo
in a scenario file fails the dry-run instead of silently deploying a
default.  Component *names* (codec, network profile, power models) are
string references resolved against :mod:`repro.api.registry` at deploy
time — validation of those happens when deploying, not when parsing, so
specs can name components registered later.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field, fields
from pathlib import Path
from typing import Any

from repro.core.config import EMLIOConfig


class SpecError(ValueError):
    """A deployment spec is invalid (bad value, unknown key, bad file)."""


def _require(cond: bool, message: str) -> None:
    if not cond:
        raise SpecError(message)


def _check_keys(cls, data: dict, where: str) -> None:
    if not isinstance(data, dict):
        raise SpecError(f"{where} must be a table/object, got {type(data).__name__}")
    allowed = {f.name for f in fields(cls)}
    unknown = sorted(set(data) - allowed)
    if unknown:
        raise SpecError(
            f"unknown key(s) {unknown} in {where}; allowed: {sorted(allowed)}"
        )


def _pair(value: Any, where: str) -> tuple[int, int]:
    if (
        not isinstance(value, (list, tuple))
        or len(value) != 2
        or not all(isinstance(v, int) and not isinstance(v, bool) for v in value)
    ):
        raise SpecError(f"{where} must be a pair of ints, got {value!r}")
    return (value[0], value[1])


def _construct(cls, data: dict, where: str):
    """Build a spec dataclass from plain kwargs, folding errors to SpecError."""
    try:
        return cls(**data)
    except SpecError:
        raise
    except (TypeError, ValueError) as err:
        raise SpecError(f"invalid {where}: {err}") from None


# -- sections ------------------------------------------------------------------


@dataclass(frozen=True)
class DatasetSpec:
    """What the deployment serves.

    ``kind="existing"`` opens an already-sharded TFRecord dataset at
    ``root``; the synthetic kinds (``imagenet``, ``coco``, ``synthetic``,
    ``tokens``) generate one at deploy time — under ``root`` when set,
    else a temporary directory owned by the deployment.
    """

    KINDS = ("existing", "imagenet", "coco", "synthetic", "tokens")

    kind: str = "imagenet"
    root: str | None = None
    n: int = 64
    records_per_shard: int = 16
    seed: int = 0
    image_hw: tuple[int, int] = (32, 32)
    num_classes: int = 10
    sample_bytes: int = 4096
    context_len: int = 512
    vocab_size: int = 32_000

    def __post_init__(self) -> None:
        _require(self.kind in self.KINDS, f"dataset.kind must be one of {self.KINDS}, got {self.kind!r}")
        _require(self.kind != "existing" or bool(self.root),
                 "dataset.kind='existing' requires dataset.root")
        _require(self.n >= 1, f"dataset.n must be >= 1, got {self.n}")
        _require(self.records_per_shard >= 1,
                 f"dataset.records_per_shard must be >= 1, got {self.records_per_shard}")
        _require(self.sample_bytes >= 1,
                 f"dataset.sample_bytes must be >= 1, got {self.sample_bytes}")
        _require(self.context_len >= 2,
                 f"dataset.context_len must be >= 2, got {self.context_len}")
        _require(self.vocab_size >= 2,
                 f"dataset.vocab_size must be >= 2, got {self.vocab_size}")
        _require(self.num_classes >= 1,
                 f"dataset.num_classes must be >= 1, got {self.num_classes}")

    @classmethod
    def from_dict(cls, data: dict) -> "DatasetSpec":
        _check_keys(cls, data, "dataset")
        d = dict(data)
        if "image_hw" in d:
            d["image_hw"] = _pair(d["image_hw"], "dataset.image_hw")
        return _construct(cls, d, "dataset")


@dataclass(frozen=True)
class PipelineSpec:
    """Pipeline tunables — mirrors :class:`~repro.core.config.EMLIOConfig`
    plus the ``codec`` registry name resolving the batch preprocessor."""

    batch_size: int = 32
    epochs: int = 1
    hwm: int = 16
    daemon_threads: int = 1
    streams_per_node: int = 2
    prefetch: int = 2
    workers: int = 1
    output_hw: tuple[int, int] = (64, 64)
    coverage: str = "partition"
    seed: int = 0
    reorder_window: int = 0
    codec: str = "auto"
    payload_version: int = 3

    def __post_init__(self) -> None:
        _require(bool(self.codec) and isinstance(self.codec, str),
                 f"pipeline.codec must be a non-empty string, got {self.codec!r}")
        try:
            self.to_config()
        except ValueError as err:
            raise SpecError(f"invalid pipeline spec: {err}") from None

    def to_config(self) -> EMLIOConfig:
        """The resolved :class:`EMLIOConfig` (validates every tunable)."""
        return EMLIOConfig(
            batch_size=self.batch_size,
            epochs=self.epochs,
            hwm=self.hwm,
            daemon_threads=self.daemon_threads,
            streams_per_node=self.streams_per_node,
            prefetch=self.prefetch,
            workers=self.workers,
            output_hw=self.output_hw,
            coverage=self.coverage,
            seed=self.seed,
            reorder_window=self.reorder_window,
            payload_version=self.payload_version,
        )

    @classmethod
    def from_dict(cls, data: dict) -> "PipelineSpec":
        _check_keys(cls, data, "pipeline")
        d = dict(data)
        if "output_hw" in d:
            d["output_hw"] = _pair(d["output_hw"], "pipeline.output_hw")
        return _construct(cls, d, "pipeline")


@dataclass(frozen=True)
class DaemonSpec:
    """One storage daemon: its root directory and (optionally) the shard
    names it owns.  ``shards=None`` means every shard in the plan."""

    root: str
    shards: tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        _require(bool(self.root), "storage daemon root must be non-empty")
        if self.shards is not None:
            _require(len(self.shards) > 0,
                     f"daemon {self.root!r}: shards must be None (all) or non-empty")
            _require(len(set(self.shards)) == len(self.shards),
                     f"daemon {self.root!r}: duplicate shard names")

    @classmethod
    def from_dict(cls, data: dict) -> "DaemonSpec":
        _check_keys(cls, data, "storage.daemons[]")
        d = dict(data)
        if d.get("shards") is not None:
            shards = d["shards"]
            _require(isinstance(shards, (list, tuple))
                     and all(isinstance(s, str) for s in shards),
                     f"daemon shards must be a list of strings, got {shards!r}")
            d["shards"] = tuple(shards)
        return _construct(cls, d, "storage daemon")


@dataclass(frozen=True)
class StorageSpec:
    """Storage-daemon topology.

    Either ``num_daemons`` (> 1 splits the dataset's shards evenly across
    that many daemons at deploy time — the paper's fully-sharded Scenario
    2 without naming shards up front), or an explicit ``daemons`` tuple
    with per-root shard ownership.  ``backend`` names a
    :data:`~repro.api.registry.STORAGE_BACKENDS` entry — the seam for
    non-local storage layers.

    ``cache_bytes`` > 0 wraps each daemon's backend in a plan-informed
    hot-set cache of that capacity (block-granular, Belady eviction by
    next planned use, background prefetch at ``warm()``/epoch start).
    ``latency_ms`` emulates per-request round-trip latency on the
    ``objectstore`` backend — the knob that makes a local directory
    behave like a remote range-GET store.

    ``verify_reads`` sets the daemons' CRC policy: ``True`` checks every
    record as it is read (the default), ``"open"`` walks the whole shard's
    CRCs once at open and trusts the mapping afterwards, ``False`` skips
    verification entirely.
    """

    num_daemons: int = 1
    daemons: tuple[DaemonSpec, ...] = ()
    backend: str = "localfs"
    cache_bytes: int = 0
    latency_ms: float = 0.0
    verify_reads: bool | str = True

    def __post_init__(self) -> None:
        _require(self.num_daemons >= 1,
                 f"storage.num_daemons must be >= 1, got {self.num_daemons}")
        _require(isinstance(self.verify_reads, bool) or self.verify_reads == "open",
                 "storage.verify_reads must be true, false, or 'open', "
                 f"got {self.verify_reads!r}")
        _require(bool(self.backend), "storage.backend must be non-empty")
        _require(self.cache_bytes >= 0,
                 f"storage.cache_bytes must be >= 0, got {self.cache_bytes}")
        _require(self.latency_ms >= 0,
                 f"storage.latency_ms must be >= 0, got {self.latency_ms}")
        _require(self.latency_ms == 0 or self.backend == "objectstore",
                 "storage.latency_ms is only meaningful with "
                 f"backend = 'objectstore', got backend = {self.backend!r}")
        if self.daemons:
            _require(self.num_daemons == 1,
                     "set storage.num_daemons or storage.daemons, not both")
            roots = [d.root for d in self.daemons]
            _require(len(set(roots)) == len(roots),
                     f"duplicate storage daemon roots: {sorted(roots)}")
            shard_sets = [d.shards for d in self.daemons]
            if len(self.daemons) > 1:
                _require(all(s is not None for s in shard_sets),
                         "multiple explicit daemons need per-daemon shard lists")
                claimed: set[str] = set()
                for d in self.daemons:
                    overlap = claimed & set(d.shards or ())
                    _require(not overlap,
                             f"shards owned by two daemons: {sorted(overlap)[:3]}")
                    claimed |= set(d.shards or ())

    @classmethod
    def from_dict(cls, data: dict) -> "StorageSpec":
        _check_keys(cls, data, "storage")
        d = dict(data)
        if "daemons" in d:
            raw = d["daemons"]
            _require(isinstance(raw, (list, tuple)),
                     f"storage.daemons must be a list, got {raw!r}")
            d["daemons"] = tuple(DaemonSpec.from_dict(x) for x in raw)
        return _construct(cls, d, "storage")


@dataclass(frozen=True)
class ReceiverSpec:
    """Compute nodes consuming the stream."""

    num_nodes: int = 1
    stall_timeout_s: float = 60.0

    def __post_init__(self) -> None:
        _require(self.num_nodes >= 1,
                 f"receivers.num_nodes must be >= 1, got {self.num_nodes}")
        _require(self.stall_timeout_s > 0,
                 f"receivers.stall_timeout_s must be > 0, got {self.stall_timeout_s}")

    @classmethod
    def from_dict(cls, data: dict) -> "ReceiverSpec":
        _check_keys(cls, data, "receivers")
        return _construct(cls, dict(data), "receivers")


@dataclass(frozen=True)
class NetworkSpec:
    """Link emulation between daemons and receivers.

    Name a registered profile (``profile="wan-30ms"``) *or* describe the
    link inline (``rtt_ms``, optional ``bandwidth_gbps``); all fields
    ``None`` disables emulation (bare loopback).

    ``transport`` picks the daemon→receiver data path: ``"tcp"`` (default,
    the credit-based MQ sockets), ``"shm"`` (force the shared-memory ring
    of :mod:`repro.net.shm`, TCP fallback only if attach fails), or
    ``"auto"`` (shm when the pair is co-located and the link unshaped,
    TCP otherwise).  ``profile="shm"`` implies ``transport="shm"``.
    """

    TRANSPORTS = ("tcp", "shm", "auto")

    profile: str | None = None
    rtt_ms: float | None = None
    bandwidth_gbps: float | None = None
    transport: str = "tcp"
    shm_ring_bytes: int = 8 * 1024 * 1024

    def __post_init__(self) -> None:
        inline = self.rtt_ms is not None or self.bandwidth_gbps is not None
        _require(not (self.profile is not None and inline),
                 "set network.profile or inline rtt_ms/bandwidth_gbps, not both")
        if self.rtt_ms is not None:
            _require(self.rtt_ms >= 0, f"network.rtt_ms must be >= 0, got {self.rtt_ms}")
        if self.bandwidth_gbps is not None:
            _require(self.bandwidth_gbps > 0,
                     f"network.bandwidth_gbps must be > 0, got {self.bandwidth_gbps}")
            _require(self.rtt_ms is not None,
                     "network.bandwidth_gbps needs network.rtt_ms too")
        _require(self.transport in self.TRANSPORTS,
                 f"network.transport must be one of {self.TRANSPORTS}, "
                 f"got {self.transport!r}")
        _require(isinstance(self.shm_ring_bytes, int) and self.shm_ring_bytes >= 64 * 1024,
                 f"network.shm_ring_bytes must be an int >= 65536, "
                 f"got {self.shm_ring_bytes!r}")

    @property
    def emulated(self) -> bool:
        """Whether this spec asks for any link shaping at all."""
        return self.profile is not None or self.rtt_ms is not None

    @property
    def effective_transport(self) -> str:
        """The transport after folding in ``profile="shm"``."""
        return "shm" if self.profile == "shm" else self.transport

    @classmethod
    def from_dict(cls, data: dict) -> "NetworkSpec":
        _check_keys(cls, data, "network")
        return _construct(cls, dict(data), "network")


@dataclass(frozen=True)
class RecoverySpec:
    """Fault-tolerance and membership policy (flattened
    :class:`~repro.core.recovery.RecoveryConfig`).  ``enabled=False``
    keeps the original fail-fast pipeline."""

    enabled: bool = False
    ledger_path: str | None = None
    dedup: bool = True
    reorder_window: int | None = None
    failover: bool = True
    compact_ledger: bool = True
    reconnect_max_retries: int = 5
    reconnect_base_delay_s: float = 0.02
    reconnect_max_delay_s: float = 1.0
    heartbeat_interval_s: float = 0.5
    miss_threshold: int = 2
    dead_threshold: int = 4
    #: Hang detection: a member "serving" with frozen progress this long is
    #: declared dead.  Receiver progress advances at the *consumption*
    #: boundary, so keep this above the worst-case time the training loop
    #: spends between batches (0 disables hang detection).
    hung_after_s: float = 5.0

    def __post_init__(self) -> None:
        try:
            self.to_config(ledger_path=None)
        except ValueError as err:
            raise SpecError(f"invalid recovery spec: {err}") from None

    def to_config(self, ledger_path: str | Path | None = "unset"):
        """The resolved :class:`RecoveryConfig` (validates every knob).

        ``ledger_path`` overrides the spec's own (the deploy layer passes
        a resolved absolute path); the default keeps the spec value.
        """
        from repro.core.membership import MembershipConfig
        from repro.core.recovery import RecoveryConfig
        from repro.net.mq import ReconnectPolicy

        return RecoveryConfig(
            ledger_path=self.ledger_path if ledger_path == "unset" else ledger_path,
            dedup=self.dedup,
            reorder_window=self.reorder_window,
            failover=self.failover,
            compact_ledger=self.compact_ledger,
            reconnect=ReconnectPolicy(
                max_retries=self.reconnect_max_retries,
                base_delay_s=self.reconnect_base_delay_s,
                max_delay_s=self.reconnect_max_delay_s,
            ),
            membership=MembershipConfig(
                interval_s=self.heartbeat_interval_s,
                miss_threshold=self.miss_threshold,
                dead_threshold=self.dead_threshold,
                hung_after_s=self.hung_after_s,
            ),
        )

    @classmethod
    def from_dict(cls, data: dict) -> "RecoverySpec":
        _check_keys(cls, data, "recovery")
        return _construct(cls, dict(data), "recovery")


@dataclass(frozen=True)
class ElasticSpec:
    """Elastic-membership policy: mid-run joins and load rebalancing.

    Mirrors :class:`~repro.core.placement.ElasticPolicy`.  ``admit="auto"``
    lets a receiver or storage daemon that registers and starts beating be
    admitted mid-run, with load shifted onto it at the next safe boundary;
    ``"closed"`` refuses joins.  ``rebalance_threshold`` is the minimum
    fraction of outstanding work a shift must move to be worth the churn.
    """

    admit: str = "auto"
    min_members: int = 1
    max_members: int = 0
    rebalance_threshold: float = 0.0

    def __post_init__(self) -> None:
        try:
            self.to_policy()
        except ValueError as err:
            raise SpecError(f"invalid elastic spec: {err}") from None

    def to_policy(self):
        """The resolved :class:`~repro.core.placement.ElasticPolicy`."""
        from repro.core.placement import ElasticPolicy

        return ElasticPolicy(
            admit=self.admit,
            min_members=self.min_members,
            max_members=self.max_members,
            rebalance_threshold=self.rebalance_threshold,
        )

    @classmethod
    def from_dict(cls, data: dict) -> "ElasticSpec":
        _check_keys(cls, data, "elastic")
        return _construct(cls, dict(data), "elastic")


@dataclass(frozen=True)
class ChaosEventSpec:
    """One scheduled fault/join: ``at_s`` seconds after the first epoch
    starts, apply ``action`` to ``target``.

    Targets: ``kill`` takes ``daemon:<index>`` or ``receiver:<index>``;
    ``hang`` takes ``daemon:<index>``; ``join`` takes ``receiver`` (a new
    compute node) or ``daemon:<root>`` (a new storage root).
    """

    ACTIONS = ("kill", "hang", "join")

    at_s: float
    action: str
    target: str

    def __post_init__(self) -> None:
        _require(self.at_s >= 0, f"chaos event at_s must be >= 0, got {self.at_s}")
        _require(self.action in self.ACTIONS,
                 f"chaos action must be one of {self.ACTIONS}, got {self.action!r}")
        _require(bool(self.target) and isinstance(self.target, str),
                 f"chaos target must be a non-empty string, got {self.target!r}")
        kind, _, arg = self.target.partition(":")
        if self.action in ("kill", "hang"):
            allowed = ("daemon", "receiver") if self.action == "kill" else ("daemon",)
            _require(kind in allowed and arg.isdigit(),
                     f"chaos {self.action} target must be "
                     f"{' or '.join(f'{k}:<index>' for k in allowed)}, "
                     f"got {self.target!r}")
        else:  # join
            _require(self.target == "receiver" or (kind == "daemon" and bool(arg)),
                     f"chaos join target must be 'receiver' or 'daemon:<root>', "
                     f"got {self.target!r}")

    @classmethod
    def from_dict(cls, data: dict) -> "ChaosEventSpec":
        _check_keys(cls, data, "chaos.events[]")
        return _construct(cls, dict(data), "chaos event")


@dataclass(frozen=True)
class ChaosSpec:
    """Scheduled chaos: kill/hang/join events driven by the deployment.

    Keeps drill scripts in scenario files — the schedule is anchored at
    the first epoch start and each event fires once, errors logged (a
    drill must never wedge the run it is drilling).
    """

    events: tuple[ChaosEventSpec, ...] = ()

    @classmethod
    def from_dict(cls, data: dict) -> "ChaosSpec":
        _check_keys(cls, data, "chaos")
        d = dict(data)
        if "events" in d:
            raw = d["events"]
            _require(isinstance(raw, (list, tuple)),
                     f"chaos.events must be a list, got {raw!r}")
            d["events"] = tuple(ChaosEventSpec.from_dict(x) for x in raw)
        return _construct(cls, d, "chaos")


@dataclass(frozen=True)
class EnergySpec:
    """Energy monitoring: power-model registry names + sampling period."""

    enabled: bool = False
    cpu_model: str = "xeon-gold-6126"
    gpu_model: str | None = "quadro-rtx-6000"
    interval_s: float = 0.1

    def __post_init__(self) -> None:
        _require(bool(self.cpu_model), "energy.cpu_model must be non-empty")
        _require(self.interval_s > 0,
                 f"energy.interval_s must be > 0, got {self.interval_s}")

    @classmethod
    def from_dict(cls, data: dict) -> "EnergySpec":
        _check_keys(cls, data, "energy")
        return _construct(cls, dict(data), "energy")


@dataclass(frozen=True)
class ObservabilitySpec:
    """Telemetry plane: metrics scrape endpoint and per-batch tracing.

    ``metrics_port`` exposes the deployment's metric registry over HTTP
    (``/metrics`` Prometheus text, ``/metrics.json``, ``/healthz``);
    ``None`` disables the exporter and ``0`` binds an ephemeral port
    (read it back from ``Deployment.status()["telemetry"]``).
    ``trace_sample`` is the fraction of batches traced end-to-end
    (read → encode → send → recv → decode → preprocess → consume);
    sampled spans are appended as JSONL under ``trace_dir`` and read
    back with ``python -m repro.tools.trace``.
    """

    metrics_port: int | None = None
    trace_dir: str | None = None
    trace_sample: float = 0.0

    def __post_init__(self) -> None:
        _require(self.metrics_port is None
                 or (isinstance(self.metrics_port, int)
                     and not isinstance(self.metrics_port, bool)
                     and 0 <= self.metrics_port <= 65535),
                 f"observability.metrics_port must be 0..65535 or omitted, "
                 f"got {self.metrics_port!r}")
        _require(isinstance(self.trace_sample, (int, float))
                 and not isinstance(self.trace_sample, bool)
                 and 0.0 <= self.trace_sample <= 1.0,
                 f"observability.trace_sample must be in [0, 1], "
                 f"got {self.trace_sample!r}")
        _require(self.trace_sample == 0 or self.trace_dir is not None,
                 "observability.trace_sample > 0 requires observability.trace_dir")

    @classmethod
    def from_dict(cls, data: dict) -> "ObservabilitySpec":
        _check_keys(cls, data, "observability")
        return _construct(cls, dict(data), "observability")


# -- the top-level spec --------------------------------------------------------


@dataclass(frozen=True)
class ClusterSpec:
    """One deployable EMLIO cluster, declaratively."""

    name: str = "emlio"
    dataset: DatasetSpec = field(default_factory=DatasetSpec)
    pipeline: PipelineSpec = field(default_factory=PipelineSpec)
    storage: StorageSpec = field(default_factory=StorageSpec)
    receivers: ReceiverSpec = field(default_factory=ReceiverSpec)
    network: NetworkSpec = field(default_factory=NetworkSpec)
    recovery: RecoverySpec = field(default_factory=RecoverySpec)
    energy: EnergySpec = field(default_factory=EnergySpec)
    elastic: ElasticSpec = field(default_factory=ElasticSpec)
    chaos: ChaosSpec = field(default_factory=ChaosSpec)
    observability: ObservabilitySpec = field(default_factory=ObservabilitySpec)

    def __post_init__(self) -> None:
        _require(bool(self.name) and isinstance(self.name, str),
                 f"spec name must be a non-empty string, got {self.name!r}")
        _require(self.receivers.num_nodes >= self.elastic.min_members,
                 f"receivers.num_nodes ({self.receivers.num_nodes}) is below "
                 f"elastic.min_members ({self.elastic.min_members})")
        _require(not self.elastic.max_members
                 or self.receivers.num_nodes <= self.elastic.max_members,
                 f"receivers.num_nodes ({self.receivers.num_nodes}) exceeds "
                 f"elastic.max_members ({self.elastic.max_members})")
        join_events = [e for e in self.chaos.events if e.action == "join"]
        _require(not join_events or self.recovery.enabled,
                 "chaos join events need recovery.enabled = true "
                 "(elastic scale-out runs on the control plane)")

    # -- dict form -------------------------------------------------------------

    def to_dict(self) -> dict:
        """Plain nested dict (JSON/TOML-ready; tuples become lists)."""
        def plain(obj):
            if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
                return {f.name: plain(getattr(obj, f.name)) for f in fields(obj)}
            if isinstance(obj, tuple):
                return [plain(v) for v in obj]
            return obj

        return plain(self)

    @classmethod
    def from_dict(cls, data: dict) -> "ClusterSpec":
        _check_keys(cls, data, "cluster spec")
        sections = {
            "dataset": DatasetSpec,
            "pipeline": PipelineSpec,
            "storage": StorageSpec,
            "receivers": ReceiverSpec,
            "network": NetworkSpec,
            "recovery": RecoverySpec,
            "energy": EnergySpec,
            "elastic": ElasticSpec,
            "chaos": ChaosSpec,
            "observability": ObservabilitySpec,
        }
        kwargs: dict[str, Any] = {}
        if "name" in data:
            kwargs["name"] = data["name"]
        for key, section_cls in sections.items():
            if key in data:
                kwargs[key] = section_cls.from_dict(data[key])
        return _construct(cls, kwargs, "cluster spec")

    # -- JSON ------------------------------------------------------------------

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "ClusterSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as err:
            raise SpecError(f"not valid JSON: {err}") from None
        return cls.from_dict(data)

    # -- TOML ------------------------------------------------------------------

    def to_toml(self) -> str:
        """Serialize as TOML.  ``None`` values are omitted (TOML has no
        null); :meth:`from_dict` restores them as defaults, so the round
        trip is identity."""
        d = self.to_dict()
        out: list[str] = [f"name = {_toml_value(d['name'])}", ""]
        for section, sub in d.items():
            if not isinstance(sub, dict):
                continue
            # Fields holding lists of tables (storage.daemons, chaos.events)
            # serialize as [[section.field]] blocks; an empty list is
            # omitted and restored by from_dict as the default.
            tables = {
                k: sub.pop(k)
                for k in [
                    k for k, v in sub.items()
                    if isinstance(v, list) and all(isinstance(x, dict) for x in v)
                ]
            }
            body = [
                f"{k} = {_toml_value(v)}" for k, v in sub.items() if v is not None
            ]
            if body:
                out.append(f"[{section}]")
                out.extend(body)
                out.append("")
            for key, rows in tables.items():
                for row in rows:
                    out.append(f"[[{section}.{key}]]")
                    out.extend(
                        f"{k} = {_toml_value(v)}" for k, v in row.items() if v is not None
                    )
                    out.append("")
        return "\n".join(out).rstrip("\n") + "\n"

    @classmethod
    def from_toml(cls, text: str) -> "ClusterSpec":
        import tomllib

        try:
            data = tomllib.loads(text)
        except tomllib.TOMLDecodeError as err:
            raise SpecError(f"not valid TOML: {err}") from None
        return cls.from_dict(data)

    # -- files -----------------------------------------------------------------

    def to_file(self, path: str | Path) -> Path:
        """Write the spec to ``path``; format chosen by suffix (.json/.toml)."""
        path = Path(path)
        if path.suffix == ".json":
            path.write_text(self.to_json())
        elif path.suffix == ".toml":
            path.write_text(self.to_toml())
        else:
            raise SpecError(f"unsupported spec format {path.suffix!r} (use .json or .toml)")
        return path

    @classmethod
    def from_file(cls, path: str | Path) -> "ClusterSpec":
        """Load a spec from a .json or .toml file."""
        path = Path(path)
        if not path.is_file():
            raise SpecError(f"spec file not found: {path}")
        if path.suffix == ".json":
            return cls.from_json(path.read_text())
        if path.suffix == ".toml":
            return cls.from_toml(path.read_text())
        raise SpecError(f"unsupported spec format {path.suffix!r} (use .json or .toml)")


def _toml_value(v: Any) -> str:
    if isinstance(v, bool):
        return "true" if v else "false"
    if isinstance(v, (int, float)):
        return repr(v)
    if isinstance(v, str):
        return json.dumps(v)  # valid TOML basic string, escapes included
    if isinstance(v, (list, tuple)):
        return "[" + ", ".join(_toml_value(x) for x in v) + "]"
    raise SpecError(f"cannot serialize {v!r} to TOML")


__all__ = [
    "ChaosEventSpec",
    "ChaosSpec",
    "ClusterSpec",
    "DaemonSpec",
    "DatasetSpec",
    "ElasticSpec",
    "EnergySpec",
    "NetworkSpec",
    "ObservabilitySpec",
    "PipelineSpec",
    "ReceiverSpec",
    "RecoverySpec",
    "SpecError",
    "StorageSpec",
]
