"""Canonical deployment presets — one per shipped topology.

Every example and live benchmark topology has a named spec here, so CI can
dry-run-deploy all of them and scenario files can start from a known-good
base (``preset("quickstart")`` then ``dataclasses.replace``).  Specs are
frozen, so sharing the instances is safe.

None of the presets enable the ``[observability]`` section — telemetry is
an overlay, not a topology.  To trace a preset end-to-end, replace the
section::

    import dataclasses
    from repro.api.spec import ObservabilitySpec
    spec = dataclasses.replace(
        preset("quickstart"),
        observability=ObservabilitySpec(
            metrics_port=0, trace_dir="/tmp/traces", trace_sample=1.0
        ),
    )
"""

from __future__ import annotations

from repro.api.registry import Registry
from repro.api.spec import (
    ChaosEventSpec,
    ChaosSpec,
    ClusterSpec,
    DatasetSpec,
    ElasticSpec,
    EnergySpec,
    NetworkSpec,
    ObservabilitySpec,  # noqa: F401 - re-exported for the overlay recipe above
    PipelineSpec,
    ReceiverSpec,
    RecoverySpec,
    StorageSpec,
)

#: examples/quickstart.py — one daemon, one node, tiny synthetic ImageNet.
#: transport="auto": everything is co-located and unshaped, so the pair
#: upgrades itself to the shared-memory ring.
QUICKSTART = ClusterSpec(
    name="quickstart",
    dataset=DatasetSpec(kind="imagenet", n=64, records_per_shard=16, image_hw=(32, 32)),
    pipeline=PipelineSpec(batch_size=8, epochs=1, hwm=16, prefetch=2, output_hw=(32, 32)),
    network=NetworkSpec(transport="auto"),
)

#: examples/sharded_cluster.py — paper §5.2 Scenario 2: shards split across
#: two storage daemons, one compute node consuming the merged stream.
SHARDED_CLUSTER = ClusterSpec(
    name="sharded-cluster",
    dataset=DatasetSpec(
        kind="imagenet", n=96, seed=2, records_per_shard=16,
        image_hw=(32, 32), num_classes=8,
    ),
    pipeline=PipelineSpec(batch_size=8, hwm=16, output_hw=(32, 32)),
    storage=StorageSpec(num_daemons=2),
)

#: examples/geo_distributed_training.py — the WAN regime, with the energy
#: monitor attached (paper §5.1's emulated-RTT setup).
GEO_WAN = ClusterSpec(
    name="geo-wan",
    dataset=DatasetSpec(kind="imagenet", n=64, records_per_shard=16, image_hw=(32, 32)),
    pipeline=PipelineSpec(batch_size=8, streams_per_node=2, output_hw=(16, 16)),
    network=NetworkSpec(profile="wan-30ms"),
    energy=EnergySpec(enabled=True, interval_s=0.05),
)

#: examples/llm_text_loading.py — token records through the real pipeline,
#: decoded by the "tokens" codec instead of the image path.
LLM_TOKENS = ClusterSpec(
    name="llm-tokens",
    dataset=DatasetSpec(kind="tokens", n=64, context_len=512, records_per_shard=16),
    pipeline=PipelineSpec(batch_size=8, hwm=16, codec="tokens"),
)

#: The chaos suite's shape: two compute nodes, fault tolerance on, an
#: aggressive failure detector — and the drill itself lives in the spec's
#: ``[chaos]`` schedule: one node is killed mid-epoch (its undelivered
#: batches fail over to the survivor) and a fresh receiver joins later and
#: is rebalanced onto (elastic scale-out).  Deploying the preset *is*
#: running the drill; no script needed.
RECOVERY_DRILL = ClusterSpec(
    name="recovery-drill",
    # Big enough that an epoch lasts ~1 s over the shaped link — the drill
    # schedule below needs room to land *mid*-epoch.
    dataset=DatasetSpec(kind="imagenet", n=384, records_per_shard=16, image_hw=(32, 32)),
    # hwm=2 on a single stream keeps most batches *unsent* (not merely
    # undelivered) deep into the epoch, so the join's mid-epoch claim has
    # real work to move.
    pipeline=PipelineSpec(batch_size=8, epochs=2, hwm=2, streams_per_node=1,
                          output_hw=(16, 16)),
    receivers=ReceiverSpec(num_nodes=2, stall_timeout_s=20.0),
    # Emulated RTT + a narrow link stretch the epochs past the chaos
    # offsets — on bare loopback the run would finish before the drill
    # fires.
    network=NetworkSpec(rtt_ms=15.0, bandwidth_gbps=0.004),
    recovery=RecoverySpec(
        enabled=True,
        heartbeat_interval_s=0.05,
        miss_threshold=2,
        dead_threshold=5,
        hung_after_s=2.0,
    ),
    elastic=ElasticSpec(admit="auto", max_members=4),
    chaos=ChaosSpec(
        events=(
            ChaosEventSpec(at_s=0.3, action="join", target="receiver"),
            ChaosEventSpec(at_s=1.0, action="kill", target="receiver:1"),
        )
    ),
)

#: The tiered-storage quickstart: the quickstart topology served off the
#: emulated object store (5 ms per range-GET) through a plan-informed
#: hot-set cache.  Epoch 0 pays the remote latency once per planned range
#: (prefetch + misses); warm epochs serve from the cache.
STORAGE_TIERS = ClusterSpec(
    name="storage-tiers",
    dataset=DatasetSpec(kind="imagenet", n=64, records_per_shard=16, image_hw=(32, 32)),
    pipeline=PipelineSpec(batch_size=8, epochs=2, hwm=16, prefetch=2, output_hw=(32, 32)),
    storage=StorageSpec(
        backend="objectstore", latency_ms=5.0, cache_bytes=8 * 1024 * 1024
    ),
)

#: benchmarks/bench_e2e_loopback.py — the live 8 ms-RTT loopback bench.
#: verify_reads="open": the whole-shard CRC walk happens at open (paid in
#: the warmup epochs), so the measured epoch reads the already-verified
#: mapping instead of re-checksumming every record on the serve path.
#: workers=1: the preprocess pool pays for itself only with real cores to
#: spread over; on the single-vCPU bench runner the GIL interleave of a
#: wider pool just inflates per-batch wall time (measured: 1 > 2 > 4).
BENCH_LOOPBACK = ClusterSpec(
    name="bench-loopback",
    dataset=DatasetSpec(kind="imagenet", n=96, seed=1, records_per_shard=16, image_hw=(32, 32)),
    pipeline=PipelineSpec(
        batch_size=8, hwm=16, streams_per_node=2, workers=1, output_hw=(16, 16)
    ),
    storage=StorageSpec(verify_reads="open"),
    network=NetworkSpec(rtt_ms=8.0),
)

PRESETS: Registry[ClusterSpec] = Registry("preset")
for _spec in (
    QUICKSTART,
    SHARDED_CLUSTER,
    GEO_WAN,
    LLM_TOKENS,
    RECOVERY_DRILL,
    STORAGE_TIERS,
    BENCH_LOOPBACK,
):
    PRESETS.register(_spec.name, _spec)


def preset(name: str) -> ClusterSpec:
    """Look up a canonical spec by name (see :data:`PRESETS` for the list)."""
    return PRESETS.get(name)


__all__ = [
    "BENCH_LOOPBACK",
    "GEO_WAN",
    "LLM_TOKENS",
    "PRESETS",
    "QUICKSTART",
    "RECOVERY_DRILL",
    "SHARDED_CLUSTER",
    "STORAGE_TIERS",
    "preset",
]
