"""Component registries — the seam for pluggable backends.

A deployment spec names its components by string (``codec = "sjpg"``,
``profile = "wan-30ms"``, ``cpu_model = "xeon-gold-6126"``); these
registries resolve those strings to implementations at deploy time.
Third parties extend the system by registering under a new name —
nothing in :mod:`repro.core` needs to change:

    from repro.api import NETWORK_PROFILES
    from repro.net.emulation import NetworkProfile

    NETWORK_PROFILES.register("dc-interconnect", NetworkProfile(
        "dc-interconnect", rtt_s=0.25e-3, bandwidth_bps=50e9 / 8))

Four registries ship seeded:

* :data:`CODECS` — sample formats and their batch preprocessors
  (``auto`` magic-dispatch, ``image``/``sjpg``, ``raw``, ``tokens``);
* :data:`NETWORK_PROFILES` — link emulation profiles; shares its backing
  table with :data:`repro.net.emulation.PROFILES`, so registrations are
  visible to both vocabularies;
* :data:`STORAGE_BACKENDS` — storage-side access layers;
* :data:`POWER_MODELS` — named CPU/GPU power parameter sets consumed by
  the energy monitor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generic, Iterator, TypeVar

import numpy as np

T = TypeVar("T")


class RegistryError(ValueError):
    """Base class for registry lookup/registration failures."""


class DuplicateComponentError(RegistryError):
    """A name is already registered (pass ``replace=True`` to override)."""


class UnknownComponentError(RegistryError):
    """A spec names a component no one registered."""


class Registry(Generic[T]):
    """A named table of components of one kind.

    Parameters
    ----------
    kind:
        Human label used in error messages (``"codec"``, ``"network
        profile"``...).
    backing:
        Optional existing dict to use as the storage — registrations are
        then visible through the original dict too (how
        :data:`NETWORK_PROFILES` stays in sync with
        :data:`repro.net.emulation.PROFILES`).
    """

    def __init__(self, kind: str, backing: dict[str, T] | None = None) -> None:
        self.kind = kind
        self._items: dict[str, T] = backing if backing is not None else {}

    def register(self, name: str, component: T, *, replace: bool = False) -> T:
        """Add ``component`` under ``name``; duplicate names are an error."""
        if not name or not isinstance(name, str):
            raise RegistryError(f"{self.kind} name must be a non-empty string, got {name!r}")
        if name in self._items and not replace:
            raise DuplicateComponentError(
                f"{self.kind} {name!r} is already registered; "
                f"pass replace=True to override"
            )
        self._items[name] = component
        return component

    def get(self, name: str) -> T:
        """Resolve ``name``; unknown names list what *is* registered."""
        try:
            return self._items[name]
        except KeyError:
            raise UnknownComponentError(
                f"unknown {self.kind} {name!r}; registered: {self.names()}"
            ) from None

    def names(self) -> list[str]:
        """Sorted registered names."""
        return sorted(self._items)

    def __contains__(self, name: str) -> bool:
        return name in self._items

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        return len(self._items)

    def __repr__(self) -> str:
        return f"Registry({self.kind!r}, {self.names()})"


# -- codecs --------------------------------------------------------------------


@dataclass(frozen=True)
class Codec:
    """One sample format: encode/decode plus its batch preprocessor.

    ``batch_preprocess(samples, output_hw, rng)`` turns a list of encoded
    records into the batch array the pipeline emits.  ``encode``/``decode``
    may be ``None`` for dispatch-only entries (``auto``).
    """

    name: str
    encode: Callable | None
    decode: Callable | None
    batch_preprocess: Callable[[list[bytes], tuple[int, int], np.random.Generator], np.ndarray]


def _build_codecs() -> Registry[Codec]:
    from repro.codec import CODEC_TABLE
    from repro.data.text import tokens_decode, tokens_encode
    from repro.gpu.ops import decode_tokens_batch, preprocess_batch

    reg: Registry[Codec] = Registry("codec")
    # "auto" is the historical default: decode dispatches on each record's
    # magic inside the image preprocess path.
    reg.register("auto", Codec("auto", None, None, preprocess_batch))
    for name, (encode, decode) in CODEC_TABLE.items():
        reg.register(name, Codec(name, encode, decode, preprocess_batch))
    # "image" aliases the block-DCT codec under a task-oriented name.
    reg.register("image", Codec("image", *CODEC_TABLE["sjpg"], preprocess_batch))
    reg.register(
        "tokens",
        Codec(
            "tokens",
            tokens_encode,
            tokens_decode,
            # LLM path: no resize/normalize — framed-token decode + stack.
            lambda samples, _hw, _rng: decode_tokens_batch(samples),
        ),
    )
    return reg


# -- network profiles ----------------------------------------------------------


def _build_network_profiles() -> Registry:
    from repro.net.emulation import PROFILES

    # Shares the emulation module's table: registering here (or via
    # emulation.register_profile) is visible to both.
    return Registry("network profile", backing=PROFILES)


# -- storage backends ----------------------------------------------------------


def _build_storage_backends() -> Registry:
    """Storage tiers the daemon read path routes through.

    Each entry is the :class:`~repro.storage.backend.StorageBackend`
    class (or any ``factory(root) -> StorageBackend`` callable) deploy
    resolves ``storage.backend`` to.  ``localfs`` keeps the mmap fast
    path, ``nfs`` serves range reads over the framed remote-file
    protocol, ``objectstore`` emulates a range-GET store with
    configurable request latency (``storage.latency_ms``).
    """
    from repro.storage.backend import LocalFSBackend, NFSBackend
    from repro.storage.objectstore import ObjectStoreBackend

    reg = Registry("storage backend")
    reg.register("localfs", LocalFSBackend)
    reg.register("nfs", NFSBackend)
    reg.register("objectstore", ObjectStoreBackend)
    return reg


# -- power models --------------------------------------------------------------


def _build_power_models() -> Registry:
    from repro.energy.power_models import CPU_SPECS, GPU_SPECS

    reg = Registry("power model")
    for name, spec in CPU_SPECS.items():
        reg.register(name, spec)
    for name, spec in GPU_SPECS.items():
        reg.register(name, spec)
    return reg


CODECS: Registry[Codec] = _build_codecs()
NETWORK_PROFILES: Registry = _build_network_profiles()
STORAGE_BACKENDS: Registry = _build_storage_backends()
POWER_MODELS: Registry = _build_power_models()


__all__ = [
    "CODECS",
    "Codec",
    "DuplicateComponentError",
    "NETWORK_PROFILES",
    "POWER_MODELS",
    "Registry",
    "RegistryError",
    "STORAGE_BACKENDS",
    "UnknownComponentError",
]
