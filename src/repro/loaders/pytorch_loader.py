"""PyTorch-DataLoader-style baseline.

Reproduces the access pattern of ``torch.utils.data.DataLoader`` with a
map-style dataset over a mounted filesystem:

* a global shuffled index over all samples;
* ``num_workers`` threads each fetching *one sample at a time* with a
  positional read (offset/size from the shard index) — the small-random-read
  pattern that pays one storage round trip per sample;
* CPU-side decode + augment in the worker (no GPU offload);
* batches assembled in order by a collate step with a bounded prefetch
  queue (PyTorch's ``prefetch_factor``).

Over local storage this is fine; over a high-RTT mount every sample read
stalls a worker for a full RTT, which is the Figure 5 blow-up.
"""

from __future__ import annotations

import queue
import threading
from typing import Iterator

import numpy as np

from repro.gpu.ops import preprocess_batch  # executed on the CPU in this baseline
from repro.loaders.base import LoaderStats, epoch_sample_order
from repro.storage.localfs import LocalStorage
from repro.tfrecord.reader import _parse_record
from repro.tfrecord.sharder import ShardedDataset, unpack_example

_END = object()


class PyTorchStyleLoader:
    """Multi-worker per-sample loader with CPU preprocessing."""

    def __init__(
        self,
        dataset: ShardedDataset,
        storage,
        batch_size: int = 32,
        num_workers: int = 4,
        prefetch_factor: int = 2,
        output_hw: tuple[int, int] = (64, 64),
        seed: int = 0,
        drop_last: bool = False,
    ) -> None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        self.dataset = dataset
        self.storage = storage if storage is not None else LocalStorage(dataset.root)
        self.batch_size = batch_size
        self.num_workers = num_workers
        self.prefetch_factor = prefetch_factor
        self.output_hw = output_hw
        self.seed = seed
        self.drop_last = drop_last
        self.stats = LoaderStats()

    def _fetch_sample(self, shard_ix, record: int) -> tuple[bytes, int]:
        """One positional read per sample — the baseline's defining cost."""
        entry = shard_ix.entries[record]
        frame = self.storage.read_at(shard_ix.path, entry.offset, entry.size)
        self.stats.record_read(len(frame))
        data, _next = _parse_record(memoryview(frame), 0, True)
        return unpack_example(data)

    def epoch(self, epoch_index: int = 0) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Yield preprocessed (tensors, labels) batches for one epoch."""
        order = epoch_sample_order(self.dataset, epoch_index, self.seed)
        batches = [
            order[i : i + self.batch_size]
            for i in range(0, len(order), self.batch_size)
        ]
        if self.drop_last and batches and len(batches[-1]) < self.batch_size:
            batches.pop()

        # Workers pull batch indices and emit (index, result); the consumer
        # reorders so batch order is deterministic like PyTorch's.
        task_q: queue.Queue = queue.Queue()
        done_q: queue.Queue = queue.Queue(maxsize=max(1, self.prefetch_factor) * self.num_workers)
        for i, b in enumerate(batches):
            task_q.put((i, b))
        for _ in range(self.num_workers):
            task_q.put(_END)

        rng_master = np.random.default_rng((self.seed, epoch_index, 1))
        worker_seeds = rng_master.integers(0, 2**31, size=self.num_workers)

        def worker(wid: int) -> None:
            rng = np.random.default_rng(worker_seeds[wid])
            while True:
                task = task_q.get()
                if task is _END:
                    done_q.put(_END)
                    return
                i, pairs = task
                try:
                    samples, labels = [], []
                    for shard_ix, rec in pairs:
                        s, l = self._fetch_sample(shard_ix, rec)
                        samples.append(s)
                        labels.append(l)
                    tensors = preprocess_batch(samples, self.output_hw, rng)
                    done_q.put((i, tensors, np.asarray(labels, dtype=np.int64)))
                except Exception as err:  # surface to consumer
                    done_q.put((i, err, None))

        threads = [
            threading.Thread(target=worker, args=(w,), daemon=True, name=f"pt-worker{w}")
            for w in range(self.num_workers)
        ]
        for t in threads:
            t.start()

        pending: dict[int, tuple] = {}
        next_index = 0
        finished_workers = 0
        try:
            while next_index < len(batches):
                while next_index in pending:
                    _i, tensors, labels = pending.pop(next_index)
                    if isinstance(tensors, Exception):
                        raise tensors
                    self.stats.record_batch(len(labels))
                    yield tensors, labels
                    next_index += 1
                if next_index >= len(batches):
                    break
                item = done_q.get()
                if item is _END:
                    finished_workers += 1
                    if finished_workers == self.num_workers and next_index < len(batches):
                        missing = [i for i in range(next_index, len(batches)) if i not in pending]
                        if missing:
                            raise RuntimeError(f"workers exited with batches missing: {missing[:5]}")
                    continue
                pending[item[0]] = item
        finally:
            for t in threads:
                t.join(timeout=10.0)
