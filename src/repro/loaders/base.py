"""Loader interface and shared bookkeeping.

A loader wraps a sharded TFRecord dataset behind a storage backend (local
or NFS-like) and yields preprocessed training batches for one epoch.  The
interface is intentionally identical across PyTorch-style, DALI-style, and
EMLIO so experiment code can swap pipelines with one argument.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Iterator, Protocol

import numpy as np

from repro.tfrecord.index import ShardIndex
from repro.tfrecord.sharder import ShardedDataset


@dataclass
class LoaderStats:
    """I/O accounting shared by every loader."""

    read_ops: int = 0
    bytes_read: int = 0
    batches: int = 0
    samples: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def record_read(self, nbytes: int) -> None:
        with self._lock:
            self.read_ops += 1
            self.bytes_read += nbytes

    def record_batch(self, n: int) -> None:
        with self._lock:
            self.batches += 1
            self.samples += n

    def snapshot(self) -> dict[str, int]:
        """Point-in-time copy of the counters."""
        with self._lock:
            return {
                "read_ops": self.read_ops,
                "bytes_read": self.bytes_read,
                "batches": self.batches,
                "samples": self.samples,
            }


@dataclass(frozen=True)
class EpochResult:
    """Summary of one completed epoch."""

    duration_s: float
    batches: int
    samples: int
    read_ops: int
    bytes_read: int


class Loader(Protocol):
    """Common loader protocol: iterate one epoch of (tensors, labels)."""

    def epoch(self, epoch_index: int = 0) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        ...  # pragma: no cover - protocol stub


def epoch_sample_order(
    dataset: ShardedDataset, epoch_index: int, seed: int
) -> list[tuple[ShardIndex, int]]:
    """Global shuffled order of (shard, record) pairs for one epoch.

    Baseline loaders randomize across the *whole* dataset (the access
    pattern that causes small random reads); EMLIO's planner instead
    shuffles shards and samples within shards (paper §2 technique (i)).
    """
    rng = np.random.default_rng((seed, epoch_index))
    pairs = [(ix, r) for ix in dataset.indexes for r in range(ix.num_records)]
    order = rng.permutation(len(pairs))
    return [pairs[i] for i in order]
