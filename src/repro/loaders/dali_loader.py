"""DALI-style baseline: reader threads + GPU-offloaded preprocessing.

Reproduces the "NVIDIA DALI pipeline over NFSv4" baseline (§5.1):

* a TFRecord *reader* on the compute node fetching record ranges from the
  (possibly remote) filesystem — coarser than PyTorch's per-sample reads,
  one read per batch, but every read still crosses the mount and pays RTT;
* GPU-offloaded decode/augment via the DALI-like
  :class:`~repro.gpu.pipeline.Pipeline` with prefetch depth Q;
* multiple reader threads to overlap some I/O with compute.

This is why DALI beats PyTorch at every RTT in Figure 5 yet still degrades
steeply at 10–30 ms: prefetch depth bounds how many RTTs it can hide, and
all reads still originate from the compute side.
"""

from __future__ import annotations

import queue
import threading
from typing import Iterator

import numpy as np

from repro.gpu.device import SimulatedGPU
from repro.gpu.pipeline import EndOfData, Pipeline
from repro.loaders.base import LoaderStats
from repro.tfrecord.reader import _parse_record
from repro.tfrecord.sharder import ShardedDataset, unpack_example

_END = object()


class DALIStyleLoader:
    """Batch-granular reader + asynchronous GPU preprocessing."""

    def __init__(
        self,
        dataset: ShardedDataset,
        storage,
        batch_size: int = 32,
        read_threads: int = 2,
        prefetch: int = 2,
        output_hw: tuple[int, int] = (64, 64),
        gpu: SimulatedGPU | None = None,
        seed: int = 0,
    ) -> None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if read_threads < 1:
            raise ValueError(f"read_threads must be >= 1, got {read_threads}")
        self.dataset = dataset
        self.storage = storage
        self.batch_size = batch_size
        self.read_threads = read_threads
        self.prefetch = prefetch
        self.output_hw = output_hw
        self.gpu = gpu or SimulatedGPU()
        self.seed = seed
        self.stats = LoaderStats()

    def _plan_batches(self, epoch_index: int) -> list[tuple[str, int, int, list[int]]]:
        """Batch plan: (shard path, offset, nbytes, labels) per batch.

        DALI's TFRecord reader shuffles shards and slices contiguous runs of
        B records, so each batch is one ranged read.
        """
        rng = np.random.default_rng((self.seed, epoch_index))
        shards = list(self.dataset.indexes)
        rng.shuffle(shards)
        plan = []
        for ix in shards:
            for start, offset, nbytes in ix.contiguous_runs(self.batch_size):
                labels = [e.label for e in ix.entries[start : start + self.batch_size]]
                plan.append((ix.path, offset, nbytes, labels))
        return plan

    def epoch(self, epoch_index: int = 0) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        plan = self._plan_batches(epoch_index)
        task_q: queue.Queue = queue.Queue()
        raw_q: queue.Queue = queue.Queue(maxsize=max(1, self.prefetch))
        for item in plan:
            task_q.put(item)
        for _ in range(self.read_threads):
            task_q.put(_END)

        def reader() -> None:
            while True:
                task = task_q.get()
                if task is _END:
                    raw_q.put(_END)
                    return
                path, offset, nbytes, labels = task
                try:
                    blob = self.storage.read_at(path, offset, nbytes)
                    self.stats.record_read(len(blob))
                    samples = []
                    view = memoryview(blob)
                    pos = 0
                    for _ in range(len(labels)):
                        record, pos = _parse_record(view, pos, True)
                        sample, _label = unpack_example(record)
                        samples.append(sample)
                    raw_q.put((samples, labels))
                except Exception as err:
                    raw_q.put(err)
                    return

        threads = [
            threading.Thread(target=reader, daemon=True, name=f"dali-reader{i}")
            for i in range(self.read_threads)
        ]
        for t in threads:
            t.start()

        finished = {"readers": 0}

        def source() -> tuple[list[bytes], list[int]]:
            while True:
                item = raw_q.get()
                if item is _END:
                    finished["readers"] += 1
                    if finished["readers"] == self.read_threads:
                        raise EndOfData
                    continue
                if isinstance(item, Exception):
                    raise item
                return item

        pipe = Pipeline(
            external_source=source,
            gpu=self.gpu,
            output_hw=self.output_hw,
            prefetch=self.prefetch,
            seed=self.seed + epoch_index,
        )
        pipe.warmup()
        try:
            while True:
                try:
                    tensors, labels = pipe.run()
                except EndOfData:
                    return
                self.stats.record_batch(len(labels))
                yield tensors, labels
        finally:
            pipe.teardown()
            for t in threads:
                t.join(timeout=10.0)
