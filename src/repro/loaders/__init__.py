"""Baseline data loaders the paper compares EMLIO against (§5.1).

* :class:`~repro.loaders.pytorch_loader.PyTorchStyleLoader` — the "PyTorch
  DataLoader over NFSv4" baseline: multi-worker, *per-sample* random reads
  through the (possibly remote) filesystem, CPU-side decode/augment.
* :class:`~repro.loaders.dali_loader.DALIStyleLoader` — the "NVIDIA DALI
  over NFSv4" baseline: per-batch reads with GPU-offloaded preprocessing and
  prefetch, but still issuing filesystem reads from the compute node.

Both consume the same sharded TFRecord dataset as EMLIO and emit the same
``(tensors, labels)`` batches, so every pipeline differs only in *where and
how* bytes move — which is exactly the paper's controlled variable.
"""

from repro.loaders.base import EpochResult, Loader, LoaderStats
from repro.loaders.dali_loader import DALIStyleLoader
from repro.loaders.pytorch_loader import PyTorchStyleLoader

__all__ = [
    "EpochResult",
    "Loader",
    "LoaderStats",
    "DALIStyleLoader",
    "PyTorchStyleLoader",
]
