"""CLI: regenerate paper tables.  ``python -m repro.harness [exp ...]``."""

from __future__ import annotations

import sys

from repro.harness.experiments import EXPERIMENTS, run_experiment
from repro.harness.report import render_table


def main(argv: list[str]) -> int:
    targets = argv or sorted(EXPERIMENTS)
    for exp_id in targets:
        exp = EXPERIMENTS[exp_id]
        print(f"== {exp.id}: {exp.title}")
        print(f"   paper claim: {exp.paper_claim}")
        rows = run_experiment(exp_id)
        print(render_table(rows))
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
