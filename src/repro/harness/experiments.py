"""Experiment registry: one entry per paper table/figure."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.modelsim import scenarios
from repro.modelsim.clusters import NODES


def _table1_rows() -> list[dict]:
    rows = []
    for node in NODES.values():
        rows.append(
            {
                "node": node.name,
                "cpu": node.cpu.name,
                "sockets": node.cpu.sockets,
                "tdp_w": node.cpu.tdp_w,
                "dram_gib": node.cpu.dram_gib,
                "gpu": node.gpu.name if node.gpu else "-",
                "gpus": node.gpu.count if node.gpu else 0,
                "storage": node.storage.name,
                "nic_gbps": round(node.nic_bps * 8 / 1e9, 1),
            }
        )
    return rows


def _fig11_rows() -> list[dict]:
    curves = scenarios.fig11_convergence()
    rows = []
    for loader, series in curves.items():
        losses = series["losses"]
        times = series["times"]
        rows.append(
            {
                "loader": loader,
                "epoch_s": round(series["epoch_s"], 1),
                "iters": len(losses),
                "first_loss": round(losses[0], 3),
                "final_loss": round(losses[-1], 3),
                "t_final_s": round(times[-1], 1),
            }
        )
    return rows


@dataclass(frozen=True)
class Experiment:
    """One reproducible paper artifact."""

    id: str
    title: str
    runner: Callable[[], list[dict]]
    paper_claim: str


EXPERIMENTS: dict[str, Experiment] = {
    exp.id: exp
    for exp in (
        Experiment(
            "fig1",
            "Stage breakdown (R / R+P / R+P+T) across distance regimes",
            scenarios.stage_breakdown,
            "I/O share of time+energy grows from ~15-20% locally to >90% at 30 ms RTT",
        ),
        Experiment(
            "table1",
            "Testbed node specifications",
            _table1_rows,
            "UC/TACC compute+storage node inventory",
        ),
        Experiment(
            "fig5",
            "ImageNet 10 GB: PyTorch vs DALI vs EMLIO, four regimes",
            scenarios.fig5_imagenet,
            "EMLIO flat (<5% spread); DALI/PyTorch 3-27x slower, 4-60x more energy at RTT",
        ),
        Experiment(
            "fig6",
            "COCO: DALI vs EMLIO, three RTTs",
            scenarios.fig6_coco,
            "~6x faster, ~8x less I/O energy at 30 ms",
        ),
        Experiment(
            "fig7",
            "Synthetic 2 MB, daemon concurrency 1",
            scenarios.fig7_synthetic_c1,
            "serialization overhead makes EMLIO slightly slower than DALI at 0.1-1 ms",
        ),
        Experiment(
            "fig8",
            "Synthetic 2 MB, daemon concurrency 2",
            scenarios.fig8_synthetic_c2,
            "concurrency 2 amortizes setup; EMLIO regains 2-3x throughput lead",
        ),
        Experiment(
            "fig9",
            "VGG-19 on ImageNet: DALI vs EMLIO",
            scenarios.fig9_vgg19,
            "DALI 4.6x / 15x slower at 10 / 30 ms; EMLIO flat",
        ),
        Experiment(
            "fig10",
            "Sharded 50% local + 50% remote: DALI vs EMLIO",
            scenarios.fig10_sharded,
            "EMLIO 6.4x / 18.7x faster at 10 / 30 ms; energy cut 41-46%",
        ),
        Experiment(
            "fig11",
            "Training loss vs wall-clock at 10 ms RTT",
            _fig11_rows,
            "EMLIO finishes the epoch ~7x sooner and leads in loss at every instant",
        ),
    )
}


def run_experiment(exp_id: str) -> list[dict]:
    """Run one experiment by id; returns its rows."""
    try:
        exp = EXPERIMENTS[exp_id]
    except KeyError:
        raise ValueError(f"unknown experiment {exp_id!r}; choose from {sorted(EXPERIMENTS)}") from None
    return exp.runner()
