"""Experiment harness: registry, runner, and report rendering.

``python -m repro.harness`` (or the per-figure benchmarks) regenerates every
table/figure of the paper's evaluation as text tables, plus shape checks
(EMLIO RTT-flatness, baseline monotonicity, speedup factors) that quantify
how well the reproduction matches the published trends.
"""

from repro.harness.experiments import EXPERIMENTS, run_experiment
from repro.harness.report import (
    energy_factor,
    relative_spread,
    render_table,
    speedup,
)

__all__ = [
    "EXPERIMENTS",
    "run_experiment",
    "render_table",
    "speedup",
    "energy_factor",
    "relative_spread",
]
