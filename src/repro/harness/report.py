"""Report rendering and shape metrics."""

from __future__ import annotations

from typing import Any, Sequence


def render_table(rows: Sequence[dict[str, Any]], columns: Sequence[str] | None = None) -> str:
    """Render row dicts as an aligned text table (the paper-figure output)."""
    if not rows:
        return "(no rows)"
    cols = list(columns) if columns else list(rows[0].keys())
    widths = {c: len(c) for c in cols}
    rendered: list[list[str]] = []
    for row in rows:
        line = []
        for c in cols:
            cell = row.get(c, "")
            text = f"{cell:.4g}" if isinstance(cell, float) else str(cell)
            widths[c] = max(widths[c], len(text))
            line.append(text)
        rendered.append(line)
    header = "  ".join(c.ljust(widths[c]) for c in cols)
    sep = "  ".join("-" * widths[c] for c in cols)
    body = "\n".join("  ".join(v.ljust(widths[c]) for v, c in zip(line, cols)) for line in rendered)
    return f"{header}\n{sep}\n{body}"


def _select(rows: Sequence[dict], **match: Any) -> list[dict]:
    return [r for r in rows if all(r.get(k) == v for k, v in match.items())]


def speedup(rows: Sequence[dict], baseline: str, contender: str, **match: Any) -> float:
    """duration(baseline) / duration(contender) under matching row keys."""
    base = _select(rows, loader=baseline, **match)
    cont = _select(rows, loader=contender, **match)
    if len(base) != 1 or len(cont) != 1:
        raise ValueError(
            f"speedup needs exactly one row per loader; got {len(base)} baseline, "
            f"{len(cont)} contender for {match}"
        )
    return base[0]["duration_s"] / cont[0]["duration_s"]


def energy_factor(rows: Sequence[dict], baseline: str, contender: str, **match: Any) -> float:
    """total energy(baseline) / total energy(contender)."""
    base = _select(rows, loader=baseline, **match)
    cont = _select(rows, loader=contender, **match)
    if len(base) != 1 or len(cont) != 1:
        raise ValueError(f"energy_factor needs exactly one row per loader for {match}")
    return base[0]["total_kj"] / cont[0]["total_kj"]


def relative_spread(values: Sequence[float]) -> float:
    """(max - min) / mean — the paper's ±5 % RTT-flatness metric."""
    values = list(values)
    if not values:
        raise ValueError("relative_spread of no values")
    mean = sum(values) / len(values)
    if mean == 0:
        return 0.0
    return (max(values) - min(values)) / mean
