"""Accumulator: merge per-component sample queues and interpolate holes
(Algorithm 1, line 14).

Samplers are barrier-aligned, so in the common case each tick yields one
CPU/DRAM tuple and one GPU tuple with (nearly) identical timestamps.  The
accumulator joins them on tick order, and when a sampler missed a tick it
linearly interpolates that component's fields between its neighbours so the
output time series is gapless.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class EnergySample:
    """One merged, gapless tuple: timestamp + all component fields."""

    t: float
    fields: dict[str, float] = field(default_factory=dict)
    interpolated: frozenset[str] = frozenset()


def _interpolate_series(
    ticks: list[float],
    samples: dict[int, dict[str, float]],
    field_names: list[str],
) -> tuple[list[dict[str, float]], list[set[str]]]:
    """Fill missing ticks per field by linear interpolation (edges: hold)."""
    n = len(ticks)
    out: list[dict[str, float]] = [dict() for _ in range(n)]
    flags: list[set[str]] = [set() for _ in range(n)]
    present = sorted(samples)
    if not present:
        return out, flags
    for name in field_names:
        known = [(i, samples[i][name]) for i in present if name in samples[i]]
        if not known:
            continue
        ki = 0
        for i in range(n):
            if ki < len(known) and known[ki][0] == i:
                out[i][name] = known[ki][1]
                ki += 1
                continue
            # Missing at tick i: interpolate between the neighbours.
            prev = known[ki - 1] if ki > 0 else None
            nxt = known[ki] if ki < len(known) else None
            if prev is None and nxt is None:
                continue
            if prev is None:
                value = nxt[1]
            elif nxt is None:
                value = prev[1]
            else:
                span = nxt[0] - prev[0]
                frac = (i - prev[0]) / span
                value = prev[1] + (nxt[1] - prev[1]) * frac
            out[i][name] = value
            flags[i].add(name)
    return out, flags


class Accumulator:
    """Joins component sample streams on tick index and fills holes.

    Usage: feed per-component lists of ``(t_k, fields)`` tuples (in tick
    order, possibly with missing ticks identified by timestamp), then call
    :meth:`merge` to get gapless :class:`EnergySample` tuples.
    """

    def __init__(self, tick_interval: float, tolerance: float = 0.5) -> None:
        if tick_interval <= 0:
            raise ValueError(f"tick_interval must be > 0, got {tick_interval}")
        self.tick_interval = tick_interval
        self.tolerance = tolerance  # fraction of interval for tick matching

    def _assign_ticks(
        self, streams: list[list[tuple[float, dict[str, float]]]]
    ) -> tuple[list[float], list[dict[int, dict[str, float]]]]:
        """Quantize timestamps to a common tick grid anchored at the earliest
        sample."""
        all_times = [t for stream in streams for t, _f in stream]
        if not all_times:
            return [], [dict() for _ in streams]
        t0 = min(all_times)
        max_tick = max(round((t - t0) / self.tick_interval) for t in all_times)
        ticks = [t0 + k * self.tick_interval for k in range(int(max_tick) + 1)]
        assigned: list[dict[int, dict[str, float]]] = []
        for stream in streams:
            by_tick: dict[int, dict[str, float]] = {}
            for t, fields in stream:
                k = round((t - t0) / self.tick_interval)
                # Last-writer-wins if two samples quantize to one tick.
                by_tick[int(k)] = fields
            assigned.append(by_tick)
        return ticks, assigned

    def merge(
        self, streams: list[list[tuple[float, dict[str, float]]]]
    ) -> list[EnergySample]:
        """Merge component streams into one gapless, time-sorted series."""
        ticks, assigned = self._assign_ticks(streams)
        if not ticks:
            return []
        merged_fields: list[dict[str, float]] = [dict() for _ in ticks]
        merged_flags: list[set[str]] = [set() for _ in ticks]
        for by_tick in assigned:
            names = sorted({n for f in by_tick.values() for n in f})
            filled, flags = _interpolate_series(ticks, by_tick, names)
            for i in range(len(ticks)):
                merged_fields[i].update(filled[i])
                merged_flags[i] |= flags[i]
        return [
            EnergySample(t=ticks[i], fields=merged_fields[i], interpolated=frozenset(merged_flags[i]))
            for i in range(len(ticks))
            if merged_fields[i]
        ]
