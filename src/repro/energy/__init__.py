"""EnergyMonitor: the paper's distributed energy-measurement framework (§3).

Faithful implementation of Algorithm 1:

* per-node CPU/DRAM and GPU **samplers** aligned on a threading barrier so
  every component is read at the same timestamp ``t_k``
  (:mod:`~repro.energy.sampler`);
* an **accumulator** merging per-component queues by ``t_k`` and linearly
  interpolating missed samples (:mod:`~repro.energy.accumulator`);
* a **batch writer** tagging tuples with the node id and writing them in
  batches to a time-series database (:mod:`~repro.energy.tsdb`, the
  InfluxDB substitute);
* the :class:`~repro.energy.monitor.EnergyMonitor` facade wiring it all up.

The lowest layer — reading actual power registers — is the one thing this
environment cannot do (no RAPL/NVML), so :mod:`~repro.energy.power_models`
provides RAPL-like and NVML-like sources driven by live utilization gauges
and calibrated to the paper's Table 1 hardware.
"""

from repro.energy.accumulator import Accumulator, EnergySample
from repro.energy.monitor import EnergyMonitor, EnergyReport
from repro.energy.power_models import (
    CpuRaplModel,
    CpuSpec,
    GpuNvmlModel,
    GpuSpec,
    UtilizationGauges,
)
from repro.energy.tsdb import Point, TimeSeriesDB

__all__ = [
    "Accumulator",
    "EnergySample",
    "EnergyMonitor",
    "EnergyReport",
    "CpuRaplModel",
    "CpuSpec",
    "GpuNvmlModel",
    "GpuSpec",
    "UtilizationGauges",
    "Point",
    "TimeSeriesDB",
]
