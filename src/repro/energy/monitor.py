"""EnergyMonitor facade: Algorithm 1 wired end-to-end.

Launches barrier-aligned CPU/DRAM and (optional) GPU samplers, drains their
queues through the :class:`~repro.energy.accumulator.Accumulator`, and batch-
writes node-tagged tuples into the TSDB.  Post-hoc, :meth:`query` aggregates
per-component joules over any [start, end] interval — the NTP-aligned
cross-node query pattern of paper §3.

The sampling interval defaults to the paper's 100 ms; tests use smaller
intervals to keep wall time low.
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass
from typing import Callable

from repro.energy.accumulator import Accumulator
from repro.energy.power_models import (
    BusyWindowTracker,
    CpuRaplModel,
    CpuSpec,
    GpuNvmlModel,
    GpuSpec,
    UtilizationGauges,
)
from repro.energy.sampler import CpuDramSampler, GpuSampler
from repro.energy.tsdb import Point, TimeSeriesDB
from repro.util.clock import Clock, WallClock

MEASUREMENT = "energy"


@dataclass(frozen=True)
class EnergyReport:
    """Aggregated joules per component over a queried interval."""

    cpu_j: float
    dram_j: float
    gpu_j: float
    duration_s: float
    samples: int
    interpolated_samples: int

    @property
    def total_j(self) -> float:
        """Sum of all component joules."""
        return self.cpu_j + self.dram_j + self.gpu_j

    def as_dict(self) -> dict[str, float]:
        return {
            "cpu_j": self.cpu_j,
            "dram_j": self.dram_j,
            "gpu_j": self.gpu_j,
            "total_j": self.total_j,
            "duration_s": self.duration_s,
        }


class EnergyMonitor:
    """Per-node monitor: samplers + accumulator + batch writer (Algorithm 1).

    Parameters
    ----------
    node_id:
        Tag written on every point (cross-node TSDB correlation).
    cpu_spec / gpu_spec:
        Hardware parameters; ``gpu_spec=None`` models a storage node without
        a GPU (the barrier then spans a single sampler, per Algorithm 1's
        "1 + [hasGPU] threads").
    interval:
        Sampling period δ (paper: 0.1 s).
    tsdb:
        Destination database; pass a shared instance to model the central
        TSDB, or per-node instances for local TSDBs.
    batch_size:
        Batch Writer flush threshold N.
    """

    def __init__(
        self,
        node_id: str,
        cpu_spec: CpuSpec | None = None,
        gpu_spec: GpuSpec | None = None,
        interval: float = 0.1,
        tsdb: TimeSeriesDB | None = None,
        clock: Clock | None = None,
        batch_size: int = 32,
        sleep: Callable[[float], None] | None = None,
        cpu_drop_hook: Callable[[int], bool] | None = None,
        gpu_drop_hook: Callable[[int], bool] | None = None,
    ) -> None:
        self.node_id = node_id
        self.interval = interval
        self.tsdb = tsdb if tsdb is not None else TimeSeriesDB()
        self.clock = clock or WallClock()
        self.batch_size = batch_size
        self.gauges = UtilizationGauges()
        self.cpu_spec = cpu_spec or CpuSpec()
        self.gpu_spec = gpu_spec
        self.rapl = CpuRaplModel(self.cpu_spec, self.gauges)
        self.nvml = GpuNvmlModel(gpu_spec, self.gauges) if gpu_spec else None
        self._sleep = sleep or (lambda s: threading.Event().wait(s))

        # Busy-time trackers pipeline stages report into.
        self.cpu_tracker = BusyWindowTracker(self.gauges, "cpu", lanes=1)
        self.mem_tracker = BusyWindowTracker(self.gauges, "mem", lanes=1)
        self.gpu_tracker = BusyWindowTracker(self.gauges, "gpu", lanes=1)

        n_samplers = 1 + (1 if self.nvml else 0)
        self._barrier = threading.Barrier(n_samplers)
        self._cpu_q: queue.Queue = queue.Queue()
        self._gpu_q: queue.Queue = queue.Queue()
        self._cpu_sampler = CpuDramSampler(
            self.rapl,
            self._sleep,
            barrier=self._barrier,
            out=self._cpu_q,
            interval=interval,
            clock=self.clock,
            drop_hook=cpu_drop_hook,
        )
        self._gpu_sampler = (
            GpuSampler(
                self.nvml,
                self._sleep,
                barrier=self._barrier,
                out=self._gpu_q,
                interval=interval,
                clock=self.clock,
                drop_hook=gpu_drop_hook,
            )
            if self.nvml
            else None
        )
        self._flusher_stop = threading.Event()
        self._flusher = threading.Thread(
            target=self._flush_trackers, daemon=True, name="gauge-flusher"
        )
        self._running = False

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> None:
        if self._running:
            raise RuntimeError("monitor already started")
        self._running = True
        self._cpu_sampler.start()
        if self._gpu_sampler:
            self._gpu_sampler.start()
        self._flusher.start()

    def _flush_trackers(self) -> None:
        while not self._flusher_stop.is_set():
            self._sleep(self.interval)
            self.cpu_tracker.flush(self.interval)
            self.mem_tracker.flush(self.interval)
            self.gpu_tracker.flush(self.interval)

    def stop(self) -> None:
        """Stop samplers, merge + interpolate, batch-write to the TSDB."""
        if not self._running:
            return
        self._running = False
        self._cpu_sampler.stop()
        if self._gpu_sampler:
            self._gpu_sampler.stop()
        self._barrier.abort()  # release anyone still waiting
        self._cpu_sampler.join()
        if self._gpu_sampler:
            self._gpu_sampler.join()
        self._flusher_stop.set()
        self._flusher.join(timeout=10.0)

        streams = [self._drain(self._cpu_q)]
        if self._gpu_sampler:
            streams.append(self._drain(self._gpu_q))
        acc = Accumulator(tick_interval=self.interval)
        merged = acc.merge(streams)

        # Batch Writer: flush in batches of N, tagged with the node id.
        batch: list[Point] = []
        self._interpolated = 0
        for s in merged:
            if s.interpolated:
                self._interpolated += 1
            batch.append(
                Point.make(
                    MEASUREMENT,
                    s.t,
                    tags={"node_id": self.node_id},
                    fields=s.fields,
                )
            )
            if len(batch) >= self.batch_size:
                self.tsdb.write_points(batch)
                batch = []
        if batch:
            self.tsdb.write_points(batch)

    @staticmethod
    def _drain(q: queue.Queue) -> list[tuple[float, dict[str, float]]]:
        out = []
        while True:
            try:
                item = q.get_nowait()
            except queue.Empty:
                return out
            if item is not None:
                out.append(item)

    def __enter__(self) -> "EnergyMonitor":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- queries ---------------------------------------------------------------

    def query(self, start: float = float("-inf"), end: float = float("inf")) -> EnergyReport:
        """Aggregate this node's energy over [start, end]."""
        report = query_node(self.tsdb, self.node_id, start, end)
        return EnergyReport(
            cpu_j=report.cpu_j,
            dram_j=report.dram_j,
            gpu_j=report.gpu_j,
            duration_s=report.duration_s,
            samples=report.samples,
            interpolated_samples=getattr(self, "_interpolated", 0),
        )


def query_node(
    tsdb: TimeSeriesDB, node_id: str, start: float = float("-inf"), end: float = float("inf")
) -> EnergyReport:
    """Aggregate one node's joules from any TSDB (local or central)."""
    points = tsdb.query(MEASUREMENT, start, end, tags={"node_id": node_id})
    cpu = dram = gpu = 0.0
    t_min, t_max = float("inf"), float("-inf")
    for p in points:
        f = p.field_dict()
        cpu += f.get("cpu_energy", 0.0)
        dram += f.get("memory_energy", 0.0)
        gpu += f.get("gpu_energy", 0.0)
        t_min = min(t_min, p.time)
        t_max = max(t_max, p.time)
    duration = (t_max - t_min) if points else 0.0
    return EnergyReport(
        cpu_j=cpu,
        dram_j=dram,
        gpu_j=gpu,
        duration_s=duration,
        samples=len(points),
        interpolated_samples=0,
    )
