"""RAPL-like and NVML-like power sources driven by utilization gauges.

The paper reads CPU package / DRAM energy via ``perf stat`` (Intel RAPL)
and GPU power via NVML.  Here those registers are modeled: components of
the live pipeline report their activity to :class:`UtilizationGauges`, and
the models convert utilization into watts with the standard affine model

    P(u) = P_idle + (P_max - P_idle) * u

which is a good first-order fit for both Xeon package power and GPU board
power.  Constants default to the paper's Table 1 hardware (dual Xeon Gold
6126, Quadro RTX 6000) so absolute joules land in the right regime.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass


@dataclass(frozen=True)
class CpuSpec:
    """CPU package + DRAM power parameters for one node."""

    name: str = "xeon-gold-6126"
    sockets: int = 2
    tdp_w: float = 125.0  # per socket
    idle_frac: float = 0.30  # idle power as fraction of TDP
    dram_gib: int = 192
    dram_idle_w: float = 6.0  # whole-node DRAM background
    dram_active_w: float = 18.0  # additional at full memory pressure

    @property
    def idle_w(self) -> float:
        """Idle package power in watts."""
        return self.sockets * self.tdp_w * self.idle_frac

    @property
    def max_w(self) -> float:
        """Maximum package power in watts."""
        return self.sockets * self.tdp_w


@dataclass(frozen=True)
class GpuSpec:
    """GPU board power parameters."""

    name: str = "quadro-rtx-6000"
    count: int = 1
    idle_w: float = 25.0  # per board
    max_w: float = 260.0  # per board


#: Named hardware parameter sets, the backing tables for the power-model
#: registry (:data:`repro.api.registry.POWER_MODELS`).  The defaults are
#: the paper's Table 1 testbed; the others bracket it so specs can model
#: lighter edge boxes and denser trainer nodes without new code.
CPU_SPECS: dict[str, CpuSpec] = {
    "xeon-gold-6126": CpuSpec(),
    "epyc-7763": CpuSpec(
        name="epyc-7763", sockets=2, tdp_w=280.0, idle_frac=0.25,
        dram_gib=512, dram_idle_w=10.0, dram_active_w=30.0,
    ),
    "edge-8c": CpuSpec(
        name="edge-8c", sockets=1, tdp_w=45.0, idle_frac=0.20,
        dram_gib=32, dram_idle_w=2.0, dram_active_w=6.0,
    ),
}

GPU_SPECS: dict[str, GpuSpec] = {
    "quadro-rtx-6000": GpuSpec(),
    "a100-sxm": GpuSpec(name="a100-sxm", count=1, idle_w=50.0, max_w=400.0),
    "t4": GpuSpec(name="t4", count=1, idle_w=10.0, max_w=70.0),
}


class UtilizationGauges:
    """Thread-safe utilization gauges in [0, 1] per component.

    The live pipeline sets these (``set_util``) or integrates busy time
    (``add_busy`` against a wall-clock window).  Samplers only read.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._util: dict[str, float] = {"cpu": 0.0, "mem": 0.0, "gpu": 0.0}

    def set_util(self, component: str, value: float) -> None:
        if not 0.0 <= value <= 1.0:
            raise ValueError(f"utilization must be in [0,1], got {value}")
        with self._lock:
            self._util[component] = value

    def get_util(self, component: str) -> float:
        with self._lock:
            return self._util.get(component, 0.0)

    def snapshot(self) -> dict[str, float]:
        """Point-in-time copy of the counters."""
        with self._lock:
            return dict(self._util)


class CpuRaplModel:
    """RAPL substitute: returns package and DRAM energy over an interval.

    Mirrors ``perf stat -e power/energy-pkg/,power/energy-ram/ sleep δ``:
    one call integrates power over ``delta`` seconds at current utilization.
    """

    def __init__(self, spec: CpuSpec, gauges: UtilizationGauges) -> None:
        self.spec = spec
        self.gauges = gauges

    def package_power_w(self) -> float:
        u = self.gauges.get_util("cpu")
        return self.spec.idle_w + (self.spec.max_w - self.spec.idle_w) * u

    def dram_power_w(self) -> float:
        u = self.gauges.get_util("mem")
        return self.spec.dram_idle_w + self.spec.dram_active_w * u

    def read_energy(self, delta: float) -> tuple[float, float]:
        """Return ``(E_pkg, E_ram)`` joules consumed over ``delta`` seconds."""
        if delta < 0:
            raise ValueError(f"delta must be >= 0, got {delta}")
        return self.package_power_w() * delta, self.dram_power_w() * delta


class GpuNvmlModel:
    """NVML substitute: per-GPU power readings.

    Mirrors Algorithm 1 line 11: read each board's power ``P_i``, then the
    sampler computes ``E_gpu = Σ_i P_i · δ``.
    """

    def __init__(self, spec: GpuSpec, gauges: UtilizationGauges) -> None:
        self.spec = spec
        self.gauges = gauges

    @property
    def device_count(self) -> int:
        """Number of GPU boards."""
        return self.spec.count

    def power_w(self, device: int = 0) -> float:
        if not 0 <= device < self.spec.count:
            raise IndexError(f"no GPU device {device} (count={self.spec.count})")
        u = self.gauges.get_util("gpu")
        return self.spec.idle_w + (self.spec.max_w - self.spec.idle_w) * u

    def total_power_w(self) -> float:
        return sum(self.power_w(i) for i in range(self.spec.count))

    def read_energy(self, delta: float) -> float:
        """Joules across all boards over ``delta`` seconds."""
        if delta < 0:
            raise ValueError(f"delta must be >= 0, got {delta}")
        return self.total_power_w() * delta


class BusyWindowTracker:
    """Integrates busy-time reports into a utilization gauge.

    Pipeline stages call ``add_busy(seconds)`` whenever they complete a unit
    of work; ``flush(window)`` converts accumulated busy time over the last
    window into a utilization in [0, 1] and resets.  The monitor flushes
    once per sampling interval.
    """

    def __init__(self, gauges: UtilizationGauges, component: str, lanes: int = 1) -> None:
        if lanes < 1:
            raise ValueError(f"lanes must be >= 1, got {lanes}")
        self.gauges = gauges
        self.component = component
        self.lanes = lanes  # parallel execution lanes (cores, SMs)
        self._busy = 0.0
        self._lock = threading.Lock()

    def add_busy(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"busy seconds must be >= 0, got {seconds}")
        with self._lock:
            self._busy += seconds

    def flush(self, window: float) -> float:
        """Convert busy time over ``window`` seconds into the gauge."""
        if window <= 0:
            raise ValueError(f"window must be > 0, got {window}")
        with self._lock:
            busy, self._busy = self._busy, 0.0
        util = min(1.0, busy / (window * self.lanes))
        self.gauges.set_util(self.component, util)
        return util
