"""Embedded time-series database — the InfluxDB substitute.

Supports exactly what EnergyMonitor needs (paper §3): tagged points with
float fields, batched writes, time-range queries filtered by tags, and
aggregation over an interval.  Points persist to a JSON-lines file so a
monitoring run can be inspected after the fact, mirroring how the paper
queries InfluxDB post-hoc with NTP-aligned start/end timestamps.
"""

from __future__ import annotations

import bisect
import json
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable


@dataclass(frozen=True)
class Point:
    """One sample: measurement name, tag set, float fields, timestamp."""

    measurement: str
    time: float
    tags: tuple[tuple[str, str], ...] = ()
    fields: tuple[tuple[str, float], ...] = ()

    @classmethod
    def make(
        cls,
        measurement: str,
        time: float,
        tags: dict[str, str] | None = None,
        fields: dict[str, float] | None = None,
    ) -> "Point":
        return cls(
            measurement=measurement,
            time=float(time),
            tags=tuple(sorted((tags or {}).items())),
            fields=tuple(sorted((fields or {}).items())),
        )

    def tag_dict(self) -> dict[str, str]:
        return dict(self.tags)

    def field_dict(self) -> dict[str, float]:
        return dict(self.fields)


class TimeSeriesDB:
    """In-memory, thread-safe TSDB with per-measurement time ordering."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        # measurement -> (sorted list of times, parallel list of points)
        self._series: dict[str, tuple[list[float], list[Point]]] = {}
        self.points_written = 0

    def write_points(self, points: Iterable[Point]) -> int:
        """Insert points (any time order); returns the number written."""
        n = 0
        with self._lock:
            for p in points:
                times, pts = self._series.setdefault(p.measurement, ([], []))
                i = bisect.bisect_right(times, p.time)
                times.insert(i, p.time)
                pts.insert(i, p)
                n += 1
            self.points_written += n
        return n

    def measurements(self) -> list[str]:
        with self._lock:
            return sorted(self._series)

    def query(
        self,
        measurement: str,
        start: float = float("-inf"),
        end: float = float("inf"),
        tags: dict[str, str] | None = None,
    ) -> list[Point]:
        """Points with ``start <= t <= end`` matching every given tag."""
        with self._lock:
            series = self._series.get(measurement)
            if series is None:
                return []
            times, pts = series
            lo = bisect.bisect_left(times, start)
            hi = bisect.bisect_right(times, end)
            selected = pts[lo:hi]
        if tags:
            wanted = set(tags.items())
            selected = [p for p in selected if wanted.issubset(set(p.tags))]
        return selected

    def sum_fields(
        self,
        measurement: str,
        start: float = float("-inf"),
        end: float = float("inf"),
        tags: dict[str, str] | None = None,
    ) -> dict[str, float]:
        """Sum every field over the interval (energy tuples are per-interval
        joules, so interval energy = plain sum)."""
        totals: dict[str, float] = {}
        for p in self.query(measurement, start, end, tags):
            for k, v in p.fields:
                totals[k] = totals.get(k, 0.0) + v
        return totals

    def distinct_tag_values(self, measurement: str, key: str) -> list[str]:
        with self._lock:
            series = self._series.get(measurement)
            pts = series[1] if series else []
            values = {p.tag_dict().get(key) for p in pts}
        return sorted(v for v in values if v is not None)

    # -- persistence -----------------------------------------------------------

    def save(self, path: str | Path) -> int:
        """Write all points as JSON lines; returns the count."""
        with self._lock:
            all_points = [p for _t, pts in self._series.values() for p in pts]
        with open(path, "w") as fh:
            for p in sorted(all_points, key=lambda p: (p.measurement, p.time)):
                fh.write(
                    json.dumps(
                        {
                            "m": p.measurement,
                            "t": p.time,
                            "tags": dict(p.tags),
                            "fields": dict(p.fields),
                        }
                    )
                    + "\n"
                )
        return len(all_points)

    @classmethod
    def load(cls, path: str | Path) -> "TimeSeriesDB":
        db = cls()
        points = []
        with open(path) as fh:
            for line in fh:
                if not line.strip():
                    continue
                obj = json.loads(line)
                points.append(
                    Point.make(obj["m"], obj["t"], tags=obj["tags"], fields=obj["fields"])
                )
        db.write_points(points)
        return db
