"""Barrier-synchronized energy samplers (Algorithm 1, lines 3–13).

Each node runs one CPU/DRAM sampler and, when a GPU is present, one GPU
sampler.  Both wait on a shared :class:`threading.Barrier` so their readings
carry the same timestamp ``t_k``, then read their power source for one
interval ``δ`` and enqueue ``(t_k, fields)`` tuples for the accumulator.

To exercise the interpolation path (Algorithm 1's "if a sampler misses its
interval"), samplers accept a ``drop_hook`` that tests use to make a sampler
skip chosen ticks.
"""

from __future__ import annotations

import queue
import threading
from typing import Callable

from repro.energy.power_models import CpuRaplModel, GpuNvmlModel
from repro.util.clock import Clock, WallClock


class SamplerThread:
    """Base sampler: barrier-align, read, enqueue; repeat until stopped."""

    def __init__(
        self,
        name: str,
        barrier: threading.Barrier,
        out: "queue.Queue[tuple[float, dict[str, float]] | None]",
        interval: float,
        clock: Clock | None = None,
        drop_hook: Callable[[int], bool] | None = None,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be > 0, got {interval}")
        self.name = name
        self.barrier = barrier
        self.out = out
        self.interval = interval
        self.clock = clock or WallClock()
        self.drop_hook = drop_hook
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True, name=name)
        self.ticks = 0

    def start(self) -> None:
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()

    def join(self, timeout: float = 10.0) -> None:
        self._thread.join(timeout=timeout)
        if self._thread.is_alive():
            raise RuntimeError(f"sampler {self.name} failed to stop")

    def _read(self, delta: float) -> dict[str, float]:  # pragma: no cover - abstract
        raise NotImplementedError

    def _run(self) -> None:
        k = 0
        while not self._stop.is_set():
            try:
                # Align all samplers on the same t_k.
                self.barrier.wait(timeout=5.0)
            except threading.BrokenBarrierError:
                return
            if self._stop.is_set():
                return
            t_k = self.clock.now()
            fields = self._read(self.interval)
            self.ticks += 1
            if self.drop_hook is None or not self.drop_hook(k):
                self.out.put((t_k, fields))
            k += 1

    def mark_done(self) -> None:
        """Push the end-of-stream sentinel for the accumulator."""
        self.out.put(None)


class CpuDramSampler(SamplerThread):
    """Reads the RAPL-like source: ``{cpu_energy, memory_energy}`` joules.

    Mirrors ``perf stat -e power/energy-pkg/,power/energy-ram/ sleep δ``:
    the read itself spans the sampling interval (it sleeps ``δ``), so the
    returned joules are the integral over [t_k, t_k + δ].
    """

    def __init__(self, rapl: CpuRaplModel, sleep: Callable[[float], None], **kw) -> None:
        super().__init__(name="cpu-dram-sampler", **kw)
        self.rapl = rapl
        self._sleep = sleep

    def _read(self, delta: float) -> dict[str, float]:
        self._sleep(delta)  # 'perf stat ... sleep δ' measures across the wait
        e_pkg, e_ram = self.rapl.read_energy(delta)
        return {"cpu_energy": e_pkg, "memory_energy": e_ram}


class GpuSampler(SamplerThread):
    """Reads per-board NVML-like power and integrates: ``{gpu_energy}``.

    Mirrors Algorithm 1 line 11: ``E_gpu = Σ_i P_i · δ / 1000`` (the paper's
    NVML returns milliwatts; our model returns watts so no /1000).
    """

    def __init__(self, nvml: GpuNvmlModel, sleep: Callable[[float], None], **kw) -> None:
        super().__init__(name="gpu-sampler", **kw)
        self.nvml = nvml
        self._sleep = sleep

    def _read(self, delta: float) -> dict[str, float]:
        total_w = sum(self.nvml.power_w(i) for i in range(self.nvml.device_count))
        self._sleep(delta)
        return {"gpu_energy": total_w * delta}
