"""Calibrated discrete-event models of the three data-loading pipelines.

The paper's evaluation runs epochs of 150–4200 wall-clock seconds on a
Chameleon testbed; this package reproduces those sweeps in virtual time on
the :mod:`repro.sim` kernel:

* :mod:`~repro.modelsim.clusters` — Table 1 node specifications (UC/TACC
  compute and storage nodes) with power/throughput parameters.
* :mod:`~repro.modelsim.components` — DES building blocks: storage devices,
  shared network links, CPU pools, GPU streams, and busy-time ledgers.
* :mod:`~repro.modelsim.energy` — converts ledger busy-time into per-node
  CPU/DRAM/GPU joules with the same affine power models the live
  EnergyMonitor uses.
* :mod:`~repro.modelsim.pipelines` — the PyTorch-style, DALI-style, and
  EMLIO pipeline models (per-sample NFS round trips vs storage-side
  streaming with HWM'd out-of-order prefetch).
* :mod:`~repro.modelsim.scenarios` — per-figure experiment drivers
  (stage breakdown, centralized, sharded, convergence).
"""

from repro.modelsim.clusters import (
    TACC_COMPUTE,
    TACC_STORAGE,
    UC_COMPUTE,
    UC_STORAGE,
    NodeSpec,
    StorageSpec,
)
from repro.modelsim.components import BusyLedger, CpuPool, GpuStream, Link, StorageDevice
from repro.modelsim.energy import NodeEnergy, integrate_node_energy
from repro.modelsim.pipelines import (
    DaliPipelineModel,
    EmlioPipelineModel,
    PipelineResult,
    PytorchPipelineModel,
    WorkloadSpec,
)

__all__ = [
    "NodeSpec",
    "StorageSpec",
    "UC_COMPUTE",
    "UC_STORAGE",
    "TACC_COMPUTE",
    "TACC_STORAGE",
    "BusyLedger",
    "CpuPool",
    "GpuStream",
    "Link",
    "StorageDevice",
    "NodeEnergy",
    "integrate_node_energy",
    "DaliPipelineModel",
    "EmlioPipelineModel",
    "PytorchPipelineModel",
    "PipelineResult",
    "WorkloadSpec",
]
