"""DES building blocks: ledgers, storage devices, links, CPU pools, GPUs.

Every component records its busy time into a :class:`BusyLedger`; after a
run, :mod:`repro.modelsim.energy` converts ledgers into joules with the same
affine power models the live EnergyMonitor uses.
"""

from __future__ import annotations

from collections import defaultdict

from repro.modelsim.clusters import StorageSpec
from repro.net.emulation import NetworkProfile
from repro.sim.core import Simulator
from repro.sim.resources import Resource


class BusyLedger:
    """Accumulates busy seconds (and bytes) per named component."""

    def __init__(self) -> None:
        self.busy_s: dict[str, float] = defaultdict(float)
        self.bytes: dict[str, float] = defaultdict(float)

    def add(self, component: str, seconds: float, nbytes: float = 0.0) -> None:
        if seconds < 0:
            raise ValueError(f"busy seconds must be >= 0, got {seconds}")
        self.busy_s[component] += seconds
        self.bytes[component] += nbytes

    def get(self, component: str) -> float:
        return self.busy_s.get(component, 0.0)


class StorageDevice:
    """A local disk: per-op latency + bandwidth, bounded queue depth."""

    def __init__(self, sim: Simulator, spec: StorageSpec, ledger: BusyLedger, name: str = "disk") -> None:
        self.sim = sim
        self.spec = spec
        self.ledger = ledger
        self.name = name
        self._slots = Resource(sim, spec.queue_depth)

    def read(self, nbytes: int, sequential: bool = True):
        """Process: one read of ``nbytes``; returns when data is in memory."""

        def _read():
            yield self._slots.request()
            try:
                service = self.spec.access_latency_s + nbytes / self.spec.seq_read_bps
                if not sequential:
                    service += self.spec.access_latency_s  # extra seek
                yield self.sim.timeout(service)
                self.ledger.add(self.name, service, nbytes)
            finally:
                self._slots.release()

        return self.sim.process(_read(), name=f"{self.name}.read")


class Link:
    """A shared network link: serialization (exclusive) + propagation
    (overlapped).

    ``transfer(nbytes)`` is a process that completes when the payload has
    been fully delivered at the far end.  Serialization time is paid under a
    mutex (the NIC), propagation (``one_way_s``) overlaps across payloads —
    so a pipelined sender keeps the wire full, while request/response
    callers pay the full RTT per exchange.
    """

    def __init__(
        self,
        sim: Simulator,
        profile: NetworkProfile,
        ledger: BusyLedger,
        name: str = "link",
        per_op_overhead_s: float = 0.0,
    ) -> None:
        self.sim = sim
        self.profile = profile
        self.ledger = ledger
        self.name = name
        self.per_op_overhead_s = per_op_overhead_s
        self._nic = Resource(sim, 1)

    def transfer(self, nbytes: float):
        def _xfer():
            yield self._nic.request()
            try:
                ser = self.profile.transfer_time(nbytes) + self.per_op_overhead_s
                if ser > 0:
                    yield self.sim.timeout(ser)
                self.ledger.add(self.name, ser, nbytes)
            finally:
                self._nic.release()
            if self.profile.one_way_s > 0:
                yield self.sim.timeout(self.profile.one_way_s)

        return self.sim.process(_xfer(), name=f"{self.name}.xfer")

    def round_trip(self, request_bytes: float, response_bytes: float):
        """Process: one request/response exchange (an NFS op)."""

        def _rt():
            yield self.transfer(request_bytes)
            yield self.transfer(response_bytes)

        return self.sim.process(_rt(), name=f"{self.name}.rt")


class CpuPool:
    """N-core CPU: ``run(seconds)`` holds one core for the duration."""

    def __init__(self, sim: Simulator, cores: int, ledger: BusyLedger, name: str = "cpu") -> None:
        if cores < 1:
            raise ValueError(f"cores must be >= 1, got {cores}")
        self.sim = sim
        self.cores = cores
        self.ledger = ledger
        self.name = name
        self._cores = Resource(sim, cores)

    def run(self, seconds: float, nbytes: float = 0.0):
        def _run():
            yield self._cores.request()
            try:
                if seconds > 0:
                    yield self.sim.timeout(seconds)
                self.ledger.add(self.name, seconds, nbytes)
            finally:
                self._cores.release()

        return self.sim.process(_run(), name=f"{self.name}.run")


class GpuStream:
    """Single-stream GPU: kernels serialize, busy time is ledgered."""

    def __init__(self, sim: Simulator, ledger: BusyLedger, name: str = "gpu") -> None:
        self.sim = sim
        self.ledger = ledger
        self.name = name
        self._stream = Resource(sim, 1)

    def run(self, seconds: float):
        def _run():
            yield self._stream.request()
            try:
                if seconds > 0:
                    yield self.sim.timeout(seconds)
                self.ledger.add(self.name, seconds)
            finally:
                self._stream.release()

        return self.sim.process(_run(), name=f"{self.name}.kernel")
