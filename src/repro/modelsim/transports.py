"""Heterogeneous transport models (paper §6 future work: "evaluating
heterogeneous transports — such as RDMA and NVMe-over-Fabric — to further
reduce I/O latency and energy").

A :class:`TransportSpec` captures what distinguishes transports at the
level our pipeline models care about:

* ``per_op_overhead_s`` — software stack cost per operation (TCP/kernel
  ~20 µs; RDMA kernel-bypass ~2 µs; NVMe-oF ~5 µs);
* ``cpu_s_per_mb`` — host CPU burned per MB moved (TCP copies + interrupts;
  RDMA zero-copy ≈ 0);
* ``effective_bandwidth`` — protocol efficiency on the same wire.

``apply_to_profile`` derives the shaped link; ``transport_sweep`` runs the
EMLIO model across transports — the §6 experiment the authors left open.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.modelsim.pipelines import CostParams, DEFAULT_COSTS, WorkloadSpec, make_model
from repro.net.emulation import NetworkProfile


@dataclass(frozen=True)
class TransportSpec:
    """One transport's cost profile."""

    name: str
    per_op_overhead_s: float
    cpu_s_per_mb: float
    bandwidth_efficiency: float  # fraction of line rate achieved

    def __post_init__(self) -> None:
        if not 0.0 < self.bandwidth_efficiency <= 1.0:
            raise ValueError(
                f"bandwidth_efficiency must be in (0,1], got {self.bandwidth_efficiency}"
            )
        if self.per_op_overhead_s < 0 or self.cpu_s_per_mb < 0:
            raise ValueError("overheads must be >= 0")

    def apply_to_profile(self, profile: NetworkProfile) -> NetworkProfile:
        return NetworkProfile(
            name=f"{profile.name}+{self.name}",
            rtt_s=profile.rtt_s,
            bandwidth_bps=profile.bandwidth_bps * self.bandwidth_efficiency,
        )

    def apply_to_costs(self, costs: CostParams = DEFAULT_COSTS) -> CostParams:
        # Serialization/deserialization absorb the per-MB CPU tax of the
        # transport (copies, checksums, interrupts).
        return replace(
            costs,
            serialize_s_per_mb=costs.serialize_s_per_mb + self.cpu_s_per_mb,
            deserialize_s_per_mb=costs.deserialize_s_per_mb + self.cpu_s_per_mb,
        )


TCP = TransportSpec("tcp", per_op_overhead_s=20e-6, cpu_s_per_mb=0.50e-3, bandwidth_efficiency=0.92)
RDMA = TransportSpec("rdma", per_op_overhead_s=2e-6, cpu_s_per_mb=0.02e-3, bandwidth_efficiency=0.97)
NVME_OF = TransportSpec("nvme-of", per_op_overhead_s=5e-6, cpu_s_per_mb=0.08e-3, bandwidth_efficiency=0.95)

TRANSPORTS = {t.name: t for t in (TCP, RDMA, NVME_OF)}


def transport_sweep(
    workload: WorkloadSpec,
    profile: NetworkProfile,
    transports: tuple[TransportSpec, ...] = (TCP, NVME_OF, RDMA),
    loader: str = "emlio",
    **kw,
) -> list[dict]:
    """Run the given loader model under each transport; return table rows."""
    rows = []
    for t in transports:
        result = make_model(
            loader,
            workload,
            t.apply_to_profile(profile),
            costs=t.apply_to_costs(),
            **kw,
        ).run()
        rows.append(
            {
                "transport": t.name,
                "duration_s": round(result.duration_s, 2),
                "cpu_kj": round(
                    (result.compute_energy.cpu_j + result.storage_energy.cpu_j) / 1e3, 3
                ),
                "total_kj": round(result.total_energy_j / 1e3, 3),
            }
        )
    return rows
