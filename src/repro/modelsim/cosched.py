"""Co-scheduling data loading with DDP gradient synchronization (paper §6
future work: "co-scheduling data loading with DDP gradient synchronization
for cross-layer energy optimization").

Mechanism: in a DDP step, the allreduce occupies the *network*; data
loading also wants the network.  Naive operation runs them uncoordinated —
prefetch traffic and gradient traffic collide, and neither the NIC nor the
CPU idles long enough to drop to low power.  Co-scheduling interleaves
them: prefetch transfers yield to the allreduce window and batch their own
traffic into the compute phase, which (a) removes the contention stall and
(b) consolidates idle periods.

The model extends the Fig. 10 sharded scenario: per train step, a sync
window of ``sync_s`` contends with loader traffic.  Uncoordinated, each
batch pays an expected contention penalty; co-scheduled, sync overlaps the
backward pass and prefetch defers, leaving only the non-overlappable
residue.
"""

from __future__ import annotations

from repro.modelsim.pipelines import WorkloadSpec, make_model
from repro.net.emulation import NetworkProfile
from repro.train.ddp import allreduce_cost_s
from repro.train.models import ModelProfile, RESNET50_PROFILE

# Fractions calibrated to the usual DDP overlap measurements: gradient
# bucketing lets ~90 % of the allreduce hide under backward; without
# co-scheduling, loader/sync contention exposes ~half the sync cost and
# stretches loader transfers by the same amount.
OVERLAPPED_RESIDUE = 0.10
UNCOORDINATED_EXPOSURE = 0.50


def cosched_comparison(
    workload: WorkloadSpec,
    profile: NetworkProfile,
    num_nodes: int = 2,
    model: ModelProfile = RESNET50_PROFILE,
    loader: str = "emlio",
) -> list[dict]:
    """Sharded-scenario epoch with vs without loader/sync co-scheduling."""
    sync_s = allreduce_cost_s(model.param_bytes, num_nodes, profile)
    variants = [
        ("uncoordinated", UNCOORDINATED_EXPOSURE * sync_s * 2.0),
        ("cosched", OVERLAPPED_RESIDUE * sync_s),
    ]
    rows = []
    for name, residue in variants:
        result = make_model(
            loader,
            workload,
            profile,
            model=model,
            local_fraction=0.5,
            ddp_sync_s=residue,
        ).run()
        rows.append(
            {
                "schedule": name,
                "rtt_ms": profile.rtt_s * 1e3,
                "sync_residue_ms": round(residue * 1e3, 2),
                "duration_s": round(result.duration_s, 1),
                "total_kj": round(result.total_energy_j / 1e3, 2),
            }
        )
    return rows
