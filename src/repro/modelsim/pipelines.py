"""DES models of the three data-loading pipelines at paper scale.

Each model reproduces the *mechanism* that determines its pipeline's RTT
sensitivity:

* **PyTorch-style** — each DataLoader worker fetches the B samples of its
  batch *sequentially*, and every sample costs ``ops_per_sample`` NFS round
  trips (lookup/open/read/close); decode runs on compute-node cores; the
  consumer thread pays a collate cost serialized with training.  Epoch time
  therefore grows ~ ``samples x ops x RTT / workers``.
* **DALI-style** — reader threads fetch per-sample files with fewer ops
  (attribute caching) and decode on the GPU with prefetch depth Q; still
  every byte is pulled from the compute side, so RTT sensitivity remains
  ~ ``samples x 2 x RTT / readers``.
* **EMLIO** — the daemon reads contiguous B-record ranges *locally* on the
  storage node, serializes on storage-node cores, and streams batches over
  parallel links with HWM in-flight bounding; no compute-side request ever
  waits on storage, so RTT appears only in the pipeline fill (once per
  epoch).

All three share one GPU-resident training consumer, one workload spec, and
one energy integration, so the only controlled variable is the pipeline —
matching the paper's §5 methodology.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.modelsim.clusters import NodeSpec, UC_COMPUTE, UC_STORAGE
from repro.modelsim.components import BusyLedger, CpuPool, GpuStream, Link, StorageDevice
from repro.modelsim.energy import NodeEnergy, integrate_node_energy
from repro.net.emulation import NetworkProfile
from repro.sim.core import Simulator
from repro.sim.resources import Store
from repro.train.models import ModelProfile, RESNET50_PROFILE


@dataclass(frozen=True)
class WorkloadSpec:
    """The dataset/batch geometry of one experiment."""

    name: str
    num_samples: int
    sample_bytes: int
    mpix_per_sample: float  # decoded megapixels (drives decode cost)
    batch_size: int = 64

    def __post_init__(self) -> None:
        if self.num_samples < 1:
            raise ValueError(f"num_samples must be >= 1, got {self.num_samples}")
        if self.sample_bytes < 1:
            raise ValueError(f"sample_bytes must be >= 1, got {self.sample_bytes}")
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {self.batch_size}")

    @property
    def num_batches(self) -> int:
        """Batches per epoch (ceil of samples / batch size)."""
        return -(-self.num_samples // self.batch_size)

    @property
    def total_bytes(self) -> int:
        """Dataset bytes (samples x sample size)."""
        return self.num_samples * self.sample_bytes


# Paper workloads at evaluation scale (§5.1): a 10 GB ImageNet subset,
# COCO, and 2 MB synthetic records.
IMAGENET_10GB = WorkloadSpec(
    "imagenet-10gb", num_samples=100_000, sample_bytes=100_000, mpix_per_sample=0.15
)
COCO_10GB = WorkloadSpec(
    "coco-10gb", num_samples=50_000, sample_bytes=200_000, mpix_per_sample=0.30
)
SYNTHETIC_2MB = WorkloadSpec(
    "synthetic-2mb", num_samples=4_000, sample_bytes=2_000_000, mpix_per_sample=2.0
)


@dataclass(frozen=True)
class CostParams:
    """Host/GPU cost constants shared by the pipeline models."""

    cpu_decode_s_per_mpix: float = 7e-3  # single-core JPEG-class decode
    cpu_augment_s_per_mpix: float = 3e-3
    gpu_decode_s_per_mpix: float = 0.5e-3
    gpu_augment_s_per_mpix: float = 0.25e-3
    per_sample_loader_overhead_s: float = 0.15e-3  # Python/dispatch per sample
    collate_s_per_sample: float = 0.20e-3  # main-thread batch assembly
    serialize_s_per_mb: float = 0.35e-3  # daemon msgpack pack per MB
    deserialize_s_per_mb: float = 0.25e-3  # receiver unpack per MB
    nfs_request_bytes: int = 250
    nfs_small_response_bytes: int = 250


DEFAULT_COSTS = CostParams()


@dataclass(frozen=True)
class PipelineResult:
    """Outcome of one modeled epoch."""

    loader: str
    workload: str
    profile: str
    rtt_ms: float
    duration_s: float
    samples: int
    batches: int
    network_bytes: float
    compute_energy: NodeEnergy
    storage_energy: NodeEnergy
    stage_s: dict[str, float] = field(default_factory=dict)

    @property
    def total_energy_j(self) -> float:
        """Compute + storage node joules."""
        return self.compute_energy.total_j + self.storage_energy.total_j

    def row(self) -> dict[str, float]:
        """Flat dict for report tables."""
        return {
            "loader": self.loader,
            "workload": self.workload,
            "rtt_ms": self.rtt_ms,
            "duration_s": round(self.duration_s, 1),
            "cpu_kj": round((self.compute_energy.cpu_j + self.storage_energy.cpu_j) / 1e3, 2),
            "dram_kj": round((self.compute_energy.dram_j + self.storage_energy.dram_j) / 1e3, 2),
            "gpu_kj": round(self.compute_energy.gpu_j / 1e3, 2),
            "total_kj": round(self.total_energy_j / 1e3, 2),
        }


class _BaseModel:
    """Shared scaffolding: nodes, links, ledgers, trainer, energy."""

    loader_name = "base"

    def __init__(
        self,
        workload: WorkloadSpec,
        profile: NetworkProfile,
        model: ModelProfile = RESNET50_PROFILE,
        compute_node: NodeSpec = UC_COMPUTE,
        storage_node: NodeSpec = UC_STORAGE,
        costs: CostParams = DEFAULT_COSTS,
        train: bool = True,
        preprocess: bool = True,
        local_fraction: float = 0.0,
        ddp_sync_s: float = 0.0,
    ) -> None:
        if not 0.0 <= local_fraction <= 1.0:
            raise ValueError(f"local_fraction must be in [0,1], got {local_fraction}")
        self.workload = workload
        self.profile = profile
        self.model = model
        self.compute_node = compute_node
        self.storage_node = storage_node
        self.costs = costs
        self.train = train
        self.preprocess = preprocess
        self.local_fraction = local_fraction
        self.ddp_sync_s = ddp_sync_s

        self.sim = Simulator()
        self.compute_ledger = BusyLedger()
        self.storage_ledger = BusyLedger()
        bw = min(compute_node.nic_bps, storage_node.nic_bps)
        link_profile = NetworkProfile(profile.name, rtt_s=profile.rtt_s, bandwidth_bps=bw)
        # Full duplex: independent serialization resources per direction.
        self.uplink = Link(self.sim, link_profile, self.compute_ledger, name="net-up")
        self.downlink = Link(self.sim, link_profile, self.storage_ledger, name="net-down")
        self.remote_disk = StorageDevice(self.sim, storage_node.storage, self.storage_ledger, name="disk")
        self.local_disk = StorageDevice(self.sim, compute_node.storage, self.compute_ledger, name="disk")
        self.compute_cpu = CpuPool(self.sim, compute_node.cores, self.compute_ledger, name="cpu")
        self.storage_cpu = CpuPool(self.sim, storage_node.cores, self.storage_ledger, name="cpu")
        self.gpu = GpuStream(self.sim, self.compute_ledger, name="gpu")
        self.network_bytes = 0.0
        self._is_local = _local_picker(local_fraction)

    # -- shared subprocesses ----------------------------------------------------

    def _nfs_op(self, response_bytes: float, disk_bytes: float, sequential: bool):
        """One NFS round trip: request up, (optional disk), response down."""

        def _op():
            yield self.uplink.transfer(self.costs.nfs_request_bytes)
            if disk_bytes > 0:
                yield self.remote_disk.read(disk_bytes, sequential=sequential)
            yield self.downlink.transfer(response_bytes)
            self.network_bytes += self.costs.nfs_request_bytes + response_bytes

        return self.sim.process(_op(), name="nfs-op")

    def _fetch_sample_nfs(self, ops_per_sample: int, local: bool):
        """Fetch one sample file: metadata ops + the data read."""

        def _fetch():
            if local:
                yield self.local_disk.read(self.workload.sample_bytes, sequential=False)
                return
            for _ in range(ops_per_sample - 1):  # lookup/open/close
                yield self._nfs_op(self.costs.nfs_small_response_bytes, 0, False)
            yield self._nfs_op(self.workload.sample_bytes, self.workload.sample_bytes, False)

        return self.sim.process(_fetch(), name="fetch-sample")

    def _train_step(self, n_samples: int):
        def _step():
            if self.train:
                yield self.gpu.run(self.model.step_time(n_samples))
                if self.ddp_sync_s > 0:
                    yield self.sim.timeout(self.ddp_sync_s)

        return self.sim.process(_step(), name="train-step")

    # -- result assembly ----------------------------------------------------------

    def _result(self, duration: float, stage_s: dict[str, float] | None = None) -> PipelineResult:
        compute = integrate_node_energy(self.compute_node, self.compute_ledger, duration)
        storage = integrate_node_energy(self.storage_node, self.storage_ledger, duration)
        return PipelineResult(
            loader=self.loader_name,
            workload=self.workload.name,
            profile=self.profile.name,
            rtt_ms=self.profile.rtt_s * 1e3,
            duration_s=duration,
            samples=self.workload.num_samples,
            batches=self.workload.num_batches,
            network_bytes=self.network_bytes,
            compute_energy=compute,
            storage_energy=storage,
            stage_s=stage_s or {},
        )

    def run(self) -> PipelineResult:  # pragma: no cover - abstract
        raise NotImplementedError


def _train_busy_fraction(model: ModelProfile) -> float:
    """Training kernels occupy the stream for their wall time but draw
    sustained board power at the architecture's utilization; the ledger's
    train busy-seconds are scaled by it before energy integration."""
    return model.gpu_util


def _local_picker(fraction: float):
    """Deterministic interleaving of local/remote choices at a given ratio."""
    state = {"acc": 0.0}

    def pick() -> bool:
        state["acc"] += fraction
        if state["acc"] >= 1.0 - 1e-12:
            state["acc"] -= 1.0
            return True
        return False

    return pick


class PytorchPipelineModel(_BaseModel):
    """The PyTorch-DataLoader-over-NFS baseline model."""

    loader_name = "pytorch"

    def __init__(self, *args, num_workers: int = 4, ops_per_sample: int = 4, prefetch: int = 2, **kw) -> None:
        super().__init__(*args, **kw)
        if num_workers < 1 or ops_per_sample < 1:
            raise ValueError("num_workers and ops_per_sample must be >= 1")
        self.num_workers = num_workers
        self.ops_per_sample = ops_per_sample
        self.prefetch = prefetch

    def run(self) -> PipelineResult:
        w = self.workload
        tasks = Store(self.sim)
        done = Store(self.sim, capacity=max(1, self.prefetch) * self.num_workers)
        batch_sizes = [min(w.batch_size, w.num_samples - i) for i in range(0, w.num_samples, w.batch_size)]
        for n in batch_sizes:
            tasks.put(n)
        for _ in range(self.num_workers):
            tasks.put(None)

        decode_s = (
            w.mpix_per_sample * (self.costs.cpu_decode_s_per_mpix + self.costs.cpu_augment_s_per_mpix)
            if self.preprocess
            else 0.0
        )

        def worker():
            while True:
                n = yield tasks.get()
                if n is None:
                    yield done.put(None)
                    return
                for _ in range(n):  # sequential per-sample fetches
                    yield self._fetch_sample_nfs(self.ops_per_sample, local=self._is_local())
                    cpu_s = decode_s + self.costs.per_sample_loader_overhead_s
                    yield self.compute_cpu.run(cpu_s, nbytes=w.sample_bytes)
                yield done.put(n)

        def consumer():
            finished = 0
            while finished < self.num_workers:
                n = yield done.get()
                if n is None:
                    finished += 1
                    continue
                # Main-thread collate, serialized with the train step.
                yield self.compute_cpu.run(self.costs.collate_s_per_sample * n, nbytes=w.sample_bytes * n)
                yield self._train_step(n)

        for _ in range(self.num_workers):
            self.sim.process(worker(), name="pt-worker")
        main = self.sim.process(consumer(), name="pt-consumer")
        self.sim.run(until=main)
        duration = self.sim.now
        self._rescale_gpu_busy()
        return self._result(duration)

    def _rescale_gpu_busy(self) -> None:
        self.compute_ledger.busy_s["gpu"] *= _train_busy_fraction(self.model)


class DaliPipelineModel(_BaseModel):
    """The DALI-over-NFS baseline model: GPU decode, prefetch Q, fewer ops."""

    loader_name = "dali"

    def __init__(self, *args, read_threads: int = 4, ops_per_sample: int = 2, prefetch: int = 2, **kw) -> None:
        super().__init__(*args, **kw)
        if read_threads < 1 or ops_per_sample < 1:
            raise ValueError("read_threads and ops_per_sample must be >= 1")
        self.read_threads = read_threads
        self.ops_per_sample = ops_per_sample
        self.prefetch = prefetch

    def run(self) -> PipelineResult:
        w = self.workload
        tasks = Store(self.sim)
        raw = Store(self.sim, capacity=max(1, self.prefetch))
        ready = Store(self.sim, capacity=max(1, self.prefetch))
        batch_sizes = [min(w.batch_size, w.num_samples - i) for i in range(0, w.num_samples, w.batch_size)]
        for n in batch_sizes:
            tasks.put(n)
        for _ in range(self.read_threads):
            tasks.put(None)

        gpu_pre_s_per_sample = (
            w.mpix_per_sample * (self.costs.gpu_decode_s_per_mpix + self.costs.gpu_augment_s_per_mpix)
            if self.preprocess
            else 0.0
        )

        def reader():
            while True:
                n = yield tasks.get()
                if n is None:
                    yield raw.put(None)
                    return
                for _ in range(n):
                    yield self._fetch_sample_nfs(self.ops_per_sample, local=self._is_local())
                    yield self.compute_cpu.run(
                        self.costs.per_sample_loader_overhead_s, nbytes=w.sample_bytes
                    )
                yield raw.put(n)

        def preprocessor():
            finished = 0
            while finished < self.read_threads:
                n = yield raw.get()
                if n is None:
                    finished += 1
                    continue
                yield self.gpu.run(gpu_pre_s_per_sample * n)
                yield ready.put(n)
            yield ready.put(None)

        def consumer():
            while True:
                n = yield ready.get()
                if n is None:
                    return
                yield self._train_step(n)

        for _ in range(self.read_threads):
            self.sim.process(reader(), name="dali-reader")
        self.sim.process(preprocessor(), name="dali-preproc")
        main = self.sim.process(consumer(), name="dali-consumer")
        self.sim.run(until=main)
        duration = self.sim.now
        # Train kernels run at model utilization; preprocessing near full.
        pre_busy = gpu_pre_s_per_sample * w.num_samples
        train_busy = self.compute_ledger.busy_s["gpu"] - pre_busy
        self.compute_ledger.busy_s["gpu"] = pre_busy + max(0.0, train_busy) * _train_busy_fraction(self.model)
        return self._result(duration)


class EmlioPipelineModel(_BaseModel):
    """The EMLIO model: storage-side batching + HWM'd streaming."""

    loader_name = "emlio"

    def __init__(
        self,
        *args,
        daemon_threads: int = 1,
        streams: int = 2,
        hwm: int = 16,
        prefetch: int = 2,
        **kw,
    ) -> None:
        super().__init__(*args, **kw)
        if daemon_threads < 1 or streams < 1 or hwm < 1:
            raise ValueError("daemon_threads, streams, hwm must be >= 1")
        self.daemon_threads = daemon_threads
        self.streams = streams
        self.hwm = hwm
        self.prefetch = prefetch

    def run(self) -> PipelineResult:
        w = self.workload
        tasks = Store(self.sim)
        in_flight = Store(self.sim, capacity=self.hwm * self.streams)
        recv = Store(self.sim)
        ready = Store(self.sim, capacity=max(1, self.prefetch))
        batch_sizes = [min(w.batch_size, w.num_samples - i) for i in range(0, w.num_samples, w.batch_size)]
        for n in batch_sizes:
            tasks.put(n)
        for _ in range(self.daemon_threads):
            tasks.put(None)

        gpu_pre_s_per_sample = (
            w.mpix_per_sample * (self.costs.gpu_decode_s_per_mpix + self.costs.gpu_augment_s_per_mpix)
            if self.preprocess
            else 0.0
        )
        n_batches = len(batch_sizes)
        total_senders = self.daemon_threads * self.streams
        state = {"delivered": 0, "senders": 0}

        def sender():
            """Daemon worker: local contiguous read, serialize, stream."""
            while True:
                n = yield tasks.get()
                if n is None:
                    state["senders"] += 1
                    if state["senders"] == total_senders and state["delivered"] >= n_batches:
                        yield recv.put(None)
                    return
                batch_bytes = n * w.sample_bytes
                local = self._is_local()
                if local:
                    yield self.local_disk.read(batch_bytes, sequential=True)
                    yield self.compute_cpu.run(
                        self.costs.serialize_s_per_mb * batch_bytes / 1e6, nbytes=batch_bytes
                    )
                else:
                    yield self.remote_disk.read(batch_bytes, sequential=True)
                    yield self.storage_cpu.run(
                        self.costs.serialize_s_per_mb * batch_bytes / 1e6, nbytes=batch_bytes
                    )
                yield in_flight.put(n)  # HWM: blocks when the window is full
                self.sim.process(deliver(n, batch_bytes, local), name="emlio-deliver")

        def deliver(n, batch_bytes, local):
            if not local:
                yield self.downlink.transfer(batch_bytes)
                self.network_bytes += batch_bytes
            yield self.compute_cpu.run(
                self.costs.deserialize_s_per_mb * batch_bytes / 1e6, nbytes=batch_bytes
            )
            yield in_flight.get()  # credit returns
            state["delivered"] += 1
            yield recv.put(n)
            if state["delivered"] >= n_batches and state["senders"] >= total_senders:
                yield recv.put(None)

        def preprocessor():
            while True:
                n = yield recv.get()
                if n is None:
                    yield ready.put(None)
                    return
                yield self.gpu.run(gpu_pre_s_per_sample * n)
                yield ready.put(n)

        def consumer():
            while True:
                n = yield ready.get()
                if n is None:
                    return
                yield self._train_step(n)

        for _ in range(self.daemon_threads * self.streams):
            self.sim.process(sender(), name="emlio-sender")
        # More sender processes than tasks sentinels: add sentinels to match.
        for _ in range(self.daemon_threads * self.streams - self.daemon_threads):
            tasks.put(None)
        self.sim.process(preprocessor(), name="emlio-preproc")
        main = self.sim.process(consumer(), name="emlio-consumer")
        self.sim.run(until=main)
        duration = self.sim.now
        pre_busy = gpu_pre_s_per_sample * w.num_samples
        train_busy = self.compute_ledger.busy_s["gpu"] - pre_busy
        self.compute_ledger.busy_s["gpu"] = pre_busy + max(0.0, train_busy) * _train_busy_fraction(self.model)
        return self._result(duration)


MODELS = {
    "pytorch": PytorchPipelineModel,
    "dali": DaliPipelineModel,
    "emlio": EmlioPipelineModel,
}


def make_model(loader: str, *args, **kw) -> _BaseModel:
    """Factory over the three pipeline models."""
    try:
        cls = MODELS[loader]
    except KeyError:
        raise ValueError(f"unknown loader {loader!r}; choose from {sorted(MODELS)}") from None
    return cls(*args, **kw)
