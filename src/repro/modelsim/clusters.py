"""Table 1 node specifications and their throughput/power parameters.

The four Chameleon node types of the paper's testbed.  CPU/GPU power
parameters reuse :mod:`repro.energy.power_models` specs; storage and NIC
throughput figures are taken from the listed hardware (datasheet-level
numbers — the calibration target is the paper's measured regime, not exact
device behaviour).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.energy.power_models import CpuSpec, GpuSpec


@dataclass(frozen=True)
class StorageSpec:
    """One node's local storage device."""

    name: str
    seq_read_bps: float  # sequential bandwidth, bytes/s
    access_latency_s: float  # per-operation latency
    queue_depth: int = 8  # concurrent in-flight operations

    def __post_init__(self) -> None:
        if self.seq_read_bps <= 0:
            raise ValueError(f"seq_read_bps must be > 0, got {self.seq_read_bps}")
        if self.access_latency_s < 0:
            raise ValueError(f"access_latency_s must be >= 0, got {self.access_latency_s}")
        if self.queue_depth < 1:
            raise ValueError(f"queue_depth must be >= 1, got {self.queue_depth}")


@dataclass(frozen=True)
class NodeSpec:
    """One testbed node: CPU, optional GPU, storage, NIC."""

    name: str
    cpu: CpuSpec
    storage: StorageSpec
    nic_bps: float  # bytes/s
    gpu: GpuSpec | None = None
    cores: int = 48  # hardware threads

    @property
    def has_gpu(self) -> bool:
        """Whether this node carries a GPU."""
        return self.gpu is not None


_10GBE = 10e9 / 8

# Xeon Gold 6126 (2x 125 W); calibrated idle fraction ~0.20 so measured
# averages land in the paper's 60-75 W band during I/O-bound phases.
_XEON_6126 = CpuSpec(
    name="xeon-gold-6126", sockets=2, tdp_w=125.0, idle_frac=0.20,
    dram_gib=192, dram_idle_w=5.0, dram_active_w=16.0,
)
_XEON_E5_2670 = CpuSpec(
    name="xeon-e5-2670v3", sockets=2, tdp_w=120.0, idle_frac=0.22,
    dram_gib=128, dram_idle_w=4.0, dram_active_w=14.0,
)
_XEON_E5_2650 = CpuSpec(
    name="xeon-e5-2650v3", sockets=2, tdp_w=105.0, idle_frac=0.22,
    dram_gib=64, dram_idle_w=3.0, dram_active_w=12.0,
)

_RTX_6000 = GpuSpec(name="quadro-rtx-6000", count=1, idle_w=25.0, max_w=260.0)
_P100_X2 = GpuSpec(name="tesla-p100", count=2, idle_w=30.0, max_w=250.0)

_SAS_SSD = StorageSpec("sas-ssd-mz7km240", seq_read_bps=500e6, access_latency_s=0.1e-3)
_SATA_SSD = StorageSpec("sata-ssd-intel-dc", seq_read_bps=450e6, access_latency_s=0.1e-3)
_SATA_HDD = StorageSpec("sata-hdd-st1000", seq_read_bps=150e6, access_latency_s=8e-3, queue_depth=2)

UC_COMPUTE = NodeSpec(
    name="uc-compute-gpu_rtx_6000",
    cpu=_XEON_6126,
    gpu=_RTX_6000,
    storage=_SAS_SSD,
    nic_bps=_10GBE,
    cores=48,
)
UC_STORAGE = NodeSpec(
    name="uc-storage-compute_skylake",
    cpu=_XEON_6126,
    gpu=None,
    storage=_SAS_SSD,
    nic_bps=_10GBE,
    cores=48,
)
TACC_COMPUTE = NodeSpec(
    name="tacc-compute-gpu_p100",
    cpu=_XEON_E5_2670,
    gpu=_P100_X2,
    storage=_SATA_HDD,
    nic_bps=_10GBE,
    cores=48,
)
TACC_STORAGE = NodeSpec(
    name="tacc-storage",
    cpu=_XEON_E5_2650,
    gpu=None,
    storage=_SATA_SSD,
    nic_bps=_10GBE,
    cores=40,
)

NODES = {n.name: n for n in (UC_COMPUTE, UC_STORAGE, TACC_COMPUTE, TACC_STORAGE)}
