"""Busy-time → joules conversion for the DES testbed.

Uses the same affine power model as the live EnergyMonitor
(:mod:`repro.energy.power_models`): over a run of duration ``T`` where a
component accumulated ``B`` busy-seconds across ``L`` lanes,

    E = P_idle * T + (P_max - P_idle) * B / L

(the time-integral of ``P(u(t))`` for any utilization trajectory whose
busy-time integral is ``B`` — the affine model makes the integral exact,
not an approximation).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.modelsim.clusters import NodeSpec
from repro.modelsim.components import BusyLedger

# Effective parallel lanes for CPU-side energy: data-loading work rarely
# saturates all 48 hardware threads' power draw; 16 lanes reproduces the
# paper's measured package power under full loader load.
CPU_POWER_LANES = 16

# DRAM "busy" is modeled as bytes moved at this effective rate.
DRAM_STREAM_BPS = 20e9


@dataclass(frozen=True)
class NodeEnergy:
    """Per-node component joules over one run."""

    node: str
    duration_s: float
    cpu_j: float
    dram_j: float
    gpu_j: float

    @property
    def total_j(self) -> float:
        """Sum of all component joules."""
        return self.cpu_j + self.dram_j + self.gpu_j

    def as_dict(self) -> dict[str, float]:
        return {
            "node": self.node,
            "duration_s": self.duration_s,
            "cpu_j": self.cpu_j,
            "dram_j": self.dram_j,
            "gpu_j": self.gpu_j,
            "total_j": self.total_j,
        }


def integrate_node_energy(
    spec: NodeSpec,
    ledger: BusyLedger,
    duration_s: float,
    cpu_key: str = "cpu",
    gpu_key: str = "gpu",
    dram_bytes: float | None = None,
) -> NodeEnergy:
    """Convert one node's ledger into CPU/DRAM/GPU joules.

    ``dram_bytes`` defaults to the bytes attributed to the CPU component
    (every byte a loader touches transits DRAM at least once).
    """
    if duration_s < 0:
        raise ValueError(f"duration_s must be >= 0, got {duration_s}")
    cpu = spec.cpu
    cpu_busy = ledger.get(cpu_key)
    cpu_util_time = min(cpu_busy / CPU_POWER_LANES, duration_s) if duration_s else 0.0
    cpu_j = cpu.idle_w * duration_s + (cpu.max_w - cpu.idle_w) * cpu_util_time

    moved = ledger.bytes.get(cpu_key, 0.0) if dram_bytes is None else dram_bytes
    dram_busy = min(moved / DRAM_STREAM_BPS, duration_s) if duration_s else 0.0
    dram_j = cpu.dram_idle_w * duration_s + cpu.dram_active_w * dram_busy

    gpu_j = 0.0
    if spec.gpu is not None:
        g = spec.gpu
        gpu_busy = min(ledger.get(gpu_key), duration_s)
        gpu_j = g.count * g.idle_w * duration_s + (g.max_w - g.idle_w) * gpu_busy

    return NodeEnergy(
        node=spec.name, duration_s=duration_s, cpu_j=cpu_j, dram_j=dram_j, gpu_j=gpu_j
    )
