"""Per-figure experiment drivers over the DES pipeline models.

One function per paper experiment; each returns plain row dicts the harness
renders as the figure's table.  Absolute values come from our calibrated
testbed; the reproduction target is the *shape* (who wins, by what factor,
where the crossovers are).
"""

from __future__ import annotations

from repro.modelsim.pipelines import (
    COCO_10GB,
    IMAGENET_10GB,
    SYNTHETIC_2MB,
    PipelineResult,
    WorkloadSpec,
    make_model,
)
from repro.net.emulation import (
    LAN_0_1MS,
    LAN_1MS,
    LAN_10MS,
    LOCAL,
    WAN_30MS,
    NetworkProfile,
)
from repro.train.ddp import allreduce_cost_s
from repro.train.models import RESNET50_PROFILE, VGG19_PROFILE, ModelProfile

FOUR_REGIMES = (LOCAL, LAN_0_1MS, LAN_10MS, WAN_30MS)
THREE_REGIMES = (LAN_0_1MS, LAN_10MS, WAN_30MS)


def run_centralized(
    loader: str,
    workload: WorkloadSpec,
    profile: NetworkProfile,
    model: ModelProfile = RESNET50_PROFILE,
    **kw,
) -> PipelineResult:
    """Scenario 1: all data on one remote storage node (paper §5.1)."""
    return make_model(loader, workload, profile, model=model, **kw).run()


def stage_breakdown(
    regimes=FOUR_REGIMES, workload: WorkloadSpec = IMAGENET_10GB
) -> list[dict]:
    """Figure 1: R / R+P / R+P+T time+energy under four distance regimes.

    Measured with the baseline (PyTorch-style) loader, as in the paper's
    motivating experiment.
    """
    stages = [
        ("R", dict(preprocess=False, train=False)),
        ("R+P", dict(preprocess=True, train=False)),
        ("R+P+T", dict(preprocess=True, train=True)),
    ]
    rows = []
    for profile in regimes:
        for stage, flags in stages:
            result = make_model("pytorch", workload, profile, **flags).run()
            rows.append(
                {
                    "regime": profile.name,
                    "stage": stage,
                    "duration_s": round(result.duration_s, 1),
                    "cpu_kj": round(
                        (result.compute_energy.cpu_j + result.storage_energy.cpu_j) / 1e3, 2
                    ),
                    "dram_kj": round(
                        (result.compute_energy.dram_j + result.storage_energy.dram_j) / 1e3, 2
                    ),
                    "gpu_kj": round(result.compute_energy.gpu_j / 1e3, 2),
                }
            )
    return rows


def fig5_imagenet(regimes=FOUR_REGIMES) -> list[dict]:
    """Figure 5: PyTorch vs DALI vs EMLIO on the 10 GB ImageNet subset."""
    rows = []
    for profile in regimes:
        for loader in ("pytorch", "dali", "emlio"):
            rows.append(run_centralized(loader, IMAGENET_10GB, profile).row())
    return rows


def fig6_coco(regimes=THREE_REGIMES) -> list[dict]:
    """Figure 6: DALI vs EMLIO on COCO (PyTorch dropped, as in the paper)."""
    rows = []
    for profile in regimes:
        for loader in ("dali", "emlio"):
            rows.append(run_centralized(loader, COCO_10GB, profile).row())
    return rows


def fig7_synthetic_c1(regimes=(LAN_0_1MS, LAN_1MS, LAN_10MS, WAN_30MS)) -> list[dict]:
    """Figure 7: 2 MB synthetic records, daemon concurrency 1.

    With one serialize+send worker the per-batch serialization cost is not
    amortized, so EMLIO briefly loses to DALI at 0.1–1 ms RTT.
    """
    rows = []
    for profile in regimes:
        for loader in ("dali", "emlio"):
            kw = dict(daemon_threads=1, streams=1) if loader == "emlio" else {}
            rows.append(run_centralized(loader, SYNTHETIC_2MB, profile, **kw).row())
    return rows


def fig8_synthetic_c2(regimes=(LAN_0_1MS, LAN_1MS)) -> list[dict]:
    """Figure 8: concurrency 2 amortizes the fixed cost; EMLIO regains the
    lead at low RTT."""
    rows = []
    for profile in regimes:
        for loader in ("dali", "emlio"):
            kw = dict(daemon_threads=2, streams=2) if loader == "emlio" else {}
            rows.append(run_centralized(loader, SYNTHETIC_2MB, profile, **kw).row())
    return rows


def fig9_vgg19(regimes=THREE_REGIMES) -> list[dict]:
    """Figure 9: the ImageNet comparison repeated with VGG-19."""
    rows = []
    for profile in regimes:
        for loader in ("dali", "emlio"):
            rows.append(
                run_centralized(loader, IMAGENET_10GB, profile, model=VGG19_PROFILE).row()
            )
    return rows


def fig10_sharded(regimes=THREE_REGIMES, num_nodes: int = 2) -> list[dict]:
    """Figure 10: Scenario 2 — each node reads 50 % locally, 50 % remotely.

    Cross-node traffic goes node-to-node (no dedicated storage server):
    remote reads lose attribute caching (4 ops/sample for the DALI reader)
    and fewer reader threads survive the shared NIC; DDP gradient sync adds
    a per-batch cost that rises with RTT.  EMLIO's remote half streams from
    the peer's daemon, so only sync overhead grows.
    """
    rows = []
    for profile in regimes:
        sync_s = allreduce_cost_s(RESNET50_PROFILE.param_bytes, num_nodes, profile)
        # DDP overlaps allreduce with backward; the non-overlapped residue
        # per step is a small fraction of the full cost.
        residue = 0.1 * sync_s
        for loader in ("dali", "emlio"):
            kw: dict = dict(local_fraction=0.5, ddp_sync_s=residue)
            if loader == "dali":
                kw.update(ops_per_sample=4, read_threads=2)
            result = run_centralized(loader, IMAGENET_10GB, profile, **kw)
            row = result.row()
            row["ddp_sync_ms_per_step"] = round(residue * 1e3, 2)
            rows.append(row)
    return rows


def fig11_convergence(
    profile: NetworkProfile = LAN_10MS,
    workload: WorkloadSpec = COCO_10GB,
    iterations: int | None = None,
    seed: int = 0,
) -> dict[str, dict]:
    """Figure 11: training-loss vs wall-clock at 10 ms RTT, EMLIO vs DALI.

    The batch *timeline* comes from the DES models; the *losses* come from
    really training the numpy MLP on a class-conditional dataset (one loss
    sequence — both loaders deliver the same sample stream, the paper's
    point being that EMLIO compresses the same loss curve in time).
    """
    import numpy as np

    from repro.train.loop import Trainer
    from repro.train.models import MLPClassifier

    results = {}
    timelines = {}
    for loader in ("dali", "emlio"):
        result = make_model(loader, workload, profile).run()
        per_batch = result.duration_s / result.batches
        timelines[loader] = [per_batch * (i + 1) for i in range(result.batches)]
        results[loader] = result

    n_iter = iterations if iterations is not None else min(len(timelines["dali"]), 400)

    # Real, learnable training: class-conditional blobs through the MLP.
    # Center scale and noise are chosen so the loss falls from ~ln(C) to a
    # mid-epoch plateau rather than collapsing to zero (matching the
    # paper's 5.0 -> ~3.2 trajectory in spirit).
    rng = np.random.default_rng(seed)
    classes, dim = 8, 3 * 16 * 16
    centers = rng.normal(0, 0.35, (classes, dim))
    model = MLPClassifier(input_dim=dim, num_classes=classes, hidden=64, seed=seed)
    trainer = Trainer(model, RESNET50_PROFILE, lr=0.01)

    losses = []
    for _ in range(n_iter):
        y = rng.integers(0, classes, workload.batch_size // 4 or 1)
        x = centers[y] + rng.normal(0, 1.0, (len(y), dim))
        losses.append(
            trainer.train_step(x.reshape(len(y), 3, 16, 16).astype(np.float32), y.astype(np.int64))
        )

    out = {}
    for loader in ("dali", "emlio"):
        n_batches = results[loader].batches
        # Iteration i of n_iter lands at the proportional point of the
        # loader's batch timeline, so times[-1] == the loader's epoch end.
        times = [
            timelines[loader][min(n_batches - 1, round((i + 1) / n_iter * n_batches) - 1)]
            for i in range(n_iter)
        ]
        out[loader] = {
            "epoch_s": results[loader].duration_s,
            "times": times,
            "losses": list(losses),
        }
    return out
