"""repro — reproduction of EMLIO (Jamil, Nine, Kosar; SC 2025).

EMLIO is a service-based I/O framework that jointly minimizes data-loading
latency and I/O energy for large-scale AI training.  This package contains:

* the EMLIO system itself (:mod:`repro.core`): planner, storage-side daemon,
  compute-side receiver, and service orchestration;
* every substrate it depends on, built from scratch: TFRecord storage
  (:mod:`repro.tfrecord`), MessagePack serialization (:mod:`repro.serialize`),
  a ZeroMQ-like message transport with HWM backpressure (:mod:`repro.net`),
  an NFS-like remote filesystem (:mod:`repro.storage`), a DALI-like GPU
  preprocessing pipeline (:mod:`repro.gpu`), the distributed EnergyMonitor
  of paper §3 (:mod:`repro.energy`), and a training substrate
  (:mod:`repro.train`);
* the baseline loaders the paper compares against (:mod:`repro.loaders`);
* a discrete-event simulation testbed (:mod:`repro.sim`,
  :mod:`repro.modelsim`) that regenerates every figure at paper scale; and
* the experiment harness (:mod:`repro.harness`).

Quickstart::

    from repro.data import build_dataset
    from repro.core import EMLIOService, EMLIOConfig

    ds = build_dataset("imagenet", n=256, root="/tmp/ds")
    svc = EMLIOService(EMLIOConfig(batch_size=32), ds)
    for batch in svc.epoch():
        ...  # decoded numpy images + labels
"""

__version__ = "1.0.0"
