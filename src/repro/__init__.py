"""repro — reproduction of EMLIO (Jamil, Nine, Kosar; SC 2025).

EMLIO is a service-based I/O framework that jointly minimizes data-loading
latency and I/O energy for large-scale AI training.  This package contains:

* the EMLIO system itself (:mod:`repro.core`): planner, storage-side daemon,
  compute-side receiver, and service orchestration;
* every substrate it depends on, built from scratch: TFRecord storage
  (:mod:`repro.tfrecord`), MessagePack serialization (:mod:`repro.serialize`),
  a ZeroMQ-like message transport with HWM backpressure (:mod:`repro.net`),
  an NFS-like remote filesystem (:mod:`repro.storage`), a DALI-like GPU
  preprocessing pipeline (:mod:`repro.gpu`), the distributed EnergyMonitor
  of paper §3 (:mod:`repro.energy`), and a training substrate
  (:mod:`repro.train`);
* the baseline loaders the paper compares against (:mod:`repro.loaders`);
* a discrete-event simulation testbed (:mod:`repro.sim`,
  :mod:`repro.modelsim`) that regenerates every figure at paper scale;
* the experiment harness (:mod:`repro.harness`); and
* the declarative deployment API (:mod:`repro.api`): serializable
  :class:`~repro.api.spec.ClusterSpec` topologies, component registries,
  and the stable ``EMLIO.deploy`` facade.

Quickstart::

    from repro.api import ClusterSpec, DatasetSpec, PipelineSpec, EMLIO

    spec = ClusterSpec(
        dataset=DatasetSpec(kind="imagenet", n=256),
        pipeline=PipelineSpec(batch_size=32),
    )
    with EMLIO.deploy(spec) as deployment:
        for tensors, labels in deployment.epoch(0):
            ...  # decoded numpy images + labels

(or hand-wire :class:`~repro.core.service.EMLIOService` directly — the
facade is sugar, not a wall).
"""

__version__ = "1.0.0"
