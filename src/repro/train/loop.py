"""Training loop: Algorithm 3 lines 5–9 plus loss/time logging.

The :class:`Trainer` consumes any loader's epoch iterator (PyTorch-style,
DALI-style, or EMLIO — they share the batch interface), runs a train step
per batch on the (simulated) GPU, and records ``(wall_time, loss)`` pairs —
the series Figure 11 plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

import numpy as np

from repro.gpu.device import SimulatedGPU
from repro.train.models import MLPClassifier, ModelProfile, SGDOptimizer
from repro.util.clock import Clock, MonotonicClock
from repro.util.logging import TimestampLogger


@dataclass
class EpochLog:
    """Per-epoch training record."""

    epoch: int
    duration_s: float
    batches: int = 0
    samples: int = 0
    losses: list[float] = field(default_factory=list)
    times: list[float] = field(default_factory=list)  # wall time of each step
    data_wait_s: float = 0.0
    train_s: float = 0.0

    @property
    def final_loss(self) -> float:
        """Loss of the last step (raises when empty)."""
        if not self.losses:
            raise ValueError("epoch produced no batches")
        return self.losses[-1]

    def moving_average(self, window: int = 10) -> list[float]:
        """Paper Fig. 11's 10-iteration moving average of the loss."""
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        out = []
        acc = 0.0
        for i, loss in enumerate(self.losses):
            acc += loss
            if i >= window:
                acc -= self.losses[i - window]
            out.append(acc / min(i + 1, window))
        return out


class Trainer:
    """SGD training over any loader's batch stream."""

    def __init__(
        self,
        model: MLPClassifier,
        profile: ModelProfile,
        gpu: SimulatedGPU | None = None,
        lr: float = 0.05,
        momentum: float = 0.9,
        clock: Clock | None = None,
        logger: TimestampLogger | None = None,
    ) -> None:
        self.model = model
        self.profile = profile
        self.gpu = gpu or SimulatedGPU()
        self.optimizer = SGDOptimizer(model.params, lr=lr, momentum=momentum)
        self.clock = clock or MonotonicClock()
        self.logger = logger or TimestampLogger(name="trainer")

    def train_step(self, tensors: np.ndarray, labels: np.ndarray) -> float:
        """One fwd+bwd+update, executed as a (simulated) GPU kernel."""

        def kernel() -> float:
            loss, grads = self.model.loss_and_grads(tensors, labels)
            self.optimizer.step(grads)
            return loss

        modeled = self.profile.step_time(len(labels))
        return self.gpu.submit(kernel, modeled)

    def run_epoch(
        self,
        batches: Iterable[tuple[np.ndarray, np.ndarray]],
        epoch: int = 0,
    ) -> EpochLog:
        """Consume one epoch of batches; return the loss/time log."""
        start = self.clock.now()
        log = EpochLog(epoch=epoch, duration_s=0.0)
        self.logger.log("epoch_start", epoch=epoch)
        it: Iterator = iter(batches)
        while True:
            t0 = self.clock.now()
            try:
                tensors, labels = next(it)
            except StopIteration:
                break
            t1 = self.clock.now()
            loss = self.train_step(tensors, labels)
            t2 = self.clock.now()
            log.batches += 1
            log.samples += len(labels)
            log.losses.append(loss)
            log.times.append(t2 - start)
            log.data_wait_s += t1 - t0
            log.train_s += t2 - t1
            self.logger.log("train_step", epoch=epoch, loss=loss)
        log.duration_s = self.clock.now() - start
        self.logger.log("epoch_end", epoch=epoch)
        return log
