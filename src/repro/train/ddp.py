"""DDP gradient synchronization: real averaging + ring-allreduce cost model.

:class:`RingAllReduce` performs the actual gradient averaging across rank
replicas (so multi-rank training is numerically correct) and accounts the
time a bandwidth-optimal ring allreduce would take on the given link:

    T = 2 (N-1)/N * bytes / bandwidth  +  2 (N-1) * latency_per_step

(the standard reduce-scatter + all-gather decomposition; each of the
2(N-1) steps pays the link's one-way latency).
"""

from __future__ import annotations

import numpy as np

from repro.net.emulation import NetworkProfile


def allreduce_cost_s(nbytes: int, num_ranks: int, profile: NetworkProfile) -> float:
    """Modeled wall time of a ring allreduce of ``nbytes`` across ranks."""
    if num_ranks < 1:
        raise ValueError(f"num_ranks must be >= 1, got {num_ranks}")
    if nbytes < 0:
        raise ValueError(f"nbytes must be >= 0, got {nbytes}")
    if num_ranks == 1:
        return 0.0
    steps = 2 * (num_ranks - 1)
    bw = profile.bandwidth_bps
    transfer = 0.0 if bw == float("inf") else (2 * (num_ranks - 1) / num_ranks) * nbytes / bw
    return transfer + steps * profile.one_way_s


class RingAllReduce:
    """Average per-rank gradient lists; account modeled sync time."""

    def __init__(self, num_ranks: int, profile: NetworkProfile) -> None:
        if num_ranks < 1:
            raise ValueError(f"num_ranks must be >= 1, got {num_ranks}")
        self.num_ranks = num_ranks
        self.profile = profile
        self.sync_count = 0
        self.modeled_sync_s = 0.0

    def average(self, per_rank_grads: list[list[np.ndarray]]) -> list[np.ndarray]:
        """Return the element-wise mean of each parameter's gradients.

        ``per_rank_grads[r][p]`` is rank r's gradient for parameter p; all
        ranks must agree on shapes.
        """
        if len(per_rank_grads) != self.num_ranks:
            raise ValueError(
                f"expected {self.num_ranks} rank gradient lists, got {len(per_rank_grads)}"
            )
        first = per_rank_grads[0]
        for r, grads in enumerate(per_rank_grads[1:], start=1):
            if len(grads) != len(first):
                raise ValueError(f"rank {r} has {len(grads)} grads, rank 0 has {len(first)}")
            for p, (a, b) in enumerate(zip(first, grads)):
                if a.shape != b.shape:
                    raise ValueError(
                        f"grad {p} shape mismatch: rank0 {a.shape} vs rank{r} {b.shape}"
                    )
        averaged = [
            np.mean([per_rank_grads[r][p] for r in range(self.num_ranks)], axis=0)
            for p in range(len(first))
        ]
        nbytes = sum(g.nbytes for g in first)
        self.modeled_sync_s += allreduce_cost_s(nbytes, self.num_ranks, self.profile)
        self.sync_count += 1
        return averaged
