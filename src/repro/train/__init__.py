"""Training substrate: numpy models, DDP gradient sync, training loop.

The paper trains ResNet-50 and VGG-19 with PyTorch DDP.  Here:

* :mod:`~repro.train.models` — a real trainable numpy MLP classifier (used
  for the Fig. 11 loss-vs-wall-clock experiment) plus per-architecture
  *step-cost profiles* (ResNet-50, VGG-19) that drive the GPU time/energy
  models at paper scale;
* :mod:`~repro.train.ddp` — ring-allreduce gradient averaging across ranks
  with a cost model for synchronization time over a given link;
* :mod:`~repro.train.loop` — the epoch loop of Algorithm 3 lines 5–9:
  pull a batch, (modeled-)GPU train step, log loss against wall clock.
"""

from repro.train.ddp import RingAllReduce, allreduce_cost_s
from repro.train.loop import EpochLog, Trainer
from repro.train.models import (
    RESNET50_PROFILE,
    VGG19_PROFILE,
    MLPClassifier,
    ModelProfile,
    SGDOptimizer,
)

__all__ = [
    "RingAllReduce",
    "allreduce_cost_s",
    "EpochLog",
    "Trainer",
    "MLPClassifier",
    "ModelProfile",
    "SGDOptimizer",
    "RESNET50_PROFILE",
    "VGG19_PROFILE",
]
