"""Numpy models and architecture cost profiles.

:class:`MLPClassifier` is a real, trainable network (He-initialized two-layer
MLP with ReLU and softmax cross-entropy, fully vectorized forward/backward).
It stands in for ResNet-50 in convergence experiments: what Fig. 11 measures
is *how data-loading latency shifts the loss-vs-wall-clock curve*, which
needs a genuinely decreasing loss, not a genuine ResNet.

:class:`ModelProfile` carries the per-architecture step costs (GPU seconds
and utilization) that the cost models use to time/energy-account training at
paper scale; values approximate the paper's Quadro RTX 6000 measurements.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ModelProfile:
    """Architecture-level cost parameters for the simulated GPU."""

    name: str
    train_s_per_sample: float  # fwd+bwd GPU time per sample
    gpu_util: float  # sustained GPU utilization while training
    cpu_util: float  # host-side utilization during the train stage
    param_bytes: int  # gradient size for DDP sync cost

    def step_time(self, batch_size: int) -> float:
        return batch_size * self.train_s_per_sample


# ResNet-50: ~25.6 M params.  Calibrated to the paper's local-disk epoch
# floor: ~100k samples in ~140 s of pure training -> 1.4 ms/sample, with
# moderate sustained board power (Fig. 5 GPU energy ~26 kJ / 157 s = 167 W).
RESNET50_PROFILE = ModelProfile(
    name="resnet50",
    train_s_per_sample=1.4e-3,
    gpu_util=0.60,
    cpu_util=0.30,
    param_bytes=25_600_000 * 4,
)

# VGG-19: ~143.7 M params; near-saturating board power in the paper's
# Fig. 9 (GPU ~34.5 kJ / 141 s = 245 W) at a similar per-sample rate.
VGG19_PROFILE = ModelProfile(
    name="vgg19",
    train_s_per_sample=1.39e-3,
    gpu_util=0.93,
    cpu_util=0.35,
    param_bytes=143_700_000 * 4,
)

PROFILES = {p.name: p for p in (RESNET50_PROFILE, VGG19_PROFILE)}


class SGDOptimizer:
    """SGD with momentum over a list of parameter arrays (in-place)."""

    def __init__(self, params: list[np.ndarray], lr: float = 0.05, momentum: float = 0.9) -> None:
        if lr <= 0:
            raise ValueError(f"lr must be > 0, got {lr}")
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.params = params
        self.lr = lr
        self.momentum = momentum
        self._velocity = [np.zeros_like(p) for p in params]

    def step(self, grads: list[np.ndarray]) -> None:
        """Apply one optimizer update from ``grads``."""
        if len(grads) != len(self.params):
            raise ValueError(f"expected {len(self.params)} grads, got {len(grads)}")
        for p, g, v in zip(self.params, grads, self._velocity):
            v *= self.momentum
            v -= self.lr * g
            p += v


class MLPClassifier:
    """Two-layer MLP with ReLU hidden layer and softmax cross-entropy.

    Input: float32 NCHW tensors (flattened internally).  All math is
    vectorized numpy; backward is exact (verified against numerical
    gradients in the tests).
    """

    def __init__(self, input_dim: int, num_classes: int, hidden: int = 128, seed: int = 0) -> None:
        if input_dim < 1 or num_classes < 2 or hidden < 1:
            raise ValueError(
                f"invalid sizes: input_dim={input_dim} num_classes={num_classes} hidden={hidden}"
            )
        rng = np.random.default_rng(seed)
        self.input_dim = input_dim
        self.num_classes = num_classes
        # He initialization for the ReLU layer, Xavier-ish for the head.
        self.w1 = rng.normal(0, np.sqrt(2.0 / input_dim), (input_dim, hidden)).astype(np.float64)
        self.b1 = np.zeros(hidden)
        self.w2 = rng.normal(0, np.sqrt(1.0 / hidden), (hidden, num_classes)).astype(np.float64)
        self.b2 = np.zeros(num_classes)

    @property
    def params(self) -> list[np.ndarray]:
        """Parameter arrays, optimizer-ordered."""
        return [self.w1, self.b1, self.w2, self.b2]

    @property
    def param_bytes(self) -> int:
        """Total parameter bytes (gradient size for DDP)."""
        return sum(p.nbytes for p in self.params)

    def _flatten(self, x: np.ndarray) -> np.ndarray:
        flat = x.reshape(x.shape[0], -1).astype(np.float64)
        if flat.shape[1] != self.input_dim:
            raise ValueError(f"input dim {flat.shape[1]} != model dim {self.input_dim}")
        return flat

    def logits(self, x: np.ndarray) -> np.ndarray:
        flat = self._flatten(x)
        h = np.maximum(flat @ self.w1 + self.b1, 0.0)
        return h @ self.w2 + self.b2

    def predict(self, x: np.ndarray) -> np.ndarray:
        return np.argmax(self.logits(x), axis=1)

    def loss_and_grads(
        self, x: np.ndarray, y: np.ndarray
    ) -> tuple[float, list[np.ndarray]]:
        """Cross-entropy loss and exact gradients for one batch."""
        flat = self._flatten(x)
        n = flat.shape[0]
        if y.shape != (n,):
            raise ValueError(f"labels shape {y.shape} != ({n},)")
        pre = flat @ self.w1 + self.b1
        h = np.maximum(pre, 0.0)
        logits = h @ self.w2 + self.b2
        # Stable softmax cross-entropy.
        logits -= logits.max(axis=1, keepdims=True)
        exp = np.exp(logits)
        probs = exp / exp.sum(axis=1, keepdims=True)
        loss = float(-np.mean(np.log(probs[np.arange(n), y] + 1e-12)))

        dlogits = probs
        dlogits[np.arange(n), y] -= 1.0
        dlogits /= n
        dw2 = h.T @ dlogits
        db2 = dlogits.sum(axis=0)
        dh = dlogits @ self.w2.T
        dh[pre <= 0] = 0.0
        dw1 = flat.T @ dh
        db1 = dh.sum(axis=0)
        return loss, [dw1, db1, dw2, db2]

    def accuracy(self, x: np.ndarray, y: np.ndarray) -> float:
        return float(np.mean(self.predict(x) == y))
