"""Shared utilities: clocks, timestamp logging, rate limiting.

These are deliberately tiny, dependency-free building blocks used by every
other subsystem.  The :class:`~repro.util.clock.Clock` protocol is the seam
that lets the same pipeline code run against wall time (real sockets) or
virtual time (the discrete-event simulator in :mod:`repro.sim`).
"""

from repro.util.clock import Clock, MonotonicClock, VirtualClock, WallClock
from repro.util.logging import TimestampLogger, TimelineEvent
from repro.util.rate import TokenBucket

__all__ = [
    "Clock",
    "MonotonicClock",
    "VirtualClock",
    "WallClock",
    "TimestampLogger",
    "TimelineEvent",
    "TokenBucket",
]
