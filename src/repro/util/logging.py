"""TimestampLogger — shared event timeline (paper §4.5, *Timestamp Logging*).

Both the EMLIO sender and receiver log events (batch send, batch receipt,
epoch start/end) through one logger so the timeline can later be aligned with
the energy traces stored in the TSDB.  The logger is thread-safe and clock-
agnostic; events carry free-form key/value fields.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.util.clock import Clock, WallClock


@dataclass(frozen=True)
class TimelineEvent:
    """One logged event: ``t`` seconds, an event ``kind``, and tags/fields."""

    t: float
    kind: str
    fields: dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> str:
        """JSON object line for this event."""
        return json.dumps({"t": self.t, "kind": self.kind, **self.fields})


class TimestampLogger:
    """Append-only, thread-safe event log keyed on a shared clock.

    Parameters
    ----------
    clock:
        Time source; defaults to wall-clock.  Passing the simulator's
        :class:`~repro.util.clock.VirtualClock` gives virtual-time stamps.
    name:
        Logical component name recorded on every event (e.g. ``"daemon0"``).
    """

    def __init__(self, clock: Clock | None = None, name: str = "") -> None:
        self._clock = clock or WallClock()
        self._name = name
        self._events: list[TimelineEvent] = []
        self._lock = threading.Lock()

    @property
    def name(self) -> str:
        """Component name stamped on events."""
        return self._name

    def log(self, kind: str, **fields: Any) -> TimelineEvent:
        """Record ``kind`` at the current clock time with extra ``fields``."""
        if self._name:
            fields.setdefault("component", self._name)
        ev = TimelineEvent(t=self._clock.now(), kind=kind, fields=fields)
        with self._lock:
            self._events.append(ev)
        return ev

    def events(self, kind: str | None = None) -> list[TimelineEvent]:
        """Snapshot of logged events, optionally filtered by ``kind``."""
        with self._lock:
            evs = list(self._events)
        if kind is not None:
            evs = [e for e in evs if e.kind == kind]
        return evs

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def __iter__(self) -> Iterator[TimelineEvent]:
        return iter(self.events())

    def span(self, start_kind: str, end_kind: str) -> float:
        """Seconds between the first ``start_kind`` and last ``end_kind``.

        Raises ``ValueError`` when either endpoint is missing — a missing
        epoch-start/epoch-end marker is a harness bug worth failing loudly on.
        """
        starts = self.events(start_kind)
        ends = self.events(end_kind)
        if not starts or not ends:
            raise ValueError(f"missing events: {start_kind!r} or {end_kind!r}")
        return ends[-1].t - starts[0].t

    def merge(self, other: "TimestampLogger") -> list[TimelineEvent]:
        """Union of two timelines sorted by timestamp (cross-node alignment)."""
        return sorted(self.events() + other.events(), key=lambda e: e.t)
