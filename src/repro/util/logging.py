"""TimestampLogger — shared event timeline (paper §4.5, *Timestamp Logging*).

Both the EMLIO sender and receiver log events (batch send, batch receipt,
epoch start/end) through one logger so the timeline can later be aligned with
the energy traces stored in the TSDB.  The logger is thread-safe and clock-
agnostic; events carry free-form key/value fields.
"""

from __future__ import annotations

import collections
import json
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from repro.util.clock import Clock, WallClock

#: Default in-memory event bound.  Long-running deployments log per batch;
#: an unbounded list was the paper-stub behaviour and leaked for days.
DEFAULT_MAX_EVENTS = 65536


@dataclass(frozen=True)
class TimelineEvent:
    """One logged event: ``t`` seconds, an event ``kind``, and tags/fields."""

    t: float
    kind: str
    fields: dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> str:
        """JSON object line for this event."""
        return json.dumps({"t": self.t, "kind": self.kind, **self.fields})


class TimestampLogger:
    """Append-only, thread-safe event log keyed on a shared clock.

    Parameters
    ----------
    clock:
        Time source; defaults to wall-clock.  Passing the simulator's
        :class:`~repro.util.clock.VirtualClock` gives virtual-time stamps.
    name:
        Logical component name recorded on every event (e.g. ``"daemon0"``).
    max_events:
        In-memory ring bound: only the newest ``max_events`` events are
        retained (:data:`DEFAULT_MAX_EVENTS` by default; ``None`` keeps
        the old unbounded behaviour for short-lived tooling).  Evicted
        events are gone from :meth:`events` but were already offered to
        ``sink``, so a JSONL sink preserves the full timeline.
    sink:
        Optional ``fn(record: dict)`` called with every event as a JSONL-
        ready dict.  Wiring :attr:`repro.obs.Telemetry.event_sink` here
        routes §4.5 timelines into the same ``spans.jsonl`` stream as the
        per-batch trace spans — one file format, one aligned timeline
        (``repro.tools.trace`` ignores records without a ``"span"`` key).
    """

    def __init__(
        self,
        clock: Clock | None = None,
        name: str = "",
        max_events: int | None = DEFAULT_MAX_EVENTS,
        sink: Callable[[dict], None] | None = None,
    ) -> None:
        self._clock = clock or WallClock()
        self._name = name
        self._events: collections.deque[TimelineEvent] = collections.deque(
            maxlen=max_events
        )
        self._sink = sink
        self._lock = threading.Lock()

    @property
    def name(self) -> str:
        """Component name stamped on events."""
        return self._name

    def log(self, kind: str, **fields: Any) -> TimelineEvent:
        """Record ``kind`` at the current clock time with extra ``fields``."""
        if self._name:
            fields.setdefault("component", self._name)
        ev = TimelineEvent(t=self._clock.now(), kind=kind, fields=fields)
        with self._lock:
            self._events.append(ev)
        if self._sink is not None:
            try:
                self._sink({"t": ev.t, "kind": ev.kind, **ev.fields})
            except Exception:  # noqa: BLE001 - a sink must never break logging
                pass
        return ev

    def events(self, kind: str | None = None) -> list[TimelineEvent]:
        """Snapshot of logged events, optionally filtered by ``kind``."""
        with self._lock:
            evs = list(self._events)
        if kind is not None:
            evs = [e for e in evs if e.kind == kind]
        return evs

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def __iter__(self) -> Iterator[TimelineEvent]:
        return iter(self.events())

    def span(self, start_kind: str, end_kind: str) -> float:
        """Seconds between the first ``start_kind`` and last ``end_kind``.

        Raises ``ValueError`` when either endpoint is missing — a missing
        epoch-start/epoch-end marker is a harness bug worth failing loudly on.
        """
        starts = self.events(start_kind)
        ends = self.events(end_kind)
        if not starts or not ends:
            raise ValueError(f"missing events: {start_kind!r} or {end_kind!r}")
        return ends[-1].t - starts[0].t

    def merge(self, other: "TimestampLogger") -> list[TimelineEvent]:
        """Union of two timelines sorted by timestamp (cross-node alignment)."""
        return sorted(self.events() + other.events(), key=lambda e: e.t)
