"""Token-bucket rate limiter used for bandwidth shaping.

The network emulator (:mod:`repro.net.emulation`) shapes each direction of a
link to a configured line rate.  A token bucket is the standard way to do
this: tokens refill at ``rate`` bytes/second up to ``capacity``; a payload of
``n`` bytes may pass once ``n`` tokens are available.

The bucket is clock-agnostic so the same shaping logic serves both the live
transport (monotonic clock, real sleeps) and the DES models (virtual clock,
where ``reserve`` returns the *delay* the simulator should apply).
"""

from __future__ import annotations

import threading

from repro.util.clock import Clock, MonotonicClock


class TokenBucket:
    """Classic token bucket.

    Parameters
    ----------
    rate:
        Refill rate in tokens (bytes) per second.  ``float("inf")`` disables
        shaping.
    capacity:
        Maximum burst size in tokens.  Defaults to one second of tokens.
    clock:
        Time source used to compute refill; defaults to monotonic time.
    """

    def __init__(
        self,
        rate: float,
        capacity: float | None = None,
        clock: Clock | None = None,
    ) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        self.rate = float(rate)
        self.capacity = float(capacity if capacity is not None else rate)
        if self.capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self._clock = clock or MonotonicClock()
        self._tokens = self.capacity
        self._last = self._clock.now()
        self._lock = threading.Lock()

    def _refill(self, now: float) -> None:
        elapsed = now - self._last
        if elapsed > 0:
            self._tokens = min(self.capacity, self._tokens + elapsed * self.rate)
            self._last = now

    def reserve(self, n: float) -> float:
        """Debit ``n`` tokens and return the delay (s) until they are earned.

        The debit always succeeds — the bucket may go negative — and the
        returned delay tells the caller how long to wait before the payload
        is considered "on the wire".  Reserving more than ``capacity`` is
        allowed (a single payload larger than the burst size just takes
        ``n/rate`` seconds); this mirrors how a serializing link behaves.
        """
        if n < 0:
            raise ValueError(f"cannot reserve negative tokens ({n})")
        if self.rate == float("inf") or n == 0:
            return 0.0
        with self._lock:
            now = self._clock.now()
            self._refill(now)
            self._tokens -= n
            if self._tokens >= 0:
                return 0.0
            return -self._tokens / self.rate

    def would_delay(self, n: float) -> float:
        """Delay ``reserve(n)`` would return, without debiting."""
        if self.rate == float("inf") or n == 0:
            return 0.0
        with self._lock:
            now = self._clock.now()
            self._refill(now)
            deficit = n - self._tokens
            return max(0.0, deficit / self.rate)

    @property
    def tokens(self) -> float:
        """Current token level (after refill), mainly for tests."""
        with self._lock:
            self._refill(self._clock.now())
            return self._tokens
