"""Clock abstractions.

EMLIO's measurement framework (paper §3) depends on NTP-aligned timestamps so
energy tuples from different nodes can be joined on the same instant.  Inside
one process we get the same property by routing *every* time read through a
:class:`Clock` object:

* :class:`WallClock` / :class:`MonotonicClock` — real time, used by the live
  networked implementation.
* :class:`VirtualClock` — a settable clock advanced by the discrete-event
  simulator (:mod:`repro.sim`), used by the benchmark harness so a 30 ms-RTT
  WAN epoch does not take 30 ms-per-round-trip of wall time to measure.
"""

from __future__ import annotations

import time
from typing import Protocol, runtime_checkable


@runtime_checkable
class Clock(Protocol):
    """Minimal time source: a single ``now()`` returning seconds as float."""

    def now(self) -> float:  # pragma: no cover - protocol stub
        ...


class WallClock:
    """Real wall-clock time (``time.time``), for NTP-style absolute stamps."""

    def now(self) -> float:
        """Current time in seconds."""
        return time.time()

    def sleep(self, seconds: float) -> None:
        """Block for ``seconds`` of real time."""
        if seconds > 0:
            time.sleep(seconds)


class MonotonicClock:
    """Monotonic time (``time.monotonic``), for durations and rate limiting."""

    def now(self) -> float:
        """Current time in seconds."""
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        """Block for ``seconds`` of real time."""
        if seconds > 0:
            time.sleep(seconds)


class VirtualClock:
    """A clock whose time only moves when explicitly advanced.

    The simulator owns instances of this class; model code reads ``now()``
    exactly like it would from a :class:`WallClock`.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        """Current time in seconds."""
        return self._now

    def advance(self, dt: float) -> None:
        """Move time forward by ``dt`` seconds (must be non-negative)."""
        if dt < 0:
            raise ValueError(f"cannot advance a clock backwards (dt={dt})")
        self._now += dt

    def set(self, t: float) -> None:
        """Jump to absolute time ``t`` (must not be in the past)."""
        if t < self._now:
            raise ValueError(f"cannot set clock backwards ({t} < {self._now})")
        self._now = float(t)
