"""Per-batch distributed tracing: sampled span chains across the wire.

A batch's trace id is ``"{epoch}:{node}:{seq}"`` — the same triple the
assignment ledger and :attr:`BatchProvider.emitted` already key on, so a
trace joins against every other subsystem for free.  The sampling decision
is made **once**, at the daemon, deterministically from the trace id
(:func:`trace_sampled`), and rides the payload's ``meta`` dict over both
TCP and shm transports; downstream components emit spans only for stamped
payloads, so an unsampled batch pays a single dict lookup.

Spans are JSONL records::

    {"trace": "0:0:3", "span": "read", "component": "daemon",
     "t0": <wall ns>, "t1": <wall ns>}

written through a bounded background :class:`TraceWriter` (drops, never
blocks, when the queue is full).  Timestamps are ``time.time_ns()`` wall
clock so spans from different threads/components align on one timeline —
the paper's §4.5 timestamp-logging design.  :class:`~repro.util.logging.
TimestampLogger` events share the same file format (records without a
``"span"`` key); :mod:`repro.tools.trace` reconstructs per-stage
breakdowns and critical paths from the combined stream.
"""

from __future__ import annotations

import json
import queue
import threading
import zlib
from pathlib import Path

__all__ = [
    "SPAN_STAGES",
    "TraceWriter",
    "Tracer",
    "trace_id",
    "trace_sampled",
]

#: Canonical stage order of a batch's life, paper Fig. 1 left-to-right.
SPAN_STAGES: tuple[str, ...] = (
    "read", "encode", "send", "recv", "decode", "preprocess", "consume",
)


def trace_id(epoch: int, node: int, seq: int) -> str:
    """The batch's trace id — the ledger triple, colon-joined."""
    return f"{epoch}:{node}:{seq}"


def trace_sampled(epoch: int, node: int, seq: int, sample: float) -> bool:
    """Deterministic sampling decision for a batch.

    Hash-based (crc32 of the trace id) rather than random so every
    component — and a rerun — agrees on which batches are traced without
    coordination.  ``sample`` is a fraction in [0, 1].
    """
    if sample <= 0.0:
        return False
    if sample >= 1.0:
        return True
    h = zlib.crc32(trace_id(epoch, node, seq).encode("ascii"))
    return (h % 10000) < int(sample * 10000)


class TraceWriter:
    """Bounded background JSONL writer shared by all tracers of a
    deployment.

    ``write()`` enqueues a dict and returns immediately; a daemon thread
    drains the queue to ``<dir>/spans.jsonl``.  When the queue is full the
    record is dropped and counted (``dropped``) — tracing must never
    backpressure the data path.  ``close()`` flushes what is queued.
    """

    _SENTINEL = None

    def __init__(self, trace_dir: str | Path, maxsize: int = 8192,
                 filename: str = "spans.jsonl"):
        self.path = Path(trace_dir) / filename
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._q: queue.Queue = queue.Queue(maxsize=maxsize)
        self.written = 0
        self.dropped = 0
        self._closed = False
        self._thread = threading.Thread(
            target=self._drain, name="trace-writer", daemon=True
        )
        self._thread.start()

    def write(self, record: dict) -> None:
        """Enqueue one JSONL record (span or timeline event); never blocks."""
        if self._closed:
            self.dropped += 1
            return
        try:
            self._q.put_nowait(record)
        except queue.Full:
            self.dropped += 1

    def _drain(self) -> None:
        with open(self.path, "a", encoding="utf-8") as f:
            while True:
                rec = self._q.get()
                if rec is self._SENTINEL:
                    f.flush()
                    return
                try:
                    f.write(json.dumps(rec, separators=(",", ":")) + "\n")
                    self.written += 1
                except (TypeError, ValueError):
                    self.dropped += 1

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._q.put(self._SENTINEL)
        self._thread.join(timeout=5.0)

    def stats(self) -> dict:
        return {"written": self.written, "dropped": self.dropped,
                "path": str(self.path)}


class Tracer:
    """One component's handle on the trace stream.

    Created per component (``"daemon"``, ``"receiver"``, ...) by
    :meth:`repro.obs.Telemetry.tracer`; holds the shared writer and the
    sampling fraction.  Callers check :meth:`sampled` once per batch and
    only then capture wall timestamps and call :meth:`span`.
    """

    __slots__ = ("writer", "component", "sample")

    def __init__(self, writer: TraceWriter, component: str, sample: float):
        self.writer = writer
        self.component = component
        self.sample = sample

    def sampled(self, epoch: int, node: int, seq: int) -> bool:
        return trace_sampled(epoch, node, seq, self.sample)

    def span(self, key: tuple[int, int, int], name: str,
             t0: int, t1: int, **extra) -> None:
        """Record one span for batch ``key = (epoch, node, seq)``.

        ``t0``/``t1`` are wall ``time.time_ns()`` values bracketing the
        stage.  Extra keyword fields (e.g. ``nbytes``) are carried through
        to the JSONL record.
        """
        rec = {
            "trace": trace_id(*key),
            "span": name,
            "component": self.component,
            "t0": int(t0),
            "t1": int(t1),
        }
        if extra:
            rec.update(extra)
        self.writer.write(rec)
