"""Low-overhead metrics registry: Counter / Gauge / Histogram with labels.

One :class:`Registry` per deployment absorbs the ad-hoc counters scattered
across subsystems (transport bytes/frames, shm attaches, storage tier
hits/misses, pipeline stage nanoseconds, failover/rebalance counts) behind
a single :meth:`Registry.snapshot` and a Prometheus text rendering
(:meth:`Registry.render_prometheus`).

Two usage modes keep the hot path cheap:

- **Direct instruments** (``registry.counter(...)``, ``.histogram(...)``)
  for signals that have no existing cheap counter — e.g. per-batch decode
  seconds.  Each instrument carries its own lock; ``inc``/``observe`` are
  a few hundred nanoseconds.
- **Collectors** (:meth:`Registry.register_collector`) for subsystems that
  already count cheaply (``Channel.bytes_sent``, ``StorageStats``,
  ``PipelineStats``): the collector callback runs only at snapshot/scrape
  time and ``set()``s the exported value, so steady-state cost is zero.

A disabled registry (``Registry(enabled=False)``) hands out shared no-op
instruments, so instrumented code needs no ``if`` guards.

Histogram buckets are fixed log2 boundaries (``2**-20 .. 2**5`` seconds,
~1 µs to 32 s), which keeps ``observe()`` allocation-free and makes
quantile estimates stable across processes without coordination.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Callable, Iterable

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LOG2_BUCKETS",
    "Registry",
]

#: Fixed histogram boundaries: powers of two from ~1 µs to 32 s.
LOG2_BUCKETS: tuple[float, ...] = tuple(float(2.0 ** e) for e in range(-20, 6))


def _validate_name(name: str) -> None:
    if not name or not all(c.isalnum() or c in "_:" for c in name) or name[0].isdigit():
        raise ValueError(f"invalid metric name {name!r}")


def _label_key(labelnames: tuple[str, ...], kv: dict) -> tuple[str, ...]:
    if set(kv) != set(labelnames):
        raise ValueError(
            f"labels {sorted(kv)} do not match declared labelnames {sorted(labelnames)}"
        )
    return tuple(str(kv[n]) for n in labelnames)


class Counter:
    """Monotonic counter.  ``set()`` exists for collector-fed values that
    are already cumulative in their home subsystem."""

    kind = "counter"

    __slots__ = ("name", "help", "labelnames", "_lock", "_children", "_value")

    def __init__(self, name: str, help: str = "", labelnames: tuple[str, ...] = ()):
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()
        self._children: dict[tuple[str, ...], Counter] = {}
        self._value = 0.0

    def labels(self, **kv) -> "Counter":
        key = _label_key(self.labelnames, kv)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = Counter(self.name, self.help)
                self._children[key] = child
            return child

    def inc(self, n: float = 1.0) -> None:
        with self._lock:
            self._value += n

    def set(self, v: float) -> None:
        """Overwrite with an externally-accumulated cumulative value."""
        with self._lock:
            self._value = float(v)

    @property
    def value(self) -> float:
        return self._value

    def samples(self) -> Iterable[tuple[tuple[str, ...], float]]:
        if self.labelnames:
            with self._lock:
                children = dict(self._children)
            for key, child in sorted(children.items()):
                yield key, child._value
        else:
            yield (), self._value


class Gauge(Counter):
    """A value that can go up and down (queue depths, member counts)."""

    kind = "gauge"

    __slots__ = ()

    def labels(self, **kv) -> "Gauge":
        key = _label_key(self.labelnames, kv)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = Gauge(self.name, self.help)
                self._children[key] = child
            return child

    def dec(self, n: float = 1.0) -> None:
        self.inc(-n)


class Histogram:
    """Fixed-boundary histogram (see :data:`LOG2_BUCKETS`).

    ``observe`` is lock-guarded bucket increment + sum/count update —
    no allocation.  ``quantile(q)`` returns the upper bound of the first
    bucket whose cumulative count reaches ``q * count`` (a conservative
    estimate, exact to within one log2 bucket).
    """

    kind = "histogram"

    __slots__ = (
        "name", "help", "labelnames", "buckets",
        "_lock", "_children", "_counts", "_sum", "_count",
    )

    def __init__(
        self,
        name: str,
        help: str = "",
        labelnames: tuple[str, ...] = (),
        buckets: tuple[float, ...] = LOG2_BUCKETS,
    ):
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self.buckets = tuple(buckets)
        self._lock = threading.Lock()
        self._children: dict[tuple[str, ...], Histogram] = {}
        self._counts = [0] * (len(self.buckets) + 1)  # last slot = +Inf
        self._sum = 0.0
        self._count = 0

    def labels(self, **kv) -> "Histogram":
        key = _label_key(self.labelnames, kv)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = Histogram(self.name, self.help, buckets=self.buckets)
                self._children[key] = child
            return child

    def observe(self, v: float) -> None:
        idx = bisect_left(self.buckets, v)
        with self._lock:
            self._counts[idx] += 1
            self._sum += v
            self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def quantile(self, q: float) -> float:
        """Upper-bound estimate of the q-quantile (0 <= q <= 1); 0.0 when
        empty.  Observations beyond the last boundary report it."""
        with self._lock:
            total = self._count
            if total == 0:
                return 0.0
            target = q * total
            cum = 0
            for i, c in enumerate(self._counts):
                cum += c
                if cum >= target and cum > 0:
                    return self.buckets[min(i, len(self.buckets) - 1)]
        return self.buckets[-1]

    def samples(self) -> Iterable[tuple[tuple[str, ...], "Histogram"]]:
        if self.labelnames:
            with self._lock:
                children = dict(self._children)
            for key, child in sorted(children.items()):
                yield key, child
        else:
            yield (), self

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "count": self._count,
                "sum": self._sum,
                "buckets": dict(zip(self.buckets, self._counts)),
                "overflow": self._counts[-1],
            }


class _NoopInstrument:
    """Shared do-nothing instrument handed out by a disabled registry."""

    kind = "noop"
    name = "noop"
    help = ""
    labelnames: tuple[str, ...] = ()
    count = 0
    sum = 0.0
    value = 0.0

    def labels(self, **kv):
        return self

    def inc(self, n: float = 1.0) -> None:
        pass

    def dec(self, n: float = 1.0) -> None:
        pass

    def set(self, v: float) -> None:
        pass

    def observe(self, v: float) -> None:
        pass

    def quantile(self, q: float) -> float:
        return 0.0

    def samples(self):
        return iter(())

    def snapshot(self) -> dict:
        return {}


_NOOP = _NoopInstrument()


class Registry:
    """Get-or-create factory + snapshot/scrape surface for instruments.

    ``counter``/``gauge``/``histogram`` are idempotent per name: repeated
    calls return the same instrument (mismatched kind raises).  When
    ``enabled`` is False every factory returns one shared no-op object
    and ``snapshot()`` is empty, so the telemetry plane can be compiled
    out by configuration alone.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._lock = threading.Lock()
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}
        self._collectors: list[Callable[[], None]] = []

    # -- factories -------------------------------------------------------------

    def _get_or_create(self, cls, name: str, help: str, labelnames, **kw):
        if not self.enabled:
            return _NOOP
        _validate_name(name)
        with self._lock:
            inst = self._instruments.get(name)
            if inst is not None:
                if not isinstance(inst, cls) or type(inst) is not cls:
                    raise ValueError(
                        f"metric {name!r} already registered as {inst.kind}"
                    )
                return inst
            inst = cls(name, help=help, labelnames=tuple(labelnames), **kw)
            self._instruments[name] = inst
            return inst

    def counter(self, name: str, help: str = "", labelnames=()) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "", labelnames=()) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(
        self, name: str, help: str = "", labelnames=(), buckets=LOG2_BUCKETS
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help, labelnames, buckets=tuple(buckets)
        )

    # -- collectors ------------------------------------------------------------

    def register_collector(self, fn: Callable[[], None]) -> None:
        """Register a callback run before every snapshot/scrape.  The
        callback pulls values from its subsystem's existing cheap counters
        and ``set()``s them on registry instruments — zero hot-path cost."""
        with self._lock:
            self._collectors.append(fn)

    def _collect(self) -> None:
        with self._lock:
            collectors = list(self._collectors)
        for fn in collectors:
            try:
                fn()
            except Exception:  # a broken collector must not break the scrape
                pass

    # -- export ----------------------------------------------------------------

    def _sorted_instruments(self):
        with self._lock:
            return sorted(self._instruments.items())

    def snapshot(self) -> dict:
        """JSON-ready ``{name: value-or-histogram-dict}`` view."""
        if not self.enabled:
            return {}
        self._collect()
        out: dict = {}
        for name, inst in self._sorted_instruments():
            if isinstance(inst, Histogram):
                if inst.labelnames:
                    out[name] = {
                        "|".join(key): child.snapshot()
                        for key, child in inst.samples()
                    }
                else:
                    out[name] = inst.snapshot()
            elif inst.labelnames:
                out[name] = {
                    "|".join(key): value for key, value in inst.samples()
                }
            else:
                out[name] = inst.value
        return out

    def render_prometheus(self) -> str:
        """Prometheus text exposition format 0.0.4."""
        if not self.enabled:
            return ""
        self._collect()
        lines: list[str] = []
        for name, inst in self._sorted_instruments():
            lines.append(f"# HELP {name} {inst.help or name}")
            lines.append(f"# TYPE {name} {inst.kind}")
            if isinstance(inst, Histogram):
                for key, child in inst.samples():
                    base = _labels_str(inst.labelnames, key)
                    snap = child.snapshot()
                    cum = 0
                    for bound, cnt in snap["buckets"].items():
                        cum += cnt
                        le = 'le="' + _fmt_float(bound) + '"'
                        lines.append(f"{name}_bucket{_merge_labels(base, le)} {cum}")
                    cum += snap["overflow"]
                    inf = 'le="+Inf"'
                    lines.append(f"{name}_bucket{_merge_labels(base, inf)} {cum}")
                    lines.append(f"{name}_sum{base} {_fmt_float(snap['sum'])}")
                    lines.append(f"{name}_count{base} {snap['count']}")
            else:
                for key, value in inst.samples():
                    base = _labels_str(inst.labelnames, key)
                    lines.append(f"{name}{base} {_fmt_float(value)}")
        return "\n".join(lines) + "\n" if lines else ""


def _fmt_float(v: float) -> str:
    if isinstance(v, int) or (isinstance(v, float) and v.is_integer()):
        return str(int(v))
    return repr(float(v))


def _labels_str(labelnames: tuple[str, ...], key: tuple[str, ...]) -> str:
    if not labelnames:
        return ""
    pairs = ",".join(
        f'{n}="{_escape(v)}"' for n, v in zip(labelnames, key)
    )
    return "{" + pairs + "}"


def _merge_labels(base: str, extra: str) -> str:
    if not base:
        return "{" + extra + "}"
    return base[:-1] + "," + extra + "}"


def _escape(v: str) -> str:
    return v.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
