"""Unified telemetry plane: metrics registry + per-batch tracing + export.

:class:`Telemetry` is the single handle a deployment threads through its
components — one :class:`~repro.obs.metrics.Registry` for counters,
gauges and histograms; one :class:`~repro.obs.trace.TraceWriter` (when a
``trace_dir`` is configured) feeding per-component
:class:`~repro.obs.trace.Tracer` handles and doubling as the JSONL sink
for :class:`~repro.util.logging.TimestampLogger` timelines; and the
:class:`~repro.obs.exporter.MetricsExporter` scrape surface started by
``EMLIO.deploy`` when ``[observability] metrics_port`` is set.

Configured declaratively via the spec's ``[observability]`` section
(:class:`repro.api.spec.ObservabilitySpec`); inspected at runtime via
``Deployment.status()["telemetry"]`` and the ``repro.tools.trace`` CLI.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable

from repro.obs.metrics import Counter, Gauge, Histogram, Registry
from repro.obs.trace import SPAN_STAGES, TraceWriter, Tracer, trace_id, trace_sampled

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Registry",
    "SPAN_STAGES",
    "Telemetry",
    "TraceWriter",
    "Tracer",
    "trace_id",
    "trace_sampled",
]


class Telemetry:
    """One deployment's telemetry plane: registry + optional trace stream.

    ``trace_dir=None`` (the default) means no writer and ``tracer()``
    returns ``None`` — components then skip all wall-clock captures, so
    the data path is untouched.  ``sample`` is the fraction of batches
    traced (``obs.trace_sample``); the decision is made at the daemon and
    propagated in the payload meta, see :mod:`repro.obs.trace`.
    """

    def __init__(
        self,
        enabled: bool = True,
        trace_dir: str | Path | None = None,
        trace_sample: float = 0.0,
    ):
        self.registry = Registry(enabled=enabled)
        self.trace_sample = float(trace_sample)
        self.writer: TraceWriter | None = (
            TraceWriter(trace_dir) if trace_dir is not None else None
        )

    def tracer(self, component: str) -> Tracer | None:
        """Per-component tracer, or ``None`` when tracing is off (no
        writer or zero sampling) — callers gate all capture work on it."""
        if self.writer is None or self.trace_sample <= 0.0:
            return None
        return Tracer(self.writer, component, self.trace_sample)

    @property
    def event_sink(self) -> Callable[[dict], None] | None:
        """JSONL sink for :class:`~repro.util.logging.TimestampLogger`
        events (shared file with spans), or ``None`` when tracing is off."""
        return self.writer.write if self.writer is not None else None

    def stats(self) -> dict:
        out: dict = {"trace_sample": self.trace_sample}
        if self.writer is not None:
            out["trace"] = self.writer.stats()
        return out

    def close(self) -> None:
        if self.writer is not None:
            self.writer.close()
