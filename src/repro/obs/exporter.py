"""Stdlib-only HTTP scrape endpoint for a deployment's metrics registry.

One :class:`MetricsExporter` per deployment serves:

- ``/metrics`` — Prometheus text exposition format 0.0.4
  (:meth:`~repro.obs.metrics.Registry.render_prometheus`)
- ``/metrics.json`` — the same registry as JSON
  (:meth:`~repro.obs.metrics.Registry.snapshot`)
- ``/healthz`` — liveness (``ok``)

Bound lazily at deploy time only when ``[observability] metrics_port`` is
set (0 = ephemeral port; read it back via :attr:`MetricsExporter.port` or
``Deployment.status()["telemetry"]["metrics_endpoint"]``).  ``EMLIO.plan``
never constructs one — planning stays socket-free.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.obs.metrics import Registry

__all__ = ["MetricsExporter"]

_PROM_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class _Handler(BaseHTTPRequestHandler):
    registry: Registry  # set on the subclass by MetricsExporter

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        path = self.path.split("?", 1)[0]
        if path == "/metrics":
            body = self.registry.render_prometheus().encode("utf-8")
            self._reply(200, _PROM_CONTENT_TYPE, body)
        elif path == "/metrics.json":
            body = json.dumps(self.registry.snapshot(), indent=2).encode("utf-8")
            self._reply(200, "application/json", body)
        elif path == "/healthz":
            self._reply(200, "text/plain", b"ok\n")
        else:
            self._reply(404, "text/plain", b"not found\n")

    def _reply(self, status: int, ctype: str, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", ctype)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args) -> None:  # silence per-request spam
        pass


class MetricsExporter:
    """Background scrape server bound to ``127.0.0.1:<port>``."""

    def __init__(self, registry: Registry, port: int = 0, host: str = "127.0.0.1"):
        handler = type("_BoundHandler", (_Handler,), {"registry": registry})
        self._server = ThreadingHTTPServer((host, port), handler)
        self._server.daemon_threads = True
        self._thread = threading.Thread(
            target=self._server.serve_forever, name="metrics-exporter", daemon=True
        )
        self._thread.start()

    @property
    def port(self) -> int:
        return self._server.server_address[1]

    @property
    def endpoint(self) -> str:
        host, port = self._server.server_address[:2]
        return f"http://{host}:{port}/metrics"

    def close(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        self._thread.join(timeout=5.0)
