"""Storage server: serves a directory over the framed channel protocol.

Protocol (msgpack maps over frames)::

    request:  {"op": "read",    "path": str, "offset": int, "nbytes": int}
              {"op": "stat",    "path": str}
              {"op": "listdir", "path": str}
              {"op": "ping"}
    response: {"ok": true,  ...op-specific fields...}
              {"ok": false, "error": str}

Every operation is one request/response exchange — one network round trip —
which is the property that makes per-sample loaders collapse at high RTT.
"""

from __future__ import annotations

import threading

from repro.net.channel import Channel, Listener
from repro.net.emulation import NetworkProfile
from repro.net.framing import ConnectionClosed
from repro.serialize.msgpack import packb, unpackb
from repro.storage.localfs import LocalStorage


class StorageServer:
    """Threaded server exposing one LocalStorage over TCP."""

    def __init__(
        self,
        root: str,
        host: str = "127.0.0.1",
        port: int = 0,
        profile: NetworkProfile | None = None,
    ) -> None:
        self.storage = LocalStorage(root)
        self._channels: list[Channel] = []
        self._chan_lock = threading.Lock()
        self._closed = False
        self._listener = Listener(host=host, port=port, profile=profile)
        self._listener.serve_forever(self._serve)
        self.requests_served = 0
        self._count_lock = threading.Lock()

    @property
    def address(self) -> tuple[str, int]:
        """Bound ``(host, port)`` address."""
        return self._listener.address

    @property
    def port(self) -> int:
        """Bound TCP port."""
        return self._listener.port

    def _serve(self, chan: Channel) -> None:
        with self._chan_lock:
            if self._closed:
                chan.close()
                return
            self._channels.append(chan)
        try:
            while True:
                try:
                    req = unpackb(chan.recv())
                except (ConnectionClosed, ConnectionError, OSError):
                    return
                chan.send(packb(self._handle(req)))
                with self._count_lock:
                    self.requests_served += 1
        finally:
            chan.close()
            with self._chan_lock:
                if chan in self._channels:
                    self._channels.remove(chan)

    def _handle(self, req: dict) -> dict:
        try:
            op = req.get("op")
            if op == "read":
                data = self.storage.read_at(req["path"], req["offset"], req["nbytes"])
                return {"ok": True, "data": data}
            if op == "stat":
                return {"ok": True, "size": self.storage.size(req["path"])}
            if op == "listdir":
                return {"ok": True, "names": self.storage.listdir(req.get("path", "."))}
            if op == "ping":
                return {"ok": True}
            return {"ok": False, "error": f"unknown op {op!r}"}
        except (OSError, ValueError, PermissionError, KeyError) as err:
            return {"ok": False, "error": f"{type(err).__name__}: {err}"}

    def close(self) -> None:
        """Stop serving and sever every established connection.

        Dropping live channels matters for fault emulation: a "dead"
        server whose accepted connections keep answering reads is not
        dead — clients mid-epoch must observe connection errors, exactly
        as they would if the process crashed.
        """
        with self._chan_lock:
            self._closed = True
            channels = list(self._channels)
        self._listener.close()
        for chan in channels:
            chan.close()
