"""Instrumented local storage backend.

Counts operations and bytes so experiments can attribute I/O activity to
energy (the power models consume these counters).  The API is deliberately
small — exactly the operations the loaders and the NFS protocol need.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from pathlib import Path


@dataclass
class StorageStats:
    """Operation counters shared by local and remote backends."""

    reads: int = 0
    bytes_read: int = 0
    stats: int = 0
    listdirs: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def record_read(self, nbytes: int) -> None:
        with self._lock:
            self.reads += 1
            self.bytes_read += nbytes

    def record_stat(self) -> None:
        with self._lock:
            self.stats += 1

    def record_listdir(self) -> None:
        with self._lock:
            self.listdirs += 1

    def snapshot(self) -> dict[str, int]:
        """Point-in-time copy of the counters."""
        with self._lock:
            return {
                "reads": self.reads,
                "bytes_read": self.bytes_read,
                "stats": self.stats,
                "listdirs": self.listdirs,
            }


class LocalStorage:
    """Read-only view of a directory tree with operation accounting."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root).resolve()
        if not self.root.is_dir():
            raise NotADirectoryError(f"storage root {self.root} is not a directory")
        self.stats = StorageStats()

    def _resolve(self, relpath: str) -> Path:
        p = (self.root / relpath).resolve()
        if not p.is_relative_to(self.root):
            raise PermissionError(f"path {relpath!r} escapes storage root")
        return p

    def size(self, relpath: str) -> int:
        """File size in bytes (one ``stat``)."""
        self.stats.record_stat()
        return self._resolve(relpath).stat().st_size

    def exists(self, relpath: str) -> bool:
        self.stats.record_stat()
        return self._resolve(relpath).exists()

    def read_at(self, relpath: str, offset: int, nbytes: int) -> bytes:
        """Positional read (``pread`` semantics): one operation, one count."""
        if offset < 0 or nbytes < 0:
            raise ValueError(f"invalid read: offset={offset} nbytes={nbytes}")
        with open(self._resolve(relpath), "rb") as fh:
            fh.seek(offset)
            data = fh.read(nbytes)
        self.stats.record_read(len(data))
        return data

    def read_all(self, relpath: str) -> bytes:
        data = self._resolve(relpath).read_bytes()
        self.stats.record_read(len(data))
        return data

    def listdir(self, relpath: str = ".") -> list[str]:
        self.stats.record_listdir()
        base = self._resolve(relpath)
        return sorted(p.name for p in base.iterdir())
