"""NFS-like client mount.

Exposes the same read API as :class:`~repro.storage.localfs.LocalStorage`
but forwards every operation to a :class:`~repro.storage.server.StorageServer`
over a (possibly latency-shaped) channel.  A connection pool lets multi-
worker loaders issue concurrent reads — each worker still pays one RTT per
read, like real NFS without client caching.
"""

from __future__ import annotations

import queue
import threading

from repro.net.channel import Channel, connect_channel
from repro.net.emulation import NetworkProfile
from repro.serialize.msgpack import packb, unpackb
from repro.storage.localfs import StorageStats


class NFSError(OSError):
    """Server-side error surfaced to the client."""


class NFSMount:
    """Client handle on a remote storage server.

    Parameters
    ----------
    host, port:
        Server address.
    profile:
        Shapes the client→server direction; the server shapes its replies
        with its own profile, so both halves of the RTT are paid.
    pool_size:
        Number of pooled connections (concurrent in-flight operations).
    """

    def __init__(
        self,
        host: str,
        port: int,
        profile: NetworkProfile | None = None,
        pool_size: int = 4,
    ) -> None:
        if pool_size < 1:
            raise ValueError(f"pool_size must be >= 1, got {pool_size}")
        self._pool: queue.Queue[Channel] = queue.Queue()
        self._all: list[Channel] = []
        for _ in range(pool_size):
            chan = connect_channel(host, port, profile=profile)
            self._pool.put(chan)
            self._all.append(chan)
        self.stats = StorageStats()
        self._closed = False
        self._lock = threading.Lock()

    def _call(self, request: dict) -> dict:
        if self._closed:
            raise RuntimeError("operation on closed NFSMount")
        chan = self._pool.get()
        try:
            chan.send(packb(request))
            resp = unpackb(chan.recv())
        finally:
            self._pool.put(chan)
        if not resp.get("ok"):
            raise NFSError(resp.get("error", "unknown remote error"))
        return resp

    # -- LocalStorage-compatible API -----------------------------------------

    def size(self, relpath: str) -> int:
        self.stats.record_stat()
        return self._call({"op": "stat", "path": relpath})["size"]

    def read_at(self, relpath: str, offset: int, nbytes: int) -> bytes:
        data = self._call(
            {"op": "read", "path": relpath, "offset": offset, "nbytes": nbytes}
        )["data"]
        self.stats.record_read(len(data))
        return data

    def read_all(self, relpath: str) -> bytes:
        size = self.size(relpath)
        return self.read_at(relpath, 0, size)

    def listdir(self, relpath: str = ".") -> list[str]:
        self.stats.record_listdir()
        return self._call({"op": "listdir", "path": relpath})["names"]

    def ping(self) -> bool:
        return self._call({"op": "ping"})["ok"]

    def close(self) -> None:
        """Release resources."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        for chan in self._all:
            chan.close()
