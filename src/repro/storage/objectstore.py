"""Emulated object store: range-GET semantics with per-request latency.

Object stores (S3-style) serve ``GET Range:`` requests over HTTP — every
read pays a request round trip regardless of size, and there is no mmap,
no readahead, no kernel page cache on the client side.  This tier
emulates exactly that cost model over a local directory, using the same
latency hooks as the network emulation layer: each request sleeps the
store's flat request latency plus, when a :class:`NetworkProfile` is
given, its RTT and size-dependent transfer time.

That makes it the proving ground for the tiered read path: a daemon
reading batch ranges directly from this tier is request-latency-bound
(the paper's remote-storage baseline), while the same daemon with a
plan-fed :class:`~repro.storage.cache.CachedBackend` in front prefetches
the ranges it will serve and hides the latency entirely —
``benchmarks/bench_storage_tiers.py`` gates that ratio.
"""

from __future__ import annotations

import time
from pathlib import Path

from repro.net.emulation import NetworkProfile
from repro.storage.backend import RemoteShardHandle, StorageBackend
from repro.storage.localfs import LocalStorage


class ObjectStoreBackend(StorageBackend):
    """Local-dir-emulated object store with configurable request latency.

    Parameters
    ----------
    root:
        Directory holding the "bucket" (shard files are the objects).
    request_latency_s:
        Flat latency charged to every request (GET/HEAD/LIST alike).
    profile:
        Optional :class:`NetworkProfile`; adds its RTT plus the
        size-dependent transfer time on top of ``request_latency_s``.
    verify:
        CRC policy for fetched ranges (``"open"`` degrades to per-fetch
        verification — there is no whole-shard open on a remote tier).
    """

    tier = "objectstore"

    def __init__(
        self,
        root: str | Path,
        request_latency_s: float = 0.0,
        profile: NetworkProfile | None = None,
        verify: bool | str = True,
    ) -> None:
        if request_latency_s < 0:
            raise ValueError(
                f"request_latency_s must be >= 0, got {request_latency_s}"
            )
        self._store = LocalStorage(root)
        self.request_latency_s = request_latency_s
        self.profile = profile
        self.verify = verify
        self.stats = self._store.stats
        self.requests = 0

    def _request(self, nbytes: int = 0) -> None:
        self.requests += 1
        delay = self.request_latency_s
        if self.profile is not None:
            delay += self.profile.rtt_s + self.profile.transfer_time(nbytes)
        if delay > 0:
            time.sleep(delay)

    def open_shard(self, shard_path: str) -> RemoteShardHandle:
        return RemoteShardHandle(self, shard_path, bool(self.verify))

    def read_bytes(self, shard_path: str, offset: int, nbytes: int) -> bytes:
        """One emulated ``GET Range: bytes=offset-`` request."""
        self._request(nbytes)
        return self._store.read_at(shard_path, offset, nbytes)

    def stat(self, shard_path: str) -> int:
        self._request()
        return self._store.size(shard_path)

    def listdir(self, relpath: str = ".") -> list[str]:
        self._request()
        return self._store.listdir(relpath)

    def snapshot(self) -> dict:
        snap = super().snapshot()
        snap["requests"] = self.requests
        snap["request_latency_ms"] = self.request_latency_s * 1e3
        return snap


__all__ = ["ObjectStoreBackend"]
