"""Pluggable storage tiers behind one daemon-facing protocol.

The daemon's serve loop needs exactly one thing from storage: "give me the
``count`` records in ``[offset, offset + nbytes)`` of this shard, verified".
:class:`StorageBackend` is that seam — ``open_shard`` returns a
:class:`ShardHandle` whose ``read_range``/``read_range_views`` mirror
:class:`~repro.tfrecord.reader.TFRecordReader`, plus ``stat``/``listdir``
for tooling.  Three tiers implement it:

``localfs``
    :class:`LocalFSBackend` — the mmap fast path.  Handles wrap
    :class:`TFRecordReader` directly, so record views alias the mapped
    shard and batches go to the wire with zero copies (paper §4.3).
``nfs``
    :class:`NFSBackend` — wraps an :class:`~repro.storage.nfs.NFSMount`.
    A batch range is fetched with **one** ``read_at`` round trip (the plan
    knows ``nbytes``), then parsed and CRC-verified locally.
``objectstore``
    :class:`~repro.storage.objectstore.ObjectStoreBackend` — emulated
    range-GET store with configurable per-request latency.

Every remote fetch is parsed through the same CRC-verifying record walk
as the mmap path (:func:`parse_record_block`), so a short or corrupt
range read fails loudly at read time regardless of tier.
"""

from __future__ import annotations

from pathlib import Path
from typing import Protocol, runtime_checkable

from repro.storage.localfs import LocalStorage, StorageStats
from repro.tfrecord.reader import _LEN, TFRecordCorruption, TFRecordReader
from repro.tfrecord.reader import _parse_record_view
from repro.tfrecord.writer import FOOTER_BYTES, HEADER_BYTES


def parse_record_block(
    buf: bytes | memoryview,
    count: int,
    verify: bool,
    *,
    shard_path: str = "?",
    offset: int = 0,
) -> list[memoryview]:
    """Parse ``count`` records out of a fetched byte range.

    The returned views alias ``buf`` — callers must keep ``buf`` alive
    while the views are in flight (memoryviews hold a reference, so
    ordinary use is safe).  Short or corrupt data raises
    :class:`TFRecordCorruption` with the shard and absolute offset named.
    """
    view = memoryview(buf)
    out: list[memoryview] = []
    pos = 0
    try:
        for _ in range(count):
            data, pos = _parse_record_view(view, pos, verify)
            out.append(data)
    except TFRecordCorruption as err:
        raise TFRecordCorruption(
            f"shard {shard_path!r}: bad range read at byte {offset + pos}: {err}"
        ) from err
    return out


@runtime_checkable
class ShardHandle(Protocol):
    """Range-read access to one shard, independent of where its bytes live."""

    @property
    def nbytes(self) -> int: ...

    def read_range(
        self, offset: int, count: int, nbytes: int | None = None
    ) -> list[bytes]: ...

    def read_range_views(
        self, offset: int, count: int, nbytes: int | None = None
    ) -> list[memoryview]: ...

    def read_region(
        self, offset: int, count: int, nbytes: int
    ) -> tuple[bytes | memoryview, bool]: ...

    def close(self) -> None: ...


class StorageBackend:
    """Base class for storage tiers.

    Subclasses set :attr:`tier`, provide :attr:`stats`
    (:class:`StorageStats`), and implement :meth:`open_shard`,
    :meth:`stat` and :meth:`listdir`.  The prefetch/cache hooks are
    no-ops here so the daemon can drive any tier uniformly; only
    :class:`~repro.storage.cache.CachedBackend` overrides them.
    """

    tier: str = "?"
    stats: StorageStats

    def open_shard(self, shard_path: str) -> ShardHandle:
        raise NotImplementedError

    def stat(self, shard_path: str) -> int:
        """Size of the shard in bytes."""
        raise NotImplementedError

    def listdir(self, relpath: str = ".") -> list[str]:
        raise NotImplementedError

    def close(self) -> None:  # noqa: B027 — optional hook
        pass

    # ---- cache/prefetch hooks (no-ops on plain tiers) ----

    def schedule_prefetch(self, ranges) -> int:
        """Accept a plan of ``(shard_path, offset, nbytes, count)`` ranges."""
        return 0

    def wait_prefetch(self, timeout: float | None = None) -> bool:
        return True

    def hot_shards(self) -> set[str]:
        """Shard paths with bytes resident in this tier's cache."""
        return set()

    def cache_counters(self) -> tuple[int, int, int]:
        """``(hits, misses, prefetch_depth)`` for heartbeat reporting."""
        return (0, 0, 0)

    def snapshot(self) -> dict:
        """Point-in-time tier stats for ``Deployment.stats()``.

        The same per-tier aggregates back the labeled registry series
        ``emlio_storage_tier_<field>_total{tier=...}``
        (:mod:`repro.obs.metrics`).
        """
        return {"tier": self.tier, **self.stats.snapshot()}


class LocalFSHandle:
    """mmap-backed handle: the existing zero-copy fast path, instrumented."""

    def __init__(self, backend: "LocalFSBackend", shard_path: str) -> None:
        self._backend = backend
        self.shard_path = shard_path
        self._reader = TFRecordReader(
            backend.root / shard_path, verify=backend.verify
        )

    @property
    def nbytes(self) -> int:
        return self._reader.nbytes

    def read_range(
        self, offset: int, count: int, nbytes: int | None = None
    ) -> list[bytes]:
        out = self._reader.read_range(offset, count)
        self._backend.stats.record_read(
            nbytes if nbytes is not None else sum(len(r) for r in out)
        )
        return out

    def read_range_views(
        self, offset: int, count: int, nbytes: int | None = None
    ) -> list[memoryview]:
        out = self._reader.read_range_views(offset, count)
        self._backend.stats.record_read(
            nbytes if nbytes is not None else sum(len(r) for r in out)
        )
        return out

    def read_region(
        self, offset: int, count: int, nbytes: int
    ) -> tuple[memoryview, bool]:
        """Raw framed bytes of a planned batch range, plus a verify flag.

        The columnar serve path primitive: one contiguous view over the
        mmap'ed shard, **unparsed** — the caller scans record framing
        itself (:func:`~repro.tfrecord.sharder.scan_example_spans`) and
        must CRC-check iff the returned flag is set.  ``verify="open"``
        already checksummed the whole shard at open, so the flag is clear.
        """
        buf = self._reader.raw_slice(offset, nbytes)
        self._backend.stats.record_read(nbytes)
        return buf, self._reader.verify

    def close(self) -> None:
        self._reader.close()


class LocalFSBackend(StorageBackend):
    """Tier over a local directory — keeps the daemon's mmap serve path."""

    tier = "localfs"

    def __init__(self, root: str | Path, verify: bool | str = True) -> None:
        self.root = Path(root)
        self.verify = verify
        self.stats = StorageStats()

    def open_shard(self, shard_path: str) -> LocalFSHandle:
        return LocalFSHandle(self, shard_path)

    def stat(self, shard_path: str) -> int:
        self.stats.record_stat()
        return (self.root / shard_path).stat().st_size

    def listdir(self, relpath: str = ".") -> list[str]:
        self.stats.record_listdir()
        return sorted(p.name for p in (self.root / relpath).iterdir())

    # Range-GET primitive, used when this tier sits under a cache.
    def read_bytes(self, shard_path: str, offset: int, nbytes: int) -> bytes:
        with open(self.root / shard_path, "rb") as fh:
            fh.seek(offset)
            data = fh.read(nbytes)
        self.stats.record_read(len(data))
        return data


class RemoteShardHandle:
    """Handle for byte-range tiers (NFS, object store, cached).

    A planned batch range — the daemon always knows ``nbytes`` from its
    :class:`~repro.core.planner.BatchAssignment` — is fetched with one
    backend request and parsed locally with per-record CRC verification.
    Without the ``nbytes`` hint (tooling paths) it falls back to walking
    record headers, two small requests per record — exactly the
    round-trip-per-read pattern the plan hint exists to avoid.
    """

    def __init__(self, backend, shard_path: str, verify: bool) -> None:
        self._backend = backend
        self.shard_path = shard_path
        # "open"-at-construction has no meaning when bytes arrive per
        # request: verify every fetched range instead.
        self.verify = bool(verify)

    @property
    def nbytes(self) -> int:
        return self._backend.stat(self.shard_path)

    def _fetch(self, offset: int, count: int, nbytes: int | None) -> bytes:
        if nbytes is not None:
            return self._backend.read_bytes(self.shard_path, offset, nbytes)
        chunks: list[bytes] = []
        pos = offset
        for _ in range(count):
            header = self._backend.read_bytes(self.shard_path, pos, HEADER_BYTES)
            if len(header) < HEADER_BYTES:
                raise TFRecordCorruption(
                    f"shard {self.shard_path!r}: truncated header at byte {pos}"
                )
            (length,) = _LEN.unpack_from(header)
            body = self._backend.read_bytes(
                self.shard_path, pos + HEADER_BYTES, length + FOOTER_BYTES
            )
            chunks.append(header)
            chunks.append(body)
            pos += HEADER_BYTES + length + FOOTER_BYTES
        return b"".join(chunks)

    def read_range_views(
        self, offset: int, count: int, nbytes: int | None = None
    ) -> list[memoryview]:
        buf = self._fetch(offset, count, nbytes)
        return parse_record_block(
            buf, count, self.verify, shard_path=self.shard_path, offset=offset
        )

    def read_range(
        self, offset: int, count: int, nbytes: int | None = None
    ) -> list[bytes]:
        return [bytes(v) for v in self.read_range_views(offset, count, nbytes)]

    def read_region(
        self, offset: int, count: int, nbytes: int
    ) -> tuple[bytes, bool]:
        """One range-GET of a planned batch's framed bytes, unparsed.

        Remote bytes are untrusted until checked: the verify flag simply
        mirrors this handle's setting.
        """
        return self._backend.read_bytes(self.shard_path, offset, nbytes), self.verify

    def close(self) -> None:
        pass


class NFSBackend(StorageBackend):
    """Tier over an :class:`~repro.storage.nfs.NFSMount`.

    Owns the mount by default (``close`` closes it); reads/bytes are
    counted by the mount's own :class:`StorageStats`, so "did the daemon
    really read over NFS" is directly observable.
    """

    tier = "nfs"

    def __init__(self, mount, verify: bool | str = True, owns_mount: bool = True) -> None:
        self.mount = mount
        self.verify = verify
        self.owns_mount = owns_mount
        self.stats = mount.stats

    def open_shard(self, shard_path: str) -> RemoteShardHandle:
        return RemoteShardHandle(self, shard_path, bool(self.verify))

    def read_bytes(self, shard_path: str, offset: int, nbytes: int) -> bytes:
        return self.mount.read_at(shard_path, offset, nbytes)

    def stat(self, shard_path: str) -> int:
        return self.mount.size(shard_path)

    def listdir(self, relpath: str = ".") -> list[str]:
        return self.mount.listdir(relpath)

    def close(self) -> None:
        if self.owns_mount:
            self.mount.close()


__all__ = [
    "LocalFSBackend",
    "LocalFSHandle",
    "LocalStorage",
    "NFSBackend",
    "RemoteShardHandle",
    "ShardHandle",
    "StorageBackend",
    "parse_record_block",
]
