"""Plan-informed hot-set cache: block-granular, bounded bytes, Belady eviction.

The planner already knows *exactly* which byte ranges a daemon will serve,
in which order (every :class:`~repro.core.planner.BatchAssignment` carries
``(shard_path, offset, nbytes, count)``).  That turns caching from a
heuristic into a lookahead problem:

* **Blocks are planned ranges.**  The cache key is
  ``(shard_path, offset, nbytes)`` — one batch's contiguous slice.  No
  partial blocks, no alignment games: the serve path reads whole planned
  ranges, so the cache stores whole planned ranges.
* **Admission and prefetch come from the plan.**  At ``warm()``/epoch
  start the daemon hands the cache the ordered list of ranges it will
  serve; a background worker fetches them through the underlying tier
  ahead of the serve loop.
* **Eviction is ordered by next planned use** (Belady's algorithm, which
  is realizable here because the future is literally known): under
  pressure the block whose next use is farthest away — or that will never
  be used again — goes first, and a block is never admitted by evicting
  blocks that are needed *sooner* than it.

Correctness across tiers: a fetched block is CRC-parsed **before**
admission (corrupt bytes never enter the cache), cache hits re-verify
per read when the tier's policy is strict ``True`` (``"open"`` verifies
at admission only — the cached copy is immutable, the same trust model
as verify-on-open mmap), and an evicted block is simply re-fetched from
the tier on next use — stale bytes cannot be served because blocks are
immutable copies keyed by exact range.
"""

from __future__ import annotations

import math
import queue
import threading
import time
from collections import deque
from typing import Iterable, NamedTuple

from repro.storage.backend import (
    RemoteShardHandle,
    StorageBackend,
    parse_record_block,
)

BlockKey = tuple[str, int, int]  # (shard_path, offset, nbytes)


class PlanRange(NamedTuple):
    """One planned batch range: what to fetch and how to verify it."""

    shard_path: str
    offset: int
    nbytes: int
    count: int

    @property
    def key(self) -> BlockKey:
        return (self.shard_path, self.offset, self.nbytes)


class CacheStats:
    """Thread-safe hot-set cache counters."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.prefetched = 0
        self.evictions = 0

    def record(self, field: str, n: int = 1) -> None:
        with self._lock:
            setattr(self, field, getattr(self, field) + n)

    def snapshot(self) -> dict[str, int]:
        """Counters behind ``emlio_storage_tier_cache_hits_total`` /
        ``_cache_misses`` / ``_prefetched`` / ``_evictions`` in the
        metrics registry (:mod:`repro.obs.metrics`)."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "prefetched": self.prefetched,
                "evictions": self.evictions,
            }


class HotSetCache:
    """Bounded byte budget of immutable blocks with next-planned-use eviction."""

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes < 1:
            raise ValueError(f"capacity_bytes must be >= 1, got {capacity_bytes}")
        self.capacity_bytes = capacity_bytes
        self.stats = CacheStats()
        self._lock = threading.Lock()
        self._blocks: dict[BlockKey, bytes] = {}
        self._bytes = 0
        # key -> positions (ascending) at which the plan will read it next.
        self._schedule: dict[BlockKey, deque[int]] = {}

    def plan(self, keys: Iterable[BlockKey]) -> None:
        """Replace the lookahead: ``keys`` in the order they will be read."""
        schedule: dict[BlockKey, deque[int]] = {}
        for pos, key in enumerate(keys):
            schedule.setdefault(key, deque()).append(pos)
        with self._lock:
            self._schedule = schedule

    def _next_use(self, key: BlockKey) -> float:
        uses = self._schedule.get(key)
        return uses[0] if uses else math.inf

    def __contains__(self, key: BlockKey) -> bool:
        with self._lock:
            return key in self._blocks

    @property
    def nbytes(self) -> int:
        with self._lock:
            return self._bytes

    def __len__(self) -> int:
        with self._lock:
            return len(self._blocks)

    def get(self, key: BlockKey) -> bytes | None:
        """Look up a block, consuming this position from the lookahead."""
        with self._lock:
            uses = self._schedule.get(key)
            if uses:
                uses.popleft()
            block = self._blocks.get(key)
        if block is None:
            self.stats.record("misses")
        else:
            self.stats.record("hits")
        return block

    def put(self, key: BlockKey, data: bytes, prefetched: bool = False) -> bool:
        """Admit a block, evicting strictly-later-needed blocks if required.

        Returns ``False`` (and caches nothing) when admission would
        require evicting a block needed sooner than ``key`` — by the
        plan, that trade always loses.
        """
        data = bytes(data)
        nbytes = len(data)
        evicted = 0
        with self._lock:
            if key in self._blocks:
                return True
            if nbytes > self.capacity_bytes:
                return False
            if self._bytes + nbytes > self.capacity_bytes:
                mine = self._next_use(key)
                victims = sorted(
                    self._blocks, key=lambda k: self._next_use(k), reverse=True
                )
                chosen: list[BlockKey] = []
                freed = 0
                for victim in victims:
                    if self._bytes - freed + nbytes <= self.capacity_bytes:
                        break
                    if self._next_use(victim) <= mine:
                        break
                    chosen.append(victim)
                    freed += len(self._blocks[victim])
                if self._bytes - freed + nbytes > self.capacity_bytes:
                    return False
                for victim in chosen:
                    self._bytes -= len(self._blocks.pop(victim))
                    evicted += 1
            self._blocks[key] = data
            self._bytes += nbytes
        if evicted:
            self.stats.record("evictions", evicted)
        if prefetched:
            self.stats.record("prefetched")
        return True

    def hot_shards(self) -> set[str]:
        with self._lock:
            return {key[0] for key in self._blocks}


class CachedShardHandle:
    """Serve planned ranges from the hot set, falling through to the tier."""

    def __init__(self, backend: "CachedBackend", shard_path: str) -> None:
        self._backend = backend
        self.shard_path = shard_path
        self._inner: RemoteShardHandle | None = None

    def _inner_handle(self):
        if self._inner is None:
            self._inner = self._backend.inner.open_shard(self.shard_path)
        return self._inner

    @property
    def nbytes(self) -> int:
        return self._inner_handle().nbytes

    def read_range_views(
        self, offset: int, count: int, nbytes: int | None = None
    ) -> list[memoryview]:
        if nbytes is None:
            # No plan hint means no block identity — bypass the cache.
            return self._inner_handle().read_range_views(offset, count)
        backend = self._backend
        key: BlockKey = (self.shard_path, offset, nbytes)
        block = backend.cache.get(key)
        if block is not None:
            return parse_record_block(
                block,
                count,
                backend.verify_hit,
                shard_path=self.shard_path,
                offset=offset,
            )
        block = backend.fetch_block(PlanRange(self.shard_path, offset, nbytes, count))
        return parse_record_block(
            block, count, False, shard_path=self.shard_path, offset=offset
        )

    def read_range(
        self, offset: int, count: int, nbytes: int | None = None
    ) -> list[bytes]:
        return [bytes(v) for v in self.read_range_views(offset, count, nbytes)]

    def read_region(
        self, offset: int, count: int, nbytes: int
    ) -> tuple[bytes, bool]:
        """Planned range as raw framed bytes (cache-aware, unparsed).

        Hits return the admitted block with the hit-verify policy; misses
        come back pre-verified by :meth:`CachedBackend.fetch_block`, so
        the caller need not re-check them.
        """
        backend = self._backend
        key: BlockKey = (self.shard_path, offset, nbytes)
        block = backend.cache.get(key)
        if block is not None:
            return block, backend.verify_hit
        block = backend.fetch_block(PlanRange(self.shard_path, offset, nbytes, count))
        return block, False

    def close(self) -> None:
        if self._inner is not None:
            self._inner.close()
            self._inner = None


class CachedBackend(StorageBackend):
    """Hot-set cache in front of any :class:`StorageBackend` tier.

    ``tier``/``stats`` pass through to the wrapped tier, so tier counters
    keep meaning "requests that actually hit the tier" — the gap between
    planned reads and tier reads *is* the cache's contribution.
    """

    def __init__(self, inner: StorageBackend, capacity_bytes: int) -> None:
        self.inner = inner
        self.tier = inner.tier
        self.stats = inner.stats
        self.cache = HotSetCache(capacity_bytes)
        verify = getattr(inner, "verify", True)
        # Fetches are always verified unless the tier trusts storage
        # outright; hits re-verify only under strict ``True`` ("open"
        # trusts the immutable admitted copy, like verify-on-open mmap).
        self.verify_fetch = bool(verify)
        self.verify_hit = verify is True
        self._queue: queue.Queue[PlanRange | None] = queue.Queue()
        self._inflight = 0
        self._inflight_lock = threading.Lock()
        self._worker: threading.Thread | None = None
        self._closed = False
        self.prefetch_errors: list[str] = []

    # ---- serve path ----

    def open_shard(self, shard_path: str) -> CachedShardHandle:
        return CachedShardHandle(self, shard_path)

    def fetch_block(self, rng: PlanRange) -> bytes:
        """Fetch one planned range from the tier, verify, admit, return it."""
        block = self.inner.read_bytes(rng.shard_path, rng.offset, rng.nbytes)
        if self.verify_fetch:
            parse_record_block(
                block,
                rng.count,
                True,
                shard_path=rng.shard_path,
                offset=rng.offset,
            )
        self.cache.put(rng.key, block)
        return block

    def stat(self, shard_path: str) -> int:
        return self.inner.stat(shard_path)

    def listdir(self, relpath: str = ".") -> list[str]:
        return self.inner.listdir(relpath)

    # ---- prefetch ----

    def schedule_prefetch(self, ranges: Iterable[tuple]) -> int:
        """Feed the plan: set the eviction lookahead, queue background fetches."""
        plan = [PlanRange(*r) for r in ranges]
        self.cache.plan(r.key for r in plan)
        queued = 0
        for rng in plan:
            if rng.key in self.cache:
                continue
            with self._inflight_lock:
                self._inflight += 1
            self._queue.put(rng)
            queued += 1
        if queued and self._worker is None and not self._closed:
            self._worker = threading.Thread(
                target=self._prefetch_loop, name="storage-prefetch", daemon=True
            )
            self._worker.start()
        return queued

    def _prefetch_loop(self) -> None:
        while True:
            rng = self._queue.get()
            if rng is None:
                return
            try:
                if rng.key not in self.cache:
                    block = self.inner.read_bytes(rng.shard_path, rng.offset, rng.nbytes)
                    if self.verify_fetch:
                        parse_record_block(
                            block,
                            rng.count,
                            True,
                            shard_path=rng.shard_path,
                            offset=rng.offset,
                        )
                    self.cache.put(rng.key, block, prefetched=True)
            except Exception as err:  # noqa: BLE001 — serve path re-raises loudly
                # Never cache a failed fetch; the serve-path re-fetch
                # surfaces the real error on the batch that needs it.
                self.prefetch_errors.append(f"{rng.shard_path}@{rng.offset}: {err}")
            finally:
                with self._inflight_lock:
                    self._inflight -= 1

    @property
    def prefetch_depth(self) -> int:
        with self._inflight_lock:
            return self._inflight

    def wait_prefetch(self, timeout: float | None = None) -> bool:
        """Block until the prefetch queue drains (bench/test helper)."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while self.prefetch_depth > 0:
            if deadline is not None and time.monotonic() > deadline:
                return False
            time.sleep(0.001)
        return True

    # ---- observability ----

    def hot_shards(self) -> set[str]:
        return self.cache.hot_shards()

    def cache_counters(self) -> tuple[int, int, int]:
        snap = self.cache.stats.snapshot()
        return (snap["hits"], snap["misses"], self.prefetch_depth)

    def snapshot(self) -> dict:
        """Inner-tier stats plus the cache sub-dict; the cache counters
        feed ``emlio_storage_tier_*_total{tier=...}`` at scrape time."""
        snap = self.inner.snapshot()
        snap["cache"] = {
            **self.cache.stats.snapshot(),
            "capacity_bytes": self.cache.capacity_bytes,
            "cached_bytes": self.cache.nbytes,
            "cached_blocks": len(self.cache),
            "prefetch_depth": self.prefetch_depth,
        }
        return snap

    def close(self) -> None:
        self._closed = True
        if self._worker is not None:
            self._queue.put(None)
            self._worker.join(timeout=5.0)
            self._worker = None
        self.inner.close()


__all__ = [
    "BlockKey",
    "CacheStats",
    "CachedBackend",
    "CachedShardHandle",
    "HotSetCache",
    "PlanRange",
]
