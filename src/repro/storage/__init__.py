"""Storage substrate: local backend and NFS-like remote file access.

The paper's baselines read training data over an NFSv4 mount; every small
random read then pays a network round trip, which is the root cause of the
latency/energy blow-up in Figures 5–9.  We reproduce that access pattern
with a from-scratch remote-file protocol:

* :class:`~repro.storage.localfs.LocalStorage` — instrumented local reads.
* :class:`~repro.storage.server.StorageServer` — serves a directory over a
  framed channel (LOOKUP / STAT / READ / READDIR), one round trip per op.
* :class:`~repro.storage.nfs.NFSMount` — client mount exposing the same API
  as LocalStorage, so loaders are storage-location agnostic.
"""

from repro.storage.localfs import LocalStorage, StorageStats
from repro.storage.nfs import NFSMount
from repro.storage.server import StorageServer

__all__ = ["LocalStorage", "StorageStats", "NFSMount", "StorageServer"]
