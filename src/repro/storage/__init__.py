"""Storage substrate: tiered backends behind one daemon-facing protocol.

The paper's baselines read training data over an NFSv4 mount; every small
random read then pays a network round trip, which is the root cause of the
latency/energy blow-up in Figures 5–9.  EMLIO's daemons instead issue
contiguous range reads (paper §4.3) — this package provides both sides:

* :class:`~repro.storage.backend.StorageBackend` — the tier protocol the
  daemon serves through (``open_shard() → ShardHandle`` with CRC-verified
  range reads, plus ``stat``/``listdir``).
* :class:`~repro.storage.backend.LocalFSBackend` — mmap fast path.
* :class:`~repro.storage.backend.NFSBackend` — range reads over the
  from-scratch remote-file protocol (:class:`StorageServer` serves a
  directory over a framed channel, one round trip per op;
  :class:`NFSMount` is the client).
* :class:`~repro.storage.objectstore.ObjectStoreBackend` — emulated
  range-GET store with configurable request latency.
* :class:`~repro.storage.cache.CachedBackend` — plan-informed hot-set
  cache (bounded bytes, background prefetch, next-planned-use eviction)
  in front of any tier.
* :class:`~repro.storage.localfs.LocalStorage` — instrumented local reads
  (the substrate under the server and the object store).
"""

from repro.storage.backend import (
    LocalFSBackend,
    NFSBackend,
    ShardHandle,
    StorageBackend,
)
from repro.storage.cache import CachedBackend, HotSetCache
from repro.storage.localfs import LocalStorage, StorageStats
from repro.storage.nfs import NFSMount
from repro.storage.objectstore import ObjectStoreBackend
from repro.storage.server import StorageServer

__all__ = [
    "CachedBackend",
    "HotSetCache",
    "LocalFSBackend",
    "LocalStorage",
    "NFSBackend",
    "NFSMount",
    "ObjectStoreBackend",
    "ShardHandle",
    "StorageBackend",
    "StorageServer",
    "StorageStats",
]
