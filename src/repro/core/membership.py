"""Cluster membership — who is alive, and who owns what.

The control plane extracted from PR 1's ad-hoc failover: every participant
(storage daemon, compute-node receiver) publishes heartbeats over
:mod:`repro.net.heartbeat`; a :class:`ClusterView` folds those beats into a
per-member liveness state machine and emits :class:`MembershipEvent`\\ s the
supervisor (:class:`~repro.core.service.EMLIOService`) consumes to drive
failover.  Nothing in here knows about batch plans or sockets — membership
is a pure fact base, which is what lets every future scaling PR (sharding,
elastic membership) build on it.

Failure detection covers three distinct signatures:

* **crash** — beats stop (or an explicit ``failed`` beat arrives: the fast
  path a supervisor wires when it *observes* the death firsthand).  After
  ``miss_threshold`` silent intervals the member is SUSPECT; after
  ``dead_threshold`` it is DEAD.
* **hang** — beats keep arriving with ``state == "serving"`` but the
  progress counter is frozen for longer than ``hung_after_s``.  A hung
  serve thread is alive, error-free, and utterly useless; thread-state
  polling can never see this.
* **partition** — indistinguishable from a crash on this side of the
  partition, by design; the member is declared DEAD and, should its beats
  return with the same incarnation, a ``recovered`` event fires (the
  supervisor decides whether to reintegrate — re-planned work is never
  clawed back).
"""

from __future__ import annotations

import enum
import threading
import time
from dataclasses import dataclass, field, replace
from typing import Callable

from repro.net.heartbeat import (
    STATE_FAILED,
    STATE_LEAVING,
    STATE_SERVING,
    Heartbeat,
)


class MemberStatus(enum.Enum):
    """Liveness verdict for one member."""

    ALIVE = "alive"
    SUSPECT = "suspect"  # missed beats; failover not yet triggered
    DEAD = "dead"  # miss/hang/explicit failure — failover territory
    LEFT = "left"  # clean departure — never failed over


@dataclass(frozen=True)
class MembershipConfig:
    """Tunables of the failure detector.

    Attributes
    ----------
    interval_s:
        Expected beat period (publishers should use the same value).
    miss_threshold:
        Silent intervals before a member turns SUSPECT.
    dead_threshold:
        Silent intervals before a member turns DEAD (must exceed
        ``miss_threshold``).
    hung_after_s:
        Seconds of frozen progress (while beating and ``serving``) before a
        member is declared DEAD with reason ``"hung"``.  ``0`` disables
        hang detection.  Receivers advance progress from the
        pipeline-*consumption* boundary, so this must exceed the
        worst-case time the consumer spends between batches (e.g. one
        training step) — a slower-than-threshold consumer with payloads
        queued is indistinguishable from a wedged one.
    """

    interval_s: float = 0.5
    miss_threshold: int = 2
    dead_threshold: int = 4
    hung_after_s: float = 5.0

    def __post_init__(self) -> None:
        if self.interval_s <= 0:
            raise ValueError(f"interval_s must be > 0, got {self.interval_s}")
        if self.miss_threshold < 1:
            raise ValueError(f"miss_threshold must be >= 1, got {self.miss_threshold}")
        if self.dead_threshold <= self.miss_threshold:
            raise ValueError(
                f"dead_threshold ({self.dead_threshold}) must exceed "
                f"miss_threshold ({self.miss_threshold})"
            )
        if self.hung_after_s < 0:
            raise ValueError(f"hung_after_s must be >= 0, got {self.hung_after_s}")


@dataclass(frozen=True)
class MembershipEvent:
    """One liveness transition the supervisor should react to."""

    kind: str  # joined | suspect | dead | recovered | left
    member_id: str
    role: str
    reason: str = ""
    incarnation: int = 0


#: Smoothing factor of the per-member observed-throughput EWMA: high enough
#: to follow a genuine load shift within a few beats, low enough that one
#: bursty beat does not whipsaw the placement engine's weights.
RATE_EWMA_ALPHA = 0.3


@dataclass
class Member:
    """Mutable tracked state of one cluster member."""

    member_id: str
    role: str
    incarnation: int
    status: MemberStatus = MemberStatus.ALIVE
    last_seen: float = 0.0  # monotonic clock
    progress: int = 0
    progress_changed: float = 0.0
    state: str = STATE_SERVING
    beats: int = 0
    death_reason: str = ""  # "hung" | "missed" | explicit failure detail
    queue_depth: int = 0  # received-but-unconsumed payloads, from beats
    rate: float = 0.0  # observed throughput: EWMA of progress deltas per second
    cache_hits: int = 0  # cumulative storage-cache hits, from beats
    cache_misses: int = 0  # cumulative storage-cache misses, from beats
    prefetch_depth: int = 0  # planned ranges still queued for prefetch
    decode_ns: int = 0  # mean payload-deserialize ns per batch, from beats
    preprocess_ns: int = 0  # mean decode/augment ns per batch, from beats
    starved_ns: int = 0  # mean consumer-starved ns per batch, from beats

    @property
    def cache_hit_rate(self) -> float | None:
        """Hit fraction of the member's storage cache; None before any read."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else None

    def snapshot(self) -> dict:
        """JSON-able copy for status tooling."""
        rate = self.cache_hit_rate
        return {
            "member_id": self.member_id,
            "role": self.role,
            "incarnation": self.incarnation,
            "status": self.status.value,
            "state": self.state,
            "progress": self.progress,
            "queue_depth": self.queue_depth,
            "rate": round(self.rate, 3),
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": None if rate is None else round(rate, 3),
            "prefetch_depth": self.prefetch_depth,
            "decode_ns": self.decode_ns,
            "preprocess_ns": self.preprocess_ns,
            "starved_ns": self.starved_ns,
            "beats": self.beats,
            "last_seen": self.last_seen,
        }


class ClusterView:
    """Thread-safe membership state machine fed by heartbeats.

    ``observe`` is called from heartbeat-listener reader threads;
    ``poll`` from the supervisor's monitor loop (timeout + hang sweeps).
    Both return the events they generated *and* forward them to
    ``on_event`` (typically ``queue.Queue.put``), so a supervisor can
    consume a single ordered stream.
    """

    def __init__(
        self,
        config: MembershipConfig | None = None,
        on_event: Callable[[MembershipEvent], None] | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.config = config or MembershipConfig()
        self.on_event = on_event
        self._clock = clock
        self._members: dict[str, Member] = {}
        self._lock = threading.Lock()

    def _emit(self, events: list[MembershipEvent]) -> list[MembershipEvent]:
        if self.on_event is not None:
            for ev in events:
                self.on_event(ev)
        return events

    def expect(self, member_id: str, role: str, incarnation: int = 0) -> None:
        """Register a member the supervisor knows must exist.

        A participant that crashes before its *first* beat would otherwise
        be invisible — never joined, never declared dead.  Expecting it
        starts the miss clock immediately: no beat within the dead
        threshold and the usual ``dead`` event fires.
        """
        now = self._clock()
        with self._lock:
            if member_id not in self._members:
                self._members[member_id] = Member(
                    member_id=member_id,
                    role=role,
                    incarnation=incarnation,
                    last_seen=now,
                    progress_changed=now,
                )

    def observe(self, hb: Heartbeat) -> list[MembershipEvent]:
        """Fold one heartbeat into the view; returns resulting events."""
        now = self._clock()
        events: list[MembershipEvent] = []
        with self._lock:
            m = self._members.get(hb.member_id)
            if m is not None and hb.incarnation < m.incarnation:
                return []  # stale beat from a previous life
            if m is None or hb.incarnation > m.incarnation:
                # First sight of this identity/incarnation: a join.  A dead
                # member rejoining with a bumped incarnation is a fresh join
                # too — its old life's work was already re-planned.
                m = Member(
                    member_id=hb.member_id,
                    role=hb.role,
                    incarnation=hb.incarnation,
                    last_seen=now,
                    progress=hb.progress,
                    progress_changed=now,
                )
                self._members[hb.member_id] = m
                events.append(
                    MembershipEvent("joined", hb.member_id, hb.role, incarnation=hb.incarnation)
                )
            if hb.state == STATE_FAILED:
                if m.status not in (MemberStatus.DEAD, MemberStatus.LEFT):
                    m.status = MemberStatus.DEAD
                    m.death_reason = "failed"
                    events.append(
                        MembershipEvent(
                            "dead", m.member_id, m.role,
                            reason=hb.detail or "reported failure",
                            incarnation=m.incarnation,
                        )
                    )
                return self._emit(events)
            if hb.state == STATE_LEAVING:
                if m.status is not MemberStatus.LEFT:
                    m.status = MemberStatus.LEFT
                    events.append(
                        MembershipEvent("left", m.member_id, m.role, incarnation=m.incarnation)
                    )
                return self._emit(events)
            dt = now - m.last_seen
            if m.beats > 0 and dt > 0:
                inst = max(0, hb.progress - m.progress) / dt
                m.rate += RATE_EWMA_ALPHA * (inst - m.rate)
            m.beats += 1
            m.last_seen = now
            m.state = hb.state
            m.queue_depth = hb.queue_depth
            m.cache_hits = hb.cache_hits
            m.cache_misses = hb.cache_misses
            m.prefetch_depth = hb.prefetch_depth
            m.decode_ns = hb.decode_ns
            m.preprocess_ns = hb.preprocess_ns
            m.starved_ns = hb.starved_ns
            advanced = hb.progress != m.progress
            if advanced:
                m.progress = hb.progress
                m.progress_changed = now
            if m.status is MemberStatus.SUSPECT:
                m.status = MemberStatus.ALIVE
                events.append(
                    MembershipEvent(
                        "recovered", m.member_id, m.role, reason="beats resumed",
                        incarnation=m.incarnation,
                    )
                )
            elif m.status is MemberStatus.DEAD:
                # Revival needs the *right* evidence for this incarnation:
                # a member dead for silence revives when beats return (the
                # partition healed); a hung member keeps beating by
                # definition, so only renewed progress clears it; an
                # explicit failure is terminal — rejoin with a bumped
                # incarnation or stay dead.
                if m.death_reason == "failed" or (
                    m.death_reason == "hung" and not advanced
                ):
                    return self._emit(events)
                m.status = MemberStatus.ALIVE
                m.death_reason = ""
                m.progress_changed = now
                events.append(
                    MembershipEvent(
                        "recovered", m.member_id, m.role, reason="returned from dead",
                        incarnation=m.incarnation,
                    )
                )
        return self._emit(events)

    def report_failed(self, member_id: str, reason: str = "") -> list[MembershipEvent]:
        """Supervisor-observed death (e.g. it reaped the thread itself)."""
        events: list[MembershipEvent] = []
        with self._lock:
            m = self._members.get(member_id)
            if m is not None and m.status not in (MemberStatus.DEAD, MemberStatus.LEFT):
                m.status = MemberStatus.DEAD
                m.death_reason = "failed"
                events.append(
                    MembershipEvent("dead", m.member_id, m.role, reason=reason or "reported",
                                    incarnation=m.incarnation)
                )
        return self._emit(events)

    def poll(self) -> list[MembershipEvent]:
        """Timeout + hang sweep; call periodically (≲ every interval)."""
        now = self._clock()
        cfg = self.config
        events: list[MembershipEvent] = []
        with self._lock:
            for m in self._members.values():
                if m.status in (MemberStatus.DEAD, MemberStatus.LEFT):
                    continue
                silent = now - m.last_seen
                if silent > cfg.dead_threshold * cfg.interval_s:
                    m.status = MemberStatus.DEAD
                    m.death_reason = "missed"
                    events.append(
                        MembershipEvent(
                            "dead", m.member_id, m.role,
                            reason=f"missed heartbeats for {silent:.2f}s",
                            incarnation=m.incarnation,
                        )
                    )
                    continue
                if (
                    cfg.hung_after_s > 0
                    and m.state == STATE_SERVING
                    and silent <= cfg.miss_threshold * cfg.interval_s  # still beating
                    and now - m.progress_changed > cfg.hung_after_s
                ):
                    m.status = MemberStatus.DEAD
                    m.death_reason = "hung"
                    events.append(
                        MembershipEvent(
                            "dead", m.member_id, m.role,
                            reason=f"hung: no progress for "
                                   f"{now - m.progress_changed:.2f}s while serving",
                            incarnation=m.incarnation,
                        )
                    )
                    continue
                if (
                    m.status is MemberStatus.ALIVE
                    and silent > cfg.miss_threshold * cfg.interval_s
                ):
                    m.status = MemberStatus.SUSPECT
                    events.append(
                        MembershipEvent(
                            "suspect", m.member_id, m.role,
                            reason=f"missed heartbeats for {silent:.2f}s",
                            incarnation=m.incarnation,
                        )
                    )
        return self._emit(events)

    def forget(self, member_id: str) -> None:
        """Drop a member whose lifecycle is fully settled.

        Supervisors call this for per-epoch participants (daemon entries)
        once their epoch is over, so the view, its poll sweep, and status
        snapshots stay bounded by *live* membership instead of growing
        with every epoch served — the membership analogue of ledger
        compaction.
        """
        with self._lock:
            self._members.pop(member_id, None)

    # -- queries ---------------------------------------------------------------

    def members(self) -> dict[str, Member]:
        """Snapshot (shallow copies) of every tracked member."""
        with self._lock:
            return {k: replace_member(m) for k, m in self._members.items()}

    def status_of(self, member_id: str) -> MemberStatus | None:
        with self._lock:
            m = self._members.get(member_id)
            return m.status if m is not None else None

    def alive(self, role: str | None = None) -> list[str]:
        """Member ids currently ALIVE or SUSPECT (not yet given up on)."""
        with self._lock:
            return sorted(
                m.member_id
                for m in self._members.values()
                if m.status in (MemberStatus.ALIVE, MemberStatus.SUSPECT)
                and (role is None or m.role == role)
            )

    def snapshot(self) -> dict:
        """JSON-able view for the status CLI."""
        with self._lock:
            return {
                "config": {
                    "interval_s": self.config.interval_s,
                    "miss_threshold": self.config.miss_threshold,
                    "dead_threshold": self.config.dead_threshold,
                    "hung_after_s": self.config.hung_after_s,
                },
                "members": [m.snapshot() for m in self._members.values()],
            }


def replace_member(m: Member) -> Member:
    """Shallow copy of a Member (dataclasses.replace with no changes)."""
    return replace(m)


__all__ = [
    "ClusterView",
    "Member",
    "MemberStatus",
    "MembershipConfig",
    "MembershipEvent",
]
