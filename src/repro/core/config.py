"""EMLIO configuration knobs (paper §4, §5)."""

from __future__ import annotations

from dataclasses import dataclass

#: Sentinel for ``reorder_window``: derive the window from the transport
#: shape (``streams_per_node × hwm``) instead of manual tuning.  That product
#: bounds how many payloads can be in flight ahead of the slowest stream —
#: exactly the worst-case arrival skew a reorder window must absorb.
AUTO_REORDER = -1


@dataclass(frozen=True)
class EMLIOConfig:
    """All tunables of the EMLIO pipeline.

    Attributes
    ----------
    batch_size:
        B — records per pre-batched payload (Algorithm 2).
    epochs:
        E — epochs planned ahead of time.
    hwm:
        ZMQ-style high-water mark per PUSH stream (paper §4.5 uses 16).
    daemon_threads:
        T — parallel serialize+send workers per (daemon, target node).
        Figure 7 uses 1; Figure 8 shows concurrency 2 winning for 2 MB
        records.
    streams_per_node:
        Parallel TCP/MQ streams per (daemon, node) pair.
    prefetch:
        Q — receiver-side DALI prefetch queue depth (Algorithm 3).
    workers:
        Receiver-side preprocess worker threads (the DALI-style pool).
        1 keeps the single prefetch thread; >1 decodes/augments batches
        concurrently — sjpg/scipy/numpy release the GIL — with
        order-preserving reassembly on output.
    output_hw:
        Spatial size of preprocessed tensors.
    coverage:
        ``"partition"`` — each epoch's shards are split round-robin across
        compute nodes (DDP data-parallel semantics).
        ``"replicate"`` — every node receives every batch (Algorithm 2's
        literal "each node receives E x ceil(|D|/B) batches").
    seed:
        Shuffling seed (per-epoch shuffles derive from it).
    reorder_window:
        Receiver-side bounded reorder window: up to this many payloads are
        buffered and emitted lowest-sequence-first, smoothing out-of-order
        arrival (reconnect replays, failover overlap) with bounded memory.
        0 (default) passes batches through in arrival order;
        :data:`AUTO_REORDER` (-1) derives the window from
        ``streams_per_node × hwm`` (see :attr:`effective_reorder_window`).
    verify_reads:
        TFRecord CRC policy on the daemon's serve path.  The default
        ``True`` verifies every record as it is read — corruption must
        surface at read time, not as garbage tensors, even when a shard
        mutates mid-run.  ``"open"`` verifies the whole shard once when
        its reader is first opened and then serves the hot loop without
        per-record CRC work (trusts storage to stay immutable after
        open); ``False`` trusts the storage outright.
    transport:
        Daemon→receiver data path.  ``"tcp"`` (default) is the credit-based
        PUSH/PULL socket; ``"shm"`` forces the shared-memory ring transport
        (:mod:`repro.net.shm`), falling back to TCP when the attach
        handshake fails; ``"auto"`` attempts shm only for co-located,
        unshaped pairs and uses TCP otherwise.
    shm_ring_bytes:
        Data capacity of each shm ring.  Must hold the HWM worth of
        in-flight frames (roughly ``hwm × serialized batch size``, plus
        wrap slack) or the producer throttles on bytes before credits.
    max_open_shards:
        Cap on concurrently open shard handles per daemon (each localfs
        handle pins an fd + mmap).  Least-recently-used handles beyond
        the cap are closed; a re-touched shard simply reopens.
    payload_version:
        Wire schema the daemon emits (see :mod:`repro.serialize.payload`).
        3 (default) is the columnar layout; 2 forces the row layout — the
        mixed-version fallback knob.  Receivers decode either, so nodes
        on different versions interoperate.
    """

    batch_size: int = 32
    epochs: int = 1
    hwm: int = 16
    daemon_threads: int = 1
    streams_per_node: int = 2
    prefetch: int = 2
    workers: int = 1
    output_hw: tuple[int, int] = (64, 64)
    coverage: str = "partition"
    seed: int = 0
    reorder_window: int = 0
    verify_reads: bool | str = True
    transport: str = "tcp"
    shm_ring_bytes: int = 8 * 1024 * 1024
    max_open_shards: int = 64
    payload_version: int = 3

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.epochs < 1:
            raise ValueError(f"epochs must be >= 1, got {self.epochs}")
        if self.hwm < 1:
            raise ValueError(f"hwm must be >= 1, got {self.hwm}")
        if self.daemon_threads < 1:
            raise ValueError(f"daemon_threads must be >= 1, got {self.daemon_threads}")
        if self.streams_per_node < 1:
            raise ValueError(f"streams_per_node must be >= 1, got {self.streams_per_node}")
        if self.prefetch < 1:
            raise ValueError(f"prefetch must be >= 1, got {self.prefetch}")
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.coverage not in ("partition", "replicate"):
            raise ValueError(f"coverage must be 'partition' or 'replicate', got {self.coverage!r}")
        if self.reorder_window < AUTO_REORDER:
            raise ValueError(
                f"reorder_window must be >= 0 or AUTO_REORDER ({AUTO_REORDER}), "
                f"got {self.reorder_window}"
            )
        if self.verify_reads not in (True, False, "open"):
            raise ValueError(
                f"verify_reads must be True, False, or 'open', got {self.verify_reads!r}"
            )
        if self.transport not in ("tcp", "shm", "auto"):
            raise ValueError(
                f"transport must be 'tcp', 'shm', or 'auto', got {self.transport!r}"
            )
        if self.shm_ring_bytes < 64 * 1024:
            raise ValueError(
                f"shm_ring_bytes must be >= 65536, got {self.shm_ring_bytes}"
            )
        if self.max_open_shards < 1:
            raise ValueError(
                f"max_open_shards must be >= 1, got {self.max_open_shards}"
            )
        if self.payload_version not in (2, 3):
            raise ValueError(
                f"payload_version must be 2 or 3, got {self.payload_version!r}"
            )

    def resolve_reorder_window(self, override: int | None = None) -> int:
        """Resolve a reorder window against this config.

        ``override=None`` inherits :attr:`reorder_window`;
        :data:`AUTO_REORDER` (from either source) derives
        ``streams_per_node × hwm``: with S parallel streams of HWM credits
        each, at most ``S × hwm`` payloads can be in flight, so an arrival
        can run at most that far ahead of the lowest outstanding sequence
        number — a window of that size restores dispatch order without
        ever stalling on a payload that cannot be outstanding.
        """
        value = self.reorder_window if override is None else override
        if value == AUTO_REORDER:
            return self.streams_per_node * self.hwm
        return value

    @property
    def effective_reorder_window(self) -> int:
        """The configured reorder window after resolving :data:`AUTO_REORDER`."""
        return self.resolve_reorder_window()
