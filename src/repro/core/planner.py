"""Planner — Algorithm 2's planning half (lines 1–7).

From shard index metadata alone (never touching record bytes), the Planner
produces, for every epoch and compute node, the exact contiguous TFRecord
byte ranges forming each fixed-size batch:

1. load ``mapping_shard_*.json`` indexes (done by
   :class:`~repro.tfrecord.sharder.ShardedDataset`);
2. build the global label map;
3. per epoch: shuffle the shard list, assign shards to nodes round-robin
   (or replicate, per config), slice each shard into runs of ``B``
   consecutive records, and shuffle batch dispatch order;
4. split each node's batch list into ``T`` per-thread work lists.

Invariants (tested property-style):
* partition mode: per epoch, every record is assigned to exactly one node;
* every batch has exactly ``B`` records except possibly a shard's tail;
* each batch is one contiguous byte range within one shard.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Collection, Iterable

import numpy as np

from repro.core.config import EMLIOConfig
from repro.tfrecord.sharder import ShardedDataset


@dataclass(frozen=True)
class BatchAssignment:
    """One planned batch: a contiguous record run inside one shard."""

    epoch: int
    node_id: int
    batch_index: int  # dispatch order within (epoch, node)
    shard: str
    shard_path: str
    start_record: int
    offset: int
    nbytes: int
    count: int
    labels: tuple[int, ...]

    def __post_init__(self) -> None:
        if self.count != len(self.labels):
            raise ValueError(
                f"count {self.count} != len(labels) {len(self.labels)} for batch "
                f"(epoch={self.epoch}, node={self.node_id}, index={self.batch_index})"
            )


@dataclass(frozen=True)
class BatchPlan:
    """The full plan: assignments for every (epoch, node)."""

    assignments: tuple[BatchAssignment, ...]
    num_nodes: int
    epochs: int
    batch_size: int
    coverage: str

    def for_epoch_node(self, epoch: int, node_id: int) -> list[BatchAssignment]:
        return [
            a
            for a in self.assignments
            if a.epoch == epoch and a.node_id == node_id
        ]

    def for_node(self, node_id: int) -> list[BatchAssignment]:
        return [a for a in self.assignments if a.node_id == node_id]

    def thread_splits(
        self, epoch: int, node_id: int, threads: int
    ) -> list[list[BatchAssignment]]:
        """Algorithm 2 line 7: split a node's work into T subsets.

        Round-robin over the dispatch order so threads stay load-balanced
        even when shard sizes differ.
        """
        if threads < 1:
            raise ValueError(f"threads must be >= 1, got {threads}")
        batches = self.for_epoch_node(epoch, node_id)
        return [batches[t::threads] for t in range(threads)]

    def batches_per_node(self, node_id: int, epoch: int | None = None) -> int:
        return len(
            [
                a
                for a in self.assignments
                if a.node_id == node_id and (epoch is None or a.epoch == epoch)
            ]
        )

    def samples_per_node(self, node_id: int, epoch: int) -> int:
        return sum(a.count for a in self.for_epoch_node(epoch, node_id))

    def keys(self, epoch: int | None = None) -> set[tuple[int, int, int]]:
        """Delivery keys ``(epoch, node_id, batch_index)`` of every batch.

        ``batch_index`` doubles as the payload sequence number, so these are
        exactly the keys a :class:`~repro.core.recovery.DeliveryLedger`
        records.
        """
        return {
            (a.epoch, a.node_id, a.batch_index)
            for a in self.assignments
            if epoch is None or a.epoch == epoch
        }

    def subset(self, assignments: Iterable[BatchAssignment]) -> "BatchPlan":
        """A plan carrying the given assignments under this plan's metadata.

        The supervisor hands these to failover/scale-out daemons: the
        assignment tuple *is* the work list (it may hold re-targeted
        copies from outside the original plan), while batch size, epoch
        count and coverage still describe the deployment.
        """
        return BatchPlan(
            assignments=tuple(assignments),
            num_nodes=self.num_nodes,
            epochs=self.epochs,
            batch_size=self.batch_size,
            coverage=self.coverage,
        )

    def residual(
        self,
        delivered: Collection[tuple[int, int, int]],
        epoch: int | None = None,
        shards: Iterable[str] | None = None,
    ) -> "BatchPlan":
        """The sub-plan still owed after ``delivered`` keys have landed.

        Used by failover/resume: assignments are reused verbatim from this
        plan, so every planner invariant (contiguity, batch size, no record
        assigned twice) carries over to the residual by construction.
        ``epoch``/``shards`` optionally narrow the residual to one epoch or
        one daemon's shard set.
        """
        delivered = set(delivered)
        shard_set = None if shards is None else set(shards)
        return self.subset(
            a
            for a in self.assignments
            if (a.epoch, a.node_id, a.batch_index) not in delivered
            and (epoch is None or a.epoch == epoch)
            and (shard_set is None or a.shard in shard_set)
        )


class Planner:
    """Builds a :class:`BatchPlan` from a sharded dataset and config."""

    def __init__(self, dataset: ShardedDataset, num_nodes: int, config: EMLIOConfig) -> None:
        if num_nodes < 1:
            raise ValueError(f"num_nodes must be >= 1, got {num_nodes}")
        self.dataset = dataset
        self.num_nodes = num_nodes
        self.config = config
        # Algorithm 2 line 2: the global label map.
        self.label_map = dataset.labels()

    def _shard_batches(self, ix, rng: np.random.Generator) -> list[dict]:
        """Slice one shard into contiguous B-record runs, shuffled order."""
        runs = ix.contiguous_runs(self.config.batch_size)
        order = rng.permutation(len(runs))
        out = []
        for run_i in order:
            start, offset, nbytes = runs[run_i]
            labels = tuple(
                e.label for e in ix.entries[start : start + self.config.batch_size]
            )
            out.append(
                dict(
                    shard=ix.shard,
                    shard_path=ix.path,
                    start_record=start,
                    offset=offset,
                    nbytes=nbytes,
                    count=len(labels),
                    labels=labels,
                )
            )
        return out

    def plan(self) -> BatchPlan:
        """Produce assignments for all epochs (Algorithm 2 lines 3–7)."""
        cfg = self.config
        assignments: list[BatchAssignment] = []
        for epoch in range(cfg.epochs):
            rng = np.random.default_rng((cfg.seed, epoch))
            shards = list(self.dataset.indexes)
            shard_order = rng.permutation(len(shards))  # line 4: shuffle
            shuffled = [shards[i] for i in shard_order]

            if cfg.coverage == "partition":
                node_shards: list[list] = [[] for _ in range(self.num_nodes)]
                for i, ix in enumerate(shuffled):  # line 5: round-robin
                    node_shards[i % self.num_nodes].append(ix)
            else:  # replicate: every node gets every shard
                node_shards = [list(shuffled) for _ in range(self.num_nodes)]

            for node_id, shard_list in enumerate(node_shards):
                batches: list[dict] = []
                for ix in shard_list:
                    batches.extend(self._shard_batches(ix, rng))
                # Shuffle dispatch order across shards too, so a node doesn't
                # consume one shard's classes in a burst.
                dispatch = rng.permutation(len(batches))
                for bi, src in enumerate(dispatch):
                    b = batches[src]
                    assignments.append(
                        BatchAssignment(
                            epoch=epoch,
                            node_id=node_id,
                            batch_index=bi,
                            **b,
                        )
                    )
        return BatchPlan(
            assignments=tuple(assignments),
            num_nodes=self.num_nodes,
            epochs=cfg.epochs,
            batch_size=cfg.batch_size,
            coverage=cfg.coverage,
        )
