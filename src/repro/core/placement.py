"""PlacementEngine — the one owner of every batch→owner decision.

Until this module existed, placement logic was split across three one-way
code paths: initial epoch planning (:mod:`repro.core.planner`), daemon
failover and receiver failover (:mod:`repro.core.recovery`).  None of them
could *add* capacity, and all balanced by batch count alone.  The engine
unifies them: join, leave, death and load skew are one rebalancing problem
over the same vocabulary — residual assignments, reachable storage roots,
fresh sequence numbers, and ``reassign`` ledger lines.

Decisions are **load-weighted**.  Each member's weight comes from the
signals the heartbeat substrate already carries:

* *observed throughput* — the EWMA of progress deltas the
  :class:`~repro.core.membership.ClusterView` keeps per member;
* *queue depth* — received-but-unconsumed payloads, reported in each beat.

A member with twice the observed throughput adopts roughly twice the
re-planned work; a member sitting on a deep queue adopts less.  With no
load signal at all (cold start, unit tests) every weight degenerates to 1
and placement reduces to the old count-balanced behaviour — deliberately,
so the engine is a strict generalization.

Exactly-once guarantees hold through scale-out exactly as through
failover: every ownership change is expressed as an ``old key → new key``
re-mapping the supervisor persists via
:meth:`~repro.core.recovery.DeliveryLedger.record_reassignment`, and the
planner's invariants carry into every residual by construction (re-planned
assignments are copies of planned ones — same shard slice, same labels).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from pathlib import Path
from typing import Callable, Collection, Iterable, Mapping

from repro.core.config import EMLIOConfig
from repro.core.planner import BatchAssignment, BatchPlan, Planner
from repro.tfrecord.sharder import ShardedDataset
from repro.util.logging import TimestampLogger

#: A delivery key: (epoch, node_id, seq) — see :mod:`repro.core.recovery`.
DeliveryKey = tuple[int, int, int]


class FailoverError(RuntimeError):
    """A dead member's residual work cannot be re-planned onto survivors."""


@dataclass(frozen=True)
class MemberLoad:
    """One member's load signal, as the placement engine consumes it.

    Attributes
    ----------
    throughput:
        Observed work rate (heartbeat progress per second, EWMA).  ``0``
        means "no signal yet", not "stalled" — the engine substitutes the
        peer average so a cold member still gets a fair share.
    queue_depth:
        Received-but-unconsumed payloads (receiver backpressure), added to
        a member's outstanding work before weighting.
    cached_shards:
        Shard paths whose bytes this member's storage cache already holds
        (daemon roots only).  A pure tie-breaker: when load costs are
        equal, placement prefers the root that won't have to re-fetch.
    """

    throughput: float = 0.0
    queue_depth: int = 0
    cached_shards: frozenset = frozenset()

    def __post_init__(self) -> None:
        if self.throughput < 0:
            raise ValueError(f"throughput must be >= 0, got {self.throughput}")
        if self.queue_depth < 0:
            raise ValueError(f"queue_depth must be >= 0, got {self.queue_depth}")
        object.__setattr__(self, "cached_shards", frozenset(self.cached_shards))


@dataclass(frozen=True)
class ElasticPolicy:
    """Admission and rebalancing policy for elastic membership.

    Attributes
    ----------
    admit:
        ``"auto"`` admits any member that registers and starts beating;
        ``"closed"`` rejects joins (the pre-elastic behaviour).
    min_members:
        Deployment floor: a spec asking for fewer receivers than this is
        invalid (scale-*in* below the floor is likewise refused).
    max_members:
        Join ceiling; ``0`` means unbounded.
    rebalance_threshold:
        Minimum fraction of the outstanding work that a rebalance must
        move to be worth acting on; below it a join is admitted but the
        load shift is skipped (it would churn more than it balances).
    """

    admit: str = "auto"
    min_members: int = 1
    max_members: int = 0
    rebalance_threshold: float = 0.0

    def __post_init__(self) -> None:
        if self.admit not in ("auto", "closed"):
            raise ValueError(f"admit must be 'auto' or 'closed', got {self.admit!r}")
        if self.min_members < 1:
            raise ValueError(f"min_members must be >= 1, got {self.min_members}")
        if self.max_members < 0:
            raise ValueError(f"max_members must be >= 0, got {self.max_members}")
        if self.max_members and self.max_members < self.min_members:
            raise ValueError(
                f"max_members ({self.max_members}) must be 0 (unbounded) or "
                f">= min_members ({self.min_members})"
            )
        if not 0.0 <= self.rebalance_threshold < 1.0:
            raise ValueError(
                f"rebalance_threshold must be in [0, 1), got {self.rebalance_threshold}"
            )


@dataclass(frozen=True)
class ReceiverReassignment:
    """The outcome of re-targeting batches onto other receivers.

    Produced by :meth:`PlacementEngine.plan_receiver_failover` (dead node)
    and :meth:`PlacementEngine.retarget` (scale-out onto a joined node).

    Attributes
    ----------
    assignments:
        Re-targeted copies of the source assignments: ``node_id`` points at
        a target receiver and ``batch_index`` (== payload seq) is fresh,
        past anything that node has seen this epoch.
    key_map:
        ``old delivery key -> new delivery key`` for every re-target; the
        supervisor persists these via
        :meth:`~repro.core.recovery.DeliveryLedger.record_reassignment`.
    by_root:
        ``storage root -> assignments`` it should serve (every assignment
        appears under exactly one reachable root).
    extra_per_node:
        ``target node -> batch count`` it must additionally consume.
    """

    assignments: tuple[BatchAssignment, ...]
    key_map: dict[DeliveryKey, DeliveryKey]
    by_root: dict[str, tuple[BatchAssignment, ...]]
    extra_per_node: dict[int, int]


def _shard_file_exists(root: str, shard_path: str) -> bool:
    return (Path(root) / shard_path).exists()


def _weights(keys: Iterable, loads: Mapping) -> dict:
    """Throughput weight per key; unknown/cold members get the peer mean.

    Substituting the mean (rather than a constant) keeps known and unknown
    weights on the same scale: a joining member with no history is assumed
    average, and with *no* history anywhere every weight is 1 — the
    count-balanced degenerate case.
    """
    rates = {
        k: (loads.get(k).throughput if loads.get(k) is not None else 0.0)
        for k in keys
    }
    positive = [r for r in rates.values() if r > 0]
    default = sum(positive) / len(positive) if positive else 1.0
    return {k: (r if r > 0 else default) for k, r in rates.items()}


class PlacementEngine:
    """Owns all batch→owner assignment: plans, failover re-plans, scale-out.

    Outcomes of the re-plans surface in the metrics registry as
    ``emlio_failovers_total{kind=...}``, ``emlio_rebalances_total`` and
    ``emlio_ledger_reassigned_batches`` (:mod:`repro.obs.metrics`).

    Parameters
    ----------
    plan:
        The epoch plan (source of residual assignments); build one with
        :meth:`plan_epochs`.
    ledger:
        Delivery ledger consulted for what already arrived (anything with
        ``delivered()``/``reassignments()``; ``None`` only for pure
        planning uses that never compute residuals).
    roots:
        ``storage_root -> owned shard names`` for every daemon; ``None``
        as a value means "all shards in the plan" (the single-daemon case).
    reachable:
        ``(root, shard_path) -> bool`` predicate deciding whether a root
        can serve a shard.  Defaults to a file-existence check, which
        covers both replicated storage and shared mounts.
    node_loads / root_loads:
        Load signals per receiver node id / per storage root; missing
        entries weigh as the peer average (see :class:`MemberLoad`).
    policy:
        Elastic admission/rebalance policy; defaults to an open policy
        with no rebalance threshold.
    """

    def __init__(
        self,
        plan: BatchPlan,
        ledger=None,
        roots: Mapping[str, Collection[str] | None] | None = None,
        reachable: Callable[[str, str], bool] | None = None,
        logger: TimestampLogger | None = None,
        node_loads: Mapping[int, MemberLoad] | None = None,
        root_loads: Mapping[str, MemberLoad] | None = None,
        policy: ElasticPolicy | None = None,
    ) -> None:
        self.plan = plan
        self.ledger = ledger
        self.roots = dict(roots or {})
        self.reachable = reachable or _shard_file_exists
        self.logger = logger or TimestampLogger(name="placement")
        self.node_loads = dict(node_loads or {})
        self.root_loads = dict(root_loads or {})
        self.policy = policy or ElasticPolicy()

    # -- initial planning ------------------------------------------------------

    @staticmethod
    def plan_epochs(
        dataset: ShardedDataset, num_nodes: int, config: EMLIOConfig
    ) -> BatchPlan:
        """The initial epoch plan (Algorithm 2's planning half)."""
        return Planner(dataset, num_nodes=num_nodes, config=config).plan()

    # -- residuals -------------------------------------------------------------

    def shards_of(self, root: str) -> set[str]:
        """Shard names the daemon at ``root`` was responsible for."""
        owned = self.roots.get(root)
        if owned is None:
            return {a.shard for a in self.plan.assignments}
        return set(owned)

    def residual_plan(self, epoch: int, shards: Iterable[str] | None = None) -> BatchPlan:
        """Sub-plan of not-yet-delivered assignments (optionally per shard set).

        Keys already re-owned by a receiver failover or a scale-out count
        as handled here — their re-targeted copies live outside the
        original plan.
        """
        delivered = self.ledger.delivered(epoch=epoch)
        delivered |= set(self.ledger.reassignments(epoch=epoch))
        return self.plan.residual(delivered, epoch=epoch, shards=shards)

    # -- load-weighted choice helpers ------------------------------------------

    def _node_backlog(self, node: int) -> int:
        load = self.node_loads.get(node)
        return load.queue_depth if load is not None else 0

    def _root_cost(
        self,
        root: str,
        shard_path: str,
        placed: int,
        weights: Mapping[str, float],
    ) -> tuple[float, int]:
        """``(load cost, locality)`` for placing one shard on one root.

        Locality is 0 when the root's cache already holds the shard's
        bytes, 1 otherwise — strictly subordinate to load, so it only
        decides between otherwise-equal candidates.
        """
        load = self.root_loads.get(root)
        qd = load.queue_depth if load is not None else 0
        hot = 0 if load is not None and shard_path in load.cached_shards else 1
        return ((placed + qd) / weights.get(root, 1.0), hot)

    def _place_root(
        self,
        shard_path: str,
        survivors: Collection[str],
        placed: dict[str, int],
        weights: Mapping[str, float],
    ) -> str | None:
        """Cheapest reachable survivor root for one shard, or None.

        Cost is (batches already placed here + reported queue depth) over
        the root's throughput weight — least-*loaded*, not least-counted —
        with cache locality breaking ties: among equally loaded roots the
        one whose hot-set cache already holds the shard's bytes wins, so a
        failover or scale-out re-plan doesn't re-fetch what a survivor
        already prefetched.
        """

        def cost(r: str):
            return (*self._root_cost(r, shard_path, placed.get(r, 0), weights), r)

        for root in sorted(survivors, key=cost):
            if self.reachable(root, shard_path):
                return root
        return None

    def place_assignments(
        self,
        assignments: Collection[BatchAssignment],
        survivors: Collection[str],
    ) -> dict[str, tuple[BatchAssignment, ...]]:
        """Place loose assignments on reachable roots, cheapest-first.

        Used for re-targeted assignments, which live outside the original
        plan and therefore outside any root's shard ownership.  Raises
        :class:`FailoverError` when a shard is unreachable by every
        survivor.
        """
        weights = _weights(survivors, self.root_loads)
        by_root: dict[str, list[BatchAssignment]] = {}
        placed: dict[str, int] = {}
        unreachable: list[str] = []
        for a in assignments:
            root = self._place_root(a.shard_path, survivors, placed, weights)
            if root is None:
                unreachable.append(a.shard)
                continue
            by_root.setdefault(root, []).append(a)
            placed[root] = placed.get(root, 0) + 1
        if unreachable:
            raise FailoverError(
                f"no surviving root can reach shards {sorted(set(unreachable))[:3]} "
                f"({len(unreachable)} assignments)"
            )
        return {r: tuple(v) for r, v in by_root.items()}

    # -- daemon failover -------------------------------------------------------

    def plan_failover(
        self,
        dead_root: str,
        epoch: int,
        survivors: Collection[str] | None = None,
    ) -> dict[str, set[str]]:
        """Decide which survivor takes over each of the dead root's shards.

        Only shards with *undelivered* batches need a new home.  Shards are
        placed cheapest-first (load-weighted) across reachable survivors.
        Raises :class:`FailoverError` if any needed shard is unreachable by
        every survivor.

        ``survivors`` overrides the default "every root but the dead one" —
        the supervisor passes the roots of daemons that are actually alive,
        so a root stays a valid takeover target while any daemon on it
        lives.
        """
        residual = self.residual_plan(epoch, shards=self.shards_of(dead_root))
        needed = {a.shard: a.shard_path for a in residual.assignments}
        if survivors is None:
            survivors = [r for r in self.roots if r != dead_root]
        else:
            survivors = list(survivors)
        weights = _weights(survivors, self.root_loads)
        takeover: dict[str, set[str]] = {}
        placed: dict[str, int] = {}
        unreachable: list[str] = []
        for shard in sorted(needed):
            root = self._place_root(needed[shard], survivors, placed, weights)
            if root is None:
                unreachable.append(shard)
                continue
            takeover.setdefault(root, set()).add(shard)
            placed[root] = placed.get(root, 0) + 1
        if unreachable:
            raise FailoverError(
                f"no surviving daemon can reach shards {unreachable[:3]} "
                f"({len(unreachable)} total) of dead root {dead_root}"
            )
        self.logger.log(
            "failover_planned",
            dead_root=dead_root,
            epoch=epoch,
            residual_batches=len(residual.assignments),
            takeover={r: sorted(s) for r, s in takeover.items()},
        )
        return takeover

    # -- receiver re-targeting (failover and scale-out share this core) --------

    def retarget(
        self,
        assignments: Collection[BatchAssignment],
        targets: Collection[int],
        next_seq: Mapping[int, int],
        survivor_roots: Collection[str] | None = None,
        context: str = "",
    ) -> ReceiverReassignment:
        """Re-own loose assignments across ``targets``, load-weighted.

        Every assignment is copied with ``node_id`` pointing at a target
        receiver and a fresh ``batch_index``/seq starting at that node's
        ``next_seq`` — fresh so the re-target can never collide with a seq
        the target has already seen (dedup would silently eat the batch).
        Each re-target is also placed on a reachable storage root.

        Targets adopt in inverse proportion to their cost — (already
        adopted + reported queue depth) over throughput weight — so a fast
        idle node takes more than a slow or backlogged one.  Raises
        :class:`FailoverError` with no targets, or when a needed shard is
        unreachable by every surviving root.
        """
        targets = sorted(set(targets))
        if not assignments:
            return ReceiverReassignment((), {}, {}, {})
        if not targets:
            raise FailoverError(
                f"no surviving receiver can adopt {len(assignments)} undelivered "
                f"batches{context}"
            )
        if survivor_roots is None:
            survivor_roots = list(self.roots)
        weights = _weights(targets, self.node_loads)
        root_weights = _weights(survivor_roots, self.root_loads)
        seq = {n: int(next_seq.get(n, 0)) for n in targets}
        extra: dict[int, int] = {n: 0 for n in targets}
        key_map: dict[DeliveryKey, DeliveryKey] = {}
        by_root: dict[str, list[BatchAssignment]] = {}
        placed: dict[str, int] = {}
        unreachable: list[str] = []

        def cost(n: int):
            return ((extra[n] + self._node_backlog(n)) / weights[n], n)

        for a in sorted(assignments, key=lambda a: (a.node_id, a.batch_index)):
            root = self._place_root(a.shard_path, survivor_roots, placed, root_weights)
            if root is None:
                unreachable.append(a.shard)
                continue
            node = min(targets, key=cost)
            new_a = replace(a, node_id=node, batch_index=seq[node])
            key_map[(a.epoch, a.node_id, a.batch_index)] = (a.epoch, node, seq[node])
            seq[node] += 1
            extra[node] += 1
            by_root.setdefault(root, []).append(new_a)
            placed[root] = placed.get(root, 0) + 1
        if unreachable:
            raise FailoverError(
                f"no surviving root can reach shards {sorted(set(unreachable))[:3]} "
                f"({len(unreachable)} batches){context}"
            )
        return ReceiverReassignment(
            assignments=tuple(a for root in by_root.values() for a in root),
            key_map=key_map,
            by_root={r: tuple(v) for r, v in by_root.items()},
            extra_per_node={n: c for n, c in extra.items() if c},
        )

    def plan_receiver_failover(
        self,
        dead_node: int,
        epoch: int,
        surviving_nodes: Collection[int],
        next_seq: Mapping[int, int],
        survivor_roots: Collection[str] | None = None,
        residual: Collection[BatchAssignment] | None = None,
    ) -> ReceiverReassignment:
        """Re-target a dead compute node's undelivered batches onto survivors.

        ``residual`` overrides the default ledger-diffed computation — the
        supervisor passes it when earlier failovers created assignments
        outside the original plan (a re-targeted batch whose *new* owner
        died too).

        Raises :class:`FailoverError` with no surviving receiver, or when a
        needed shard is unreachable by every surviving root.
        """
        surviving_nodes = sorted(set(surviving_nodes) - {dead_node})
        if residual is None:
            base = self.residual_plan(epoch)
            residual = [a for a in base.assignments if a.node_id == dead_node]
        else:
            residual = [a for a in residual if a.node_id == dead_node]
        if not residual:
            return ReceiverReassignment((), {}, {}, {})
        result = self.retarget(
            residual,
            surviving_nodes,
            next_seq,
            survivor_roots=survivor_roots,
            context=f" of dead node {dead_node}",
        )
        self.logger.log(
            "receiver_failover_planned",
            dead_node=dead_node,
            epoch=epoch,
            residual_batches=len(result.assignments),
            adopted={str(n): c for n, c in result.extra_per_node.items()},
            roots={r: len(v) for r, v in result.by_root.items()},
        )
        return result

    # -- scale-out -------------------------------------------------------------

    def select_scale_out(
        self,
        assignments: Collection[BatchAssignment],
        new_node: int,
        threshold: float | None = None,
    ) -> list[BatchAssignment]:
        """Pick which donors' outstanding batches shift onto a joined node.

        ``assignments`` is the donors' undelivered residual; the joined
        node's fair share is its throughput weight over the total (a node
        with no history weighs as the donor average — an equal share).
        Batches are drafted from the currently most expensive donor,
        highest dispatch index first (the batches least likely to already
        be in flight, so the supervisor's claim step loses little).

        Returns an empty list when the shift would move less than the
        rebalance threshold's fraction of the outstanding work.
        """
        donors = sorted({a.node_id for a in assignments if a.node_id != new_node})
        if not donors:
            return []
        weights = _weights([*donors, new_node], self.node_loads)
        total = len(assignments)
        target = int(total * weights[new_node] / sum(weights.values()))
        thr = self.policy.rebalance_threshold if threshold is None else threshold
        if target <= 0 or target < thr * total:
            self.logger.log(
                "scale_out_below_threshold",
                new_node=new_node,
                outstanding=total,
                target=target,
                threshold=thr,
            )
            return []
        by_donor = {
            n: sorted(
                (a for a in assignments if a.node_id == n),
                key=lambda a: a.batch_index,
            )
            for n in donors
        }

        def cost(n: int):
            return (
                (len(by_donor[n]) + self._node_backlog(n)) / weights[n],
                n,
            )

        picked: list[BatchAssignment] = []
        for _ in range(target):
            donor = max((n for n in donors if by_donor[n]), key=cost, default=None)
            if donor is None:
                break
            picked.append(by_donor[donor].pop())
        return picked

    # -- daemon scale-out: shard ownership rebalance ---------------------------

    def plan_shard_ownership(
        self,
        roots: Collection[str] | None = None,
        only: Collection[str] | None = None,
    ) -> dict[str, set[str]]:
        """Weighted ownership of planned shards across daemon roots.

        Used when a storage daemon joins mid-run: at the next epoch start
        the supervisor re-divides the plan's shards across all roots —
        heaviest shards first, each to the cheapest reachable root — and
        updates the daemons' shard filters.  ``only`` restricts the
        division to a subset of shard names (the rest are pinned
        elsewhere).  Raises :class:`FailoverError` when a shard is
        reachable by no root at all.
        """
        roots = sorted(roots if roots is not None else self.roots)
        weights = _weights(roots, self.root_loads)
        shard_paths: dict[str, str] = {}
        shard_batches: dict[str, int] = {}
        for a in self.plan.assignments:
            if only is not None and a.shard not in only:
                continue
            shard_paths.setdefault(a.shard, a.shard_path)
            shard_batches[a.shard] = shard_batches.get(a.shard, 0) + 1
        ownership: dict[str, set[str]] = {r: set() for r in roots}
        assigned: dict[str, int] = {r: 0 for r in roots}
        unreachable: list[str] = []
        for shard in sorted(shard_paths, key=lambda s: (-shard_batches[s], s)):
            candidates = [r for r in roots if self.reachable(r, shard_paths[shard])]
            if not candidates:
                unreachable.append(shard)
                continue

            def cost(r: str):
                return (
                    *self._root_cost(r, shard_paths[shard], assigned[r], weights),
                    r,
                )

            root = min(candidates, key=cost)
            ownership[root].add(shard)
            assigned[root] += shard_batches[shard]
        if unreachable:
            raise FailoverError(
                f"no daemon root can reach shards {unreachable[:3]} "
                f"({len(unreachable)} total)"
            )
        self.logger.log(
            "shard_ownership_planned",
            roots={r: sorted(s) for r, s in ownership.items()},
            weights={r: round(w, 3) for r, w in weights.items()},
        )
        return ownership


__all__ = [
    "DeliveryKey",
    "ElasticPolicy",
    "FailoverError",
    "MemberLoad",
    "PlacementEngine",
    "ReceiverReassignment",
]
