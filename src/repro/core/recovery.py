"""Recovery subsystem — fault-tolerant, resumable streaming.

EMLIO's push pipeline is fire-and-forget: the planner decides everything up
front, daemons push, the receiver consumes.  This module adds the pieces that
make a mid-epoch failure (dead daemon, dropped connection, restarted
receiver) degrade throughput instead of killing the epoch:

* :class:`DeliveryLedger` — a persistent append-only record of every batch
  the receiver has handed to the pipeline, keyed by ``(epoch, node, seq)``.
  Survives receiver restarts; the source of truth for "what is still owed".
* :class:`FailoverCoordinator` — when a daemon is declared dead, re-plans
  its *undelivered* assignments onto surviving storage roots that can reach
  the shards (replicated storage or shared roots).  The residual plan is a
  filtered view of the original :class:`~repro.core.planner.BatchPlan`, so
  every planner invariant (contiguity, batch size, no double assignment)
  holds by construction.
* :class:`RecoveryConfig` — the policy knob bundle consumed by
  :class:`~repro.core.service.EMLIOService` (``EMLIOService(recovery=...)``).
* :class:`EpochServeError` / :class:`DaemonKilled` / :class:`FailoverError`
  — the failure vocabulary shared by daemon, service and tests.

Delivery semantics: daemons + reconnecting PUSH streams give *at-least-once*
transport; the receiver's dedup window (:class:`~repro.core.provider
.BatchProvider`) plus the ledger turn that into *exactly-once* delivery to
the training pipeline.

Follow-ons this design exposes (see ROADMAP "Open items"): receiver-side
ledger compaction (per-epoch truncation once an epoch completes) and
multi-receiver failover (re-planning a dead *compute* node's batches).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Collection, Iterable

from repro.core.planner import BatchPlan
from repro.net.mq import ReconnectPolicy
from repro.util.logging import TimestampLogger

#: A delivery key: (epoch, node_id, seq).  ``seq`` is the per-(epoch, node)
#: sequence number stamped into each BatchPayload — the planner's
#: ``batch_index`` dispatch order, unique within (epoch, node).
DeliveryKey = tuple[int, int, int]


class DaemonKilled(RuntimeError):
    """A daemon was killed (chaos injection or operator action) mid-epoch."""


class FailoverError(RuntimeError):
    """A dead daemon's shards cannot all be re-planned onto survivors."""


class EpochServeError(ExceptionGroup):
    """All worker errors of one ``serve_epoch`` call, none dropped."""

    def derive(self, excs):
        return EpochServeError(self.message, excs)


@dataclass(frozen=True)
class RecoveryConfig:
    """Policy bundle for ``EMLIOService(recovery=...)``.

    Attributes
    ----------
    ledger_path:
        Where the delivery ledger persists.  ``None`` keeps it in memory —
        dedup and failover still work, but a receiver restart starts blank.
    dedup:
        Receiver-side duplicate tolerance.  Required for at-least-once
        transport (reconnect resends, failover overlap): turning it off
        while reconnect is active is rejected at construction.
    reorder_window:
        Receiver-side bounded reorder window (batches buffered to emit in
        roughly sequence order); ``None`` (default) inherits
        ``EMLIOConfig.reorder_window``; 0 disables reordering.
    failover:
        Re-plan a dead daemon's undelivered batches onto survivors.
    reconnect:
        Backoff policy for daemon PUSH streams surviving transport errors.
    """

    ledger_path: str | Path | None = None
    dedup: bool = True
    reorder_window: int | None = None
    failover: bool = True
    reconnect: ReconnectPolicy = field(default_factory=ReconnectPolicy)

    def __post_init__(self) -> None:
        if self.reorder_window is not None and self.reorder_window < 0:
            raise ValueError(f"reorder_window must be >= 0, got {self.reorder_window}")
        if not self.dedup and self.reconnect.max_retries >= 1:
            raise ValueError(
                "dedup=False with an active ReconnectPolicy would turn every "
                "reconnect replay into a fatal duplicate-delivery error; "
                "enable dedup or disable reconnection (max_retries=0)"
            )


class DeliveryLedger:
    """Persistent, thread-safe set of delivered ``(epoch, node, seq)`` keys.

    Append-only text file, one ``epoch node seq`` line per delivered batch,
    flushed on every record so a crash loses at most the in-flight write.
    An *unterminated* final line (the crash interrupting that write) is
    dropped and the file repaired on load — the batch simply counts as
    undelivered and is resent (dedup absorbs it if it did land).  A
    malformed but newline-terminated line — anywhere, tail included — is
    not a torn append (each record is written whole); it means the file is
    not a ledger, and loading fails loudly.
    With ``path=None`` the ledger is memory-only (tests, ephemeral runs).
    Compaction (dropping completed epochs) is a known follow-on; for now the
    file and the in-memory set grow with delivered batches.
    """

    def __init__(self, path: str | Path | None = None) -> None:
        self.path = Path(path) if path is not None else None
        self._keys: set[DeliveryKey] = set()
        self._lock = threading.Lock()
        self._fh = None
        if self.path is not None:
            if self.path.exists():
                self._load(self.path)
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "a", encoding="ascii")

    def _load(self, path: Path) -> None:
        raw = path.read_text()
        lines = raw.splitlines()
        # No trailing newline ⇒ the final write was interrupted.  The line
        # may still *parse* (truncated digits: '0 0 35\n' torn to '0 0 3'),
        # so an unterminated tail is always dropped — the batch merely
        # counts as undelivered and is resent (dedup absorbs a replay).
        torn_tail = bool(raw) and not raw.endswith("\n")
        for i, line in enumerate(lines):
            if torn_tail and i == len(lines) - 1:
                self._repair(path)
                return
            parts = line.split()
            try:
                key = (int(parts[0]), int(parts[1]), int(parts[2]))
            except (IndexError, ValueError):
                raise ValueError(f"corrupt ledger line: {line!r}") from None
            if len(parts) != 3:
                raise ValueError(f"corrupt ledger line: {line!r}")
            self._keys.add(key)

    def _repair(self, path: Path) -> None:
        """Rewrite the file without the torn tail, clean for appends."""
        path.write_text(
            "".join(f"{e} {n} {s}\n" for (e, n, s) in sorted(self._keys))
        )

    def record(self, epoch: int, node_id: int, seq: int) -> bool:
        """Mark one batch delivered; returns False when already recorded."""
        key = (epoch, node_id, seq)
        with self._lock:
            if key in self._keys:
                return False
            self._keys.add(key)
            if self._fh is not None:
                self._fh.write(f"{epoch} {node_id} {seq}\n")
                self._fh.flush()
            return True

    def delivered(self, epoch: int | None = None, node: int | None = None) -> set[DeliveryKey]:
        """Snapshot of delivered keys, optionally filtered by epoch/node."""
        with self._lock:
            return {
                k
                for k in self._keys
                if (epoch is None or k[0] == epoch) and (node is None or k[1] == node)
            }

    def __contains__(self, key: DeliveryKey) -> bool:
        with self._lock:
            return key in self._keys

    def __len__(self) -> int:
        with self._lock:
            return len(self._keys)

    def close(self) -> None:
        """Release the backing file handle."""
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None


def _shard_file_exists(root: str, shard_path: str) -> bool:
    return (Path(root) / shard_path).exists()


class FailoverCoordinator:
    """Re-plans a dead daemon's undelivered batches onto survivors.

    Parameters
    ----------
    plan:
        The original epoch plan (source of residual assignments).
    ledger:
        Delivery ledger consulted for what already arrived.
    roots:
        ``storage_root -> owned shard names`` for every daemon; ``None``
        as a value means "all shards in the plan" (the single-daemon case).
    reachable:
        ``(root, shard_path) -> bool`` predicate deciding whether a
        surviving root can serve a shard.  Defaults to a file-existence
        check, which covers both replicated storage (every root holds every
        shard) and shared roots (symlinked/NFS-mounted directories).
    """

    def __init__(
        self,
        plan: BatchPlan,
        ledger: DeliveryLedger,
        roots: dict[str, Collection[str] | None],
        reachable: Callable[[str, str], bool] | None = None,
        logger: TimestampLogger | None = None,
    ) -> None:
        self.plan = plan
        self.ledger = ledger
        self.roots = dict(roots)
        self.reachable = reachable or _shard_file_exists
        self.logger = logger or TimestampLogger(name="failover")

    def shards_of(self, root: str) -> set[str]:
        """Shard names the daemon at ``root`` was responsible for."""
        owned = self.roots.get(root)
        if owned is None:
            return {a.shard for a in self.plan.assignments}
        return set(owned)

    def residual_plan(self, epoch: int, shards: Iterable[str] | None = None) -> BatchPlan:
        """Sub-plan of not-yet-delivered assignments (optionally per shard set)."""
        delivered = self.ledger.delivered(epoch=epoch)
        return self.plan.residual(delivered, epoch=epoch, shards=shards)

    def plan_failover(
        self,
        dead_root: str,
        epoch: int,
        survivors: Collection[str] | None = None,
    ) -> dict[str, set[str]]:
        """Decide which survivor takes over each of the dead root's shards.

        Only shards with *undelivered* batches need a new home.  Shards are
        placed least-loaded-first across reachable survivors.  Raises
        :class:`FailoverError` if any needed shard is unreachable by every
        survivor.

        ``survivors`` overrides the default "every root but the dead one" —
        the service passes the roots of daemons that are actually alive, so
        a root stays a valid takeover target while any daemon on it lives
        (e.g. a failover daemon died on a root whose original daemon is
        still healthy).
        """
        residual = self.residual_plan(epoch, shards=self.shards_of(dead_root))
        needed = {a.shard: a.shard_path for a in residual.assignments}
        if survivors is None:
            survivors = [r for r in self.roots if r != dead_root]
        else:
            survivors = list(survivors)
        takeover: dict[str, set[str]] = {}
        unreachable: list[str] = []
        for shard in sorted(needed):
            placed = False
            for root in sorted(survivors, key=lambda r: len(takeover.get(r, ()))):
                if self.reachable(root, needed[shard]):
                    takeover.setdefault(root, set()).add(shard)
                    placed = True
                    break
            if not placed:
                unreachable.append(shard)
        if unreachable:
            raise FailoverError(
                f"no surviving daemon can reach shards {unreachable[:3]} "
                f"({len(unreachable)} total) of dead root {dead_root}"
            )
        self.logger.log(
            "failover_planned",
            dead_root=dead_root,
            epoch=epoch,
            residual_batches=len(residual.assignments),
            takeover={r: sorted(s) for r, s in takeover.items()},
        )
        return takeover
