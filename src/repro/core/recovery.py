"""Recovery subsystem — fault-tolerant, resumable streaming.

EMLIO's push pipeline is fire-and-forget: the planner decides everything up
front, daemons push, the receiver consumes.  This module adds the pieces that
make a mid-epoch failure (dead daemon, dead receiver, dropped connection,
restarted receiver) degrade throughput instead of killing the epoch:

* :class:`DeliveryLedger` — a persistent record of every batch the receiver
  has handed to the pipeline, keyed by ``(epoch, node, seq)``.  Survives
  receiver restarts; the source of truth for "what is still owed".  Epochs
  are compacted on completion (per-batch lines collapse into one
  ``epoch-complete`` checkpoint line) so the file and the in-memory key set
  stay bounded by the *live* epochs, not the run's lifetime.  Mid-epoch
  receiver failovers persist their key re-mappings as ``reassign`` lines so
  a restart never double-serves a re-owned batch.
* :class:`FailoverCoordinator` — when a *daemon* is declared dead, re-plans
  its undelivered assignments onto surviving storage roots that can reach
  the shards; when a *receiver* (compute node) is declared dead,
  :meth:`~FailoverCoordinator.plan_receiver_failover` re-targets its
  undelivered batches onto surviving receivers with fresh sequence numbers
  and picks a reachable root to serve each one.  Since the placement
  refactor this class is a thin compatibility delegate over
  :class:`~repro.core.placement.PlacementEngine`, which owns every
  batch→owner decision (including the load-weighted ones this API cannot
  express — supervisors construct the engine directly to pass load
  signals and elastic policy).
* :class:`RecoveryConfig` — the policy knob bundle consumed by
  :class:`~repro.core.service.EMLIOService` (``EMLIOService(recovery=...)``),
  including the :class:`~repro.core.membership.MembershipConfig` thresholds
  of the heartbeat failure detector.
* :class:`EpochServeError` / :class:`DaemonKilled` / :class:`FailoverError`
  / :class:`NodeUnreachable` — the failure vocabulary shared by daemon,
  service and tests.

Delivery semantics: daemons + reconnecting PUSH streams give *at-least-once*
transport; the receiver's dedup window (:class:`~repro.core.provider
.BatchProvider`) plus the ledger turn that into *exactly-once* delivery to
the training pipeline.  Receiver failover preserves exactly-once end to end:
an original key counts as covered when either it or its reassigned
descendant is in the ledger.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Collection, Iterable, Mapping

from repro.core.membership import MembershipConfig
from repro.core.placement import (
    FailoverError,
    PlacementEngine,
    ReceiverReassignment,
)
from repro.core.planner import BatchAssignment, BatchPlan
from repro.net.mq import ReconnectPolicy
from repro.util.logging import TimestampLogger

#: A delivery key: (epoch, node_id, seq).  ``seq`` is the per-(epoch, node)
#: sequence number stamped into each BatchPayload — the planner's
#: ``batch_index`` dispatch order, unique within (epoch, node), extended
#: past the planned range by receiver-failover re-targeting.
DeliveryKey = tuple[int, int, int]


class DaemonKilled(RuntimeError):
    """A daemon was killed (chaos injection or operator action) mid-epoch."""


class NodeUnreachable(ConnectionError):
    """Every PUSH stream to one compute node is dead.

    Raised by a send worker so the daemon can distinguish "this target node
    is gone" (survivable once the control plane drops the node) from "my own
    transport is broken" (fatal for the daemon).
    """

    def __init__(self, node_id: int, message: str = "") -> None:
        super().__init__(message or f"compute node {node_id} unreachable")
        self.node_id = node_id


class EpochServeError(ExceptionGroup):
    """All worker errors of one ``serve_epoch`` call, none dropped."""

    def derive(self, excs):
        return EpochServeError(self.message, excs)


@dataclass(frozen=True)
class RecoveryConfig:
    """Policy bundle for ``EMLIOService(recovery=...)``.

    Attributes
    ----------
    ledger_path:
        Where the delivery ledger persists.  ``None`` keeps it in memory —
        dedup and failover still work, but a receiver restart starts blank.
    dedup:
        Receiver-side duplicate tolerance.  Required for at-least-once
        transport (reconnect resends, failover overlap): turning it off
        while reconnect is active is rejected at construction.
    reorder_window:
        Receiver-side bounded reorder window (batches buffered to emit in
        roughly sequence order); ``None`` (default) inherits
        ``EMLIOConfig.reorder_window``; 0 disables reordering;
        ``AUTO_REORDER`` (-1) derives it from ``streams_per_node × hwm``.
    failover:
        Re-plan a dead member's undelivered batches onto survivors.
    reconnect:
        Backoff policy for daemon PUSH streams surviving transport errors.
    membership:
        Heartbeat failure-detector thresholds (interval, miss/dead
        thresholds, hung-progress window); see
        :class:`~repro.core.membership.MembershipConfig`.
    compact_ledger:
        Collapse an epoch's per-batch ledger lines into one checkpoint line
        once the epoch completes.
    """

    ledger_path: str | Path | None = None
    dedup: bool = True
    reorder_window: int | None = None
    failover: bool = True
    reconnect: ReconnectPolicy = field(default_factory=ReconnectPolicy)
    membership: MembershipConfig = field(default_factory=MembershipConfig)
    compact_ledger: bool = True

    def __post_init__(self) -> None:
        if self.reorder_window is not None and self.reorder_window < -1:
            raise ValueError(
                f"reorder_window must be >= 0, AUTO_REORDER (-1) or None, "
                f"got {self.reorder_window}"
            )
        if not self.dedup and self.reconnect.max_retries >= 1:
            raise ValueError(
                "dedup=False with an active ReconnectPolicy would turn every "
                "reconnect replay into a fatal duplicate-delivery error; "
                "enable dedup or disable reconnection (max_retries=0)"
            )


class DeliveryLedger:
    """Persistent, thread-safe set of delivered ``(epoch, node, seq)`` keys.

    Text file, flushed on every record so a crash loses at most the
    in-flight write.  Three line forms (the first is the only one v2
    ledgers contain, so old files load unchanged):

    * ``epoch node seq`` — one delivered batch;
    * ``epoch-complete <epoch> <count>`` — checkpoint written by
      :meth:`complete_epoch`: the epoch's per-batch lines were compacted
      away, ``count`` batches landed, the whole epoch counts as delivered;
    * ``reassign <epoch> <dead_node> <old_seq> <new_node> <new_seq>`` —
      a receiver failover re-owned one batch; the old key is covered iff
      the new key (or a further reassignment of it) is.

    An *unterminated* final line (a crash interrupting that write) is
    dropped and the file repaired on load — the batch simply counts as
    undelivered and is resent (dedup absorbs it if it did land).  A
    malformed but newline-terminated line — anywhere, tail included — is
    not a torn append (each record is written whole); it means the file is
    not a ledger, and loading fails loudly.
    With ``path=None`` the ledger is memory-only (tests, ephemeral runs).
    """

    def __init__(self, path: str | Path | None = None) -> None:
        self.path = Path(path) if path is not None else None
        self._keys: set[DeliveryKey] = set()
        self._completed: dict[int, int] = {}  # epoch -> delivered batch count
        self._reassigned: dict[DeliveryKey, DeliveryKey] = {}
        self._lock = threading.Lock()
        self._fh = None
        if self.path is not None:
            if self.path.exists():
                self._load(self.path)
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "a", encoding="ascii")

    def _parse_line(self, line: str) -> None:
        parts = line.split()
        try:
            if parts[0] == "epoch-complete":
                if len(parts) != 3:
                    raise ValueError
                self._completed[int(parts[1])] = int(parts[2])
            elif parts[0] == "reassign":
                if len(parts) != 6:
                    raise ValueError
                e = int(parts[1])
                self._reassigned[(e, int(parts[2]), int(parts[3]))] = (
                    e, int(parts[4]), int(parts[5]),
                )
            else:
                if len(parts) != 3:
                    raise ValueError
                self._keys.add((int(parts[0]), int(parts[1]), int(parts[2])))
        except (IndexError, ValueError):
            raise ValueError(f"corrupt ledger line: {line!r}") from None

    def _load(self, path: Path) -> None:
        raw = path.read_text()
        lines = raw.splitlines()
        # No trailing newline ⇒ the final write was interrupted.  The line
        # may still *parse* (truncated digits: '0 0 35\n' torn to '0 0 3'),
        # so an unterminated tail is always dropped — the batch merely
        # counts as undelivered and is resent (dedup absorbs a replay).
        torn_tail = bool(raw) and not raw.endswith("\n")
        for i, line in enumerate(lines):
            if torn_tail and i == len(lines) - 1:
                self._collapse_chains()
                self._rewrite(path)
                return
            self._parse_line(line)
        self._collapse_chains()

    def _collapse_chains(self) -> None:
        """Flatten reassignment chains left by pre-GC ledger files.

        Re-target keys are always synthetic (fresh seqs past the planned
        range), so any key that also appears as a *value* is an
        intermediate hop: follow it to its final owner and drop the hop.
        """
        values = set(self._reassigned.values())
        collapsed: dict[DeliveryKey, DeliveryKey] = {}
        for key, target in self._reassigned.items():
            if key in values:
                continue  # synthetic intermediate; its referrer covers it
            seen = set()
            while target in self._reassigned and target not in seen:
                seen.add(target)
                target = self._reassigned[target]
            collapsed[key] = target
        self._reassigned = collapsed

    def _lines(self) -> str:
        """Serialize current state; summary/reassign lines lead for clarity."""
        out = [f"epoch-complete {e} {c}\n" for e, c in sorted(self._completed.items())]
        out.extend(
            f"reassign {oe} {on} {os_} {ne[1]} {ne[2]}\n"
            for (oe, on, os_), ne in sorted(self._reassigned.items())
        )
        out.extend(f"{e} {n} {s}\n" for (e, n, s) in sorted(self._keys))
        return "".join(out)

    def _rewrite(self, path: Path) -> None:
        """Atomically replace the file with current state, clean for appends."""
        tmp = path.with_suffix(path.suffix + ".tmp")
        tmp.write_text(self._lines())
        os.replace(tmp, path)
        if self._fh is not None:
            self._fh.close()
            self._fh = open(path, "a", encoding="ascii")

    def _append(self, line: str) -> None:
        if self._fh is not None:
            self._fh.write(line)
            self._fh.flush()

    def record(self, epoch: int, node_id: int, seq: int) -> bool:
        """Mark one batch delivered; returns False when already recorded."""
        key = (epoch, node_id, seq)
        with self._lock:
            if key in self._keys or epoch in self._completed:
                return False
            self._keys.add(key)
            self._append(f"{epoch} {node_id} {seq}\n")
            return True

    def record_reassignment(self, old: DeliveryKey, new: DeliveryKey) -> None:
        """Persist a receiver-failover key re-mapping (old → new owner).

        Chains are GC'd as they form: if ``old`` is itself the target of
        earlier mappings (a re-targeted batch whose new owner died too),
        those are rewritten in place to point at ``new`` and the
        ``old -> new`` link is dropped — ``old`` was a synthetic re-target
        key (fresh seqs are always past the planned range), so nothing but
        its referrers ever looks it up.  The map therefore stays bounded
        by *planned* keys per live epoch and :meth:`resolve`/:meth:`covered`
        chains stay depth 1, no matter how many failovers pile up before
        an epoch completes (the ROADMAP's churn item).  Later ``reassign``
        lines override earlier ones on load, so the rewrite persists by
        appending, not rewriting the file.
        """
        if old[0] != new[0]:
            raise ValueError(f"reassignment crosses epochs: {old} -> {new}")
        with self._lock:
            referrers = [k for k, v in self._reassigned.items() if v == old]
            for k in referrers:
                self._reassigned[k] = new
                self._append(f"reassign {k[0]} {k[1]} {k[2]} {new[1]} {new[2]}\n")
            if not referrers:
                self._reassigned[old] = new
                self._append(
                    f"reassign {old[0]} {old[1]} {old[2]} {new[1]} {new[2]}\n"
                )

    def reassignments(self, epoch: int | None = None) -> dict[DeliveryKey, DeliveryKey]:
        """Snapshot of recorded key re-mappings."""
        with self._lock:
            return {
                k: v
                for k, v in self._reassigned.items()
                if epoch is None or k[0] == epoch
            }

    def resolve(self, key: DeliveryKey) -> DeliveryKey:
        """Follow reassignment chains to the key's current owner."""
        with self._lock:
            seen = set()
            while key in self._reassigned and key not in seen:
                seen.add(key)
                key = self._reassigned[key]
            return key

    def covered(self, key: DeliveryKey) -> bool:
        """Whether ``key`` (or its reassigned descendant) was delivered."""
        with self._lock:
            if key[0] in self._completed:
                return True
            seen = set()
            while key not in self._keys and key in self._reassigned and key not in seen:
                seen.add(key)
                key = self._reassigned[key]
            return key in self._keys

    def complete_epoch(self, epoch: int) -> int:
        """Compact one finished epoch to a single checkpoint line.

        Drops the epoch's per-batch keys and reassignment entries from
        memory and rewrites the file with only live epochs — the ROADMAP's
        ledger-compaction item.  Returns the batch count checkpointed.
        Idempotent; re-completing keeps the original count.
        """
        with self._lock:
            if epoch in self._completed:
                return self._completed[epoch]
            epoch_keys = {k for k in self._keys if k[0] == epoch}
            self._completed[epoch] = len(epoch_keys)
            self._keys -= epoch_keys
            self._reassigned = {
                k: v for k, v in self._reassigned.items() if k[0] != epoch
            }
            # The atomic rewrite is the sole persistence step — its output
            # already leads with the epoch-complete checkpoint line.
            if self.path is not None:
                self._rewrite(self.path)
            return self._completed[epoch]

    def epoch_complete(self, epoch: int) -> bool:
        """Whether ``epoch`` was checkpointed by :meth:`complete_epoch`."""
        with self._lock:
            return epoch in self._completed

    def completed_epochs(self) -> dict[int, int]:
        """``epoch -> batch count`` of every checkpointed epoch."""
        with self._lock:
            return dict(self._completed)

    def delivered(self, epoch: int | None = None, node: int | None = None) -> set[DeliveryKey]:
        """Snapshot of live (uncompacted) delivered keys, optionally filtered."""
        with self._lock:
            return {
                k
                for k in self._keys
                if (epoch is None or k[0] == epoch) and (node is None or k[1] == node)
            }

    def __contains__(self, key: DeliveryKey) -> bool:
        with self._lock:
            return key in self._keys or key[0] in self._completed

    def __len__(self) -> int:
        with self._lock:
            return len(self._keys)

    def close(self) -> None:
        """Release the backing file handle."""
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None


class FailoverCoordinator:
    """Re-plans a dead member's undelivered batches onto survivors.

    Compatibility facade: the logic lives in
    :class:`~repro.core.placement.PlacementEngine`, which this class
    constructs without load signals — placement through this API is
    therefore count-balanced, exactly the pre-engine behaviour.  New code
    (and the service) should construct the engine directly and pass
    ``node_loads``/``root_loads`` so re-plans weight by observed
    throughput and queue depth.

    Parameters
    ----------
    plan:
        The original epoch plan (source of residual assignments).
    ledger:
        Delivery ledger consulted for what already arrived.
    roots:
        ``storage_root -> owned shard names`` for every daemon; ``None``
        as a value means "all shards in the plan" (the single-daemon case).
    reachable:
        ``(root, shard_path) -> bool`` predicate deciding whether a
        surviving root can serve a shard.  Defaults to a file-existence
        check, which covers both replicated storage (every root holds every
        shard) and shared roots (symlinked/NFS-mounted directories).
    """

    def __init__(
        self,
        plan: BatchPlan,
        ledger: DeliveryLedger,
        roots: dict[str, Collection[str] | None],
        reachable: Callable[[str, str], bool] | None = None,
        logger: TimestampLogger | None = None,
    ) -> None:
        self._engine = PlacementEngine(
            plan, ledger, roots, reachable=reachable,
            logger=logger or TimestampLogger(name="failover"),
        )

    @property
    def plan(self) -> BatchPlan:
        return self._engine.plan

    @property
    def ledger(self) -> DeliveryLedger:
        return self._engine.ledger

    @property
    def roots(self) -> dict[str, Collection[str] | None]:
        return self._engine.roots

    @property
    def reachable(self) -> Callable[[str, str], bool]:
        return self._engine.reachable

    def shards_of(self, root: str) -> set[str]:
        """Shard names the daemon at ``root`` was responsible for."""
        return self._engine.shards_of(root)

    def residual_plan(self, epoch: int, shards: Iterable[str] | None = None) -> BatchPlan:
        """Sub-plan of not-yet-delivered assignments (optionally per shard set)."""
        return self._engine.residual_plan(epoch, shards=shards)

    def place_assignments(
        self,
        assignments: Collection[BatchAssignment],
        survivors: Collection[str],
    ) -> dict[str, tuple[BatchAssignment, ...]]:
        """Place loose assignments on reachable roots, least-loaded-first."""
        return self._engine.place_assignments(assignments, survivors)

    def plan_failover(
        self,
        dead_root: str,
        epoch: int,
        survivors: Collection[str] | None = None,
    ) -> dict[str, set[str]]:
        """Decide which survivor takes over each of the dead root's shards."""
        return self._engine.plan_failover(dead_root, epoch, survivors=survivors)

    def plan_receiver_failover(
        self,
        dead_node: int,
        epoch: int,
        surviving_nodes: Collection[int],
        next_seq: Mapping[int, int],
        survivor_roots: Collection[str] | None = None,
        residual: Collection[BatchAssignment] | None = None,
    ) -> ReceiverReassignment:
        """Re-target a dead compute node's undelivered batches onto survivors."""
        return self._engine.plan_receiver_failover(
            dead_node,
            epoch,
            surviving_nodes,
            next_seq,
            survivor_roots=survivor_roots,
            residual=residual,
        )
