"""EMLIO core: the paper's primary contribution.

* :class:`~repro.core.planner.Planner` — Algorithm 2's batch-aligned
  data-parallel planning: maps contiguous TFRecord shard ranges to per-node,
  per-epoch batches from index metadata alone.
* :class:`~repro.core.daemon.EMLIODaemon` — the storage-side service:
  mmap → slice B records → msgpack-serialize → PUSH over parallel streams
  with HWM backpressure, ``T`` worker threads per target node.
* :class:`~repro.core.receiver.EMLIOReceiver` — Algorithm 3: PULL socket →
  deserialize thread → shared queue → :class:`BatchProvider`
  (``external_source``) → DALI-like pipeline with prefetch ``Q``.
* :class:`~repro.core.service.EMLIOService` — single-call orchestration of
  daemon(s) + receiver over (emulated) TCP for examples and tests.
* :mod:`~repro.core.recovery` — fault tolerance: persistent delivery
  ledger, receiver dedup/reorder, reconnecting PUSH streams, and daemon
  failover re-planning, giving exactly-once delivery over an
  at-least-once transport.
"""

from repro.core.config import EMLIOConfig
from repro.core.daemon import DaemonStats, EMLIODaemon
from repro.core.planner import BatchAssignment, BatchPlan, Planner
from repro.core.provider import BatchProvider
from repro.core.receiver import EMLIOReceiver
from repro.core.recovery import (
    DaemonKilled,
    DeliveryLedger,
    EpochServeError,
    FailoverCoordinator,
    FailoverError,
    RecoveryConfig,
)
from repro.core.service import EMLIOService

__all__ = [
    "EMLIOConfig",
    "DaemonStats",
    "EMLIODaemon",
    "BatchAssignment",
    "BatchPlan",
    "Planner",
    "BatchProvider",
    "EMLIOReceiver",
    "EMLIOService",
    "DaemonKilled",
    "DeliveryLedger",
    "EpochServeError",
    "FailoverCoordinator",
    "FailoverError",
    "RecoveryConfig",
]
