"""EMLIO core: the paper's primary contribution.

* :class:`~repro.core.planner.Planner` — Algorithm 2's batch-aligned
  data-parallel planning: maps contiguous TFRecord shard ranges to per-node,
  per-epoch batches from index metadata alone.
* :class:`~repro.core.daemon.EMLIODaemon` — the storage-side service:
  mmap → slice B records → msgpack-serialize → PUSH over parallel streams
  with HWM backpressure, ``T`` worker threads per target node.
* :class:`~repro.core.receiver.EMLIOReceiver` — Algorithm 3: PULL socket →
  deserialize thread → shared queue → :class:`BatchProvider`
  (``external_source``) → DALI-like pipeline with prefetch ``Q``.
* :class:`~repro.core.service.EMLIOService` — single-call orchestration of
  daemon(s) + receiver over (emulated) TCP for examples and tests.
* :mod:`~repro.core.recovery` — fault tolerance: persistent delivery
  ledger (with per-epoch compaction), receiver dedup/reorder, reconnecting
  PUSH streams, and daemon + receiver failover re-planning, giving
  exactly-once delivery over an at-least-once transport.
* :mod:`~repro.core.membership` — the control plane: heartbeat-fed
  :class:`ClusterView` tracking every participant's liveness (crashed,
  hung, partitioned) and emitting the events the service's failover
  monitor consumes.
"""

from repro.core.config import AUTO_REORDER, EMLIOConfig
from repro.core.daemon import DaemonStats, EMLIODaemon
from repro.core.membership import (
    ClusterView,
    Member,
    MemberStatus,
    MembershipConfig,
    MembershipEvent,
)
from repro.core.planner import BatchAssignment, BatchPlan, Planner
from repro.core.provider import BatchProvider
from repro.core.receiver import EMLIOReceiver, ReceiverKilled
from repro.core.recovery import (
    DaemonKilled,
    DeliveryLedger,
    EpochServeError,
    FailoverCoordinator,
    FailoverError,
    NodeUnreachable,
    ReceiverReassignment,
    RecoveryConfig,
)
from repro.core.service import EMLIOService

__all__ = [
    "AUTO_REORDER",
    "EMLIOConfig",
    "DaemonStats",
    "EMLIODaemon",
    "BatchAssignment",
    "BatchPlan",
    "Planner",
    "BatchProvider",
    "ClusterView",
    "Member",
    "MemberStatus",
    "MembershipConfig",
    "MembershipEvent",
    "EMLIOReceiver",
    "EMLIOService",
    "DaemonKilled",
    "DeliveryLedger",
    "EpochServeError",
    "FailoverCoordinator",
    "FailoverError",
    "NodeUnreachable",
    "ReceiverKilled",
    "ReceiverReassignment",
    "RecoveryConfig",
]
