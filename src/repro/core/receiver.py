"""EMLIO Receiver — Algorithm 3.

Per compute node:

1. bind a PULL socket on ``(ip, port)`` (line 1);
2. a ``zmq_receiver`` thread unpacks msgpack payloads into a shared queue
   (line 2);
3. a DALI-like pipeline with ``BatchProvider(queue)`` as external source and
   prefetch depth ``Q`` (line 3), warmed up with ``Q`` iterations (line 4);
4. :meth:`epoch` iterates ``pipe.run()`` until the planned batch count is
   consumed (lines 5–9).

Recovery design (see :mod:`repro.core.recovery`): given a
:class:`~repro.core.recovery.DeliveryLedger`, the receiver records every
batch it hands to the pipeline and, on restart, subtracts the ledger from
the plan — a resumed epoch expects (and daemons resend) only the residual.
``dedup=True`` absorbs the duplicates an at-least-once transport produces
(reconnect replays, failover overlap); ``allow_partial=True`` turns a
mid-epoch stall into a clean partial stop instead of an error, so callers
can persist progress and resume later.
"""

from __future__ import annotations

import collections
import queue
import threading
import time
from typing import Iterable, Iterator

import numpy as np

from repro.core.config import EMLIOConfig
from repro.core.planner import BatchPlan
from repro.core.provider import BatchProvider, ProviderAborted
from repro.core.recovery import DeliveryLedger
from repro.gpu.device import SimulatedGPU
from repro.gpu.pipeline import EndOfData, Pipeline, PipelineStats
from repro.net.emulation import NetworkProfile
from repro.net.mq import PullSocket
from repro.serialize.payload import decode_batch, trace_stamped
from repro.util.logging import TimestampLogger

#: Bound on the remembered trace-sampled delivery keys (epoch, seq) —
#: recv-side bookkeeping between the socket thread and the consume loop.
#: Keys pop as their batches are consumed; the bound only matters when a
#: traced batch is dropped (dedup, relinquish) and never consumed.
_SAMPLED_KEYS_BOUND = 4096


class ReceiverKilled(RuntimeError):
    """This compute node was killed (chaos injection or operator action)
    mid-epoch; its undelivered batches are the FailoverCoordinator's job."""


class EMLIOReceiver:
    """One compute node's receive side.

    Recovery parameters
    -------------------
    ledger:
        Persistent delivery ledger; enables dedup and resume-after-restart.
    dedup:
        Tolerate duplicate payloads even without a ledger (implied by one).
    reorder_window:
        Overrides ``config.reorder_window`` when not ``None``.
    preprocess_fn:
        Batch preprocessor forwarded to the pipeline (``None`` keeps the
        image decode path); see :class:`~repro.gpu.pipeline.Pipeline`.
    telemetry:
        Optional :class:`~repro.obs.Telemetry`.  Feeds the per-batch
        decode/preprocess histograms and, when tracing is configured,
        emits the ``recv``/``decode``/``preprocess``/``consume`` spans for
        payloads the daemon stamped as sampled
        (:func:`~repro.serialize.payload.trace_stamped`).
    """

    def __init__(
        self,
        node_id: int,
        plan: BatchPlan,
        config: EMLIOConfig,
        host: str = "127.0.0.1",
        port: int = 0,
        profile: NetworkProfile | None = None,
        gpu: SimulatedGPU | None = None,
        logger: TimestampLogger | None = None,
        stall_timeout: float = 60.0,
        ledger: DeliveryLedger | None = None,
        dedup: bool = False,
        reorder_window: int | None = None,
        preprocess_fn=None,
        telemetry=None,
    ) -> None:
        self.node_id = node_id
        self.plan = plan
        self.config = config
        self.gpu = gpu or SimulatedGPU()
        self.logger = logger or TimestampLogger(name=f"receiver{node_id}")
        self.stall_timeout = stall_timeout
        self.ledger = ledger
        self.dedup = dedup or ledger is not None
        self.preprocess_fn = preprocess_fn
        self._tracer = telemetry.tracer("receiver") if telemetry is not None else None
        if telemetry is not None and telemetry.registry.enabled:
            self._decode_hist = telemetry.registry.histogram(
                "emlio_decode_seconds",
                "Per-payload deserialize time on the receive thread",
            )
            self._preproc_hist = telemetry.registry.histogram(
                "emlio_preprocess_seconds",
                "Per-batch pipeline preprocess (decode/augment) time",
            )
        else:
            self._decode_hist = self._preproc_hist = None
        # (epoch, seq) keys of trace-sampled payloads, noted by the socket
        # thread and popped by the consume loop (preprocess/consume spans).
        self._sampled_keys: collections.OrderedDict = collections.OrderedDict()
        self._sampled_lock = threading.Lock()
        # None inherits the config; AUTO (here or in the config) derives
        # the window from the transport shape instead of manual tuning.
        self.reorder_window = config.resolve_reorder_window(reorder_window)
        # Line 1: bind the PULL socket — pooled mode, so each frame lands
        # in a reused receive buffer and decodes to views (zero-copy path).
        self.pull = PullSocket(
            host=host, port=port, hwm=config.hwm, profile=profile, pooled=True
        )
        self._payload_q: queue.Queue = queue.Queue()
        # One stats object across every epoch's pipeline: per-stage decode /
        # preprocess / starved timing accumulates deployment-wide and feeds
        # heartbeats + Deployment.status()["pipeline"].
        self.pipeline_stats = PipelineStats()
        # Future-epoch payloads parked by one epoch's provider for the next
        # (daemons may pipeline epoch e+1 while epoch e still drains).
        self._holdover: collections.deque = collections.deque()
        self._stop = threading.Event()
        self.batches_received = 0
        self.batches_consumed = 0  # handed to the *training* side (yielded)
        self.duplicates_dropped = 0  # cumulative across epochs
        self._provider: BatchProvider | None = None  # the active epoch's
        self._pending_adopt = 0  # adopted outside a provider's lifetime
        self._adopt_lock = threading.Lock()  # adopt()/relinquish() vs. _make_provider()
        # (epoch, seq) keys re-owned *away* from this node by a scale-out
        # rebalance: excluded from every later provider's expectation.
        # Session-local on purpose — after a restart the keys are owed
        # wherever the ledger's reassignment chain says they are.
        self._relinquished: set[tuple[int, int]] = set()
        self._killed = threading.Event()
        # Starvation ticks for heartbeat progress: advance only while the
        # receive loop is idle with *nothing pending for the pipeline* —
        # starved is the daemons' problem, not this node's.  Progress is
        # otherwise driven from the pipeline-consumption boundary
        # (``batches_consumed``), so a wedged consumer sitting on queued
        # payloads freezes :attr:`progress` and trips the hang detector.
        self.ticks = 0
        # Line 2: the zmq_receiver thread (deserializer).
        self._receiver_thread = threading.Thread(
            target=self._zmq_receiver, daemon=True, name=f"zmq-receiver{node_id}"
        )
        self._receiver_thread.start()
        self._warm_kernels()

    def _warm_kernels(self) -> None:
        """Run one throwaway batch through the preprocess kernels.

        First execution of the numpy/scipy decode-and-resize path pays
        one-time costs (FFT plan setup, ufunc dispatch caches, allocator
        growth) that would otherwise land inside the first epoch a
        deployment serves.  GPU runtimes warm kernels at init for the same
        reason.  Only the default image path is warmed — a custom
        ``preprocess_fn`` has its own input format we can't synthesize.
        """
        if self.preprocess_fn is not None:
            return
        try:
            from repro.codec.sjpg import sjpg_encode
            from repro.gpu.ops import preprocess_batch

            rng = np.random.default_rng(0)
            img = rng.integers(0, 256, (32, 32, 3), dtype=np.uint8)
            samples = [sjpg_encode(img, quality=75)] * self.config.batch_size
            # A handful of repetitions, not one: allocator arenas, FFT plan
            # caches, and ufunc loops all warm progressively, and a single
            # call leaves the first real batches still paying for growth.
            for _ in range(4):
                self.gpu.submit(
                    lambda: preprocess_batch(samples, self.config.output_hw, rng),
                    modeled_s=0.0,
                )
        except Exception:  # noqa: BLE001 - warming is best-effort, never fatal
            pass

    @property
    def address(self) -> tuple[str, int]:
        """Bound ``(host, port)`` address."""
        return self.pull.address

    @property
    def port(self) -> int:
        """Bound TCP port."""
        return self.pull.port

    @property
    def killed(self) -> bool:
        """Whether :meth:`kill` was invoked."""
        return self._killed.is_set()

    @property
    def shm_rings(self) -> int:
        """Live shared-memory rings feeding this node's PULL socket."""
        return self.pull.num_rings

    @property
    def shm_attaches(self) -> int:
        """Cumulative shm ring attaches accepted over this node's lifetime."""
        return self.pull.shm_attaches

    @property
    def epoch_active(self) -> bool:
        """Whether an epoch is mid-flight and can still adopt batches."""
        provider = self._provider
        return provider is not None and provider.active

    @property
    def pending_adopt(self) -> int:
        """Adopted batches waiting for the next consume pass."""
        return self._pending_adopt

    @property
    def queue_depth(self) -> int:
        """Payloads received but not yet handed to the pipeline — the
        backpressure signal this node's heartbeats report and the
        placement engine weighs rebalances by."""
        return self._payload_q.qsize()

    @property
    def progress(self) -> int:
        """Heartbeat progress counter, advanced from the consumption
        boundary: grows while batches reach the training side *or* while
        the node is starved of payloads (daemons slow — not our hang).
        Frozen exactly when received payloads sit unconsumed: the wedged-
        consumer signature the hang detector is meant to catch."""
        return self.batches_consumed + self.ticks

    def kill(self) -> None:
        """Chaos hook: this compute node crashes, abruptly.

        The PULL socket closes (peers see connection resets), the active
        epoch's provider aborts instead of stalling out its timeout, and
        in-flight batches are dropped — the transport-level signature of a
        dead compute node.  Recovery of its undelivered batches is the
        FailoverCoordinator's job.
        """
        if self._killed.is_set():
            return
        self._killed.set()
        self._stop.set()
        provider = self._provider
        if provider is not None:
            provider.abort()
        self.pull.close()
        self.logger.log("receiver_killed", node=self.node_id)

    def adopt(self, extra: int) -> bool:
        """Grow the epoch's expectation by ``extra`` re-targeted batches
        (receiver failover).  An active provider absorbs them mid-flight;
        otherwise (epoch not started, or it finished before the failover
        settled) they defer into the next provider — the service drives
        another consume pass to drain them.  False only for a dead node."""
        if self._killed.is_set():
            return False
        with self._adopt_lock:
            provider = self._provider
            if provider is not None and provider.extend(extra):
                return True
            self._pending_adopt += extra
            return True

    def relinquish(self, keys: Iterable[tuple[int, int]]) -> bool:
        """Shrink this node's expectation: ``(epoch, seq)`` keys re-owned
        elsewhere (elastic scale-out).  An active provider gives them up
        mid-flight; either way they stay excluded from every later
        provider this session.  False only for a dead node (its whole
        residual moves through receiver failover instead)."""
        if self._killed.is_set():
            return False
        with self._adopt_lock:
            fresh = {tuple(k) for k in keys} - self._relinquished
            self._relinquished |= fresh
            provider = self._provider
            if provider is not None and fresh:
                provider.shrink(fresh)
        return True

    def _note_sampled(self, epoch: int, seq: int) -> None:
        with self._sampled_lock:
            self._sampled_keys[(epoch, seq)] = True
            while len(self._sampled_keys) > _SAMPLED_KEYS_BOUND:
                self._sampled_keys.popitem(last=False)

    def _is_sampled(self, epoch: int, seq: int) -> bool:
        with self._sampled_lock:
            return (epoch, seq) in self._sampled_keys

    def _pop_sampled(self, epoch: int, seq: int) -> bool:
        with self._sampled_lock:
            return self._sampled_keys.pop((epoch, seq), None) is not None

    def _zmq_receiver(self) -> None:
        tracer = self._tracer
        while not self._stop.is_set():
            try:
                frame = self.pull.recv_frame(timeout=0.2)
            except queue.Empty:
                # Starved *and* nothing backed up for the pipeline: the
                # node is healthy-but-waiting, so liveness progress ticks.
                # With payloads queued, progress must come from consumption.
                if self._payload_q.empty():
                    self.ticks += 1
                continue
            # Samples decode as views over the pooled frame buffer; the
            # lease travels with them (LeasedSamples) and is released by
            # the final consumer — pipeline after preprocess, or provider
            # on dedup/stale drop.
            wr0 = time.time_ns() if tracer is not None else 0
            t0 = time.perf_counter()
            wr1 = time.time_ns() if tracer is not None else 0
            payload = decode_batch(frame.data, zero_copy=True, release=frame.release)
            decode_s = time.perf_counter() - t0
            self.pipeline_stats.record_decode(decode_s)
            if self._decode_hist is not None:
                self._decode_hist.observe(decode_s)
            if payload.node_id != self.node_id:
                frame.release()
                raise RuntimeError(
                    f"node {self.node_id} received a batch planned for node {payload.node_id}"
                )
            if tracer is not None and trace_stamped(payload):
                # Only the daemon's stamp costs anything downstream: the
                # sampling decision travelled in the payload meta.
                wr2 = time.time_ns()
                key = (payload.epoch, payload.node_id, payload.seq)
                tracer.span(key, "recv", wr0, wr1, nbytes=payload.nbytes)
                tracer.span(key, "decode", wr1, wr2)
                self._note_sampled(payload.epoch, payload.seq)
            self.batches_received += 1
            self.logger.log(
                "batch_recv",
                epoch=payload.epoch,
                index=payload.batch_index,
                seq=payload.seq,
                nbytes=payload.nbytes,
            )
            self._payload_q.put(payload)

    def _make_provider(self, epoch_index: int) -> BatchProvider:
        """Build (and register) the epoch's provider, netting out ledgered
        deliveries and keys relinquished to a scale-out rebalance.

        Runs entirely under the adopt lock so a concurrent
        :meth:`relinquish`/:meth:`adopt` either lands in the sets read
        here or finds the provider registered and adjusts it directly —
        never falls between the two.
        """
        planned = self.plan.for_epoch_node(epoch_index, self.node_id)
        with self._adopt_lock:
            already: set[tuple[int, int]] = set()
            if self.ledger is not None:
                if self.ledger.epoch_complete(epoch_index):
                    # Compacted epoch: per-batch keys are gone, but the
                    # checkpoint vouches for every planned batch.
                    already = {(a.epoch, a.batch_index) for a in planned}
                else:
                    # covered() also honours receiver-failover re-mappings: a
                    # batch delivered under its re-assigned key is not owed here.
                    already = {
                        (a.epoch, a.batch_index)
                        for a in planned
                        if self.ledger.covered((a.epoch, a.node_id, a.batch_index))
                    }
            already |= {
                (a.epoch, a.batch_index)
                for a in planned
                if (a.epoch, a.batch_index) in self._relinquished
            }
            pending, self._pending_adopt = self._pending_adopt, 0
            provider = BatchProvider(
                self._payload_q,
                expected_batches=len(planned) - len(already) + pending,
                timeout=self.stall_timeout,
                dedup=self.dedup,
                already_delivered=already,
                reorder_window=self.reorder_window,
                epoch=epoch_index,
                holdover=self._holdover,
            )
            self._provider = provider  # visible to kill()/adopt()/relinquish()
        return provider

    def epoch(
        self, epoch_index: int = 0, allow_partial: bool = False
    ) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Yield preprocessed (tensors, labels) batches for one epoch.

        With ``allow_partial=True`` a stalled stream ends the iteration
        cleanly instead of raising — the delivery ledger then holds exactly
        what landed, ready for a later resume.
        """
        if self._killed.is_set():
            raise ReceiverKilled(f"node {self.node_id} was killed")
        provider = self._make_provider(epoch_index)
        span_fn = None
        if self._preproc_hist is not None or self._tracer is not None:
            hist = self._preproc_hist
            tracer = self._tracer

            def span_fn(seq: int, t0: int, t1: int) -> None:
                # The pipeline's seq is its source-call ordinal — identical
                # to provider.emitted order — which joins the preprocess
                # span back to the batch's delivery key (and trace id).
                if hist is not None:
                    hist.observe((t1 - t0) / 1e9)
                if tracer is not None and seq < len(provider.emitted):
                    e, n, s = provider.emitted[seq]
                    if self._is_sampled(e, s):
                        tracer.span((e, n, s), "preprocess", t0, t1)

        # Line 3: build the pipeline over the provider.
        pipe = Pipeline(
            external_source=provider,
            gpu=self.gpu,
            output_hw=self.config.output_hw,
            prefetch=self.config.prefetch,
            workers=self.config.workers,
            seed=self.config.seed + epoch_index,
            preprocess_fn=self.preprocess_fn,
            stats=self.pipeline_stats,
            span_fn=span_fn,
        )
        pipe.warmup()  # line 4
        self.logger.log("epoch_start", epoch=epoch_index)
        stalled = False
        consumed = 0
        try:
            while True:  # lines 6-9
                try:
                    tensors, labels = pipe.run()
                except EndOfData:
                    break
                except ProviderAborted:
                    raise ReceiverKilled(
                        f"node {self.node_id} killed mid-epoch: "
                        f"{provider.delivered}/{provider.expected_batches} batches"
                    ) from None
                except RuntimeError as err:
                    if allow_partial and "stalled" in str(err):
                        stalled = True
                        self.logger.log("epoch_partial", epoch=epoch_index)
                        break
                    raise
                # Ledger at the consumption boundary, not pipeline handoff:
                # batches prefetched but never consumed (crash, early close,
                # teardown dropping buffers) must count as undelivered so a
                # resume resends them.  The pipeline is FIFO, so the k-th
                # run() output is the k-th provider emission.
                if self.ledger is not None:
                    self.ledger.record(*provider.emitted[consumed])
                if self._tracer is not None:
                    e, n, s = provider.emitted[consumed]
                    if self._pop_sampled(e, s):
                        # The consume span marks the handoff to training —
                        # a point event, recorded as a minimal interval.
                        w = time.time_ns()
                        self._tracer.span((e, n, s), "consume", w, time.time_ns())
                consumed += 1
                self.batches_consumed += 1
                yield tensors, labels
        finally:
            self._provider = None
            pipe.teardown()
            self.duplicates_dropped += provider.duplicates
            self.logger.log("epoch_end", epoch=epoch_index)
        if not provider.complete and not (allow_partial and stalled):
            raise RuntimeError(
                f"epoch {epoch_index} ended early: "
                f"{provider.delivered}/{provider.expected_batches} batches"
            )

    def close(self) -> None:
        """Line 11: teardown sockets and threads."""
        self._stop.set()
        self._receiver_thread.join(timeout=10.0)
        self.pull.close()
