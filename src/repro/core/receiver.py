"""EMLIO Receiver — Algorithm 3.

Per compute node:

1. bind a PULL socket on ``(ip, port)`` (line 1);
2. a ``zmq_receiver`` thread unpacks msgpack payloads into a shared queue
   (line 2);
3. a DALI-like pipeline with ``BatchProvider(queue)`` as external source and
   prefetch depth ``Q`` (line 3), warmed up with ``Q`` iterations (line 4);
4. :meth:`epoch` iterates ``pipe.run()`` until the planned batch count is
   consumed (lines 5–9).
"""

from __future__ import annotations

import queue
import threading
from typing import Iterator

import numpy as np

from repro.core.config import EMLIOConfig
from repro.core.planner import BatchPlan
from repro.core.provider import BatchProvider
from repro.gpu.device import SimulatedGPU
from repro.gpu.pipeline import EndOfData, Pipeline
from repro.net.emulation import NetworkProfile
from repro.net.mq import PullSocket
from repro.serialize.payload import decode_batch
from repro.util.logging import TimestampLogger


class EMLIOReceiver:
    """One compute node's receive side."""

    def __init__(
        self,
        node_id: int,
        plan: BatchPlan,
        config: EMLIOConfig,
        host: str = "127.0.0.1",
        port: int = 0,
        profile: NetworkProfile | None = None,
        gpu: SimulatedGPU | None = None,
        logger: TimestampLogger | None = None,
        stall_timeout: float = 60.0,
    ) -> None:
        self.node_id = node_id
        self.plan = plan
        self.config = config
        self.gpu = gpu or SimulatedGPU()
        self.logger = logger or TimestampLogger(name=f"receiver{node_id}")
        self.stall_timeout = stall_timeout
        # Line 1: bind the PULL socket.
        self.pull = PullSocket(host=host, port=port, hwm=config.hwm, profile=profile)
        self._payload_q: queue.Queue = queue.Queue()
        self._stop = threading.Event()
        # Line 2: the zmq_receiver thread (deserializer).
        self._receiver_thread = threading.Thread(
            target=self._zmq_receiver, daemon=True, name=f"zmq-receiver{node_id}"
        )
        self._receiver_thread.start()
        self.batches_received = 0

    @property
    def address(self) -> tuple[str, int]:
        """Bound ``(host, port)`` address."""
        return self.pull.address

    @property
    def port(self) -> int:
        """Bound TCP port."""
        return self.pull.port

    def _zmq_receiver(self) -> None:
        while not self._stop.is_set():
            try:
                raw = self.pull.recv(timeout=0.2)
            except queue.Empty:
                continue
            payload = decode_batch(raw)
            if payload.node_id != self.node_id:
                raise RuntimeError(
                    f"node {self.node_id} received a batch planned for node {payload.node_id}"
                )
            self.batches_received += 1
            self.logger.log(
                "batch_recv",
                epoch=payload.epoch,
                index=payload.batch_index,
                nbytes=payload.nbytes,
            )
            self._payload_q.put(payload)

    def epoch(self, epoch_index: int = 0) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Yield preprocessed (tensors, labels) batches for one epoch."""
        expected = self.plan.batches_per_node(self.node_id, epoch=epoch_index)
        provider = BatchProvider(self._payload_q, expected, timeout=self.stall_timeout)
        # Line 3: build the pipeline over the provider.
        pipe = Pipeline(
            external_source=provider,
            gpu=self.gpu,
            output_hw=self.config.output_hw,
            prefetch=self.config.prefetch,
            seed=self.config.seed + epoch_index,
        )
        pipe.warmup()  # line 4
        self.logger.log("epoch_start", epoch=epoch_index)
        try:
            while True:  # lines 6-9
                try:
                    tensors, labels = pipe.run()
                except EndOfData:
                    break
                yield tensors, labels
        finally:
            pipe.teardown()
            self.logger.log("epoch_end", epoch=epoch_index)
        if not provider.complete:
            raise RuntimeError(
                f"epoch {epoch_index} ended early: {provider.delivered}/{expected} batches"
            )

    def close(self) -> None:
        """Line 11: teardown sockets and threads."""
        self._stop.set()
        self._receiver_thread.join(timeout=10.0)
        self.pull.close()
