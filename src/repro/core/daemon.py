"""EMLIO Daemon — the storage-side service (Algorithm 2 lines 6–8 + SendWorker).

One daemon runs next to each storage node's shards.  Per epoch and target
compute node it launches ``T`` SendWorker threads; each worker walks its
split of the batch plan, and for every assignment:

1. range-reads the ``count`` consecutive records at ``offset`` through
   its storage tier (:mod:`repro.storage.backend` — the local tier
   ``mmap``-slices with no per-record syscalls; remote tiers fetch the
   whole planned range in one request and CRC-verify locally);
2. unpacks the examples and msgpack-serializes the whole batch into one
   :class:`~repro.serialize.payload.BatchPayload`, stamped with the
   per-(epoch, node) sequence number the receiver dedups on;
3. PUSHes it — the socket's HWM provides the back-off (paper §4.5).

Reading/serializing of batch *k+1* proceeds while batch *k* sits in the
send pipeline: the network-pipeline concurrency of design principle (1).

Recovery design (see :mod:`repro.core.recovery`): with a
:class:`~repro.net.mq.ReconnectPolicy` the PUSH streams survive transient
transport errors by reconnecting and replaying unacknowledged batches
(at-least-once; the receiver dedups).  ``serve_epoch`` accepts a ``skip``
set of already-delivered keys so a resumed or failover daemon sends only
the residual, aggregates *all* worker errors into an
:class:`~repro.core.recovery.EpochServeError` instead of dropping all but
the first, and :meth:`EMLIODaemon.kill` lets a supervisor (or a chaos test)
stop a daemon mid-epoch — workers abort with
:class:`~repro.core.recovery.DaemonKilled` and in-flight messages are
dropped, exactly like a crash.
"""

from __future__ import annotations

import threading
import time
from collections import Counter, OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Collection

from repro.core.config import EMLIOConfig
from repro.core.planner import BatchAssignment, BatchPlan
from repro.core.recovery import DaemonKilled, EpochServeError, NodeUnreachable
from repro.energy.power_models import BusyWindowTracker
from repro.net.emulation import NetworkProfile
from repro.net.mq import PushSocket, ReconnectPolicy
from repro.net.buffers import ColumnarSamples
from repro.net.shm import ShmHandshakeRefused, ShmPushSocket, shm_eligible
from repro.serialize.payload import BatchPayload, encode_batch_parts, stamp_trace
from repro.storage.backend import LocalFSBackend, ShardHandle, StorageBackend
from repro.tfrecord.sharder import scan_example_spans, unpack_example
from repro.util.clock import MonotonicClock
from repro.util.logging import TimestampLogger

_KILL_POLL_S = 0.002  # back-off while a killable send waits for HWM room


@dataclass
class DaemonStats:
    """Per-daemon I/O accounting."""

    batches_sent: int = 0
    samples_sent: int = 0
    bytes_read: int = 0
    bytes_sent: int = 0
    read_s: float = 0.0
    serialize_s: float = 0.0
    # Liveness ticks: bumped on every voluntary scheduling point (including
    # HWM backpressure polls), so heartbeat progress keeps advancing while
    # the daemon is merely throttled — only a truly stuck daemon freezes.
    # Advisory counter: written without the lock (single writer per wait
    # loop; torn reads are harmless).
    ticks: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def tick(self) -> None:
        self.ticks += 1

    def record(self, samples: int, bytes_read: int, bytes_sent: int, read_s: float, ser_s: float) -> None:
        with self._lock:
            self.batches_sent += 1
            self.samples_sent += samples
            self.bytes_read += bytes_read
            self.bytes_sent += bytes_sent
            self.read_s += read_s
            self.serialize_s += ser_s

    def snapshot(self) -> dict[str, float]:
        """Point-in-time copy of the counters.

        ``bytes_sent``/``bytes_read``/``batches_sent`` are summed across
        daemons into ``emlio_transport_{bytes_sent,bytes_read,batches_sent}_total``;
        the cumulative ``read_s``/``serialize_s`` have per-batch histogram
        twins ``emlio_daemon_read_seconds`` / ``emlio_daemon_serialize_seconds``
        (:mod:`repro.obs.metrics`).
        """
        with self._lock:
            return {
                "batches_sent": self.batches_sent,
                "samples_sent": self.samples_sent,
                "bytes_read": self.bytes_read,
                "bytes_sent": self.bytes_sent,
                "read_s": self.read_s,
                "serialize_s": self.serialize_s,
                "ticks": self.ticks,
            }


class EMLIODaemon:
    """Serves one storage node's share of the batch plan to compute nodes.

    Parameters
    ----------
    dataset_root:
        Directory containing this node's TFRecord shards.
    plan:
        The global batch plan (this daemon sends only assignments whose
        shard lives under ``dataset_root`` — checked lazily at send time).
    node_endpoints:
        ``node_id -> (host, port)`` of each compute node's PULL socket.
    config:
        HWM, threads T, streams per node.
    profile:
        Egress shaping (storage → compute direction).
    cpu_tracker:
        Optional busy tracker feeding the storage node's power model.
    reconnect:
        PUSH-stream reconnect policy; ``None`` dies on the first transport
        error (pre-recovery behaviour).
    fault_injector:
        Chaos hook called as ``fault_injector(assignment, push)`` before
        each batch is sent — tests use it to drop connections or kill the
        daemon at a deterministic point in the epoch.
    backend:
        Storage tier the daemon reads shards through
        (:class:`~repro.storage.backend.StorageBackend`).  ``None`` uses
        the local mmap fast path over ``dataset_root`` — byte-identical
        to the pre-tier behaviour.  The daemon owns the backend and
        closes it on :meth:`close`.
    telemetry:
        Optional :class:`~repro.obs.Telemetry`.  Feeds per-batch
        read/serialize histograms (from the deltas the stats path already
        times — no extra clock reads) and, when tracing is configured,
        makes this daemon the trace *origin*: it decides sampling per
        batch, stamps the mark into the payload meta
        (:func:`~repro.serialize.payload.stamp_trace`), and emits the
        ``read``/``encode``/``send`` spans.
    """

    def __init__(
        self,
        dataset_root: str | Path,
        plan: BatchPlan,
        node_endpoints: dict[int, tuple[str, int]],
        config: EMLIOConfig,
        profile: NetworkProfile | None = None,
        cpu_tracker: BusyWindowTracker | None = None,
        logger: TimestampLogger | None = None,
        shard_filter: set[str] | None = None,
        reconnect: ReconnectPolicy | None = None,
        fault_injector: Callable[[BatchAssignment, PushSocket], None] | None = None,
        backend: StorageBackend | None = None,
        telemetry=None,
    ) -> None:
        self.dataset_root = Path(dataset_root)
        self.plan = plan
        self.node_endpoints = dict(node_endpoints)
        self.config = config
        self.profile = profile
        self.cpu_tracker = cpu_tracker
        self.logger = logger or TimestampLogger(name="daemon")
        self.shard_filter = shard_filter
        self.reconnect = reconnect
        self.fault_injector = fault_injector
        self.stats = DaemonStats()
        self._tracer = telemetry.tracer("daemon") if telemetry is not None else None
        if telemetry is not None and telemetry.registry.enabled:
            self._read_hist = telemetry.registry.histogram(
                "emlio_daemon_read_seconds",
                "Per-batch storage-tier read time at the daemon",
            )
            self._ser_hist = telemetry.registry.histogram(
                "emlio_daemon_serialize_seconds",
                "Per-batch payload serialize time at the daemon",
            )
        else:
            self._read_hist = self._ser_hist = None
        self._clock = MonotonicClock()
        self._killed = threading.Event()
        self._hung = threading.Event()
        self._dropped_nodes: set[int] = set()
        # node_id -> "shm" | "tcp": the transport the last connect actually
        # used (shm attach can fall back to TCP; observability needs truth).
        self.transports: dict[int, str] = {}
        # Scale-out claim protocol: a send worker *commits* to a batch key
        # under the claim lock before touching it; relinquish() can only
        # take keys not yet committed.  Either side wins atomically, so a
        # rebalanced batch is never both sent here and re-owned elsewhere.
        self._claim_lock = threading.Lock()
        self._committed: set[tuple[int, int, int]] = set()
        self._relinquished: set[tuple[int, int, int]] = set()
        self.backend = (
            backend
            if backend is not None
            else LocalFSBackend(self.dataset_root, verify=config.verify_reads)
        )
        # Shard handles, most-recently-used last; bounded by
        # config.max_open_shards (each localfs handle pins an fd + mmap).
        self._readers: OrderedDict[str, ShardHandle] = OrderedDict()
        self._readers_in_use: Counter[str] = Counter()
        self._readers_lock = threading.Lock()
        for node_id in {a.node_id for a in plan.assignments}:
            if node_id not in self.node_endpoints:
                raise ValueError(f"plan targets node {node_id} with no endpoint")

    @property
    def killed(self) -> bool:
        """Whether :meth:`kill` was invoked."""
        return self._killed.is_set()

    def kill(self) -> None:
        """Declare this daemon dead, abruptly.

        Send workers abort at their next batch (or mid-backpressure wait)
        with :class:`DaemonKilled`; queued-but-unsent messages are dropped —
        the transport-level signature of a crashed storage node.  Recovery
        of the undelivered batches is the FailoverCoordinator's job.
        """
        self._killed.set()

    @property
    def hung(self) -> bool:
        """Whether :meth:`hang` was invoked (and not undone)."""
        return self._hung.is_set()

    def hang(self) -> None:
        """Chaos hook: the daemon stops making progress *without* crashing.

        Send workers spin in place — threads alive, no errors raised, no
        batches sent.  Thread-state watchdogs are blind to this; heartbeat
        progress tracking (see :mod:`repro.core.membership`) is not.
        """
        self._hung.set()

    def unhang(self) -> None:
        """Chaos hook: resume a hung daemon (partition heals, disk unsticks)."""
        self._hung.clear()

    def relinquish(self, keys: Collection[tuple[int, int, int]]) -> set[tuple[int, int, int]]:
        """Give up delivery keys this daemon owns but has not yet served.

        The supervisor's elastic scale-out path asks every live daemon to
        relinquish the batches it wants to shift onto a joined receiver;
        only the returned subset — owned here, not yet committed by a send
        worker — may be re-targeted.  Claimed keys are skipped by the send
        workers from then on (including a later ``serve_epoch`` call), so
        exactly one side ever serves each batch.
        """
        wanted = set(keys)
        own = {
            (a.epoch, a.node_id, a.batch_index)
            for a in self.plan.assignments
            if (self.shard_filter is None or a.shard in self.shard_filter)
            and a.node_id not in self._dropped_nodes
        }
        with self._claim_lock:
            claimed = (wanted & own) - self._committed
            self._relinquished |= claimed
        if claimed:
            self.logger.log("batches_relinquished", count=len(claimed))
        return claimed

    def drop_node(self, node_id: int) -> None:
        """Stop serving one compute node mid-epoch (it was declared dead).

        Workers skip the node's remaining assignments, abandon sends stuck
        waiting for its credits, and treat its transport errors as expected
        — the control plane re-targets the node's undelivered batches, so
        losing them here is not a failure of *this* daemon.
        """
        self._dropped_nodes.add(node_id)

    def _is_dropped(self, node_id: int) -> bool:
        return node_id in self._dropped_nodes

    def _evict_readers_locked(self, keep: str = "") -> None:
        """Close least-recently-used idle handles beyond ``max_open_shards``."""
        if len(self._readers) <= self.config.max_open_shards:
            return
        for path in list(self._readers):  # LRU first
            if len(self._readers) <= self.config.max_open_shards:
                return
            if path == keep or self._readers_in_use[path] > 0:
                continue  # in use right now; retried on the next release
            self._readers.pop(path).close()

    def _handle_locked(self, shard_path: str) -> ShardHandle:
        handle = self._readers.get(shard_path)
        if handle is None:
            handle = self.backend.open_shard(shard_path)
            self._readers[shard_path] = handle
        else:
            self._readers.move_to_end(shard_path)
        self._evict_readers_locked(keep=shard_path)
        return handle

    def _reader(self, shard_path: str) -> ShardHandle:
        """One shared shard handle per shard file, LRU-bounded."""
        with self._readers_lock:
            return self._handle_locked(shard_path)

    def _acquire_reader(self, shard_path: str) -> ShardHandle:
        """Get a handle pinned against LRU eviction until release.

        Pinning only needs to cover the ``read_range_views`` call itself:
        once record views exist they keep the underlying buffer (mmap or
        fetched block) alive on their own, so a later LRU close cannot
        invalidate in-flight batches.
        """
        with self._readers_lock:
            handle = self._handle_locked(shard_path)
            self._readers_in_use[shard_path] += 1
            return handle

    def _release_reader(self, shard_path: str) -> None:
        with self._readers_lock:
            self._readers_in_use[shard_path] -= 1
            if self._readers_in_use[shard_path] <= 0:
                del self._readers_in_use[shard_path]
            self._evict_readers_locked()

    def schedule_prefetch(self, start_epoch: int = 0) -> int:
        """Feed the plan's remaining serve order to the backend's cache.

        The plan *is* the future: every assignment from ``start_epoch``
        onward names the exact ``(shard_path, offset, nbytes, count)``
        range this daemon will read, in order.  Tiers without a cache
        accept the plan as a no-op; a
        :class:`~repro.storage.cache.CachedBackend` starts background
        prefetch and orders eviction by next planned use.
        """
        ranges = [
            (a.shard_path, a.offset, a.nbytes, a.count)
            for a in self.plan.assignments
            if a.epoch >= start_epoch
            and (self.shard_filter is None or a.shard in self.shard_filter)
            and a.node_id not in self._dropped_nodes
        ]
        return self.backend.schedule_prefetch(ranges)

    def cache_counters(self) -> tuple[int, int, int]:
        """``(cache_hits, cache_misses, prefetch_depth)`` for heartbeats."""
        return self.backend.cache_counters()

    def hot_shards(self) -> set[str]:
        """Shard paths whose bytes sit in this daemon's cache tier."""
        return self.backend.hot_shards()

    def storage_snapshot(self) -> dict:
        """Storage-tier counters (reads, bytes, cache) plus open handles."""
        snap = self.backend.snapshot()
        with self._readers_lock:
            snap["open_shards"] = len(self._readers)
        return snap

    def warm(self) -> None:
        """Pre-open this daemon's shard readers (mmap + verify-at-open).

        Called at deploy time so the one-time attach cost — and, under
        ``verify_reads="open"``, the whole-shard CRC walk — does not land
        inside the first served epoch.  Failures are deliberately left for
        ``serve_epoch``: a corrupt or missing shard must fail the epoch it
        would have served, with the epoch path's error reporting.
        """
        self.schedule_prefetch(start_epoch=0)
        shards = {
            a.shard_path
            for a in self.plan.assignments
            if self.shard_filter is None or a.shard in self.shard_filter
        }
        for shard_path in sorted(shards):
            try:
                self._reader(shard_path)
            except (OSError, ValueError):
                pass  # surfaces again, properly, on the serve path
        # Throwaway serialize of the first assigned batch: the encoder's
        # first-call costs (packer setup, buffer growth) land here rather
        # than inside the first epoch's send loop.  Discarded, not sent.
        for a in self.plan.assignments:
            if self.shard_filter is not None and a.shard not in self.shard_filter:
                continue
            try:
                samples, labels = self._read_batch(a, self._reader(a.shard_path))
                encode_batch_parts(
                    BatchPayload(
                        epoch=a.epoch,
                        batch_index=a.batch_index,
                        shard=a.shard,
                        samples=samples,
                        labels=labels,
                        node_id=a.node_id,
                        seq=a.batch_index,
                    ),
                    version=self.config.payload_version,
                )
            except (OSError, ValueError):
                pass  # surfaces again, properly, on the serve path
            break

    def _connect_push(self, host: str, port: int, node_id: int) -> PushSocket | None:
        """Open the PUSH socket to one node, retrying refused connections.

        A node mid-crash refuses connections before the control plane
        declares it dead; retrying on the reconnect-policy schedule gives
        the declaration time to land.  Returns ``None`` when the node is
        dropped while retrying; raises :class:`NodeUnreachable` when the
        policy is exhausted first (or :class:`DaemonKilled` when this
        daemon dies mid-retry).
        """
        cfg = self.config
        policy = self.reconnect
        attempts = (policy.max_retries if policy is not None else 0) + 1
        delay = policy.base_delay_s if policy is not None else 0.0
        want_shm = shm_eligible(cfg.transport, host, self.profile)
        while True:
            if self._killed.is_set():
                raise DaemonKilled(f"daemon killed connecting to node {node_id}")
            if self._is_dropped(node_id):
                return None
            try:
                if want_shm:
                    try:
                        push = ShmPushSocket(
                            host, port, hwm=cfg.hwm, ring_bytes=cfg.shm_ring_bytes
                        )
                    except ShmHandshakeRefused as err:
                        # The endpoint is up but won't share memory with us
                        # (different host, attach failure…) — fall back to
                        # TCP for this node instead of burning retries.
                        self.logger.log("shm_fallback", node=node_id, reason=str(err))
                        want_shm = False
                        continue
                    self.transports[node_id] = "shm"
                    return push
                push = PushSocket(
                    [(host, port)],
                    hwm=cfg.hwm,
                    profile=self.profile,
                    streams_per_endpoint=cfg.streams_per_node,
                    reconnect=self.reconnect,
                )
                self.transports[node_id] = "tcp"
                return push
            except OSError as err:
                attempts -= 1
                if attempts <= 0:
                    raise NodeUnreachable(node_id, f"connect to node {node_id}: {err}") from err
                self.stats.tick()
                self._clock.sleep(delay)
                delay = min(delay * 2 if delay > 0 else 0.02, policy.max_delay_s)

    def _my_assignments(self, epoch: int, node_id: int) -> list[BatchAssignment]:
        batches = self.plan.for_epoch_node(epoch, node_id)
        if self.shard_filter is not None:
            batches = [a for a in batches if a.shard in self.shard_filter]
        return batches

    def _push(self, parts: list, push: PushSocket, node_id: int) -> bool:
        """HWM-backpressured send that stays killable while blocked.

        Returns False when the target node was dropped mid-wait (its batch
        is abandoned for the control plane to re-target).  Raises
        :class:`NodeUnreachable` when every stream to a still-wanted node
        is dead.
        """
        while True:
            try:
                if push.try_send_parts(parts):
                    return True
            except ConnectionError as err:
                if self._is_dropped(node_id):
                    return False
                raise NodeUnreachable(node_id, f"node {node_id}: {err}") from err
            if self._killed.is_set():
                raise DaemonKilled("daemon killed while waiting for send credit")
            if self._is_dropped(node_id):
                return False
            self.stats.tick()  # throttled-but-alive, for heartbeat progress
            self._clock.sleep(_KILL_POLL_S)

    def _read_batch(self, a: BatchAssignment, reader: ShardHandle):
        """Read one assignment's samples + labels through the tier.

        Columnar fast path (``payload_version >= 3``): one ``read_region``
        of the planned byte range, one framing scan — the batch goes out
        as a :class:`~repro.net.buffers.ColumnarSamples` over the region
        itself, so the encoder emits O(1) segments and nothing walks the
        records in Python.  Any layout the scanner rejects (or a handle
        without ``read_region``) degrades to the per-record zero-copy
        path, which also re-raises CRC failures with proper diagnostics.
        """
        if self.config.payload_version >= 3:
            read_region = getattr(reader, "read_region", None)
            if read_region is not None:
                try:
                    region, needs_verify = read_region(a.offset, a.count, a.nbytes)
                    offsets, labels = scan_example_spans(
                        region, a.count, verify=needs_verify
                    )
                    return ColumnarSamples(region, offsets), labels
                except ValueError:
                    pass
        records = reader.read_range_views(a.offset, a.count, nbytes=a.nbytes)
        samples = []
        labels = []
        for record in records:
            sample, label = unpack_example(record, zero_copy=True)
            samples.append(sample)
            labels.append(label)
        return samples, labels

    def _send_worker(
        self,
        assignments: list[BatchAssignment],
        push: PushSocket,
        skip: Collection[tuple[int, int, int]] | None = None,
    ) -> None:
        """The paper's SendWorker: mmap-slice, serialize, PUSH."""
        for a in assignments:
            while self._hung.is_set():  # chaos: alive, beating, useless
                if self._killed.is_set():
                    raise DaemonKilled("daemon killed while hung")
                self._clock.sleep(_KILL_POLL_S)
            if self._killed.is_set():
                raise DaemonKilled(f"daemon killed before batch (epoch={a.epoch}, index={a.batch_index})")
            key = (a.epoch, a.node_id, a.batch_index)
            if skip is not None and key in skip:
                continue
            if self._is_dropped(a.node_id):
                continue  # the node is dead; its batches are re-targeted
            with self._claim_lock:
                if key in self._relinquished:
                    continue  # re-owned by a scale-out rebalance
                self._committed.add(key)
            if self.fault_injector is not None:
                self.fault_injector(a, push)
            # Trace origin: the sampling decision is made here, once, from
            # the delivery key (seq == batch_index) — see repro.obs.trace.
            # Wall clocks are read only for sampled batches.
            tracer = self._tracer
            sampled = tracer is not None and tracer.sampled(
                a.epoch, a.node_id, a.batch_index
            )
            w0 = time.time_ns() if sampled else 0
            t0 = self._clock.now()
            reader = self._acquire_reader(a.shard_path)
            try:
                # Zero-copy serve path: views over the tier's buffer
                # (mmap'ed shard or fetched block) — one contiguous region
                # under the columnar schema, per-record sub-views otherwise.
                # The views keep that buffer alive on their own, so the
                # transport may replay them even after the handle is
                # LRU-evicted.
                samples, labels = self._read_batch(a, reader)
            finally:
                self._release_reader(a.shard_path)
            t1 = self._clock.now()
            w1 = time.time_ns() if sampled else 0
            if tuple(labels) != a.labels:
                raise RuntimeError(
                    f"shard {a.shard} labels diverge from plan at batch "
                    f"(epoch={a.epoch}, node={a.node_id}, index={a.batch_index})"
                )
            parts = encode_batch_parts(
                BatchPayload(
                    epoch=a.epoch,
                    batch_index=a.batch_index,
                    shard=a.shard,
                    samples=samples,
                    labels=labels,
                    node_id=a.node_id,
                    meta=stamp_trace() if sampled else {},
                    seq=a.batch_index,
                ),
                version=self.config.payload_version,
            )
            nbytes = sum(len(p) for p in parts)
            t2 = self._clock.now()
            w2 = time.time_ns() if sampled else 0
            # HWM backpressure applies here; False = node dropped mid-wait.
            if not self._push(parts, push, a.node_id):
                continue
            if sampled:
                w3 = time.time_ns()
                tracer.span(key, "read", w0, w1)
                tracer.span(key, "encode", w1, w2)
                tracer.span(key, "send", w2, w3, nbytes=nbytes)
            if self._read_hist is not None:
                # Histograms reuse the stats path's monotonic deltas — no
                # extra clock reads on the unsampled hot path.
                self._read_hist.observe(t1 - t0)
                self._ser_hist.observe(t2 - t1)
            if self.cpu_tracker is not None:
                self.cpu_tracker.add_busy(t2 - t0)
            self.stats.record(
                samples=len(samples),
                bytes_read=a.nbytes,
                bytes_sent=nbytes,
                read_s=t1 - t0,
                ser_s=t2 - t1,
            )
            self.logger.log(
                "batch_send", epoch=a.epoch, node=a.node_id, index=a.batch_index,
                nbytes=nbytes,
            )

    def serve_epoch(
        self, epoch: int, skip: Collection[tuple[int, int, int]] | None = None
    ) -> None:
        """Send every assigned batch of one epoch to all compute nodes.

        Blocks until the epoch is fully pushed (and flushed).  Algorithm 2
        lines 6–8: per node, split into T thread work lists and run them on
        a thread pool.

        ``skip`` holds ``(epoch, node_id, seq)`` delivery keys to omit —
        the resume/failover path sends only what a ledger says is still
        owed.  A single worker failure is re-raised as-is; multiple worker
        failures are aggregated into one :class:`EpochServeError` so no
        diagnosis is lost.
        """
        cfg = self.config
        self.logger.log("epoch_start", epoch=epoch)
        # Re-feed the plan from this epoch forward: prefetch runs ahead of
        # the serve loop and eviction lookahead stays aligned with reality.
        self.schedule_prefetch(start_epoch=epoch)
        pushes: list[tuple[int, PushSocket]] = []
        threads: list[threading.Thread] = []
        errors: list[BaseException] = []
        err_lock = threading.Lock()
        try:
            for node_id, (host, port) in self.node_endpoints.items():
                if self._is_dropped(node_id):
                    continue
                assignments = self._my_assignments(epoch, node_id)
                if not assignments:
                    continue
                try:
                    push = self._connect_push(host, port, node_id)
                except NodeUnreachable as err:
                    with err_lock:
                        errors.append(err)
                    continue
                if push is None:  # node dropped (or daemon killed) meanwhile
                    continue
                pushes.append((node_id, push))
                splits = [assignments[t :: cfg.daemon_threads] for t in range(cfg.daemon_threads)]

                def run(split=None, sock=push):
                    try:
                        self._send_worker(split, sock, skip=skip)
                    except BaseException as err:  # noqa: BLE001 - propagate to caller
                        with err_lock:
                            errors.append(err)

                for split in splits:
                    if not split:
                        continue
                    t = threading.Thread(target=run, kwargs={"split": split}, daemon=True)
                    t.start()
                    threads.append(t)
            for t in threads:
                t.join()
        finally:
            # A killed daemon crashes: drop in-flight instead of flushing,
            # and a dropped node's backlog is never flushable — don't wait.
            for node_id, push in pushes:
                crashed = self._killed.is_set() or self._is_dropped(node_id)
                push.close(timeout=0.0 if crashed else 30.0)
        # A dropped node's unreachability is expected, not a daemon fault
        # (checked post-join: the drop may land after the error was raised).
        errors = [
            e
            for e in errors
            if not (isinstance(e, NodeUnreachable) and self._is_dropped(e.node_id))
        ]
        if len(errors) == 1:
            raise errors[0]
        if errors:
            raise EpochServeError(
                f"{len(errors)} send workers failed in epoch {epoch}", errors
            )
        self.logger.log("epoch_end", epoch=epoch)

    def serve(self) -> None:
        """Serve every epoch in the plan, in order."""
        for epoch in range(self.plan.epochs):
            self.serve_epoch(epoch)

    def close(self) -> None:
        """Release resources."""
        with self._readers_lock:
            for reader in self._readers.values():
                reader.close()
            self._readers.clear()
            self._readers_in_use.clear()
        self.backend.close()
