"""EMLIOService — one-call orchestration of planner + daemon(s) + receiver(s).

For examples, tests, and the live benchmarks: wires one or more compute
nodes (receivers) to one or more storage daemons over loopback TCP with
optional latency emulation, serving the configured number of epochs.

For multi-node experiments construct :class:`~repro.core.daemon.EMLIODaemon`
and :class:`~repro.core.receiver.EMLIOReceiver` directly — the service is a
convenience, not the only entry point.

Control plane (see :mod:`repro.core.membership`): with
``EMLIOService(recovery=RecoveryConfig(...))`` every participant publishes
heartbeats to an in-service :class:`~repro.net.heartbeat.HeartbeatListener`
and a :class:`~repro.core.membership.ClusterView` turns beats into
membership events.  The service's monitor thread consumes those events —
**liveness is never inferred from thread state**:

* a crashed daemon announces itself (``failed`` beat) or falls silent;
  either way the monitor sees a ``dead`` event and asks the
  :class:`~repro.core.recovery.FailoverCoordinator` to re-plan the dead
  daemon's undelivered batches onto surviving storage roots;
* a *hung* daemon — thread alive, no error, no progress — keeps beating
  with a frozen progress counter and is declared dead just the same;
* a dead *receiver* (compute node) triggers receiver failover: its
  undelivered batches (diffed against the
  :class:`~repro.core.recovery.DeliveryLedger`) are re-targeted onto
  surviving receivers with fresh sequence numbers, daemons drop the dead
  endpoint mid-epoch, and the key re-mapping is persisted so restarts stay
  exactly-once.

Failover daemons are themselves members, so cascading failures keep
recovering while any reachable root and any live receiver survive.  A
restarted service with the same config and ledger path resumes mid-epoch;
completed epochs are compacted to one checkpoint line each.

The monitor consumes ``joined`` events too (elastic scale-out): a
receiver or daemon registered via :meth:`EMLIOService.add_receiver` /
:meth:`EMLIOService.add_daemon` is admitted when its first beat arrives,
and the :class:`~repro.core.placement.PlacementEngine` shifts load onto
it at the next safe boundary — a fresh re-target for receivers, the next
epoch start for daemons — weighted by observed throughput and queue
depth, with the same exactly-once ``reassign`` ledger vocabulary as
failover.
"""

from __future__ import annotations

import itertools
import queue
import threading
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Iterator

import numpy as np

from repro.core.config import EMLIOConfig
from repro.core.daemon import EMLIODaemon
from repro.core.membership import ClusterView, MemberStatus, MembershipEvent
from repro.core.placement import ElasticPolicy, MemberLoad, PlacementEngine
from repro.core.planner import BatchAssignment, BatchPlan
from repro.core.receiver import EMLIOReceiver, ReceiverKilled
from repro.core.recovery import (
    DeliveryKey,
    DeliveryLedger,
    FailoverError,
    RecoveryConfig,
)
from repro.energy.power_models import BusyWindowTracker
from repro.gpu.device import SimulatedGPU
from repro.net.emulation import NetworkProfile
from repro.net.heartbeat import (
    STATE_IDLE,
    STATE_SERVING,
    HeartbeatListener,
    HeartbeatPublisher,
)
from repro.tfrecord.sharder import ShardedDataset
from repro.util.logging import TimestampLogger


@dataclass
class _DaemonEntry:
    """One serving daemon's runtime state within an epoch."""

    daemon: EMLIODaemon
    root: str
    shards: set[str] | None  # None: all shards in the plan
    thread: threading.Thread | None = None
    error: BaseException | None = None
    handled: bool = field(default=False)
    member_id: str = ""
    publisher: HeartbeatPublisher | None = None
    # Re-targeted (receiver-failover) assignments this daemon serves, which
    # live outside the original plan and need explicit re-placement should
    # this daemon die too.
    extra: tuple[BatchAssignment, ...] = ()


class EMLIOService:
    """EMLIO deployment over (optionally shaped) loopback TCP.

    Parameters
    ----------
    config:
        Pipeline tunables.
    dataset:
        A sharded TFRecord dataset.  With ``storage_roots`` unset, one
        daemon serves all shards from ``dataset.root``.
    profile:
        Link emulation between daemon(s) and the receiver(s).
    storage_shards:
        Optional mapping ``root_dir -> set of shard names`` to run several
        daemons, each owning a disjoint subset of shards (the paper's
        fully-sharded Scenario 2).  When roots are replicas or shared
        mounts holding each other's shards, they double as failover
        targets.
    recovery:
        Fault-tolerance policy (ledger, dedup, reconnect, failover,
        membership thresholds); see
        :class:`~repro.core.recovery.RecoveryConfig`.  ``None`` keeps the
        original fail-fast behaviour.
    num_nodes:
        Compute nodes (receivers).  With more than one, :meth:`epoch`
        merges every node's batches into one stream and a dead node's
        undelivered batches fail over to the survivors.
    preprocess_fn:
        Batch preprocessor forwarded to every receiver's pipeline
        (``None`` keeps the image decode path).  The deployment facade
        resolves codec registry names to these.
    elastic:
        Elastic-membership policy (admission, member bounds, rebalance
        threshold) consulted by :meth:`add_receiver`/:meth:`add_daemon`
        and the scale-out re-planner; ``None`` keeps an open default.
    storage_factory:
        ``root -> StorageBackend`` called once per daemon (original,
        failover, and scale-out alike) so every daemon reads its shards
        through a tiered backend; each daemon owns and closes its
        instance.  ``None`` keeps the local mmap fast path.
    telemetry:
        Optional :class:`~repro.obs.Telemetry` threaded through every
        daemon and receiver (original, failover, and scale-out alike).
        The service registers scrape-time collectors exporting the
        subsystem counters it already aggregates in :meth:`stats` —
        transport bytes/batches, shm attaches, per-tier storage reads and
        cache hits, pipeline stage costs, failover/rebalance counts, and
        heartbeat decode health — so enabling metrics adds no hot-path
        work beyond the per-batch histograms.
    """

    def __init__(
        self,
        config: EMLIOConfig,
        dataset: ShardedDataset,
        profile: NetworkProfile | None = None,
        gpu: SimulatedGPU | None = None,
        storage_shards: dict[str, set[str]] | None = None,
        cpu_tracker: BusyWindowTracker | None = None,
        stall_timeout: float = 60.0,
        recovery: RecoveryConfig | None = None,
        num_nodes: int = 1,
        preprocess_fn=None,
        elastic: ElasticPolicy | None = None,
        storage_factory=None,
        telemetry=None,
    ) -> None:
        if num_nodes < 1:
            raise ValueError(f"num_nodes must be >= 1, got {num_nodes}")
        self.config = config
        self.dataset = dataset
        self.profile = profile
        self.recovery = recovery
        self.num_nodes = num_nodes
        self.stall_timeout = stall_timeout
        self.elastic = elastic or ElasticPolicy()
        self._preprocess_fn = preprocess_fn
        self.telemetry = telemetry
        # The §4.5 timeline and the per-batch spans share one JSONL file
        # when tracing is configured (Telemetry.event_sink is the writer).
        self.logger = TimestampLogger(
            name="emlio-service",
            sink=telemetry.event_sink if telemetry is not None else None,
        )
        # Lifecycle observers (the deployment facade's callback bridge):
        # each is called as fn(kind, info) from whatever thread produced
        # the event; failures are logged, never propagated.
        self._observers: list = []
        self.plan: BatchPlan = PlacementEngine.plan_epochs(dataset, num_nodes, config)
        self.ledger: DeliveryLedger | None = (
            DeliveryLedger(recovery.ledger_path) if recovery is not None else None
        )
        self.failovers = 0  # successful mid-epoch daemon replacements
        self.receiver_failovers = 0  # successful mid-epoch receiver re-plans
        self.rebalances = 0  # elastic scale-out load shifts that landed
        self._last_rebalance: dict | None = None
        # None inherits EMLIOConfig.reorder_window (the receiver's fallback).
        reorder = recovery.reorder_window if recovery is not None else None
        self.receivers: list[EMLIOReceiver] = [
            EMLIOReceiver(
                node_id=i,
                plan=self.plan,
                config=config,
                profile=profile,
                gpu=gpu if i == 0 else None,
                stall_timeout=stall_timeout,
                ledger=self.ledger,
                dedup=recovery.dedup if recovery is not None else False,
                reorder_window=reorder,
                preprocess_fn=preprocess_fn,
                telemetry=telemetry,
            )
            for i in range(num_nodes)
        ]
        self._endpoints = {i: ("127.0.0.1", r.port) for i, r in enumerate(self.receivers)}
        self._reconnect = recovery.reconnect if recovery is not None else None
        self._cpu_tracker = cpu_tracker
        self._storage_factory = storage_factory
        self.daemons: list[EMLIODaemon] = []
        if storage_shards is None:
            self.daemons.append(self._make_daemon(str(dataset.root), None))
        else:
            claimed: set[str] = set()
            for root, shards in storage_shards.items():
                overlap = claimed & shards
                if overlap:
                    raise ValueError(f"shards owned by two daemons: {sorted(overlap)[:3]}")
                claimed |= shards
                self.daemons.append(self._make_daemon(root, set(shards)))
            all_shards = {ix.shard for ix in dataset.indexes}
            if claimed != all_shards:
                raise ValueError(f"unserved shards: {sorted(all_shards - claimed)[:3]}")
        self._failover_daemons: list[EMLIODaemon] = []
        self._recovery_errors: list[BaseException] = []
        # Receiver-failover state.  ``_reassigned`` (old key -> new key) is
        # seeded from the ledger so a restarted service keeps honouring
        # re-ownership decisions made before the crash.
        self._dead_nodes: set[int] = set()
        self._extra_assignments: list[BatchAssignment] = []
        self._reassigned: dict[DeliveryKey, DeliveryKey] = (
            self.ledger.reassignments() if self.ledger is not None else {}
        )
        # Elastic-membership state: members registered but not yet seen
        # joining via heartbeat, receiver joins awaiting their safe
        # boundary, storage daemons awaiting epoch-start admission, and
        # the last observed throughput per retired daemon root (so a
        # rebalance at epoch start still has load weights to work with).
        self._pending_scale_out: set[str] = set()
        self._pending_joins: list[int] = []
        self._pending_daemons: list[tuple[str, set[str] | None]] = []
        self._join_pubs: dict[str, HeartbeatPublisher] = {}
        self._root_rates: dict[str, float] = {}
        self._merge_active = False
        # Control plane: heartbeat listener + cluster view + event stream.
        self._events: "queue.Queue[MembershipEvent]" = queue.Queue()
        self._member_ids = itertools.count()
        # Daemon members are per-epoch; the previous epoch's are forgotten
        # when the next one starts so the view stays bounded by live
        # membership (kept one epoch for post-mortem status inspection).
        self._retired_members: list[str] = []
        self.view: ClusterView | None = None
        self._hb_listener: HeartbeatListener | None = None
        self._receiver_pubs: list[HeartbeatPublisher] = []
        if recovery is not None:
            self.view = ClusterView(recovery.membership, on_event=self._events.put)
            self._hb_listener = HeartbeatListener(self.view.observe)
            for i, r in enumerate(self.receivers):
                # Expected up front: a node that dies before its first beat
                # must still be detected (the miss clock starts now).
                self.view.expect(f"receiver:{i}", "receiver")
                self._receiver_pubs.append(self._make_receiver_pub(i, r).start())
        if telemetry is not None and telemetry.registry.enabled:
            self._register_collectors(telemetry.registry)

    def _register_collectors(self, registry) -> None:
        """Export the service's existing counters through the registry.

        One collector callback, run at snapshot/scrape time only, pulls
        from the same subsystem counters :meth:`stats` aggregates — the
        serving hot paths are untouched (see :mod:`repro.obs.metrics`).
        """
        bytes_sent = registry.counter(
            "emlio_transport_bytes_sent_total",
            "Wire bytes pushed by all daemons (original + failover)",
        )
        bytes_read = registry.counter(
            "emlio_transport_bytes_read_total",
            "Storage bytes read by all daemons",
        )
        batches_sent = registry.counter(
            "emlio_transport_batches_sent_total",
            "Batch payloads pushed by all daemons",
        )
        shm_attaches = registry.counter(
            "emlio_transport_shm_attaches_total",
            "Shared-memory ring attaches accepted by receivers",
        )
        transport_nodes = registry.gauge(
            "emlio_transport_nodes",
            "Compute nodes per active daemon→receiver transport",
            labelnames=("transport",),
        )
        tier_counters = {
            name: registry.counter(
                f"emlio_storage_tier_{name}_total",
                f"Storage-tier {name.replace('_', ' ')} per tier",
                labelnames=("tier",),
            )
            for name in (
                "reads", "bytes_read", "cache_hits", "cache_misses",
                "prefetched", "evictions",
            )
        }
        stage_ns = registry.gauge(
            "emlio_pipeline_stage_ns",
            "Mean per-batch consume-pipeline stage cost (nanoseconds)",
            labelnames=("stage",),
        )
        received = registry.counter(
            "emlio_batches_received_total", "Batch payloads received by all nodes"
        )
        dupes = registry.counter(
            "emlio_duplicates_dropped_total",
            "Duplicate payloads absorbed by receiver dedup",
        )
        failovers = registry.counter(
            "emlio_failovers_total",
            "Successful mid-epoch failovers by member kind",
            labelnames=("kind",),
        )
        rebalances = registry.counter(
            "emlio_rebalances_total", "Elastic scale-out load shifts that landed"
        )
        reassigned = registry.gauge(
            "emlio_ledger_reassigned_batches",
            "Delivery keys currently re-owned through the reassignment ledger",
        )
        hb_malformed = registry.counter(
            "emlio_heartbeat_decode_errors_total",
            "Heartbeat frames the listener could not decode",
        )
        hb_unknown = registry.counter(
            "emlio_heartbeat_unknown_fields_total",
            "Heartbeats carrying fields unknown to this version (mixed-version clusters)",
        )

        def collect() -> None:
            all_daemons = self.daemons + self._failover_daemons
            snaps = [d.stats.snapshot() for d in all_daemons]
            bytes_sent.set(sum(s["bytes_sent"] for s in snaps))
            bytes_read.set(sum(s["bytes_read"] for s in snaps))
            batches_sent.set(sum(s["batches_sent"] for s in snaps))
            shm_attaches.set(sum(r.shm_attaches for r in self.receivers))
            merged: dict[int, str] = {}
            for d in all_daemons:
                for node_id, transport in d.transports.items():
                    if merged.get(node_id) != "shm":
                        merged[node_id] = transport
            for t in ("shm", "tcp"):
                transport_nodes.labels(transport=t).set(
                    sum(1 for v in merged.values() if v == t)
                )
            for tier, agg in self.storage_stats()["tiers"].items():
                for name, counter in tier_counters.items():
                    counter.labels(tier=tier).set(agg[name])
            stages = self.pipeline_stage_stats()
            for stage in ("decode", "preprocess", "starved"):
                stage_ns.labels(stage=stage).set(stages[f"{stage}_ns"])
            received.set(sum(r.batches_received for r in self.receivers))
            dupes.set(sum(r.duplicates_dropped for r in self.receivers))
            failovers.labels(kind="daemon").set(self.failovers)
            failovers.labels(kind="receiver").set(self.receiver_failovers)
            rebalances.set(self.rebalances)
            reassigned.set(len(self._reassigned))
            if self._hb_listener is not None:
                hb_malformed.set(self._hb_listener.malformed)
                hb_unknown.set(self._hb_listener.unknown_fields)

        registry.register_collector(collect)

    def _make_receiver_pub(self, node: int, r: EMLIOReceiver) -> HeartbeatPublisher:
        return HeartbeatPublisher(
            member_id=f"receiver:{node}",
            role="receiver",
            endpoint=self._hb_listener.address,
            interval_s=self.recovery.membership.interval_s,
            # Consumption-boundary progress: frozen when received
            # payloads sit unconsumed, so a wedged consumer (not
            # just a dead receive loop) trips the hang detector.
            progress_fn=lambda r=r: r.progress,
            state_fn=lambda r=r: STATE_SERVING if r.epoch_active else STATE_IDLE,
            # Backpressure signal the placement engine weighs re-plans by.
            queue_depth_fn=lambda r=r: r.queue_depth,
            # Per-stage pipeline costs (decode / preprocess / starved ns
            # per batch) for `repro.tools.cluster`'s bottleneck column.
            stages_fn=lambda r=r: tuple(r.pipeline_stats.per_batch_ns().values()),
        )

    @property
    def receiver(self) -> EMLIOReceiver:
        """Node 0's receiver (single-node convenience / back-compat)."""
        return self.receivers[0]

    def add_observer(self, fn) -> None:
        """Register ``fn(kind, info)`` for lifecycle notifications.

        Kinds: ``epoch_start``/``epoch_end`` (info: epoch), ``failover``
        (a daemon re-plan), ``receiver_failover``, and ``member_event``
        (every membership transition, info mirroring the event fields).
        Called synchronously from service/monitor threads; exceptions are
        logged and swallowed so an observer can never wedge the pipeline.
        """
        self._observers.append(fn)

    def _notify(self, kind: str, **info) -> None:
        for fn in self._observers:
            try:
                fn(kind, info)
            except Exception as err:  # noqa: BLE001 - observers are untrusted
                self.logger.log("observer_error", kind=kind, error=repr(err))

    def _make_daemon(
        self,
        root: str,
        shards: set[str] | None,
        plan: BatchPlan | None = None,
    ) -> EMLIODaemon:
        daemon = EMLIODaemon(
            dataset_root=Path(root),
            plan=plan if plan is not None else self.plan,
            node_endpoints=self._endpoints,
            config=self.config,
            profile=self.profile,
            cpu_tracker=self._cpu_tracker,
            # An explicit plan is already exactly the work list (it may
            # contain re-targeted assignments from shards outside any
            # original ownership set) — a shard filter would drop them.
            shard_filter=None if plan is not None else shards,
            reconnect=self._reconnect,
            backend=(
                self._storage_factory(root)
                if self._storage_factory is not None
                else None
            ),
            telemetry=self.telemetry,
        )
        daemon.warm()
        return daemon

    # -- chaos hooks -----------------------------------------------------------

    def kill_daemon(self, index: int = 0) -> None:
        """Chaos hook: abruptly kill one of the serving daemons."""
        self.daemons[index].kill()

    def hang_daemon(self, index: int = 0) -> None:
        """Chaos hook: one daemon stops progressing without crashing."""
        self.daemons[index].hang()

    def kill_receiver(self, index: int) -> None:
        """Chaos hook: abruptly kill one compute node (socket + beats)."""
        self.receivers[index].kill()
        if index < len(self._receiver_pubs):
            self._receiver_pubs[index].kill()  # crash: silence, no goodbye

    # -- load signals & placement ----------------------------------------------

    def _member_loads(self) -> tuple[dict[int, MemberLoad], dict[str, MemberLoad]]:
        """Receiver-node and storage-root load signals from the heartbeat
        substrate: observed throughput (EWMA of progress deltas) plus the
        queue depth each beat reports.  Roots whose daemons retired with
        the previous epoch fall back to their last observed rate."""
        node_loads: dict[int, MemberLoad] = {}
        root_loads: dict[str, MemberLoad] = {}
        if self.view is not None:
            for mid, m in self.view.members().items():
                if m.status in (MemberStatus.DEAD, MemberStatus.LEFT):
                    # A corpse's last EWMA must not inflate its root's
                    # weight next to the replacement daemon beating there.
                    continue
                if m.role == "receiver" and mid.startswith("receiver:"):
                    node_loads[int(mid.split(":", 1)[1])] = MemberLoad(
                        throughput=m.rate, queue_depth=m.queue_depth
                    )
                elif m.role == "daemon" and "@" in mid:
                    root = mid.split("@", 1)[1]
                    prev = root_loads.get(root, MemberLoad())
                    root_loads[root] = MemberLoad(
                        throughput=prev.throughput + m.rate,
                        queue_depth=prev.queue_depth + m.queue_depth,
                    )
        for root, rate in self._root_rates.items():
            root_loads.setdefault(root, MemberLoad(throughput=rate))
        # Cache locality comes from direct inspection of the daemons'
        # storage tiers (the supervisor co-owns them), not from beats:
        # placement needs the *which shards*, beats only carry counts.
        for root, shards in self._hot_shards().items():
            prev = root_loads.get(root, MemberLoad())
            root_loads[root] = replace(prev, cached_shards=frozenset(shards))
        return node_loads, root_loads

    def _hot_shards(self) -> dict[str, set[str]]:
        """``root -> shard paths`` resident in its live daemons' caches."""
        hot: dict[str, set[str]] = {}
        for d in self.daemons + self._failover_daemons:
            if d.killed:
                continue
            shards = d.hot_shards()
            if shards:
                hot.setdefault(str(d.dataset_root), set()).update(shards)
        return hot

    def _engine(self, roots: dict[str, set[str] | None]) -> PlacementEngine:
        """A placement engine over the given roots with fresh load signals."""
        node_loads, root_loads = self._member_loads()
        return PlacementEngine(
            self.plan,
            self.ledger,
            roots,
            logger=self.logger,
            node_loads=node_loads,
            root_loads=root_loads,
            policy=self.elastic,
        )

    # -- elastic membership ----------------------------------------------------

    def _check_admission(self, role: str, current: int) -> None:
        if self.view is None or self._hb_listener is None:
            raise RuntimeError(
                "elastic scale-out needs the control plane: construct the "
                "service with EMLIOService(recovery=RecoveryConfig(...))"
            )
        if self.elastic.admit != "auto":
            raise FailoverError(
                f"elastic admit policy {self.elastic.admit!r} rejects a "
                f"joining {role}"
            )
        if self.elastic.max_members and current >= self.elastic.max_members:
            raise FailoverError(
                f"elastic max_members={self.elastic.max_members} reached; "
                f"refusing a joining {role}"
            )

    def add_receiver(self) -> int:
        """Admit a new compute node mid-run (elastic scale-out).

        Binds a fresh receiver socket and starts its heartbeat publisher;
        the node's first beat raises a ``joined`` membership event, which
        the monitor (mid-epoch) or the next epoch start turns into a
        load-weighted rebalance: undelivered batches shift from the
        busiest donors onto the new node through the ``reassign`` ledger
        vocabulary, so exactly-once delivery holds through scale-out
        exactly as through failover.  Returns the new node id.
        """
        self._check_admission(
            "receiver", len([r for r in self.receivers if not r.killed])
        )
        node = len(self.receivers)
        receiver = EMLIOReceiver(
            node_id=node,
            plan=self.plan,
            config=self.config,
            profile=self.profile,
            stall_timeout=self.stall_timeout,
            ledger=self.ledger,
            dedup=self.recovery.dedup,
            reorder_window=self.recovery.reorder_window,
            preprocess_fn=self._preprocess_fn,
            telemetry=self.telemetry,
        )
        self.receivers.append(receiver)
        self._endpoints[node] = ("127.0.0.1", receiver.port)
        self.num_nodes = len(self.receivers)
        member_id = f"receiver:{node}"
        # Not expect()ed: the *first beat* must surface as a `joined`
        # event — that event is what triggers the rebalance.
        self._pending_scale_out.add(member_id)
        self._receiver_pubs.append(self._make_receiver_pub(node, receiver).start())
        self.logger.log("receiver_joining", node=node)
        return node

    def add_daemon(self, root: str, shards: set[str] | None = None) -> None:
        """Admit a new storage daemon mid-run (elastic scale-out).

        The root starts beating (idle) immediately — joining the cluster
        view via heartbeat — and is admitted at the next safe boundary:
        the next epoch start, where shard ownership across *all* roots is
        re-divided weighted by observed throughput, so the new daemon
        takes on a fair share of the plan without a service restart.
        ``shards`` optionally pins its ownership instead.
        """
        self._check_admission("daemon", len(self.daemons))
        if any(str(d.dataset_root) == root for d in self.daemons) or any(
            r == root for r, _s in self._pending_daemons
        ):
            raise FailoverError(f"daemon root already registered: {root}")
        self._pending_daemons.append((root, set(shards) if shards is not None else None))
        member_id = f"daemon:join@{root}"
        pub = HeartbeatPublisher(
            member_id=member_id,
            role="daemon",
            endpoint=self._hb_listener.address,
            interval_s=self.recovery.membership.interval_s,
            state_fn=lambda: STATE_IDLE,
        )
        pub.start()
        self._join_pubs[member_id] = pub
        self.logger.log("daemon_joining", root=root)

    def _admit_daemons(self, epoch: int) -> None:
        """Epoch-start safe boundary: fold joined roots into the topology.

        Creates the joined daemons and re-divides shard ownership across
        every root, weighted by observed throughput — the load-aware
        generalization of the deploy-time round-robin split.
        """
        joined, self._pending_daemons = self._pending_daemons, []
        pinned: dict[str, set[str]] = {}
        for root, shards in joined:
            self.daemons.append(self._make_daemon(root, shards))
            if shards is not None:
                pinned[root] = set(shards)
        for member_id, pub in self._join_pubs.items():
            pub.stop()
            self.view.forget(member_id)
        self._join_pubs.clear()
        # Re-divide the unpinned shards across the unpinned roots, weighted
        # by observed throughput; roots that joined with an explicit shard
        # set keep exactly that set.
        roots = {str(d.dataset_root): d.shard_filter for d in self.daemons}
        engine = self._engine(roots)
        pinned_shards = {s for shards in pinned.values() for s in shards}
        pool = {a.shard for a in self.plan.assignments} - pinned_shards
        ownership = engine.plan_shard_ownership(
            [r for r in roots if r not in pinned], only=pool
        )
        ownership.update(pinned)
        for d in self.daemons:
            d.shard_filter = set(ownership.get(str(d.dataset_root), set()))
        self.rebalances += 1
        self._last_rebalance = {
            "kind": "daemon_join",
            "epoch": epoch,
            "roots": {r: sorted(s) for r, s in ownership.items()},
        }
        self.logger.log(
            "daemon_admitted",
            epoch=epoch,
            joined=[r for r, _s in joined],
            ownership={r: len(s) for r, s in ownership.items()},
        )
        self._notify(
            "rebalance", variant="daemon_join", epoch=epoch,
            joined=[r for r, _s in joined],
        )

    def _scale_out_receiver(self, epoch: int, node: int, entries: list[_DaemonEntry]) -> None:
        """Shift load onto a freshly joined compute node (fresh re-target).

        Mirrors receiver failover with live donors: the engine drafts a
        load-weighted share of the donors' undelivered batches, the
        serving daemons *relinquish* exactly the not-yet-sent subset (an
        atomic claim, so no batch is both sent to its donor and re-owned),
        the re-mappings persist as ``reassign`` ledger lines, donors
        shrink their expectations, and fresh daemons serve the re-targets
        to the new node.
        """
        assert self.ledger is not None
        if node in self._dead_nodes or self.receivers[node].killed:
            return  # joined and died before the rebalance landed
        excluded = self._excluded(epoch)
        donors_residual = [
            a
            for a in self.plan.residual(excluded, epoch=epoch).assignments
            if a.node_id != node
            and a.node_id not in self._dead_nodes
            and not self.receivers[a.node_id].killed
        ]
        live_roots = self._live_roots(entries)
        engine = self._engine(live_roots)
        candidates = engine.select_scale_out(donors_residual, node)
        if not candidates:
            self.logger.log("scale_out_noop", epoch=epoch, node=node)
            return
        wanted = {(a.epoch, a.node_id, a.batch_index) for a in candidates}
        claimed_keys: set[DeliveryKey] = set()
        for entry in entries:
            if entry.handled or entry.error is not None or entry.daemon.killed:
                continue
            claimed_keys |= entry.daemon.relinquish(wanted)
        claimed = [
            a for a in candidates if (a.epoch, a.node_id, a.batch_index) in claimed_keys
        ]
        if not claimed:
            self.logger.log("scale_out_nothing_claimable", epoch=epoch, node=node)
            return
        plan = engine.retarget(
            claimed,
            targets=[node],
            next_seq=self._next_seq_map(epoch),
            survivor_roots=list(live_roots),
            context=f" for joined node {node}",
        )
        for old, new in plan.key_map.items():
            self.ledger.record_reassignment(old, new)
        self._reassigned = self.ledger.reassignments()
        self._extra_assignments.extend(plan.assignments)
        # Donors give the moved keys up before the new node's expectation
        # grows, so no pass can end with a key both expected and re-owned.
        by_donor: dict[int, list[tuple[int, int]]] = {}
        for (e, donor, seq) in plan.key_map:
            by_donor.setdefault(donor, []).append((e, seq))
        for donor, keys in by_donor.items():
            self.receivers[donor].relinquish(keys)
        if not self.receivers[node].adopt(len(plan.assignments)):
            # The joiner died between admission and adoption.  The moved
            # keys are already re-owned by its (now dead) id, so leave
            # them there: its death event is on the way (the kill silenced
            # its publisher) and the ordinary receiver-failover path will
            # re-target these `_extra_assignments` onto survivors.
            # Raising here would kill the monitor and foreclose exactly
            # that recovery.
            self.logger.log(
                "scale_out_joiner_died", epoch=epoch, node=node,
                stranded=len(plan.assignments),
            )
            return
        for root, assignments in plan.by_root.items():
            daemon = self._make_daemon(root, None, plan=self.plan.subset(assignments))
            for dead in self._dead_nodes:
                daemon.drop_node(dead)
            self._failover_daemons.append(daemon)
            entry = _DaemonEntry(
                daemon=daemon, root=root, shards=set(), extra=assignments
            )
            entries.append(entry)
            self._spawn(entry, epoch, None)
        self.rebalances += 1
        self._last_rebalance = {
            "kind": "receiver_join",
            "epoch": epoch,
            "node": node,
            "moved": len(plan.assignments),
        }
        self.logger.log(
            "scale_out",
            epoch=epoch,
            node=node,
            moved=len(plan.assignments),
            donors={str(n): len(k) for n, k in by_donor.items()},
        )
        self._notify(
            "rebalance", variant="receiver_join", epoch=epoch, node=node,
            moved=len(plan.assignments),
        )

    # -- ledger coverage -------------------------------------------------------

    def _covered(self, epoch: int) -> set[DeliveryKey]:
        """Planned keys delivered directly or through a re-targeted copy."""
        assert self.ledger is not None
        return {k for k in self.plan.keys(epoch=epoch) if self.ledger.covered(k)}

    def _epoch_covered(self, epoch: int) -> bool:
        """Whether every planned batch of ``epoch`` landed (incl. re-owned)."""
        if self.ledger is None:
            return False
        if self.ledger.epoch_complete(epoch):
            return True
        return all(self.ledger.covered(k) for k in self.plan.keys(epoch=epoch))

    def _excluded(self, epoch: int) -> set[DeliveryKey]:
        """Keys no daemon should serve: delivered, or re-owned elsewhere."""
        assert self.ledger is not None
        return self.ledger.delivered(epoch=epoch) | {
            k for k in self._reassigned if k[0] == epoch
        }

    def _next_seq_map(self, epoch: int) -> dict[int, int]:
        """First unused payload seq per node for ``epoch`` (re-targets get
        fresh seqs past anything planned or previously re-assigned)."""
        top = {n: -1 for n in range(self.num_nodes)}
        for a in self.plan.assignments:
            if a.epoch == epoch and a.batch_index > top[a.node_id]:
                top[a.node_id] = a.batch_index
        for a in self._extra_assignments:
            if a.epoch == epoch and a.batch_index > top.get(a.node_id, -1):
                top[a.node_id] = a.batch_index
        for (e, _dn, _ds), (_e, nn, ns) in self._reassigned.items():
            if e == epoch and ns > top.get(nn, -1):
                top[nn] = ns
        return {n: t + 1 for n, t in top.items()}

    # -- epoch orchestration ---------------------------------------------------

    def _run_daemon(self, entry: _DaemonEntry, epoch: int, skip) -> None:
        try:
            entry.daemon.serve_epoch(epoch, skip=skip)
        except BaseException as err:  # noqa: BLE001 - surfaced in epoch()
            entry.error = err
            if entry.publisher is not None:
                entry.publisher.fail(repr(err))  # fast-path death notice
        else:
            if entry.publisher is not None:
                entry.publisher.stop()  # clean departure, not a death

    def _spawn(self, entry: _DaemonEntry, epoch: int, skip) -> None:
        if entry.publisher is None and self._hb_listener is not None:
            daemon = entry.daemon
            entry.member_id = f"daemon:{next(self._member_ids)}@{entry.root}"
            self.view.expect(entry.member_id, "daemon")
            entry.publisher = HeartbeatPublisher(
                member_id=entry.member_id,
                role="daemon",
                endpoint=self._hb_listener.address,
                interval_s=self.recovery.membership.interval_s,
                # Ticks advance through HWM backpressure waits too, so a
                # daemon throttled by a slow receiver is busy, not hung.
                progress_fn=lambda d=daemon: d.stats.batches_sent + d.stats.ticks,
                # Storage-cache hit/miss/prefetch-depth ride the beats so
                # the ClusterView (and the status CLI) see tier behaviour.
                cache_fn=lambda d=daemon: d.cache_counters(),
            )
            entry.publisher.start()
        entry.thread = threading.Thread(
            target=self._run_daemon, args=(entry, epoch, skip), daemon=True,
            name="emlio-daemon",
        )
        entry.thread.start()

    def _live_roots(self, entries: list[_DaemonEntry], exclude: _DaemonEntry | None = None) -> dict[str, set[str] | None]:
        """Roots of daemons still considered alive, with their shard sets."""
        live: dict[str, set[str] | None] = {}
        for e in entries:
            if e is exclude or e.handled or e.error is not None or e.daemon.killed:
                continue
            live.setdefault(e.root, e.shards)
        return live

    def _failover(self, epoch: int, dead: _DaemonEntry, entries: list[_DaemonEntry]) -> None:
        """Re-plan a dead daemon's undelivered batches onto survivors."""
        assert self.ledger is not None
        live_roots = self._live_roots(entries, exclude=dead)
        excluded = self._excluded(epoch)
        # Dead entry last so its shard set wins if a survivor shares the root
        # (a failover daemon dying on a root that still has a live daemon).
        engine = self._engine({**live_roots, dead.root: dead.shards})
        takeover = engine.plan_failover(dead.root, epoch, survivors=list(live_roots))
        # Re-targeted assignments the dead daemon carried live outside the
        # original plan: re-place each on a reachable surviving root.
        extra_residual = [
            a
            for a in dead.extra
            if a.epoch == epoch
            and (a.epoch, a.node_id, a.batch_index) not in self.ledger
            and (a.epoch, a.node_id, a.batch_index) not in self._reassigned
            and a.node_id not in self._dead_nodes
        ]
        extra_by_root = engine.place_assignments(extra_residual, list(live_roots))
        for root in sorted(set(takeover) | set(extra_by_root)):
            shards = takeover.get(root, set())
            residual = (
                self.plan.residual(excluded, epoch=epoch, shards=shards)
                if shards
                else self.plan.residual(excluded, epoch=epoch, shards=())
            )
            assignments = residual.assignments + tuple(extra_by_root.get(root, ()))
            if not assignments:
                continue
            daemon = self._make_daemon(
                root, shards or None, plan=self.plan.subset(assignments)
            )
            for node in self._dead_nodes:
                daemon.drop_node(node)
            self._failover_daemons.append(daemon)
            entry = _DaemonEntry(
                daemon=daemon, root=root, shards=shards,
                extra=tuple(extra_by_root.get(root, ())),
            )
            entries.append(entry)
            self._spawn(entry, epoch, self._excluded(epoch))
        self.failovers += 1
        self.logger.log(
            "failover",
            epoch=epoch,
            dead_root=dead.root,
            replacements=len(set(takeover) | set(extra_by_root)),
        )
        self._notify(
            "failover",
            epoch=epoch,
            dead_root=dead.root,
            replacements=len(set(takeover) | set(extra_by_root)),
        )

    def _failover_receiver(self, epoch: int, dead_node: int, entries: list[_DaemonEntry]) -> None:
        """Re-target a dead compute node's undelivered batches onto survivors.

        Sequence matters: silence the corpse (kill socket + beats), stop
        daemons pushing at it, grow the survivors' expectations, and only
        then spawn the daemons that serve the re-targets — adopting after
        spawning could let a survivor finish its epoch early and tear down
        while re-targeted payloads are in flight.
        """
        assert self.ledger is not None
        receiver = self.receivers[dead_node]
        receiver.kill()
        if dead_node < len(self._receiver_pubs):
            self._receiver_pubs[dead_node].kill()
        self._dead_nodes.add(dead_node)
        self._endpoints.pop(dead_node, None)
        for d in self.daemons + self._failover_daemons:
            d.drop_node(dead_node)
        # Residual: planned-but-undelivered batches of the dead node, plus
        # any re-targets pointed at it by an earlier receiver failover.
        excluded = self._excluded(epoch)
        base = self.plan.residual(excluded, epoch=epoch)
        residual = [a for a in base.assignments if a.node_id == dead_node]
        residual += [
            a
            for a in self._extra_assignments
            if a.epoch == epoch
            and a.node_id == dead_node
            and (a.epoch, a.node_id, a.batch_index) not in self.ledger
            and (a.epoch, a.node_id, a.batch_index) not in self._reassigned
        ]
        if not residual:
            self.logger.log("receiver_dead_nothing_owed", epoch=epoch, node=dead_node)
            return
        survivors = [
            i
            for i in range(self.num_nodes)
            if i not in self._dead_nodes and not self.receivers[i].killed
        ]
        live_roots = self._live_roots(entries)
        plan = self._engine(live_roots).plan_receiver_failover(
            dead_node,
            epoch,
            surviving_nodes=survivors,
            next_seq=self._next_seq_map(epoch),
            survivor_roots=list(live_roots),
            residual=residual,
        )
        for old, new in plan.key_map.items():
            self.ledger.record_reassignment(old, new)
        # Re-snapshot rather than merge: the ledger GC-rewrites chains in
        # place (old -> final) and drops re-reassigned synthetic keys, so
        # the ledger's map is the truth, not an accumulation of ours.
        self._reassigned = self.ledger.reassignments()
        self._extra_assignments.extend(plan.assignments)
        for node, extra in plan.extra_per_node.items():
            if not self.receivers[node].adopt(extra):
                raise FailoverError(
                    f"receiver {node} finished epoch {epoch} before adopting "
                    f"{extra} re-targeted batches of dead node {dead_node}"
                )
        for root, assignments in plan.by_root.items():
            daemon = self._make_daemon(root, None, plan=self.plan.subset(assignments))
            for node in self._dead_nodes:
                daemon.drop_node(node)
            self._failover_daemons.append(daemon)
            entry = _DaemonEntry(
                daemon=daemon, root=root, shards=set(), extra=assignments
            )
            entries.append(entry)
            self._spawn(entry, epoch, None)
        self.receiver_failovers += 1
        self.logger.log(
            "receiver_failover",
            epoch=epoch,
            dead_node=dead_node,
            re_targeted=len(plan.assignments),
            adopted={str(n): c for n, c in plan.extra_per_node.items()},
        )
        self._notify(
            "receiver_failover",
            epoch=epoch,
            dead_node=dead_node,
            re_targeted=len(plan.assignments),
        )

    def _handle_event(self, ev: MembershipEvent, epoch: int, entries: list[_DaemonEntry]) -> None:
        self._notify(
            "member_event",
            event=ev.kind,
            member_id=ev.member_id,
            role=ev.role,
            reason=ev.reason,
            incarnation=ev.incarnation,
            epoch=epoch,
        )
        if ev.kind == "joined" and ev.member_id in self._pending_scale_out:
            # A registered member's first beat arrived: it is admitted.
            # Receivers rebalance at the next safe boundary — immediately
            # (fresh re-target) when the merged consume loop is live, else
            # at the next epoch start.
            self._pending_scale_out.discard(ev.member_id)
            self.logger.log(
                "member_admitted", member=ev.member_id, role=ev.role, epoch=epoch
            )
            if ev.role == "receiver":
                node = int(ev.member_id.split(":", 1)[1])
                if self._merge_active:
                    self._scale_out_receiver(epoch, node, entries)
                else:
                    self._pending_joins.append(node)
            return
        if ev.kind != "dead":
            self.logger.log(
                "membership_event", event=ev.kind, member=ev.member_id, reason=ev.reason
            )
            return
        self.logger.log(
            "member_dead", member=ev.member_id, role=ev.role, reason=ev.reason, epoch=epoch
        )
        if ev.role == "receiver":
            node = int(ev.member_id.split(":", 1)[1])
            if node in self._dead_nodes:
                return  # already failed over (e.g. at epoch start)
            self._failover_receiver(epoch, node, entries)
            return
        entry = next((e for e in entries if e.member_id == ev.member_id), None)
        if entry is None or entry.handled:
            return  # stale event (previous epoch) or already failed over
        entry.handled = True
        # A hung daemon is alive and might wake mid-failover: kill it so the
        # re-plan is the only writer (its replays would dedup anyway, but a
        # corpse has no business holding send credits).
        entry.daemon.kill()
        if entry.publisher is not None:
            entry.publisher.kill()
        self._failover(epoch, entry, entries)

    def _monitor(self, epoch: int, entries: list[_DaemonEntry], stop: threading.Event) -> None:
        """Consume membership events; drive failover.  Replaces the old
        thread-state watchdog — liveness comes from the ClusterView only."""
        assert self.view is not None
        poll_s = max(0.005, self.recovery.membership.interval_s / 2)
        while not stop.is_set():
            self.view.poll()  # timeout/hang sweeps feed self._events
            try:
                ev = self._events.get(timeout=poll_s)
            except queue.Empty:
                continue
            try:
                self._handle_event(ev, epoch, entries)
            except BaseException as err:  # noqa: BLE001 - surfaced in epoch()
                self._recovery_errors.append(err)
                return

    def _consume_pass(
        self, epoch_index: int, receivers: list[EMLIOReceiver]
    ) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """One concurrent drain of the given receivers' epoch streams."""
        out: queue.Queue = queue.Queue()
        done = object()
        errors: list[BaseException] = []
        err_lock = threading.Lock()

        def consume(r: EMLIOReceiver) -> None:
            try:
                for item in r.epoch(epoch_index):
                    out.put(item)
            except BaseException as err:  # noqa: BLE001 - surfaced below
                # A killed node's torn epoch is expected — its batches are
                # re-owned; anything else is a real consumer failure.
                if not (isinstance(err, ReceiverKilled) or r.killed):
                    with err_lock:
                        errors.append(err)
            finally:
                out.put(done)

        threads = [
            threading.Thread(target=consume, args=(r,), daemon=True, name=f"emlio-consume{r.node_id}")
            for r in receivers
        ]
        for t in threads:
            t.start()
        remaining = len(threads)
        while remaining:
            item = out.get()
            if item is done:
                remaining -= 1
                continue
            yield item
        for t in threads:
            t.join(timeout=10.0)
        if errors:
            if self._recovery_errors:
                raise self._recovery_errors[0] from errors[0]
            raise errors[0]

    def _merge_receivers(self, epoch_index: int) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Drive every receiver's epoch, merged — a cluster-wide barrier.

        The epoch ends when every planned batch is *covered*, not when the
        survivors drain their own partitions: a node can die after the
        others already finished consuming, in which case the failure
        detector fires between passes and the re-targeted batches (adopted
        as ``pending_adopt``) are drained by a further pass.  Gives up when
        the control plane stops making progress for ``stall_timeout``.
        """
        import time as _time

        failover_on = (
            self.recovery is not None and self.recovery.failover and self.view is not None
        )
        deadline = _time.monotonic() + self.stall_timeout
        # While this loop runs, a joining receiver can be rebalanced onto
        # immediately: the next consume pass will drain its adopted load.
        self._merge_active = True
        try:
            while True:
                alive = [r for r in self.receivers if not r.killed]
                if not alive:
                    raise FailoverError(f"every receiver is dead in epoch {epoch_index}")
                for item in self._consume_pass(epoch_index, alive):
                    deadline = _time.monotonic() + self.stall_timeout
                    yield item
                if self.ledger is None or not failover_on:
                    return
                # Wait (bounded) for the control plane: either the epoch turns
                # covered, a failover adopts batches for another pass, or the
                # deadline expires (incompleteness surfaced by the caller).
                while True:
                    if self._recovery_errors or self._epoch_covered(epoch_index):
                        return
                    if any(r.pending_adopt > 0 for r in self.receivers if not r.killed):
                        break  # drain the adopted re-targets in another pass
                    if _time.monotonic() > deadline:
                        return
                    _time.sleep(0.01)  # detection/re-plan still in flight
        finally:
            self._merge_active = False

    def epoch(self, epoch_index: int = 0) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Serve and consume one epoch end-to-end."""
        self.logger.log("epoch_start", epoch=epoch_index)
        self._notify("epoch_start", epoch=epoch_index)
        self._recovery_errors = []
        if self.ledger is not None and self.ledger.epoch_complete(epoch_index):
            # Compacted checkpoint: everything landed in a previous run.
            self.logger.log("epoch_already_complete", epoch=epoch_index)
            self.logger.log("epoch_end", epoch=epoch_index)
            self._notify("epoch_end", epoch=epoch_index)
            return
        if self.view is not None and self._retired_members:
            for member_id in self._retired_members:
                self.view.forget(member_id)
            self._retired_members.clear()
        skip = self._covered(epoch_index) if self.ledger is not None else None
        stop = threading.Event()
        monitor: threading.Thread | None = None
        failover_on = (
            self.recovery is not None and self.recovery.failover and self.view is not None
        )
        if failover_on:
            # Deaths observed between epochs are queued; settle receiver
            # deaths *before* daemons connect to a corpse's endpoint.
            # Joins observed between epochs reach their safe boundary here.
            while True:
                try:
                    ev = self._events.get_nowait()
                except queue.Empty:
                    break
                if ev.kind == "dead" and ev.role == "receiver":
                    node = int(ev.member_id.split(":", 1)[1])
                    self.receivers[node].kill()
                    if node < len(self._receiver_pubs):
                        self._receiver_pubs[node].kill()
                    self._dead_nodes.add(node)
                    self._endpoints.pop(node, None)
                elif ev.kind == "joined" and ev.member_id in self._pending_scale_out:
                    self._pending_scale_out.discard(ev.member_id)
                    if ev.role == "receiver":
                        self._pending_joins.append(int(ev.member_id.split(":", 1)[1]))
            # Storage daemons that joined mid-run are admitted at this safe
            # boundary: ownership re-divides before any entry is built.
            if self._pending_daemons:
                try:
                    self._admit_daemons(epoch_index)
                except BaseException as err:  # noqa: BLE001 - surfaced below
                    self._recovery_errors.append(err)
        entries = [
            _DaemonEntry(daemon=d, root=str(d.dataset_root), shards=d.shard_filter)
            for d in self.daemons
        ]
        if failover_on:
            monitor = threading.Thread(
                target=self._monitor, args=(epoch_index, entries, stop), daemon=True,
                name="emlio-monitor",
            )
            monitor.start()
            # A node that died in an earlier epoch owes this epoch its
            # partition too: re-target before any daemon serves.
            for node in sorted(self._dead_nodes):
                try:
                    self._failover_receiver(epoch_index, node, entries)
                except BaseException as err:  # noqa: BLE001 - surfaced below
                    self._recovery_errors.append(err)
            # Receivers that joined at/near the boundary get their fresh
            # re-target before the planned daemons spawn: the whole epoch
            # is still claimable, so the shift is maximally effective.
            # Swap, don't snapshot-and-clear: the monitor thread appends
            # concurrently, and a join landing between those two steps
            # would be erased (list mutation is GIL-atomic; clear() after
            # a copy is a lost-update window).
            pending, self._pending_joins = self._pending_joins, []
            if pending:
                for node in sorted(set(pending)):
                    try:
                        self._scale_out_receiver(epoch_index, node, entries)
                    except BaseException as err:  # noqa: BLE001 - surfaced below
                        self._recovery_errors.append(err)
        for entry in entries:
            if entry.thread is None:
                self._spawn(entry, epoch_index, skip)
        try:
            if self.num_nodes == 1:
                try:
                    yield from self.receivers[0].epoch(epoch_index)
                except Exception as err:
                    # A failed failover starves the receiver into a stall;
                    # surface the root cause (e.g. FailoverError) over the
                    # symptom.
                    if self._recovery_errors:
                        raise self._recovery_errors[0] from err
                    raise
            else:
                yield from self._merge_receivers(epoch_index)
        finally:
            stop.set()
            if monitor is not None:
                monitor.join(timeout=10.0)
            # Entries may have grown (failover); join whatever exists now.
            for entry in list(entries):
                if entry.thread is not None:
                    entry.thread.join(timeout=30.0)
            # Keep each root's last observed throughput: daemon members
            # retire with the epoch, but an epoch-start rebalance still
            # wants their weights.
            if self.view is not None:
                members = self.view.members()
                for entry in entries:
                    m = members.get(entry.member_id)
                    if m is not None and m.rate > 0:
                        self._root_rates[entry.root] = m.rate
            self._retired_members.extend(e.member_id for e in entries if e.member_id)
        if self._recovery_errors:
            raise self._recovery_errors[0]
        unhandled = [e.error for e in entries if e.error is not None and not e.handled]
        if unhandled:
            # A daemon may die in the last instants of an epoch, after the
            # receivers already consumed everything — the monitor never got
            # a sweep in.  A fully-covered ledger proves the error is moot.
            if self._epoch_covered(epoch_index):
                self.logger.log(
                    "late_daemon_error_ignored",
                    epoch=epoch_index,
                    errors=[repr(err) for err in unhandled],
                )
            else:
                raise unhandled[0]
        if self.num_nodes > 1 and self.ledger is not None and not self._epoch_covered(epoch_index):
            # Single-node epochs surface incompleteness from the receiver
            # itself; merged consumption needs the ledger-level check.
            missing = [
                k for k in sorted(self.plan.keys(epoch=epoch_index))
                if not self.ledger.covered(k)
            ]
            raise RuntimeError(
                f"epoch {epoch_index} incomplete after merge: "
                f"{len(missing)} planned batches undelivered (first: {missing[:3]})"
            )
        if (
            self.ledger is not None
            and self.recovery is not None
            and self.recovery.compact_ledger
            and self._epoch_covered(epoch_index)
        ):
            count = self.ledger.complete_epoch(epoch_index)
            self.logger.log("ledger_compacted", epoch=epoch_index, batches=count)
        self.logger.log("epoch_end", epoch=epoch_index)
        self._notify("epoch_end", epoch=epoch_index)

    def epochs(self) -> Iterator[tuple[int, np.ndarray, np.ndarray]]:
        """Iterate every planned epoch: yields (epoch, tensors, labels)."""
        for e in range(self.config.epochs):
            for tensors, labels in self.epoch(e):
                yield e, tensors, labels

    def storage_stats(self) -> dict:
        """Per-daemon storage-tier snapshots plus a per-tier aggregate.

        The aggregate answers "where did the bytes come from": tier reads
        count requests that actually hit the tier, cache hits are reads
        the hot set absorbed — remote-vs-cached I/O as the energy
        attribution path needs it.
        """
        daemons: list[dict] = []
        tiers: dict[str, dict[str, int]] = {}
        for d in self.daemons + self._failover_daemons:
            snap = d.storage_snapshot()
            snap["root"] = str(d.dataset_root)
            daemons.append(snap)
            agg = tiers.setdefault(
                snap.get("tier", "?"),
                {
                    "reads": 0,
                    "bytes_read": 0,
                    "cache_hits": 0,
                    "cache_misses": 0,
                    "prefetched": 0,
                    "evictions": 0,
                },
            )
            agg["reads"] += snap.get("reads", 0)
            agg["bytes_read"] += snap.get("bytes_read", 0)
            cache = snap.get("cache")
            if cache:
                agg["cache_hits"] += cache.get("hits", 0)
                agg["cache_misses"] += cache.get("misses", 0)
                agg["prefetched"] += cache.get("prefetched", 0)
                agg["evictions"] += cache.get("evictions", 0)
        return {"daemons": daemons, "tiers": tiers}

    def pipeline_stage_stats(self) -> dict:
        """Per-stage consume-pipeline timing aggregated across receivers.

        Sums each receiver's cumulative stage totals, then reports mean
        per-batch nanoseconds — the deployment-wide view of where a
        consumed batch's time goes (payload decode, preprocess work,
        consumer starvation), plus per-node detail.
        """
        decode_s = preprocess_s = wait_s = 0.0
        decode_batches = batches = 0
        per_node = {}
        for i, r in enumerate(self.receivers):
            snap = r.pipeline_stats.snapshot()
            decode_s += snap["decode_s"]
            preprocess_s += snap["preprocess_s"]
            wait_s += snap["wait_s"]
            decode_batches += snap["decode_batches"]
            batches += snap["batches"]
            per_node[str(i)] = {
                "decode_ns": snap["decode_ns"],
                "preprocess_ns": snap["preprocess_ns"],
                "starved_ns": snap["starved_ns"],
                "batches": snap["batches"],
            }
        return {
            "decode_ns": int(decode_s / decode_batches * 1e9) if decode_batches else 0,
            "preprocess_ns": int(preprocess_s / batches * 1e9) if batches else 0,
            "starved_ns": int(wait_s / batches * 1e9) if batches else 0,
            "batches": batches,
            "workers": self.config.workers,
            "nodes": per_node,
        }

    def stats(self) -> dict[str, dict]:
        # node_id -> transport actually used ("shm"/"tcp"), merged across
        # daemons; an shm attach anywhere on a node means the node got shm.
        transports: dict[int, str] = {}
        for d in self.daemons + self._failover_daemons:
            for node_id, transport in d.transports.items():
                if transports.get(node_id) != "shm":
                    transports[node_id] = transport
        return {
            "daemons": [d.stats.snapshot() for d in self.daemons],
            "failover_daemons": [d.stats.snapshot() for d in self._failover_daemons],
            "gpu": self.receivers[0].gpu.snapshot(),
            "batches_received": sum(r.batches_received for r in self.receivers),
            "duplicates_dropped": sum(r.duplicates_dropped for r in self.receivers),
            "failovers": self.failovers,
            "receiver_failovers": self.receiver_failovers,
            "transports": {str(n): t for n, t in sorted(transports.items())},
            "shm_attaches": sum(r.shm_attaches for r in self.receivers),
            "storage": self.storage_stats(),
            "stages": self.pipeline_stage_stats(),
        }

    def cluster_status(self) -> dict:
        """JSON-able control-plane snapshot (``repro.tools.cluster`` input)."""
        return {
            "membership": self.view.snapshot() if self.view is not None else None,
            "num_nodes": self.num_nodes,
            "dead_nodes": sorted(self._dead_nodes),
            "endpoints": {str(n): list(ep) for n, ep in self._endpoints.items()},
            "ownership": {
                str(d.dataset_root): sorted(d.shard_filter)
                if d.shard_filter is not None
                else "all"
                for d in self.daemons
            },
            "failovers": self.failovers,
            "receiver_failovers": self.receiver_failovers,
            "reassigned_batches": len(self._reassigned),
            "rebalances": self.rebalances,
            "last_rebalance": self._last_rebalance,
        }

    def close(self) -> None:
        """Release resources."""
        for pub in self._receiver_pubs:
            pub.stop()
        for pub in self._join_pubs.values():
            pub.stop()
        for d in self.daemons + self._failover_daemons:
            d.kill()
        for r in self.receivers:
            r.close()
        for d in self.daemons + self._failover_daemons:
            d.close()
        if self._hb_listener is not None:
            self._hb_listener.close()
        if self.ledger is not None:
            self.ledger.close()

    def __enter__(self) -> "EMLIOService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
