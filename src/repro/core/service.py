"""EMLIOService — one-call orchestration of planner + daemon(s) + receiver.

For examples, tests, and the live benchmarks: wires a single compute node
(receiver) to one or more storage daemons over loopback TCP with optional
latency emulation, serving the configured number of epochs.

For multi-node experiments construct :class:`~repro.core.daemon.EMLIODaemon`
and :class:`~repro.core.receiver.EMLIOReceiver` directly — the service is a
convenience, not the only entry point.

Recovery design (see :mod:`repro.core.recovery`): with
``EMLIOService(recovery=RecoveryConfig(...))`` the service becomes
survivable end-to-end.  The receiver records deliveries in a (optionally
persistent) ledger and dedups the at-least-once transport; daemon PUSH
streams reconnect through transient drops; and a watchdog thread observes
daemon deaths mid-epoch, asks the
:class:`~repro.core.recovery.FailoverCoordinator` to re-plan the dead
daemon's undelivered batches onto surviving storage roots that can reach
the shards, and spawns replacement daemons serving exactly the residual.
Failover daemons are themselves watched, so cascading failures keep
recovering while any reachable root survives.  A restarted service with the
same config and ledger path resumes mid-epoch: daemons skip ledgered
batches and the receiver expects only the remainder.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

import numpy as np

from repro.core.config import EMLIOConfig
from repro.core.daemon import EMLIODaemon
from repro.core.planner import BatchPlan, Planner
from repro.core.receiver import EMLIOReceiver
from repro.core.recovery import (
    DeliveryLedger,
    FailoverCoordinator,
    RecoveryConfig,
)
from repro.energy.power_models import BusyWindowTracker
from repro.gpu.device import SimulatedGPU
from repro.net.emulation import NetworkProfile
from repro.tfrecord.sharder import ShardedDataset
from repro.util.logging import TimestampLogger

_WATCH_POLL_S = 0.02  # watchdog poll period for dead daemon detection


@dataclass
class _DaemonEntry:
    """One serving daemon's runtime state within an epoch."""

    daemon: EMLIODaemon
    root: str
    shards: set[str] | None  # None: all shards in the plan
    thread: threading.Thread | None = None
    error: BaseException | None = None
    handled: bool = field(default=False)


class EMLIOService:
    """Single-node EMLIO deployment over (optionally shaped) loopback TCP.

    Parameters
    ----------
    config:
        Pipeline tunables.
    dataset:
        A sharded TFRecord dataset.  With ``storage_roots`` unset, one
        daemon serves all shards from ``dataset.root``.
    profile:
        Link emulation between daemon(s) and the receiver.
    storage_shards:
        Optional mapping ``root_dir -> set of shard names`` to run several
        daemons, each owning a disjoint subset of shards (the paper's
        fully-sharded Scenario 2).  When roots are replicas or shared
        mounts holding each other's shards, they double as failover
        targets.
    recovery:
        Fault-tolerance policy (ledger, dedup, reconnect, failover); see
        :class:`~repro.core.recovery.RecoveryConfig`.  ``None`` keeps the
        original fail-fast behaviour.
    """

    def __init__(
        self,
        config: EMLIOConfig,
        dataset: ShardedDataset,
        profile: NetworkProfile | None = None,
        gpu: SimulatedGPU | None = None,
        storage_shards: dict[str, set[str]] | None = None,
        cpu_tracker: BusyWindowTracker | None = None,
        stall_timeout: float = 60.0,
        recovery: RecoveryConfig | None = None,
    ) -> None:
        self.config = config
        self.dataset = dataset
        self.profile = profile
        self.recovery = recovery
        self.logger = TimestampLogger(name="emlio-service")
        self.plan: BatchPlan = Planner(dataset, num_nodes=1, config=config).plan()
        self.ledger: DeliveryLedger | None = (
            DeliveryLedger(recovery.ledger_path) if recovery is not None else None
        )
        self.failovers = 0  # successful mid-epoch daemon replacements
        # None inherits EMLIOConfig.reorder_window (the receiver's fallback).
        reorder = recovery.reorder_window if recovery is not None else None
        self.receiver = EMLIOReceiver(
            node_id=0,
            plan=self.plan,
            config=config,
            profile=profile,
            gpu=gpu,
            stall_timeout=stall_timeout,
            ledger=self.ledger,
            dedup=recovery.dedup if recovery is not None else False,
            reorder_window=reorder,
        )
        self._endpoints = {0: ("127.0.0.1", self.receiver.port)}
        self._reconnect = recovery.reconnect if recovery is not None else None
        self._cpu_tracker = cpu_tracker
        self.daemons: list[EMLIODaemon] = []
        if storage_shards is None:
            self.daemons.append(self._make_daemon(str(dataset.root), None))
        else:
            claimed: set[str] = set()
            for root, shards in storage_shards.items():
                overlap = claimed & shards
                if overlap:
                    raise ValueError(f"shards owned by two daemons: {sorted(overlap)[:3]}")
                claimed |= shards
                self.daemons.append(self._make_daemon(root, set(shards)))
            all_shards = {ix.shard for ix in dataset.indexes}
            if claimed != all_shards:
                raise ValueError(f"unserved shards: {sorted(all_shards - claimed)[:3]}")
        self._failover_daemons: list[EMLIODaemon] = []
        self._recovery_errors: list[BaseException] = []

    def _make_daemon(
        self,
        root: str,
        shards: set[str] | None,
        plan: BatchPlan | None = None,
    ) -> EMLIODaemon:
        return EMLIODaemon(
            dataset_root=Path(root),
            plan=plan if plan is not None else self.plan,
            node_endpoints=self._endpoints,
            config=self.config,
            profile=self.profile,
            cpu_tracker=self._cpu_tracker,
            shard_filter=shards,
            reconnect=self._reconnect,
        )

    def kill_daemon(self, index: int = 0) -> None:
        """Chaos hook: abruptly kill one of the serving daemons."""
        self.daemons[index].kill()

    # -- epoch orchestration ---------------------------------------------------

    def _run_daemon(self, entry: _DaemonEntry, epoch: int, skip) -> None:
        try:
            entry.daemon.serve_epoch(epoch, skip=skip)
        except BaseException as err:  # noqa: BLE001 - surfaced in epoch()
            entry.error = err

    def _spawn(self, entry: _DaemonEntry, epoch: int, skip) -> None:
        entry.thread = threading.Thread(
            target=self._run_daemon, args=(entry, epoch, skip), daemon=True,
            name="emlio-daemon",
        )
        entry.thread.start()

    def _failover(self, epoch: int, dead: _DaemonEntry, entries: list[_DaemonEntry]) -> None:
        """Re-plan a dead daemon's undelivered batches onto survivors."""
        assert self.ledger is not None
        live_roots = {
            e.root: e.shards
            for e in entries
            if e is not dead and (e.thread is None or e.error is None)
        }
        # Dead entry last so its shard set wins if a survivor shares the root
        # (a failover daemon dying on a root that still has a live daemon).
        # Survivors are the roots of *live* daemons — which may include the
        # dead entry's root when another daemon on it is still healthy.
        coordinator = FailoverCoordinator(
            self.plan,
            self.ledger,
            {**live_roots, dead.root: dead.shards},
            logger=self.logger,
        )
        takeover = coordinator.plan_failover(dead.root, epoch, survivors=list(live_roots))
        delivered = self.ledger.delivered(epoch=epoch)  # one snapshot for all roots
        for root, shards in takeover.items():
            residual = self.plan.residual(delivered, epoch=epoch, shards=shards)
            daemon = self._make_daemon(root, shards, plan=residual)
            self._failover_daemons.append(daemon)
            entry = _DaemonEntry(daemon=daemon, root=root, shards=shards)
            entries.append(entry)
            self._spawn(entry, epoch, delivered)
        self.failovers += 1
        self.logger.log(
            "failover",
            epoch=epoch,
            dead_root=dead.root,
            replacements=len(takeover),
        )

    def _watchdog(self, epoch: int, entries: list[_DaemonEntry], stop: threading.Event) -> None:
        """Declare daemons dead when their serve thread errors; fail over."""
        while not stop.is_set():
            for entry in list(entries):
                if (
                    entry.error is not None
                    and not entry.handled
                    and entry.thread is not None
                    and not entry.thread.is_alive()
                ):
                    entry.handled = True
                    try:
                        self._failover(epoch, entry, entries)
                    except BaseException as err:  # noqa: BLE001 - surfaced later
                        self._recovery_errors.append(err)
                        return
            stop.wait(_WATCH_POLL_S)

    def epoch(self, epoch_index: int = 0) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Serve and consume one epoch end-to-end."""
        self.logger.log("epoch_start", epoch=epoch_index)
        self._recovery_errors = []
        skip = self.ledger.delivered(epoch=epoch_index) if self.ledger is not None else None
        entries = [
            _DaemonEntry(daemon=d, root=str(d.dataset_root), shards=d.shard_filter)
            for d in self.daemons
        ]
        for entry in entries:
            self._spawn(entry, epoch_index, skip)
        stop = threading.Event()
        watchdog: threading.Thread | None = None
        if self.recovery is not None and self.recovery.failover:
            watchdog = threading.Thread(
                target=self._watchdog, args=(epoch_index, entries, stop), daemon=True,
                name="emlio-watchdog",
            )
            watchdog.start()
        try:
            yield from self.receiver.epoch(epoch_index)
        except Exception as err:
            # A failed failover starves the receiver into a stall; surface
            # the root cause (e.g. FailoverError) over the symptom.
            if self._recovery_errors:
                raise self._recovery_errors[0] from err
            raise
        finally:
            stop.set()
            if watchdog is not None:
                watchdog.join(timeout=10.0)
            # Entries may have grown (failover); join whatever exists now.
            for entry in list(entries):
                if entry.thread is not None:
                    entry.thread.join(timeout=30.0)
        if self._recovery_errors:
            raise self._recovery_errors[0]
        unhandled = [e.error for e in entries if e.error is not None and not e.handled]
        if unhandled:
            # A daemon may die in the last instants of an epoch, after the
            # receiver already consumed everything — the watchdog never got
            # a sweep in.  A fully-covered ledger proves the error is moot.
            if self.ledger is not None and self.plan.keys(
                epoch=epoch_index
            ) <= self.ledger.delivered(epoch=epoch_index):
                self.logger.log(
                    "late_daemon_error_ignored",
                    epoch=epoch_index,
                    errors=[repr(err) for err in unhandled],
                )
            else:
                raise unhandled[0]
        self.logger.log("epoch_end", epoch=epoch_index)

    def epochs(self) -> Iterator[tuple[int, np.ndarray, np.ndarray]]:
        """Iterate every planned epoch: yields (epoch, tensors, labels)."""
        for e in range(self.config.epochs):
            for tensors, labels in self.epoch(e):
                yield e, tensors, labels

    def stats(self) -> dict[str, dict]:
        return {
            "daemons": [d.stats.snapshot() for d in self.daemons],
            "failover_daemons": [d.stats.snapshot() for d in self._failover_daemons],
            "gpu": self.receiver.gpu.snapshot(),
            "batches_received": self.receiver.batches_received,
            "duplicates_dropped": self.receiver.duplicates_dropped,
            "failovers": self.failovers,
        }

    def close(self) -> None:
        """Release resources."""
        for d in self.daemons + self._failover_daemons:
            d.kill()
        self.receiver.close()
        for d in self.daemons + self._failover_daemons:
            d.close()
        if self.ledger is not None:
            self.ledger.close()

    def __enter__(self) -> "EMLIOService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
