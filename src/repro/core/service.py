"""EMLIOService — one-call orchestration of planner + daemon(s) + receiver.

For examples, tests, and the live benchmarks: wires a single compute node
(receiver) to one or more storage daemons over loopback TCP with optional
latency emulation, serving the configured number of epochs.

For multi-node experiments construct :class:`~repro.core.daemon.EMLIODaemon`
and :class:`~repro.core.receiver.EMLIOReceiver` directly — the service is a
convenience, not the only entry point.
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import Iterator

import numpy as np

from repro.core.config import EMLIOConfig
from repro.core.daemon import EMLIODaemon
from repro.core.planner import BatchPlan, Planner
from repro.core.receiver import EMLIOReceiver
from repro.energy.power_models import BusyWindowTracker
from repro.gpu.device import SimulatedGPU
from repro.net.emulation import NetworkProfile
from repro.tfrecord.sharder import ShardedDataset
from repro.util.logging import TimestampLogger


class EMLIOService:
    """Single-node EMLIO deployment over (optionally shaped) loopback TCP.

    Parameters
    ----------
    config:
        Pipeline tunables.
    dataset:
        A sharded TFRecord dataset.  With ``storage_roots`` unset, one
        daemon serves all shards from ``dataset.root``.
    profile:
        Link emulation between daemon(s) and the receiver.
    storage_shards:
        Optional mapping ``root_dir -> set of shard names`` to run several
        daemons, each owning a disjoint subset of shards (the paper's
        fully-sharded Scenario 2).
    """

    def __init__(
        self,
        config: EMLIOConfig,
        dataset: ShardedDataset,
        profile: NetworkProfile | None = None,
        gpu: SimulatedGPU | None = None,
        storage_shards: dict[str, set[str]] | None = None,
        cpu_tracker: BusyWindowTracker | None = None,
        stall_timeout: float = 60.0,
    ) -> None:
        self.config = config
        self.dataset = dataset
        self.profile = profile
        self.logger = TimestampLogger(name="emlio-service")
        self.plan: BatchPlan = Planner(dataset, num_nodes=1, config=config).plan()
        self.receiver = EMLIOReceiver(
            node_id=0,
            plan=self.plan,
            config=config,
            profile=profile,
            gpu=gpu,
            stall_timeout=stall_timeout,
        )
        endpoints = {0: ("127.0.0.1", self.receiver.port)}
        self.daemons: list[EMLIODaemon] = []
        if storage_shards is None:
            self.daemons.append(
                EMLIODaemon(
                    dataset_root=dataset.root,
                    plan=self.plan,
                    node_endpoints=endpoints,
                    config=config,
                    profile=profile,
                    cpu_tracker=cpu_tracker,
                )
            )
        else:
            claimed: set[str] = set()
            for root, shards in storage_shards.items():
                overlap = claimed & shards
                if overlap:
                    raise ValueError(f"shards owned by two daemons: {sorted(overlap)[:3]}")
                claimed |= shards
                self.daemons.append(
                    EMLIODaemon(
                        dataset_root=Path(root),
                        plan=self.plan,
                        node_endpoints=endpoints,
                        config=config,
                        profile=profile,
                        cpu_tracker=cpu_tracker,
                        shard_filter=set(shards),
                    )
                )
            all_shards = {ix.shard for ix in dataset.indexes}
            if claimed != all_shards:
                raise ValueError(f"unserved shards: {sorted(all_shards - claimed)[:3]}")
        self._daemon_threads: list[threading.Thread] = []
        self._daemon_errors: list[BaseException] = []

    def _run_daemon(self, daemon: EMLIODaemon, epoch: int) -> None:
        try:
            daemon.serve_epoch(epoch)
        except BaseException as err:  # noqa: BLE001 - surfaced in epoch()
            self._daemon_errors.append(err)

    def epoch(self, epoch_index: int = 0) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Serve and consume one epoch end-to-end."""
        self.logger.log("epoch_start", epoch=epoch_index)
        threads = [
            threading.Thread(
                target=self._run_daemon, args=(d, epoch_index), daemon=True, name="emlio-daemon"
            )
            for d in self.daemons
        ]
        for t in threads:
            t.start()
        try:
            yield from self.receiver.epoch(epoch_index)
        finally:
            for t in threads:
                t.join(timeout=30.0)
        if self._daemon_errors:
            raise self._daemon_errors[0]
        self.logger.log("epoch_end", epoch=epoch_index)

    def epochs(self) -> Iterator[tuple[int, np.ndarray, np.ndarray]]:
        """Iterate every planned epoch: yields (epoch, tensors, labels)."""
        for e in range(self.config.epochs):
            for tensors, labels in self.epoch(e):
                yield e, tensors, labels

    def stats(self) -> dict[str, dict]:
        return {
            "daemons": [d.stats.snapshot() for d in self.daemons],
            "gpu": self.receiver.gpu.snapshot(),
            "batches_received": self.receiver.batches_received,
        }

    def close(self) -> None:
        """Release resources."""
        self.receiver.close()
        for d in self.daemons:
            d.close()

    def __enter__(self) -> "EMLIOService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
