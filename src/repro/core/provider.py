"""BatchProvider — the glue between the receiver queue and the pipeline.

Exposes decoded :class:`~repro.serialize.payload.BatchPayload` objects as a
DALI ``external_source`` callable (paper §4.1: "A BatchProvider deserializes
each payload and exposes the samples as DALI's external_source").  Delivery
is whatever order payloads arrived in (out-of-order prefetching); the
provider tracks which (epoch, seq) pairs it has seen so epoch completeness
can be asserted.

Recovery extensions (see :mod:`repro.core.recovery`): with ``dedup=True``
duplicate payloads — the signature of an at-least-once transport replaying
in-flight messages after a reconnect or failover — are silently dropped and
counted instead of failing the epoch; ``already_delivered`` seeds the seen
set from a persistent ledger so a restarted receiver never re-emits a batch;
``reorder_window`` buffers up to W payloads in a min-heap keyed by sequence
number, smoothing arrival order back toward dispatch order with bounded
memory; ``on_deliver`` fires exactly once per emitted batch (the ledger
write hook).
"""

from __future__ import annotations

import collections
import heapq
import queue
import threading
from typing import Callable, Iterable

from repro.gpu.pipeline import EndOfData
from repro.net.buffers import release_samples
from repro.serialize.payload import BatchPayload

#: Queue sentinel abort() injects to unblock a provider waiting on payloads.
_ABORT = object()

#: Queue sentinel shrink() injects so a provider blocked on the payload
#: queue re-evaluates its (now smaller) expectation instead of stalling.
_WAKE = object()


class ProviderAborted(RuntimeError):
    """The provider was aborted mid-epoch (receiver killed / torn down)."""


class BatchProvider:
    """Pulls payloads from the receiver's shared queue for one epoch.

    The ``delivered``/``duplicates`` counters here are what the receiver
    reports upward and the registry exports as
    ``emlio_batches_received_total`` / ``emlio_duplicates_dropped_total``
    (:mod:`repro.obs.metrics`).

    Parameters
    ----------
    source_queue:
        Shared queue the receiver thread fills with :class:`BatchPayload`.
    expected_batches:
        Number of *new* batches this node expects for the epoch (planned
        minus any already in the ledger); after that many, the provider
        raises :class:`EndOfData`.
    timeout:
        Safety net: seconds to wait for the next payload before declaring
        the stream stalled.
    dedup:
        Drop duplicate ``(epoch, seq)`` payloads instead of raising.
    already_delivered:
        ``(epoch, seq)`` keys delivered in a previous run (from the ledger);
        replays of these are treated as duplicates.
    on_deliver:
        Observation hook called once per payload at *pipeline handoff* —
        before the prefetch/augment stages, not at consumption.  Do not
        wire a delivery ledger here: prefetched-but-never-consumed batches
        would be marked delivered and lost on resume.  The receiver records
        its ledger at the consumption boundary via :attr:`emitted` instead.
    reorder_window:
        Buffer up to this many payloads and emit lowest-sequence-first;
        0 passes payloads through in arrival order.
    epoch:
        When set, only this epoch's payloads are emitted.  A *previous*
        epoch's payload — a replayed tail left in the shared queue by an
        at-least-once transport — is stale: dropped (``dedup``) or rejected.
        A *future* epoch's payload — daemons pipelining the next epoch while
        this one drains — is parked in ``holdover`` for the next provider.
    holdover:
        Deque shared across one receiver's successive epoch providers,
        carrying future-epoch payloads forward.
    """

    def __init__(
        self,
        source_queue: "queue.Queue[BatchPayload]",
        expected_batches: int,
        timeout: float = 60.0,
        dedup: bool = False,
        already_delivered: Iterable[tuple[int, int]] | None = None,
        on_deliver: Callable[[BatchPayload], None] | None = None,
        reorder_window: int = 0,
        epoch: int | None = None,
        holdover: "collections.deque[BatchPayload] | None" = None,
    ) -> None:
        if expected_batches < 0:
            raise ValueError(f"expected_batches must be >= 0, got {expected_batches}")
        if reorder_window < 0:
            raise ValueError(f"reorder_window must be >= 0, got {reorder_window}")
        self.source_queue = source_queue
        self.expected_batches = expected_batches
        self.timeout = timeout
        self.dedup = dedup
        self.on_deliver = on_deliver
        self.reorder_window = reorder_window
        self.epoch = epoch
        self.holdover = holdover if holdover is not None else collections.deque()
        self.delivered = 0
        self.duplicates = 0
        self.stale = 0  # wrong-epoch payloads dropped (dedup mode)
        # (epoch, node_id, seq) of every emitted payload, in emission order.
        # The pipeline is FIFO, so index k here is the k-th batch it yields —
        # how the receiver maps consumed batches back to delivery keys.
        self.emitted: list[tuple[int, int, int]] = []
        self.seen: set[tuple[int, int]] = set(already_delivered or ())
        self._window: list[tuple[int, int, BatchPayload]] = []
        self._pushes = 0
        self._lock = threading.Lock()
        # Guards the expected_batches/_ended pair so a concurrent extend()
        # and the EndOfData decision serialize; never held while blocking.
        self._count_lock = threading.Lock()
        self._aborted = threading.Event()
        self._ended = False  # EndOfData already signalled to the pipeline

    def _pop_holdover(self) -> BatchPayload | None:
        """Next parked payload belonging to this epoch, if any."""
        for i, payload in enumerate(self.holdover):
            if self.epoch is None or payload.epoch == self.epoch:
                del self.holdover[i]
                return payload
        return None

    def _fill_window(self) -> None:
        """Buffer payloads until the reorder window (or the epoch) is full.

        Blocks (with the stall timeout) only when the window is empty;
        top-ups beyond the first payload are opportunistic.
        """
        target = max(1, self.reorder_window)
        while (
            len(self._window) < target
            and self.delivered + len(self._window) < self.expected_batches
        ):
            if self._aborted.is_set():
                raise ProviderAborted(
                    f"provider aborted: {self.delivered}/{self.expected_batches} delivered"
                )
            payload = self._pop_holdover()
            if payload is None:
                block = not self._window
                try:
                    if block:
                        payload = self.source_queue.get(timeout=self.timeout)
                    else:
                        payload = self.source_queue.get_nowait()
                except queue.Empty:
                    if block:
                        raise RuntimeError(
                            f"batch stream stalled: {self.delivered}/{self.expected_batches} "
                            f"batches after {self.timeout}s wait"
                        ) from None
                    return
                if payload is _ABORT:
                    raise ProviderAborted(
                        f"provider aborted: {self.delivered}/{self.expected_batches} delivered"
                    )
                if payload is _WAKE:
                    continue  # expectation may have shrunk; re-check the loop
            if self.epoch is not None and payload.epoch > self.epoch:
                # Daemons pipelining the next epoch: park it for the next
                # epoch's provider rather than mislabeling it stale.
                self.holdover.append(payload)
                continue
            if self.epoch is not None and payload.epoch < self.epoch:
                if not self.dedup:
                    raise RuntimeError(
                        f"epoch {payload.epoch} payload in epoch {self.epoch} stream "
                        f"(seq {payload.seq})"
                    )
                self.stale += 1
                release_samples(payload.samples)  # dropped: return its buffer
                continue
            key = (payload.epoch, payload.seq)
            if key in self.seen:
                if not self.dedup:
                    raise RuntimeError(f"duplicate batch delivery: epoch/index {key}")
                self.duplicates += 1
                release_samples(payload.samples)  # dropped: return its buffer
                continue
            self.seen.add(key)
            heapq.heappush(self._window, (payload.seq, self._pushes, payload))
            self._pushes += 1

    def extend(self, extra: int) -> bool:
        """Grow the epoch's expectation mid-flight (receiver failover adopt).

        Returns False when the provider has already signalled EndOfData —
        the epoch finished here and the batches must go to a receiver whose
        epoch is still active.  Synchronizes on the counter lock only (the
        caller is a control-plane thread while ``__call__`` may be blocked
        on the payload queue holding the main provider lock), so a bump and
        the EndOfData decision can never interleave: either the bump lands
        first and is honoured, or extend() observes ``_ended`` and refuses.
        """
        if extra < 0:
            raise ValueError(f"extend() needs extra >= 0, got {extra}")
        with self._count_lock:
            if self._ended or self._aborted.is_set():
                return False
            self.expected_batches += extra
            return True

    def shrink(self, keys: Iterable[tuple[int, int]]) -> bool:
        """Give up ``(epoch, seq)`` keys re-owned elsewhere (scale-out).

        The inverse of :meth:`extend`: the expectation drops by the number
        of *fresh* keys (idempotent — a key already seen, delivered, or
        shrunk before is skipped), the keys join the seen set so a stray
        late copy dedups instead of double-delivering, and a wake sentinel
        unblocks a provider waiting on the payload queue so it re-checks
        the smaller expectation.  Returns False once the provider has
        ended or aborted (nothing left to give up).
        """
        with self._count_lock:
            if self._ended or self._aborted.is_set():
                return False
            fresh = [k for k in keys if k not in self.seen]
            if fresh:
                # set.update is atomic under the GIL; _fill_window's reads
                # of ``seen`` never see a partial state.
                self.seen.update(fresh)
                self.expected_batches -= len(fresh)
                self.source_queue.put(_WAKE)
            return True

    def abort(self) -> None:
        """Unblock and fail the provider promptly (receiver kill path)."""
        self._aborted.set()
        self.source_queue.put(_ABORT)

    @property
    def active(self) -> bool:
        """Whether this epoch can still accept adopted work."""
        return not self._ended and not self._aborted.is_set()

    def __call__(self) -> tuple[list[bytes], list[int]]:
        """The external_source callback: next (samples, labels)."""
        with self._lock:
            with self._count_lock:
                if self.delivered >= self.expected_batches:
                    self._ended = True
                    raise EndOfData
            self._fill_window()
            if not self._window:
                # Only reachable when shrink() emptied the expectation out
                # from under a blocked fill: the epoch is simply over here.
                with self._count_lock:
                    self._ended = True
                raise EndOfData
            _seq, _n, payload = heapq.heappop(self._window)
            if self.on_deliver is not None:
                self.on_deliver(payload)
            self.emitted.append((payload.epoch, payload.node_id, payload.seq))
            self.delivered += 1
        return payload.samples, payload.labels

    @property
    def complete(self) -> bool:
        """Whether every expected batch was delivered."""
        with self._lock:
            return self.delivered >= self.expected_batches
