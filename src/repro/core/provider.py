"""BatchProvider — the glue between the receiver queue and the pipeline.

Exposes decoded :class:`~repro.serialize.payload.BatchPayload` objects as a
DALI ``external_source`` callable (paper §4.1: "A BatchProvider deserializes
each payload and exposes the samples as DALI's external_source").  Delivery
is whatever order payloads arrived in (out-of-order prefetching); the
provider tracks which (epoch, batch_index) pairs it has seen so epoch
completeness can be asserted.
"""

from __future__ import annotations

import queue
import threading

from repro.gpu.pipeline import EndOfData
from repro.serialize.payload import BatchPayload


class BatchProvider:
    """Pulls payloads from the receiver's shared queue for one epoch.

    Parameters
    ----------
    source_queue:
        Shared queue the receiver thread fills with :class:`BatchPayload`.
    expected_batches:
        Number of batches this node expects for the epoch (from the plan);
        after that many, the provider raises :class:`EndOfData`.
    timeout:
        Safety net: seconds to wait for the next payload before declaring
        the stream stalled.
    """

    def __init__(
        self,
        source_queue: "queue.Queue[BatchPayload]",
        expected_batches: int,
        timeout: float = 60.0,
    ) -> None:
        if expected_batches < 0:
            raise ValueError(f"expected_batches must be >= 0, got {expected_batches}")
        self.source_queue = source_queue
        self.expected_batches = expected_batches
        self.timeout = timeout
        self.delivered = 0
        self.seen: set[tuple[int, int]] = set()
        self._lock = threading.Lock()

    def __call__(self) -> tuple[list[bytes], list[int]]:
        """The external_source callback: next (samples, labels)."""
        with self._lock:
            if self.delivered >= self.expected_batches:
                raise EndOfData
            try:
                payload = self.source_queue.get(timeout=self.timeout)
            except queue.Empty:
                raise RuntimeError(
                    f"batch stream stalled: {self.delivered}/{self.expected_batches} "
                    f"batches after {self.timeout}s wait"
                ) from None
            key = (payload.epoch, payload.batch_index)
            if key in self.seen:
                raise RuntimeError(f"duplicate batch delivery: epoch/index {key}")
            self.seen.add(key)
            self.delivered += 1
        return payload.samples, payload.labels

    @property
    def complete(self) -> bool:
        """Whether every expected batch was delivered."""
        with self._lock:
            return self.delivered >= self.expected_batches
