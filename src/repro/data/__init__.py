"""Synthetic dataset generators matching the paper's three workloads.

=============  ==================  ===========================
Workload       Paper per-sample    Generator
=============  ==================  ===========================
ImageNet-like  ~0.1 MB             :class:`SyntheticImageNet`
COCO-like      ~0.2 MB             :class:`SyntheticCOCO`
Synthetic      2 MB exact          :class:`SyntheticRecords`
=============  ==================  ===========================

Image workloads generate smooth low-frequency random fields (so the SJPG
codec compresses them like natural images rather than noise) and encode them
for real; the synthetic workload produces exact-size opaque RAW records.
"""

from repro.data.datasets import (
    DatasetSpec,
    SyntheticCOCO,
    SyntheticImageNet,
    SyntheticRecords,
    build_dataset,
)
from repro.data.samples import smooth_image

__all__ = [
    "DatasetSpec",
    "SyntheticCOCO",
    "SyntheticImageNet",
    "SyntheticRecords",
    "build_dataset",
    "smooth_image",
]
