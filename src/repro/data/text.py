"""Text/LLM workload support (paper §6 future work: "extending EMLIO
beyond TFRecord to support ... text for LLM training").

Token-sequence records use a tiny framed format ("TOK0"): little-endian
uint32 token ids with a fixed header, so the GPU pipeline can route them
through the same decode dispatch as images and RAW records.  The generator
produces Zipf-distributed token ids in variable-length documents packed to
a fixed context length — the standard LLM pretraining sample shape.
"""

from __future__ import annotations

import struct
from typing import Iterator

import numpy as np

_MAGIC = b"TOK0"
_HDR = struct.Struct(">4sI")


def tokens_encode(tokens: np.ndarray) -> bytes:
    """Encode a 1-D int array of token ids as a TOK0 record."""
    arr = np.ascontiguousarray(tokens, dtype=np.uint32)
    if arr.ndim != 1:
        raise ValueError(f"tokens must be 1-D, got shape {arr.shape}")
    return _HDR.pack(_MAGIC, arr.size) + arr.tobytes()


def tokens_decode(data: bytes) -> np.ndarray:
    """Inverse of :func:`tokens_encode`."""
    if len(data) < _HDR.size:
        raise ValueError("TOK0 data too short for header")
    magic, count = _HDR.unpack_from(data)
    if magic != _MAGIC:
        raise ValueError(f"bad TOK0 magic: {magic!r}")
    body = data[_HDR.size :]
    if len(body) != 4 * count:
        raise ValueError(f"TOK0 length mismatch: header {count} tokens, body {len(body)} bytes")
    return np.frombuffer(body, dtype=np.uint32).copy()


class SyntheticTokenDataset:
    """Zipf-distributed token streams packed to a fixed context length.

    Yields ``(encoded_record_bytes, label)`` pairs like the image
    generators; the "label" is the first token of the continuation (a
    next-token-prediction target), keeping the loader interface uniform.
    """

    def __init__(
        self,
        n: int,
        context_len: int = 2048,
        vocab_size: int = 32_000,
        zipf_a: float = 1.2,
        seed: int = 0,
    ) -> None:
        if n < 1:
            raise ValueError(f"dataset must have >= 1 sample, got {n}")
        if context_len < 2:
            raise ValueError(f"context_len must be >= 2, got {context_len}")
        if vocab_size < 2:
            raise ValueError(f"vocab_size must be >= 2, got {vocab_size}")
        if zipf_a <= 1.0:
            raise ValueError(f"zipf_a must be > 1, got {zipf_a}")
        self.n = n
        self.context_len = context_len
        self.vocab_size = vocab_size
        self.zipf_a = zipf_a
        self.seed = seed

    def __len__(self) -> int:
        return self.n

    @property
    def sample_bytes(self) -> int:
        """Encoded record size (fixed: header + 4 bytes/token)."""
        return _HDR.size + 4 * self.context_len

    def __iter__(self) -> Iterator[tuple[bytes, int]]:
        rng = np.random.default_rng(self.seed)
        for _ in range(self.n):
            # Zipf draws can exceed the vocab; clamp into range (rank-capped
            # sampling, the usual trick for bounded-vocab Zipf).
            tokens = rng.zipf(self.zipf_a, size=self.context_len + 1)
            tokens = np.minimum(tokens, self.vocab_size) - 1  # 0-based ids
            context = tokens[: self.context_len].astype(np.uint32)
            target = int(tokens[self.context_len])
            yield tokens_encode(context), target
