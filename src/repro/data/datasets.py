"""Dataset specs and generators for the paper's three workloads.

Each generator yields ``(encoded_sample_bytes, label)`` pairs suitable for
:func:`repro.tfrecord.sharder.write_shards`.  Scale is a constructor knob:
unit tests use dozens of small samples; examples use a few MB; the DES
harness needs only the *spec* (per-sample size) to model the paper's 10 GB
runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

import numpy as np

from repro.codec.raw import raw_encode
from repro.codec.sjpg import sjpg_encode
from repro.data.samples import smooth_image
from repro.tfrecord.sharder import ShardedDataset, write_shards


@dataclass(frozen=True)
class DatasetSpec:
    """Workload description used by both generators and the DES models."""

    name: str
    sample_bytes: int  # mean encoded bytes per sample
    num_classes: int
    codec: str  # "sjpg" | "raw"
    image_hw: tuple[int, int] | None = None

    @property
    def is_image(self) -> bool:
        """Whether samples decode to images."""
        return self.codec == "sjpg"


# Paper workloads (§5.1): ImageNet 0.1 MB/sample, COCO 0.2 MB/sample,
# synthetic 2 MB/sample.
IMAGENET_SPEC = DatasetSpec(
    name="imagenet", sample_bytes=100_000, num_classes=1000, codec="sjpg", image_hw=(224, 224)
)
COCO_SPEC = DatasetSpec(
    name="coco", sample_bytes=200_000, num_classes=80, codec="sjpg", image_hw=(320, 320)
)
SYNTHETIC_SPEC = DatasetSpec(
    name="synthetic", sample_bytes=2_000_000, num_classes=10, codec="raw"
)

SPECS = {s.name: s for s in (IMAGENET_SPEC, COCO_SPEC, SYNTHETIC_SPEC)}


class _BaseGenerator:
    """Shared iteration plumbing for the three workload generators."""

    spec: DatasetSpec

    def __init__(self, n: int, seed: int = 0) -> None:
        if n < 1:
            raise ValueError(f"dataset must have >= 1 sample, got {n}")
        self.n = n
        self.seed = seed

    def _rng(self) -> np.random.Generator:
        return np.random.default_rng(self.seed)

    def __len__(self) -> int:
        return self.n

    def __iter__(self) -> Iterator[tuple[bytes, int]]:
        raise NotImplementedError


class SyntheticImageNet(_BaseGenerator):
    """ImageNet-like images (default 64×64 for tests; 224×224 at scale).

    With ``class_conditional=True`` every class gets a fixed base pattern
    (derived from a per-class seed) plus per-sample noise, so the labels are
    *learnable* — required for convergence experiments (paper Fig. 11).
    """

    def __init__(
        self,
        n: int,
        seed: int = 0,
        image_hw: tuple[int, int] = (64, 64),
        quality: int = 75,
        num_classes: int = 1000,
        class_conditional: bool = False,
    ) -> None:
        super().__init__(n, seed)
        self.spec = DatasetSpec(
            name="imagenet",
            sample_bytes=IMAGENET_SPEC.sample_bytes,
            num_classes=num_classes,
            codec="sjpg",
            image_hw=image_hw,
        )
        self.image_hw = image_hw
        self.quality = quality
        self.num_classes = num_classes
        self.class_conditional = class_conditional

    def _class_base(self, label: int) -> np.ndarray:
        rng = np.random.default_rng((self.seed, 0xC1A55, label))
        h, w = self.image_hw
        return smooth_image(rng, h, w, channels=3).astype(np.float64)

    def __iter__(self) -> Iterator[tuple[bytes, int]]:
        rng = self._rng()
        h, w = self.image_hw
        base_cache: dict[int, np.ndarray] = {}
        for _ in range(self.n):
            label = int(rng.integers(0, self.num_classes))
            if self.class_conditional:
                base = base_cache.get(label)
                if base is None:
                    base = self._class_base(label)
                    base_cache[label] = base
                noisy = base + rng.normal(0.0, 12.0, size=base.shape)
                img = np.clip(noisy, 0, 255).astype(np.uint8)
            else:
                img = smooth_image(rng, h, w, channels=3)
            yield sjpg_encode(img, quality=self.quality), label


class SyntheticCOCO(SyntheticImageNet):
    """COCO-like images: larger frames, fewer classes (80)."""

    def __init__(
        self,
        n: int,
        seed: int = 0,
        image_hw: tuple[int, int] = (96, 96),
        quality: int = 85,
    ) -> None:
        super().__init__(n, seed=seed, image_hw=image_hw, quality=quality, num_classes=80)
        self.spec = DatasetSpec(
            name="coco",
            sample_bytes=COCO_SPEC.sample_bytes,
            num_classes=80,
            codec="sjpg",
            image_hw=image_hw,
        )


class SyntheticRecords(_BaseGenerator):
    """Opaque exact-size records (paper's 2 MB synthetic workload)."""

    def __init__(self, n: int, sample_bytes: int = 2_000_000, seed: int = 0) -> None:
        super().__init__(n, seed)
        if sample_bytes < 1:
            raise ValueError(f"sample_bytes must be >= 1, got {sample_bytes}")
        self.sample_bytes = sample_bytes
        self.spec = DatasetSpec(
            name="synthetic", sample_bytes=sample_bytes, num_classes=10, codec="raw"
        )

    def __iter__(self) -> Iterator[tuple[bytes, int]]:
        rng = self._rng()
        payload_len = self.sample_bytes - 16  # RAW header is 16 bytes
        if payload_len < 0:
            raise ValueError("sample_bytes smaller than RAW framing overhead")
        for _ in range(self.n):
            payload = rng.integers(0, 256, size=payload_len, dtype=np.uint8).tobytes()
            label = int(rng.integers(0, 10))
            yield raw_encode(payload), label


def build_dataset(
    kind: str,
    n: int,
    root: str | Path,
    seed: int = 0,
    records_per_shard: int = 64,
    **kwargs,
) -> ShardedDataset:
    """Generate and shard a dataset in one call.

    ``kind`` is one of ``"imagenet"``, ``"coco"``, ``"synthetic"``.
    """
    if kind == "imagenet":
        gen: _BaseGenerator = SyntheticImageNet(n, seed=seed, **kwargs)
    elif kind == "coco":
        gen = SyntheticCOCO(n, seed=seed, **kwargs)
    elif kind == "synthetic":
        gen = SyntheticRecords(n, seed=seed, **kwargs)
    else:
        raise ValueError(f"unknown dataset kind {kind!r}")
    return write_shards(iter(gen), root, records_per_shard=records_per_shard)
