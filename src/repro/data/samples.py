"""Sample generators: natural-looking synthetic images.

The SJPG codec's compression (and therefore decode cost) depends on spectral
content; pure noise would neither compress nor resemble training images.
``smooth_image`` builds images from a handful of random low-frequency cosine
modes plus mild texture noise, which compresses at natural-photo-like ratios.
"""

from __future__ import annotations

import numpy as np


def smooth_image(
    rng: np.random.Generator,
    height: int,
    width: int,
    channels: int = 3,
    modes: int = 6,
    texture: float = 6.0,
) -> np.ndarray:
    """Generate an HxWxC uint8 image with natural-image-like spectra.

    Parameters
    ----------
    rng:
        Source of randomness (callers own seeding for reproducibility).
    modes:
        Number of random low-frequency cosine components per channel.
    texture:
        Standard deviation of the additive high-frequency texture noise.
    """
    y = np.linspace(0.0, 1.0, height)[:, None]
    x = np.linspace(0.0, 1.0, width)[None, :]
    img = np.empty((height, width, channels), dtype=np.float64)
    for c in range(channels):
        field = np.zeros((height, width))
        for _ in range(modes):
            fy, fx = rng.uniform(0.5, 4.0, size=2)
            phase_y, phase_x = rng.uniform(0, 2 * np.pi, size=2)
            amp = rng.uniform(20.0, 60.0)
            field += amp * np.cos(2 * np.pi * fy * y + phase_y) * np.cos(
                2 * np.pi * fx * x + phase_x
            )
        field += rng.normal(0.0, texture, size=(height, width))
        img[:, :, c] = field
    img -= img.min()
    peak = img.max()
    if peak > 0:
        img *= 255.0 / peak
    return img.astype(np.uint8)


def labelled_stream(
    rng: np.random.Generator, num_classes: int, n: int
) -> np.ndarray:
    """Uniform random labels in ``[0, num_classes)``."""
    if num_classes < 1:
        raise ValueError(f"num_classes must be >= 1, got {num_classes}")
    return rng.integers(0, num_classes, size=n)
