"""Preprocessing kernels: the real numpy work the "GPU" executes.

These mirror the DALI pipeline stages the paper lists (§4.1): decode JPEGs,
resize, crop, normalize.  They operate on uint8 HWC images and produce
float32 CHW tensors, matching the torchvision/DALI convention.
"""

from __future__ import annotations

import numpy as np

from repro.codec.raw import raw_decode
from repro.codec.sjpg import sjpg_decode, sjpg_decode_batch

IMAGENET_MEAN = np.array([0.485, 0.456, 0.406], dtype=np.float32)
IMAGENET_STD = np.array([0.229, 0.224, 0.225], dtype=np.float32)


def decode_sample(data: bytes) -> np.ndarray:
    """Decode one encoded sample to an HxWxC uint8 image.

    Dispatches on magic: SJPG images decode for real; RAW records (the 2 MB
    synthetic workload) are verified and viewed as a 1-D "image" row so the
    rest of the pipeline is format-agnostic.
    """
    if data[:4] == b"SJPG":
        return sjpg_decode(data)
    if data[:4] == b"TOK0":
        from repro.data.text import tokens_decode

        tokens = tokens_decode(data)
        # Token ids ride the image path as a 1-row, 1-channel "image" of
        # low bytes; LLM consumers should use decode_tokens() instead.
        return (tokens & 0xFF).astype(np.uint8)[None, :, None]
    if data[:4] == b"RAW0":
        payload = raw_decode(data)
        arr = np.frombuffer(payload, dtype=np.uint8)
        side = max(1, int(np.sqrt(arr.size // 3)))
        usable = side * side * 3
        return arr[:usable].reshape(side, side, 3).copy()
    raise ValueError(f"unknown sample magic: {data[:4]!r}")


def decode_tokens_batch(samples: list[bytes]) -> np.ndarray:
    """Decode a batch of TOK0 records into an (N, context_len) int64 array.

    The LLM-path counterpart of :func:`preprocess_batch`: no resize or
    normalization, just framed-token decode and stacking.  All records in
    a batch must share one context length (the packer guarantees this).
    """
    from repro.data.text import tokens_decode

    rows = [tokens_decode(s) for s in samples]
    lengths = {r.size for r in rows}
    if len(lengths) > 1:
        raise ValueError(f"mixed context lengths in one batch: {sorted(lengths)}")
    return np.stack(rows).astype(np.int64)


def resize_bilinear(img: np.ndarray, out_h: int, out_w: int) -> np.ndarray:
    """Vectorized bilinear resize of an HxWxC uint8 image."""
    if img.ndim != 3:
        raise ValueError(f"expected HxWxC, got shape {img.shape}")
    if out_h < 1 or out_w < 1:
        raise ValueError(f"invalid output size {(out_h, out_w)}")
    h, w, _c = img.shape
    ys = np.linspace(0, h - 1, out_h)
    xs = np.linspace(0, w - 1, out_w)
    y0 = np.floor(ys).astype(np.int64)
    x0 = np.floor(xs).astype(np.int64)
    y1 = np.minimum(y0 + 1, h - 1)
    x1 = np.minimum(x0 + 1, w - 1)
    wy = (ys - y0)[:, None, None]
    wx = (xs - x0)[None, :, None]
    im = img.astype(np.float32)
    top = im[y0][:, x0] * (1 - wx) + im[y0][:, x1] * wx
    bot = im[y1][:, x0] * (1 - wx) + im[y1][:, x1] * wx
    out = top * (1 - wy) + bot * wy
    return np.clip(np.round(out), 0, 255).astype(np.uint8)


def resize_bilinear_batch(batch: np.ndarray, out_h: int, out_w: int) -> np.ndarray:
    """Bilinear resize of an NHWC uint8 batch in one vectorized pass.

    All images in a training batch share one geometry, so the sample
    grid and interpolation weights are computed once and broadcast over
    the batch axis — one set of numpy dispatches for N images instead of
    N sets.  Per-pixel output matches :func:`resize_bilinear` exactly.
    """
    if batch.ndim != 4:
        raise ValueError(f"expected NHWC batch, got shape {batch.shape}")
    if out_h < 1 or out_w < 1:
        raise ValueError(f"invalid output size {(out_h, out_w)}")
    _n, h, w, _c = batch.shape
    ys = np.linspace(0, h - 1, out_h)
    xs = np.linspace(0, w - 1, out_w)
    y0 = np.floor(ys).astype(np.int64)
    x0 = np.floor(xs).astype(np.int64)
    y1 = np.minimum(y0 + 1, h - 1)
    x1 = np.minimum(x0 + 1, w - 1)
    wy = (ys - y0)[None, :, None, None]
    wx = (xs - x0)[None, None, :, None]
    im = batch.astype(np.float32)
    top = im[:, y0][:, :, x0] * (1 - wx) + im[:, y0][:, :, x1] * wx
    bot = im[:, y1][:, :, x0] * (1 - wx) + im[:, y1][:, :, x1] * wx
    out = top * (1 - wy) + bot * wy
    return np.clip(np.round(out), 0, 255).astype(np.uint8)


def random_crop(img: np.ndarray, crop_h: int, crop_w: int, rng: np.random.Generator) -> np.ndarray:
    """Random crop; resizes up first when the image is smaller than the crop."""
    h, w, _c = img.shape
    if h < crop_h or w < crop_w:
        img = resize_bilinear(img, max(h, crop_h), max(w, crop_w))
        h, w, _c = img.shape
    y = int(rng.integers(0, h - crop_h + 1))
    x = int(rng.integers(0, w - crop_w + 1))
    return img[y : y + crop_h, x : x + crop_w]


def normalize_batch(batch_hwc: np.ndarray) -> np.ndarray:
    """uint8 NHWC -> float32 NCHW, ImageNet mean/std normalized."""
    if batch_hwc.ndim != 4:
        raise ValueError(f"expected NHWC batch, got shape {batch_hwc.shape}")
    x = batch_hwc.astype(np.float32) / 255.0
    c = batch_hwc.shape[-1]
    if c == 3:
        x = (x - IMAGENET_MEAN) / IMAGENET_STD
    return np.ascontiguousarray(x.transpose(0, 3, 1, 2))


def preprocess_batch(
    samples: list[bytes],
    out_hw: tuple[int, int],
    rng: np.random.Generator,
) -> np.ndarray:
    """Full per-batch preprocess: decode → crop/resize → normalize.

    An all-SJPG batch takes the vectorized route: one batched decode and
    one batched resize, with only the RNG-consuming crop left per-image so
    the augmentation stream matches the scalar path bit for bit.
    """
    out_h, out_w = out_hw
    if samples and all(bytes(s[:4]) == b"SJPG" for s in samples):
        decoded = sjpg_decode_batch(samples)
        if len({img.shape for img in decoded}) == 1 and decoded[0].shape[2] == 3:
            h, w, _c = decoded[0].shape
            crops = [
                random_crop(img, min(h, out_h * 2), min(w, out_w * 2), rng)
                for img in decoded
            ]
            return normalize_batch(resize_bilinear_batch(np.stack(crops), out_h, out_w))
    images = np.empty((len(samples), out_h, out_w, 3), dtype=np.uint8)
    for i, data in enumerate(samples):
        img = decode_sample(data)
        if img.shape[2] == 1:
            img = np.repeat(img, 3, axis=2)
        img = random_crop(img, min(img.shape[0], out_h * 2), min(img.shape[1], out_w * 2), rng)
        images[i] = resize_bilinear(img, out_h, out_w)
    return normalize_batch(images)


def batch_megapixels(samples: list[bytes]) -> float:
    """Decoded megapixels of a batch (drives the GPU decode cost model)."""
    from repro.codec.sjpg import sjpg_decode_shape

    total = 0.0
    for data in samples:
        if data[:4] == b"SJPG":
            h, w, c = sjpg_decode_shape(data)
            total += h * w * c / 1e6
        else:
            total += len(data) / 1e6  # RAW: bytes stand in for pixels
    return total
