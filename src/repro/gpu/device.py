"""Simulated GPU device.

A GPU here is: (1) a serial execution queue — kernels from any host thread
run one at a time, like work submitted to a CUDA stream; (2) a cost model
mapping work units (decoded megapixels, training samples) to execution
time; (3) a busy-time tracker feeding the NVML-like power model.

Kernels do their *real* numpy work inside :meth:`SimulatedGPU.submit`; the
cost model then pads (or simply accounts, in accounting mode) the time the
equivalent kernel would have occupied the real board, so epoch timings and
GPU utilization are driven by the paper's hardware profile rather than this
machine's CPU.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable

from repro.energy.power_models import BusyWindowTracker
from repro.util.clock import MonotonicClock


@dataclass(frozen=True)
class GpuCostModel:
    """Execution-time model for the simulated board.

    Defaults approximate a Quadro RTX 6000 on the paper's workloads:
    nvJPEG-class decode throughput ~2 GPix/s, augmentation ~4 GPix/s,
    ResNet-50 fwd+bwd ~400 img/s (≈2.5 ms/image at batch 64).
    """

    name: str = "quadro-rtx-6000"
    decode_s_per_mpix: float = 0.5e-3
    augment_s_per_mpix: float = 0.25e-3
    train_s_per_sample: float = 2.5e-3
    kernel_launch_s: float = 30e-6

    def decode_time(self, megapixels: float) -> float:
        return self.kernel_launch_s + megapixels * self.decode_s_per_mpix

    def augment_time(self, megapixels: float) -> float:
        return self.kernel_launch_s + megapixels * self.augment_s_per_mpix

    def train_step_time(self, batch_size: int) -> float:
        return self.kernel_launch_s + batch_size * self.train_s_per_sample


class SimulatedGPU:
    """Serial kernel queue with modeled timing and busy accounting.

    Parameters
    ----------
    cost_model:
        Maps work to modeled seconds.
    tracker:
        Busy-window tracker for the NVML power model (optional).
    realtime:
        When True, kernels *occupy wall time* equal to their modeled cost
        (work time counts; any remainder is slept) — used by live integration
        tests so overlap behaviour is physically real.  When False, modeled
        time is only accounted, keeping unit tests fast.
    """

    def __init__(
        self,
        cost_model: GpuCostModel | None = None,
        tracker: BusyWindowTracker | None = None,
        realtime: bool = False,
    ) -> None:
        self.cost_model = cost_model or GpuCostModel()
        self.tracker = tracker
        self.realtime = realtime
        self._stream_lock = threading.Lock()  # one CUDA stream
        self._clock = MonotonicClock()
        self.busy_s = 0.0
        self.kernels_run = 0
        self._acct_lock = threading.Lock()

    def submit(self, kernel: Callable[[], Any], modeled_s: float) -> Any:
        """Run ``kernel`` on the device stream; account ``modeled_s`` busy time."""
        if modeled_s < 0:
            raise ValueError(f"modeled_s must be >= 0, got {modeled_s}")
        with self._stream_lock:
            start = self._clock.now()
            result = kernel()
            if self.realtime:
                remaining = modeled_s - (self._clock.now() - start)
                if remaining > 0:
                    self._clock.sleep(remaining)
        with self._acct_lock:
            self.busy_s += modeled_s
            self.kernels_run += 1
        if self.tracker is not None:
            self.tracker.add_busy(modeled_s)
        return result

    def submit_overlapped(self, kernel: Callable[[], Any], modeled_s: float) -> Any:
        """Run ``kernel`` host-side, then occupy the stream for ``modeled_s``.

        The worker-pool submission path: the *real* numpy work runs outside
        the stream lock — N preprocess workers overlap on host CPU, exactly
        the DALI model where decode/augment kernels are prepared in parallel
        and only their launches serialize on the stream.  The lock is taken
        just for the modeled occupancy (a sleep in realtime mode, pure
        accounting otherwise), so modeled GPU time stays serial while host
        work scales with the pool.
        """
        if modeled_s < 0:
            raise ValueError(f"modeled_s must be >= 0, got {modeled_s}")
        result = kernel()
        with self._stream_lock:
            if self.realtime and modeled_s > 0:
                self._clock.sleep(modeled_s)
        with self._acct_lock:
            self.busy_s += modeled_s
            self.kernels_run += 1
        if self.tracker is not None:
            self.tracker.add_busy(modeled_s)
        return result

    def snapshot(self) -> dict[str, float]:
        """Point-in-time copy of the counters."""
        with self._acct_lock:
            return {"busy_s": self.busy_s, "kernels_run": float(self.kernels_run)}
