"""GPU substrate: simulated device + DALI-like preprocessing pipeline.

The paper offloads JPEG decode and augmentation to the GPU via NVIDIA DALI
and feeds it through ``external_source`` with asynchronous prefetch.  Here:

* :mod:`~repro.gpu.device` — a simulated GPU: a serial execution queue with
  a throughput model (work costs virtual-or-wall time) and a utilization
  gauge the NVML-like power model reads.
* :mod:`~repro.gpu.ops` — *real* numpy kernels (SJPG decode, resize, crop,
  normalize); the data transformations are genuine, only their placement on
  a "GPU" is simulated.
* :mod:`~repro.gpu.pipeline` — the DALI-like :class:`Pipeline`:
  ``external_source`` callback, prefetch queue depth Q, ``exec_async`` /
  ``exec_pipelined`` behaviour, warm-up (Algorithm 3 line 4).
"""

from repro.gpu.device import GpuCostModel, SimulatedGPU
from repro.gpu.ops import decode_sample, normalize_batch, random_crop, resize_bilinear
from repro.gpu.pipeline import Pipeline, PipelineStats

__all__ = [
    "GpuCostModel",
    "SimulatedGPU",
    "decode_sample",
    "normalize_batch",
    "random_crop",
    "resize_bilinear",
    "Pipeline",
    "PipelineStats",
]
